// Workload capture & replay: record a synthetic index-update stream into
// the trace format, save it to a real file, load it back, and replay it
// into a fresh QinDB — the workflow for benchmarking the engine against
// your own production stream instead of the built-in generators.

#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "index/corpus.h"
#include "index/trace.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

using namespace directload;
using webindex::TraceOp;
using webindex::TraceRecord;

int main() {
  // 1. Capture: three crawl rounds of a small corpus become a trace —
  //    changed documents as full PUTs, unchanged ones as dedup PUTs, and a
  //    version drop once the retention window fills.
  webindex::CorpusOptions corpus_options;
  corpus_options.num_docs = 200;
  corpus_options.abstract_bytes = 2048;
  webindex::Corpus corpus(corpus_options);

  std::string trace;
  uint64_t records = 0;
  for (int round = 0; round < 3; ++round) {
    if (round > 0) corpus.AdvanceVersionWithChangeRate(0.3);
    for (const webindex::Document& doc : corpus.documents()) {
      TraceRecord record;
      record.key = doc.url;
      record.version = corpus.version();
      if (doc.last_modified_version == corpus.version()) {
        record.op = TraceOp::kPut;
        record.value = corpus.AbstractOf(doc);
      } else {
        record.op = TraceOp::kDedupPut;
      }
      AppendTraceRecord(&trace, record);
      ++records;
    }
  }
  // A few reads against the newest version, then prune the oldest.
  Random rnd(1);
  for (int i = 0; i < 50; ++i) {
    const webindex::Document& doc =
        corpus.documents()[rnd.Uniform(corpus.documents().size())];
    AppendTraceRecord(&trace, TraceRecord{TraceOp::kGet, doc.url,
                                          corpus.version(), ""});
    ++records;
  }
  AppendTraceRecord(&trace, TraceRecord{TraceOp::kDropVersion, "", 1, ""});
  ++records;

  const std::string path = "/tmp/directload_example.trace";
  DL_CHECK_OK(webindex::SaveTraceFile(path, trace));
  std::printf("captured %llu operations (%zu KiB) -> %s\n",
              (unsigned long long)records, trace.size() / 1024, path.c_str());

  // 2. Replay into a fresh engine.
  Result<std::string> loaded = webindex::LoadTraceFile(path);
  DL_CHECK(loaded.ok());
  SimClock clock;
  ssd::Geometry geometry;
  geometry.num_blocks = 2048;
  auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock, geometry,
                            ssd::LatencyModel(), &clock);
  auto db = std::move(qindb::QinDb::Open(env.get(), {})).value();
  Result<webindex::TraceReplayStats> stats =
      webindex::ReplayTrace(*loaded, db.get());
  DL_CHECK(stats.ok());

  std::printf("replayed: %llu puts, %llu dedup-puts, %llu gets "
              "(%llu misses), %llu version drops\n",
              (unsigned long long)stats->puts,
              (unsigned long long)stats->dedup_puts,
              (unsigned long long)stats->gets,
              (unsigned long long)stats->get_misses,
              (unsigned long long)stats->versions_dropped);
  std::printf("engine after replay: %zu live index entries, %.1f KiB on "
              "disk, %.1f ms simulated device time\n",
              db->memtable().live_count(), db->DiskBytes() / 1024.0,
              clock.NowMicros() / 1000.0);

  // 3. Integrity scrub of the replayed store.
  Result<qindb::QinDb::ScrubReport> scrub = db->Scrub();
  DL_CHECK(scrub.ok());
  std::printf("scrub: %llu entries checked, %llu KiB verified, %s\n",
              (unsigned long long)scrub->entries_checked,
              (unsigned long long)(scrub->bytes_verified / 1024),
              scrub->clean() ? "CLEAN" : "DAMAGED");
  return scrub->clean() ? 0 : 1;
}
