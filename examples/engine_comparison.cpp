// Replays the same versioned update stream against QinDB and the
// LevelDB-style LSM baseline on identical simulated SSDs, then prints the
// side-by-side report the paper's Section 4.1 is about: write
// amplification, throughput, jitter, and disk footprint.

#include <cstdio>

#include "bench/common/engine_adapter.h"
#include "bench/common/summary_workload.h"

using namespace directload;
using namespace directload::bench;

int main() {
  EngineConfig config;
  config.geometry.num_blocks = 4096;  // 1 GiB simulated SSD each.

  SummaryWorkloadOptions workload;
  workload.num_keys = 300;
  workload.versions = 10;
  workload.value_bytes = 16 << 10;

  std::printf("replaying %d versions of %llu keys (~%u KB values, "
              "%.0f%% changed per version) on both engines...\n\n",
              workload.versions, (unsigned long long)workload.num_keys,
              workload.value_bytes / 1024, workload.change_rate * 100);

  auto qindb = NewQinDbAdapter(config);
  auto lsm = NewLsmAdapter(config);
  const WorkloadResult q = RunSummaryWorkload(qindb.get(), workload);
  const WorkloadResult l = RunSummaryWorkload(lsm.get(), workload);

  std::printf("%-34s %14s %14s\n", "", "QinDB", "LSM baseline");
  std::printf("%-34s %14.2f %14.2f\n", "user write throughput (MB/s)",
              q.avg_user_mbps, l.avg_user_mbps);
  std::printf("%-34s %13.2fx %13.2fx\n", "device write amplification",
              q.write_amplification, l.write_amplification);
  std::printf("%-34s %14.2f %14.2f\n", "device read traffic (MB/s)",
              q.avg_sys_read_mbps, l.avg_sys_read_mbps);
  std::printf("%-34s %14.2f %14.2f\n", "throughput jitter (CV)",
              q.user_mbps_stddev / (q.avg_user_mbps + 1e-12),
              l.user_mbps_stddev / (l.avg_user_mbps + 1e-12));
  std::printf("%-34s %14.1f %14.1f\n", "peak disk footprint (MB)",
              q.peak_disk_mb, l.peak_disk_mb);
  std::printf("%-34s %14.1f %14.1f\n", "run time (simulated s)",
              q.total_seconds, l.total_seconds);

  std::printf("\nQinDB ingests %.1fx faster at %.1fx less write "
              "amplification,\npaying ~%.1fx the disk space — the paper's "
              "RUM trade in one table.\n",
              q.avg_user_mbps / l.avg_user_mbps,
              l.write_amplification / q.write_amplification,
              q.peak_disk_mb / l.peak_disk_mb);
  return 0;
}
