// Failure handling in Mint (paper Sections 2.3 and 5): a storage node
// crashes and loses its memtable; reads keep flowing from the other
// replicas; the node rebuilds its in-memory index by scanning its AOFs
// (slow), or from a checkpoint (fast); and a fresh node joins the group
// without any data redistribution.

#include <cstdio>

#include "common/logging.h"
#include "common/random.h"
#include "mint/cluster.h"

using namespace directload;

int main() {
  mint::MintOptions options;
  options.num_groups = 2;
  options.nodes_per_group = 3;
  options.node_geometry.num_blocks = 2048;  // 512 MiB per node.
  options.engine.aof.segment_bytes = 2 << 20;

  mint::MintCluster cluster(options);
  DL_CHECK_OK(cluster.Start());

  // Load a version of index data (3-way replicated within each group).
  Random rnd(7);
  const int kKeys = 400;
  std::printf("loading %d keys, 3 replicas each...\n", kKeys);
  for (int i = 0; i < kKeys; ++i) {
    DL_CHECK_OK(cluster.Put("url:" + std::to_string(i), 1,
                            rnd.NextString(4096)));
  }

  // Baseline read.
  Result<mint::MintCluster::ReadResult> read = cluster.Get("url:42", 1);
  DL_CHECK(read.ok());
  std::printf("read url:42 served by node %d in %.0f us\n", read->served_by,
              read->latency_micros);

  // Crash a node: its memtable and GC table are gone; AOFs survive.
  std::printf("\n*** node 0 crashes (memory lost, AOFs intact) ***\n");
  DL_CHECK_OK(cluster.FailNode(0));
  int available = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (cluster.Get("url:" + std::to_string(i), 1).ok()) ++available;
  }
  std::printf("during the outage: %d/%d keys still readable via the "
              "surviving replicas (parallel requests hide the failure)\n",
              available, kKeys);

  // Recover: full AOF scan rebuilds the memtable.
  Result<double> recovery = cluster.RecoverNode(0);
  DL_CHECK(recovery.ok());
  std::printf("node 0 recovered by scanning its AOFs in %.1f simulated ms\n",
              *recovery * 1e3);

  // Checkpoint-accelerated recovery on another node.
  mint::StorageNode* node = cluster.node(1);
  DL_CHECK_OK(node->db()->Checkpoint());
  node->Fail();
  Result<double> fast = node->Recover();
  DL_CHECK(fast.ok());
  std::printf("node 1 (checkpointed) recovered in %.1f simulated ms "
              "(vs the full scan above)\n",
              *fast * 1e3);

  // Elastic growth: a new empty node joins group 0; nothing moves.
  Result<int> added = cluster.AddNode(0);
  DL_CHECK(added.ok());
  std::printf("\nadded node %d to group 0 — stored pairs stay put, reads "
              "still answer:\n", *added);
  int ok = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (cluster.Get("url:" + std::to_string(i), 1).ok()) ++ok;
  }
  std::printf("  %d/%d keys readable after membership change\n", ok, kKeys);
  std::printf("  new node holds %zu pairs (no redistribution, by design)\n",
              cluster.node(*added)->db()->memtable().live_count());

  // New writes start landing on the larger group.
  for (int i = 0; i < 200; ++i) {
    DL_CHECK_OK(cluster.Put("new:" + std::to_string(i), 2,
                            rnd.NextString(1024)));
  }
  std::printf("  after 200 new writes it holds %zu pairs\n",
              cluster.node(*added)->db()->memtable().live_count());
  return 0;
}
