// The full DirectLoad pipeline end to end: several crawl rounds flow from
// the build center through Bifrost's deduplicating cross-region delivery
// into Mint clusters at six data centers, gated by a gray release, with
// old versions pruned — printing what an operator dashboard would show.

#include <cstdio>

#include "common/logging.h"
#include "core/directload.h"

using namespace directload;

int main() {
  core::DirectLoadOptions options;
  options.corpus.num_docs = 200;
  options.corpus.vocab_size = 1500;
  options.corpus.terms_per_doc = 12;
  options.corpus.abstract_bytes = 1024;
  options.delivery.backbone_bytes_per_sec = 50e3;
  options.delivery.interregion_bytes_per_sec = 30e3;
  options.delivery.regional_bytes_per_sec = 200e3;
  options.delivery.tick_seconds = 0.5;
  options.slice_bytes = 32 << 10;
  options.mint.num_groups = 1;
  options.mint.nodes_per_group = 3;
  options.mint.node_geometry.num_blocks = 2048;
  options.mint.engine.aof.segment_bytes = 1 << 20;
  options.gray_probe_queries = 15;

  core::DirectLoad dl(options);
  DL_CHECK_OK(dl.Start());

  std::printf("%8s %10s %12s %12s %10s %8s\n", "version", "dedup(%)",
              "update(s)", "pairs", "gray", "pruned");
  for (int cycle = 0; cycle < 6; ++cycle) {
    // Day-to-day churn varies; day 4 is a heavy-churn (breaking news) day.
    const double change_rate = cycle == 0 ? -1.0 : (cycle == 3 ? 0.8 : 0.25);
    Result<core::UpdateReport> report = dl.RunUpdateCycle(change_rate);
    DL_CHECK(report.ok());
    std::printf("%8llu %10.1f %12.1f %12llu %10s %8llu\n",
                (unsigned long long)report->version,
                report->dedup.dedup_ratio() * 100,
                report->update_time_seconds,
                (unsigned long long)report->pairs_ingested,
                report->gray_release_passed ? "PASS" : "FAIL",
                (unsigned long long)report->version_pruned);
  }

  // Search the freshest version from every data center.
  const webindex::Document& doc = dl.corpus().documents()[7];
  const uint32_t term = dl.corpus().TermsOf(doc)[0];
  std::printf("\nquerying term %u at every data center (active version %llu):\n",
              term, (unsigned long long)dl.active_version(0));
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    Result<core::DirectLoad::QueryResult> result = dl.Query(dc, term, 3);
    DL_CHECK(result.ok());
    std::printf("  dc%d: %zu urls, first=%s\n", dc, result->urls.size(),
                result->urls.empty() ? "-" : result->urls[0].c_str());
  }

  // Roll back one version (the paper's last-resort path) and query again.
  DL_CHECK_OK(dl.Rollback());
  std::printf("\nrolled back to version %llu; query still serves: %s\n",
              (unsigned long long)dl.active_version(0),
              dl.Query(0, term, 1).ok() ? "OK" : "FAILED");
  return 0;
}
