// Quickstart: open a QinDB engine on a simulated SSD and exercise the
// mutated, version-aware operations of the paper's Figure 2 — PUT of
// complete and deduplicated pairs, GET with traceback, DEL with lazy GC.

#include <cstdio>

#include "common/logging.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

using namespace directload;

int main() {
  // A 256 MiB simulated SSD exposed through the native (block-aligned)
  // interface — QinDB's deployment target.
  SimClock clock;
  ssd::Geometry geometry;
  geometry.num_blocks = 1024;  // x 256 KiB blocks = 256 MiB.
  auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock, geometry,
                            ssd::LatencyModel(), &clock);

  qindb::QinDbOptions options;
  options.aof.segment_bytes = 4 << 20;  // 4 MiB AOF segments.
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();

  // Version 1 of a crawled page's summary arrives complete.
  DL_CHECK_OK(db->Put("url:example.com/home", 1, "v1 abstract of the page"));

  // Version 2 arrives *deduplicated*: Bifrost saw the same value signature
  // and removed the value field before transmission ('r' flag).
  DL_CHECK_OK(db->Put("url:example.com/home", 2, Slice(), /*dedup=*/true));

  // Version 3 changed for real.
  DL_CHECK_OK(db->Put("url:example.com/home", 3, "v3 abstract, refreshed"));

  // GET(k/t): version 2 resolves through the traceback to version 1's value.
  std::printf("GET v1 -> %s\n", db->Get("url:example.com/home", 1)->c_str());
  std::printf("GET v2 -> %s   (traceback to v1)\n",
              db->Get("url:example.com/home", 2)->c_str());
  std::printf("GET v3 -> %s\n", db->Get("url:example.com/home", 3)->c_str());
  std::printf("GET latest -> %s\n",
              db->GetLatest("url:example.com/home")->c_str());

  // DEL(k/t) only flags the pair; the lazy GC reclaims space later.
  DL_CHECK_OK(db->Del("url:example.com/home", 1));
  std::printf("after DEL v1: GET v1 -> %s\n",
              db->Get("url:example.com/home", 1).status().ToString().c_str());
  // Version 2 still resolves: the GC would keep v1's record as a referent.
  std::printf("after DEL v1: GET v2 -> %s   (referent preserved)\n",
              db->Get("url:example.com/home", 2)->c_str());

  // Checkpoint the memtable (also seals the active AOF segment, flushing
  // its block-aligned tail to the device).
  DL_CHECK_OK(db->Checkpoint());

  const qindb::QinDbStats& stats = db->stats();
  std::printf(
      "\nstats: puts=%llu (dedup=%llu) gets=%llu (traceback=%llu) dels=%llu\n",
      (unsigned long long)stats.puts, (unsigned long long)stats.dedup_puts,
      (unsigned long long)stats.gets,
      (unsigned long long)stats.traceback_gets,
      (unsigned long long)stats.dels);
  std::printf("device: %.1f KiB programmed, %.2f ms of simulated device time\n",
              env->stats().device_pages_written() * 4096 / 1024.0,
              (double)clock.NowMicros() / 1000.0);
  return 0;
}
