// The index-building and serving path of the paper's Figure 1 on one node:
// crawl a synthetic web corpus, build forward/inverted/summary indices,
// store them in QinDB, and answer search queries — a term is resolved to
// URLs via the inverted index, and each URL's abstract is fetched from the
// summary index.

#include <cstdio>

#include "common/logging.h"
#include "common/sim_clock.h"
#include "index/builders.h"
#include "index/corpus.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

using namespace directload;

int main() {
  // 1. Crawl round: a small synthetic web.
  webindex::CorpusOptions corpus_options;
  corpus_options.num_docs = 300;
  corpus_options.vocab_size = 2000;
  corpus_options.terms_per_doc = 15;
  corpus_options.abstract_bytes = 256;
  webindex::Corpus corpus(corpus_options);

  // 2. Index building engine: forward -> inverted, plus summary.
  webindex::IndexDataset forward = webindex::BuildForwardIndex(corpus);
  webindex::IndexDataset inverted =
      webindex::BuildInvertedIndex(corpus, forward);
  webindex::IndexDataset summary = webindex::BuildSummaryIndex(corpus);
  std::printf("built indices for version %llu: %zu forward, %zu inverted, "
              "%zu summary pairs\n",
              (unsigned long long)corpus.version(), forward.pairs.size(),
              inverted.pairs.size(), summary.pairs.size());

  // 3. Store inverted + summary indices in a QinDB storage node.
  SimClock clock;
  ssd::Geometry geometry;
  geometry.num_blocks = 2048;
  auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock, geometry,
                            ssd::LatencyModel(), &clock);
  auto db = std::move(qindb::QinDb::Open(env.get(), {})).value();
  for (const webindex::KvPair& kv : inverted.pairs) {
    DL_CHECK_OK(db->Put(kv.key, corpus.version(), kv.value));
  }
  for (const webindex::KvPair& kv : summary.pairs) {
    DL_CHECK_OK(db->Put(kv.key, corpus.version(), kv.value));
  }

  // 4. Serve a search request: break it into terms, gather URL postings,
  //    rank by how many query terms a document matches, return abstracts.
  const webindex::Document& sample_doc = corpus.documents()[42];
  const std::vector<uint32_t> doc_terms = corpus.TermsOf(sample_doc);
  const std::vector<uint32_t> query = {doc_terms[0], doc_terms[1],
                                       doc_terms[2]};
  std::printf("\nquery terms: %u %u %u\n", query[0], query[1], query[2]);

  std::map<std::string, int> matches;
  for (uint32_t term : query) {
    Result<std::string> postings =
        db->Get(webindex::TermKey(term), corpus.version());
    if (!postings.ok()) continue;
    std::vector<std::string> urls;
    DL_CHECK_OK(webindex::DecodeUrlList(*postings, &urls));
    for (const std::string& url : urls) ++matches[url];
  }

  // Rank: most matched terms first.
  std::vector<std::pair<int, std::string>> ranked;
  for (const auto& [url, count] : matches) ranked.emplace_back(count, url);
  std::sort(ranked.rbegin(), ranked.rend());

  std::printf("top results (%zu candidates):\n", ranked.size());
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    Result<std::string> abstract = db->Get(ranked[i].second, corpus.version());
    std::printf("  #%zu [%d/3 terms] %s\n      abstract: %.48s...\n", i + 1,
                ranked[i].first, ranked[i].second.c_str(),
                abstract.ok() ? abstract->c_str() : "(unavailable)");
  }
  // The document the query terms came from must be a full (3/3) match;
  // other documents may legitimately tie on popular terms.
  bool found_full_match = false;
  for (const auto& [count, url] : ranked) {
    if (url == sample_doc.url) {
      found_full_match = count == 3;
      break;
    }
  }
  DL_CHECK(found_full_match);
  std::printf("\nthe document the query was drawn from is a full match: OK\n");
  return 0;
}
