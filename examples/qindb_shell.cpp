// An interactive shell over a QinDB instance on a simulated SSD — handy for
// poking at the engine's versioned semantics. Reads commands from stdin:
//
//   put <key> <version> <value>     complete pair
//   dedup <key> <version>           value-less (deduplicated) pair
//   get <key> <version>             exact-version read (with traceback)
//   latest <key>                    newest live version
//   del <key> <version>             lazy delete
//   dropver <version>               delete a whole version
//   scan [start]                    ordered scan of newest live pairs
//   gc                              force the lazy GC
//   checkpoint                      write a checkpoint
//   stats                           engine + device counters
//   quit
//
// Run it with a here-doc for scripted demos:
//   build/examples/qindb_shell <<'EOF'
//   put url:a 1 hello
//   dedup url:a 2
//   get url:a 2
//   EOF
//
// Two networked modes expose the same store over the RPC front end:
//
//   qindb_shell --serve 7000 [cache_mb] host a small mint cluster behind a
//                                       KvServer on port 7000 (optionally
//                                       with a block-cache budget); stdin
//                                       accepts 'stats' and 'quit'
//   qindb_shell --connect host:7000     remote shell over RpcClient:
//                                       put/dedup/get/latest/del/stats/ping

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "rpc/client.h"
#include "server/kv_server.h"
#include "ssd/env.h"

using namespace directload;

namespace {

void PrintStats(qindb::QinDb* db, ssd::SsdEnv* env, SimClock* clock) {
  const qindb::QinDbStats& s = db->stats();
  std::printf("ops:    puts=%llu (dedup=%llu) gets=%llu (traceback=%llu) "
              "dels=%llu\n",
              (unsigned long long)s.puts, (unsigned long long)s.dedup_puts,
              (unsigned long long)s.gets,
              (unsigned long long)s.traceback_gets,
              (unsigned long long)s.dels);
  std::printf("gc:     invocations=%llu deferrals=%llu segments_reclaimed=%llu "
              "bytes_rewritten=%llu\n",
              (unsigned long long)s.gc_invocations,
              (unsigned long long)s.gc_deferrals,
              (unsigned long long)db->gc_stats().segments_reclaimed,
              (unsigned long long)db->gc_stats().bytes_rewritten);
  std::printf("index:  %zu live entries, ~%zu KiB memtable\n",
              db->memtable().live_count(),
              db->memtable().ApproximateMemoryUsage() / 1024);
  std::printf("device: %.1f KiB on disk, WA=%.2fx, %.2f ms simulated\n",
              (double)db->DiskBytes() / 1024.0,
              env->stats().write_amplification(),
              (double)clock->NowMicros() / 1000.0);
  const qindb::EngineCacheTotals c = db->CacheTotals();
  std::printf("cache:  hits=%llu misses=%llu charged=%llu KiB "
              "(cold versions=%llu)\n",
              (unsigned long long)c.cache_hits,
              (unsigned long long)c.cache_misses,
              (unsigned long long)(c.cache_charged_bytes / 1024),
              (unsigned long long)c.cold_versions);
}

// Hosts a small mint cluster behind a KvServer so remote shells and the
// load generator have something to talk to. Blocks on stdin; 'quit' (or
// EOF) drains in-flight requests before exiting so every acked write is
// applied.
int RunServeMode(uint16_t port, int cache_mb) {
  mint::MintOptions options;
  options.num_groups = 2;
  options.nodes_per_group = 1;
  options.replicas = 1;
  options.parallel_reads = false;
  options.engine.aof.segment_bytes = 8 << 20;
  options.engine.cache_bytes = static_cast<uint64_t>(cache_mb) << 20;
  mint::MintCluster cluster(options);
  Status s = cluster.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  server::KvServerOptions server_options;
  server_options.port = port;
  server::KvServer kv_server(&cluster, server_options);
  s = kv_server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("serving on 127.0.0.1:%u — 'quit' to drain and exit\n",
              kv_server.port());
  std::string line;
  while (std::printf("serve> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "stats") {
      const server::KvServer::Counters& c = kv_server.counters();
      std::printf("accepted=%llu served=%llu busy=%llu idle_closed=%llu "
                  "stream_errors=%llu\n",
                  (unsigned long long)c.connections_accepted.load(),
                  (unsigned long long)c.requests_served.load(),
                  (unsigned long long)c.requests_rejected_busy.load(),
                  (unsigned long long)c.connections_idle_closed.load(),
                  (unsigned long long)c.stream_errors.load());
    } else {
      std::printf("serve mode commands: stats | quit\n");
    }
  }
  std::printf("draining...\n");
  kv_server.Shutdown();
  return 0;
}

// Command loop over an RpcClient — the networked subset of the local shell.
int RunConnectMode(const std::string& host, uint16_t port) {
  rpc::RpcClient client(host, port);
  Status s = client.Connect();
  if (!s.ok()) {
    std::fprintf(stderr, "connect to %s:%u failed: %s\n", host.c_str(), port,
                 s.ToString().c_str());
    return 1;
  }
  std::printf("connected to %s:%u — 'help' for commands\n", host.c_str(),
              port);
  std::string line;
  while (std::printf("remote> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      std::printf("put|dedup|get|latest|del|stats|ping|quit\n");
    } else if (cmd == "put") {
      std::string key, value;
      uint64_t version = 0;
      if (!(in >> key >> version) || !std::getline(in, value)) {
        std::printf("usage: put <key> <version> <value>\n");
        continue;
      }
      if (!value.empty() && value[0] == ' ') value.erase(0, 1);
      std::printf("%s\n",
                  client.Put(key, version, value).ToString().c_str());
    } else if (cmd == "dedup") {
      std::string key;
      uint64_t version = 0;
      if (!(in >> key >> version)) {
        std::printf("usage: dedup <key> <version>\n");
        continue;
      }
      std::printf("%s\n",
                  client.Put(key, version, Slice(), true).ToString().c_str());
    } else if (cmd == "get") {
      std::string key;
      uint64_t version = 0;
      if (!(in >> key >> version)) {
        std::printf("usage: get <key> <version>\n");
        continue;
      }
      Result<std::string> got = client.Get(key, version);
      std::printf("%s\n", got.ok() ? got->c_str()
                                   : got.status().ToString().c_str());
    } else if (cmd == "latest") {
      std::string key;
      if (!(in >> key)) continue;
      Result<std::string> got = client.GetLatest(key);
      std::printf("%s\n", got.ok() ? got->c_str()
                                   : got.status().ToString().c_str());
    } else if (cmd == "del") {
      std::string key;
      uint64_t version = 0;
      if (!(in >> key >> version)) continue;
      std::printf("%s\n", client.Del(key, version).ToString().c_str());
    } else if (cmd == "stats") {
      Result<std::string> text = client.Stats();
      std::printf("%s\n", text.ok() ? text->c_str()
                                    : text.status().ToString().c_str());
    } else if (cmd == "ping") {
      std::printf("%s\n", client.Ping().ToString().c_str());
    } else {
      std::printf("'%s' is local-only — remote commands: "
                  "put|dedup|get|latest|del|stats|ping|quit\n",
                  cmd.c_str());
    }
  }
  return 0;
}

int RunLocalShell() {
  SimClock clock;
  ssd::Geometry geometry;
  geometry.num_blocks = 4096;  // 1 GiB simulated SSD.
  auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock, geometry,
                            ssd::LatencyModel(), &clock);
  qindb::QinDbOptions options;
  options.aof.segment_bytes = 4 << 20;
  auto db_or = qindb::QinDb::Open(env.get(), options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();

  std::printf("QinDB shell — 'help' for commands\n");
  std::string line;
  while (std::printf("qindb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "help") {
      std::printf("put|dedup|get|latest|del|dropver|scan|versions|gc|"
                  "checkpoint|stats|quit\n");
    } else if (cmd == "put") {
      std::string key, value;
      uint64_t version = 0;
      if (!(in >> key >> version) || !std::getline(in, value)) {
        std::printf("usage: put <key> <version> <value>\n");
        continue;
      }
      if (!value.empty() && value[0] == ' ') value.erase(0, 1);
      std::printf("%s\n", db->Put(key, version, value).ToString().c_str());
    } else if (cmd == "dedup") {
      std::string key;
      uint64_t version = 0;
      if (!(in >> key >> version)) {
        std::printf("usage: dedup <key> <version>\n");
        continue;
      }
      std::printf("%s\n",
                  db->Put(key, version, Slice(), true).ToString().c_str());
    } else if (cmd == "get") {
      std::string key;
      uint64_t version = 0;
      if (!(in >> key >> version)) {
        std::printf("usage: get <key> <version>\n");
        continue;
      }
      Result<std::string> got = db->Get(key, version);
      std::printf("%s\n", got.ok() ? got->c_str()
                                   : got.status().ToString().c_str());
    } else if (cmd == "latest") {
      std::string key;
      if (!(in >> key)) continue;
      Result<std::string> got = db->GetLatest(key);
      std::printf("%s\n", got.ok() ? got->c_str()
                                   : got.status().ToString().c_str());
    } else if (cmd == "del") {
      std::string key;
      uint64_t version = 0;
      if (!(in >> key >> version)) continue;
      std::printf("%s\n", db->Del(key, version).ToString().c_str());
    } else if (cmd == "dropver") {
      uint64_t version = 0;
      if (!(in >> version)) continue;
      Result<uint64_t> n = db->DropVersion(version);
      if (n.ok()) {
        std::printf("flagged %llu pairs\n", (unsigned long long)*n);
      } else {
        std::printf("%s\n", n.status().ToString().c_str());
      }
    } else if (cmd == "scan") {
      std::string start;
      in >> start;
      auto scan = db->NewScanner();
      scan.Seek(start);
      int shown = 0;
      for (; scan.Valid() && shown < 20; scan.Next(), ++shown) {
        Result<std::string> value = scan.value();
        std::printf("  %s @v%llu = %.40s\n", scan.key().ToString().c_str(),
                    (unsigned long long)scan.version(),
                    value.ok() ? value->c_str() : "<error>");
      }
      if (scan.Valid()) std::printf("  ... (truncated at 20)\n");
    } else if (cmd == "versions") {
      for (const auto& [version, count] : db->VersionCounts()) {
        std::printf("  v%llu: %llu live pairs\n",
                    (unsigned long long)version, (unsigned long long)count);
      }
    } else if (cmd == "gc") {
      std::printf("%s\n", db->ForceGc().ToString().c_str());
    } else if (cmd == "checkpoint") {
      std::printf("%s\n", db->Checkpoint().ToString().c_str());
    } else if (cmd == "stats") {
      PrintStats(db.get(), env.get(), &clock);
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if ((argc == 3 || argc == 4) && std::string(argv[1]) == "--serve") {
    return RunServeMode(static_cast<uint16_t>(std::atoi(argv[2])),
                        argc == 4 ? std::atoi(argv[3]) : 0);
  }
  if (argc == 3 && std::string(argv[1]) == "--connect") {
    const std::string target = argv[2];
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "usage: qindb_shell --connect <host:port>\n");
      return 1;
    }
    return RunConnectMode(target.substr(0, colon),
                          static_cast<uint16_t>(
                              std::atoi(target.c_str() + colon + 1)));
  }
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: qindb_shell [--serve <port> [cache_mb] | --connect "
                 "<host:port>]\n");
    return 1;
  }
  return RunLocalShell();
}
