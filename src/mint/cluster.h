#ifndef DIRECTLOAD_MINT_CLUSTER_H_
#define DIRECTLOAD_MINT_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <atomic>

#include "common/latency_estimator.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload::mint {

struct MintOptions {
  int num_groups = 2;
  int nodes_per_group = 3;
  int replicas = 3;  // <= nodes_per_group; the paper replicates 3x.

  ssd::Geometry node_geometry;  // One simulated SSD per storage node.
  ssd::LatencyModel node_latency;
  qindb::QinDbOptions engine;

  /// Fixed network round trip added to every remote read (intra-DC).
  double read_rtt_micros = 200;

  /// Fan reads out to the group's replicas on real threads (one per live
  /// replica); false falls back to a sequential loop over the replicas.
  /// Either way the winner is the fastest live replica by simulated
  /// latency, so results are deterministic.
  bool parallel_reads = true;

  /// Per-replica read timeout in simulated microseconds (device time plus
  /// RTT). Replies slower than this are treated as unavailable — the knob
  /// that keeps one slow or recovering replica from serving reads the rest
  /// of the group can answer faster. Zero derives the timeout from the
  /// rolling per-replica latency estimate (see auto_read_timeout below);
  /// negative disables the timeout outright.
  double read_timeout_micros = 0;

  /// When read_timeout_micros is 0, each read's effective timeout is
  /// read_timeout_multiplier × the *fastest* live replica's rolling p95 —
  /// the same estimator family that drives the coordinator's hedging delay
  /// — clamped below by read_timeout_floor_micros. Using the fastest
  /// replica's estimate is the point: a recovering replica's own (slow)
  /// history must not buy it a long leash when its peers answer quickly.
  /// Until some replica has read_timeout_min_samples recorded samples the
  /// timeout stays disabled, so cold clusters never reject off noise.
  bool auto_read_timeout = true;
  double read_timeout_multiplier = 4.0;
  double read_timeout_floor_micros = 2000;
  int read_timeout_min_samples = 32;

  uint64_t seed = 1;
};

/// One storage node: its own simulated SSD (devices run in parallel, so
/// each node has a private clock) and a QinDB engine on top.
///
/// Lifecycle discipline: Fail() destroys the engine and Recover() rebuilds
/// it, and either may race with request threads inside MintCluster. Every
/// path that dereferences db() therefore holds lifecycle_mu() shared for
/// the duration of the engine call (rank kMintNode, just above the engine
/// locks), and Fail()/Recover() take it exclusively — a crash waits for
/// in-flight requests to drain off the node instead of freeing the engine
/// under them. up() is a lock-free hint for replica pre-selection; the
/// authoritative check is up() re-read under the shared lock.
class StorageNode {
 public:
  StorageNode(int id, const MintOptions& options);

  Status Start();

  int id() const { return id_; }
  bool up() const { return up_.load(std::memory_order_acquire); }
  qindb::QinDb* db() { return db_.get(); }
  SimClock* clock() { return &clock_; }
  ssd::SsdEnv* env() { return env_.get(); }
  SharedMutex* lifecycle_mu() const { return &lifecycle_mu_; }

  /// Rolling window of this replica's recent successful read latencies
  /// (simulated micros, RTT included); feeds the derived read timeout.
  LatencyEstimator* read_latency() { return &read_latency_; }

  /// Simulates a crash: the engine's memory (memtable, GC table) is lost;
  /// the AOFs on the simulated SSD survive. Blocks until in-flight requests
  /// against this node's engine have drained.
  void Fail();

  /// Rebuilds the engine from the AOFs (checkpoint-accelerated when one is
  /// valid). Returns the simulated recovery time in seconds.
  Result<double> Recover();

 private:
  int id_;
  MintOptions options_;
  SimClock clock_;
  // env_/db_ are rebuilt under an exclusive lifecycle_mu_ hold
  // (Fail/Recover), but read through the *unlocked* accessors env()/db():
  // the documented protocol (see the class comment) is that callers hold
  // lifecycle_mu_ shared across the whole engine call, which clang's TSA
  // cannot see through an accessor without REQUIRES on every caller.
  std::unique_ptr<ssd::SsdEnv> env_;  // dl-lint: ignore(guarded-by-coverage)
  std::unique_ptr<qindb::QinDb> db_;  // dl-lint: ignore(guarded-by-coverage)
  LatencyEstimator read_latency_;     // Internally locked.
  std::atomic<bool> up_{false};
  mutable SharedMutex lifecycle_mu_{LockRank::kMintNode,
                                    "StorageNode::lifecycle_mu_"};
};

/// Mint: the regional distributed key-value store (Section 2.3). Keys are
/// dispatched to node *groups* via H(k) — never directly to nodes, so
/// group membership can change without redistributing stored pairs — and
/// each pair is written to `replicas` nodes of its group, chosen by
/// rendezvous hashing. Reads are sent to the group's nodes in parallel —
/// one std::thread per live replica, every thread joined before the call
/// returns — and the fastest live replica answers (first-result-wins by
/// simulated latency), which hides slow or recovering nodes. Each node owns
/// a private clock, env, and engine, so replica threads share no mutable
/// state and the cluster holds no lock of its own beyond each node's
/// lifecycle lock (see StorageNode); the engines themselves are internally
/// thread-safe (see LockRank in common/lock_rank.h for the per-engine lock
/// order the replica threads run under). Requests may race freely with
/// FailNode/RecoverNode, and with AddNode too: the node/group tables are
/// guarded by a cluster-level shared lock (rank kMintCluster) that every
/// operation holds shared and AddNode holds exclusive, so membership growth
/// waits out in-flight traffic instead of racing it undetected.
class MintCluster {
 public:
  explicit MintCluster(const MintOptions& options);

  Status Start();

  int GroupOf(const Slice& key) const;
  /// Replica node ids (within the key's group) for new writes.
  std::vector<int> ReplicasOf(const Slice& key) const;

  Status Put(const Slice& key, uint64_t version, const Slice& value,
             bool dedup = false);
  Status Del(const Slice& key, uint64_t version);

  /// One op of a cluster-level write batch (a Put or a Del).
  struct BatchOp {
    bool is_del = false;
    std::string key;
    uint64_t version = 0;
    std::string value;  // Put only.
    bool dedup = false;
  };

  /// Executes `ops` in order with one engine Write per involved node: ops
  /// are bucketed by replica target into per-node qindb::WriteBatch objects
  /// and each node commits its share in a single group-commit pass (one AOF
  /// append per node instead of one per op). `statuses` receives one status
  /// per op with the same replica-aggregation semantics as Put/Del — ops to
  /// the same key always target the same node set, so per-key ordering is
  /// preserved. Returns the first non-OK per-op status.
  Status WriteMany(const std::vector<BatchOp>& ops,
                   std::vector<Status>* statuses);
  /// Flags `version` deleted on every node (the oldest-version pruning).
  Status DropVersion(uint64_t version);

  // -- Bulk-ingest fan-out (Bifrost over the wire) --------------------------
  //
  // A bulk session stages one index version across the cluster through the
  // engines' IngestRun fast path: staged pairs are durable but invisible
  // until BulkCommit, and BulkAbort (or a crash) leaves no trace. Nodes that
  // are down miss the session exactly as they miss a Put — re-replication
  // heals them afterwards — and a node that recovers mid-session simply has
  // no session to commit (its engine answers InvalidArgument, which the
  // fan-out tolerates).

  /// Opens the session on every live node.
  Status BulkBegin(uint64_t version);

  /// Lands one run of pre-decoded pairs: puts go to each key's rendezvous
  /// replicas, tombstones to the key's whole group (mirroring Put/Del).
  /// `ops` slices alias the caller's buffer for the duration of the call.
  /// A non-OK return means the run must be re-sent whole; replicas that
  /// already staged it tolerate the duplicate (the later copy supersedes at
  /// commit, like a re-PUT).
  Status BulkIngest(uint64_t version, const qindb::IngestOp* ops,
                    size_t count);

  /// Commits the session on every live node holding it.
  Status BulkCommit(uint64_t version);

  /// Rolls the session back on every live node holding it; idempotent.
  Status BulkAbort(uint64_t version);

  struct ReadResult {
    std::string value;
    double latency_micros = 0;  // Fastest replica's device time + RTT.
    int served_by = -1;
  };
  Result<ReadResult> Get(const Slice& key, uint64_t version);
  Result<ReadResult> GetLatest(const Slice& key);

  /// Crash / recover a node. Reads keep working off the other replicas.
  Status FailNode(int node_id);
  Result<double> RecoverNode(int node_id);

  /// Re-replication: copies every pair the node should hold (it is among
  /// the pair's rendezvous replicas) but does not, from the peers in its
  /// group. Used after replacing a node whose SSD was lost, restoring the
  /// replication factor. Returns the number of pairs copied.
  Result<uint64_t> RepairNode(int node_id);

  /// Adds an empty node to `group`. Existing pairs stay where they are
  /// (reads query the whole group, so nothing needs to move); the new node
  /// participates in replica selection for subsequent writes. Safe
  /// concurrently with serving traffic: the exclusive cluster_mu_ hold
  /// waits out in-flight operations before growing the node table.
  Result<int> AddNode(int group);

  int num_nodes() const;
  /// The node object outlives the cluster-table lookup this performs (nodes
  /// are never removed), so the returned pointer stays valid; engine access
  /// through it still follows the StorageNode lifecycle protocol.
  StorageNode* node(int id);
  const MintOptions& options() const { return options_; }

  /// Sum of user bytes ingested across nodes (3x-replicated writes).
  uint64_t TotalUserBytesIngested() const;
  uint64_t TotalDiskBytes() const;

 private:
  // The *Locked helpers are what the serving operations call internally:
  // each public entry point takes cluster_mu_ (shared) exactly once, so a
  // public method calling another public method would trip the rank
  // checker's same-rank rule — by design, since that is a real
  // shared-after-shared deadlock behind a queued AddNode writer.
  int GroupOfLocked(const Slice& key) const REQUIRES_SHARED(cluster_mu_);
  std::vector<int> ReplicasOfLocked(const Slice& key) const
      REQUIRES_SHARED(cluster_mu_);
  const std::vector<int>& GroupNodesLocked(int group) const
      REQUIRES_SHARED(cluster_mu_) {
    return groups_[group];
  }

  template <typename Fn>
  Result<ReadResult> ParallelRead(const Slice& key, const Fn& fn)
      REQUIRES_SHARED(cluster_mu_);

  MintOptions options_;
  /// Guards the node/group membership tables: shared across every serving
  /// operation, exclusive for AddNode. The replica threads ParallelRead
  /// spawns read the table while their parent holds the shared lock across
  /// their whole lifetime (spawn → join), which is why the fields carry no
  /// GUARDED_BY — clang's analysis cannot see a parent's hold from inside
  /// a lambda running on a child thread.
  mutable SharedMutex cluster_mu_{LockRank::kMintCluster,
                                  "MintCluster::cluster_mu_"};
  // Both tables follow cluster_mu_'s documented protocol (see its comment
  // for why GUARDED_BY cannot express it).
  std::vector<std::unique_ptr<StorageNode>>
      nodes_;  // dl-lint: ignore(guarded-by-coverage)
  std::vector<std::vector<int>>
      groups_;  // dl-lint: ignore(guarded-by-coverage)
};

}  // namespace directload::mint

#endif  // DIRECTLOAD_MINT_CLUSTER_H_
