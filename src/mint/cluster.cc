#include "mint/cluster.h"

#include <algorithm>
#include <thread>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "mint/routing.h"

namespace directload::mint {

namespace {

// Fires once per replica attempt inside ParallelRead, before the engine is
// consulted — a probabilistic spec makes individual replicas flaky while
// the group as a whole keeps serving, which is exactly the redundancy the
// chaos harness wants to stress.
DIRECTLOAD_FAILPOINT_DEFINE(fp_mint_replica_read, "mint_replica_read");

}  // namespace

// ---------------------------------------------------------------------------
// StorageNode
// ---------------------------------------------------------------------------

StorageNode::StorageNode(int id, const MintOptions& options)
    : id_(id), options_(options) {
  env_ = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                        options_.node_geometry, options_.node_latency,
                        &clock_);
}

Status StorageNode::Start() {
  WriterLock guard(&lifecycle_mu_);
  Result<std::unique_ptr<qindb::QinDb>> db =
      qindb::QinDb::Open(env_.get(), options_.engine);
  if (!db.ok()) return db.status();
  db_ = std::move(db).value();
  up_.store(true, std::memory_order_release);
  return Status::OK();
}

void StorageNode::Fail() {
  // Drop the engine without any graceful shutdown: the memtable and GC
  // table vanish; the AOF segments remain on the simulated SSD. Note that
  // the sub-page tail of the active segment is padded out by the env when
  // the writer is destroyed — record checksums would catch a genuinely torn
  // tail, which the AOF scan treats as end-of-segment. The exclusive lock
  // waits out requests currently inside the engine: they complete against
  // the pre-crash engine, exactly as a request already past the NIC would
  // on real hardware.
  WriterLock guard(&lifecycle_mu_);
  db_.reset();
  up_.store(false, std::memory_order_release);
}

Result<double> StorageNode::Recover() {
  WriterLock guard(&lifecycle_mu_);
  if (db_ != nullptr) {
    return Status::InvalidArgument("node is already up; Fail() it first");
  }
  const uint64_t before = clock_.NowMicros();
  Result<std::unique_ptr<qindb::QinDb>> db =
      qindb::QinDb::Open(env_.get(), options_.engine);
  if (!db.ok()) return db.status();
  db_ = std::move(db).value();
  up_.store(true, std::memory_order_release);
  return static_cast<double>(clock_.NowMicros() - before) * 1e-6;
}

// ---------------------------------------------------------------------------
// MintCluster
// ---------------------------------------------------------------------------

MintCluster::MintCluster(const MintOptions& options) : options_(options) {
  groups_.resize(options_.num_groups);
  for (int g = 0; g < options_.num_groups; ++g) {
    for (int i = 0; i < options_.nodes_per_group; ++i) {
      const int id = static_cast<int>(nodes_.size());
      nodes_.push_back(std::make_unique<StorageNode>(id, options_));
      groups_[g].push_back(id);
    }
  }
}

Status MintCluster::Start() {
  ReaderLock cluster_guard(&cluster_mu_);
  for (auto& node : nodes_) {
    Status s = node->Start();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

int MintCluster::GroupOf(const Slice& key) const {
  ReaderLock cluster_guard(&cluster_mu_);
  return GroupOfLocked(key);
}

std::vector<int> MintCluster::ReplicasOf(const Slice& key) const {
  ReaderLock cluster_guard(&cluster_mu_);
  return ReplicasOfLocked(key);
}

int MintCluster::GroupOfLocked(const Slice& key) const {
  // H(k) maps to a group, not a node (Section 2.3: scalability without
  // redistribution). Shared with the distributed coordinator via
  // mint/routing.h — both sides must place keys identically.
  return GroupOfKey(key, options_.num_groups);
}

std::vector<int> MintCluster::ReplicasOfLocked(const Slice& key) const {
  return RendezvousReplicas(key, groups_[GroupOfLocked(key)],
                            options_.replicas);
}

Status MintCluster::Put(const Slice& key, uint64_t version, const Slice& value,
                        bool dedup) {
  ReaderLock cluster_guard(&cluster_mu_);
  Status first_error;
  int applied = 0;
  for (int id : ReplicasOfLocked(key)) {
    StorageNode* node = nodes_[id].get();
    ReaderLock guard(node->lifecycle_mu());
    if (!node->up()) continue;  // Will be healed by recovery + re-replication.
    Status s = node->db()->Put(key, version, value, dedup);
    if (!s.ok() && first_error.ok()) first_error = s;
    if (s.ok()) ++applied;
  }
  if (applied == 0) {
    if (!first_error.ok()) return first_error;
    return Status::Unavailable("group " + std::to_string(GroupOfLocked(key)) +
                               " has no live replica for the key");
  }
  return Status::OK();
}

Status MintCluster::Del(const Slice& key, uint64_t version) {
  ReaderLock cluster_guard(&cluster_mu_);
  const int group = GroupOfLocked(key);
  bool any = false;
  bool any_live = false;
  Status first_error;
  for (int id : GroupNodesLocked(group)) {
    StorageNode* node = nodes_[id].get();
    ReaderLock guard(node->lifecycle_mu());
    if (!node->up()) continue;
    any_live = true;
    Status s = node->db()->Del(key, version);
    if (s.ok()) {
      any = true;
    } else if (!s.IsNotFound() && first_error.ok()) {
      first_error = s;  // A replica refused the delete (e.g. degraded).
    }
  }
  if (any) return Status::OK();
  if (!any_live) {
    // Distinguish "the pair is gone" from "nobody could answer": a caller
    // that treats NotFound as success must not do so while the whole group
    // is down.
    return Status::Unavailable("group " + std::to_string(group) +
                               " is entirely down; delete not applied");
  }
  if (!first_error.ok()) return first_error;
  return Status::NotFound("no replica held the pair");
}

Status MintCluster::WriteMany(const std::vector<BatchOp>& ops,
                              std::vector<Status>* statuses) {
  ReaderLock cluster_guard(&cluster_mu_);
  statuses->assign(ops.size(), Status::OK());
  if (ops.empty()) return Status::OK();

  // Bucket ops by target node, preserving op order inside each bucket.
  // Puts go to the key's rendezvous replicas, Dels to the whole group
  // (matching Put/Del above).
  struct NodePlan {
    qindb::WriteBatch batch;
    std::vector<size_t> op_index;  // Batch position -> ops index.
  };
  std::map<int, NodePlan> plans;
  for (size_t i = 0; i < ops.size(); ++i) {
    const BatchOp& op = ops[i];
    const std::vector<int> targets = op.is_del
                                         ? GroupNodesLocked(GroupOfLocked(op.key))
                                         : ReplicasOfLocked(op.key);
    for (int id : targets) {
      NodePlan& plan = plans[id];
      if (op.is_del) {
        plan.batch.Del(op.key, op.version);
      } else {
        plan.batch.Put(op.key, op.version, op.value, op.dedup);
      }
      plan.op_index.push_back(i);
    }
  }

  struct Agg {
    int applied = 0;
    int live_targets = 0;
    Status first_error;
  };
  std::vector<Agg> agg(ops.size());
  for (auto& [id, plan] : plans) {
    StorageNode* node = nodes_[id].get();
    ReaderLock guard(node->lifecycle_mu());
    if (!node->up()) continue;  // Healed by recovery + re-replication.
    DL_DISCARD_STATUS("first failing per-op status; the per-op results are "
                      "aggregated below",
                      node->db()->Write(plan.batch));
    const std::vector<Status>& results = plan.batch.statuses();
    for (size_t bi = 0; bi < results.size(); ++bi) {
      Agg& a = agg[plan.op_index[bi]];
      ++a.live_targets;
      const Status& s = results[bi];
      if (s.ok()) {
        ++a.applied;
      } else if (ops[plan.op_index[bi]].is_del) {
        // NotFound from one replica is normal for deletes; keep the first
        // real refusal (e.g. a degraded engine).
        if (!s.IsNotFound() && a.first_error.ok()) a.first_error = s;
      } else if (a.first_error.ok()) {
        a.first_error = s;
      }
    }
  }

  // Per-op aggregation, mirroring Put/Del exactly.
  for (size_t i = 0; i < ops.size(); ++i) {
    const Agg& a = agg[i];
    if (a.applied > 0) continue;
    const int group = GroupOfLocked(ops[i].key);
    if (ops[i].is_del) {
      if (a.live_targets == 0) {
        (*statuses)[i] =
            Status::Unavailable("group " + std::to_string(group) +
                                " is entirely down; delete not applied");
      } else if (!a.first_error.ok()) {
        (*statuses)[i] = a.first_error;
      } else {
        (*statuses)[i] = Status::NotFound("no replica held the pair");
      }
    } else if (!a.first_error.ok()) {
      (*statuses)[i] = a.first_error;
    } else {
      (*statuses)[i] =
          Status::Unavailable("group " + std::to_string(group) +
                              " has no live replica for the key");
    }
  }
  for (const Status& s : *statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status MintCluster::DropVersion(uint64_t version) {
  ReaderLock cluster_guard(&cluster_mu_);
  for (auto& node : nodes_) {
    ReaderLock guard(node->lifecycle_mu());
    if (!node->up()) continue;
    Result<uint64_t> n = node->db()->DropVersion(version);
    if (!n.ok()) return n.status();
  }
  return Status::OK();
}

Status MintCluster::BulkBegin(uint64_t version) {
  ReaderLock cluster_guard(&cluster_mu_);
  bool any_live = false;
  for (auto& node : nodes_) {
    ReaderLock guard(node->lifecycle_mu());
    if (!node->up()) continue;
    any_live = true;
    if (Status s = node->db()->IngestBegin(version); !s.ok()) return s;
  }
  if (!any_live) {
    return Status::Unavailable("no live node to open the bulk session");
  }
  return Status::OK();
}

Status MintCluster::BulkIngest(uint64_t version, const qindb::IngestOp* ops,
                               size_t count) {
  if (count == 0) return Status::OK();
  ReaderLock cluster_guard(&cluster_mu_);
  // Bucket per node, preserving run order inside each bucket: puts go to
  // the key's rendezvous replicas, tombstones to the whole group (matching
  // Put/Del above).
  std::map<int, std::vector<qindb::IngestOp>> routed;
  for (size_t i = 0; i < count; ++i) {
    const qindb::IngestOp& op = ops[i];
    const std::vector<int> targets =
        op.tombstone ? GroupNodesLocked(GroupOfLocked(op.key))
                     : ReplicasOfLocked(op.key);
    for (int id : targets) routed[id].push_back(op);
  }
  size_t applied_nodes = 0;
  Status first_error;
  for (auto& [id, node_ops] : routed) {
    StorageNode* node = nodes_[id].get();
    ReaderLock guard(node->lifecycle_mu());
    if (!node->up()) continue;  // Healed by recovery + re-replication.
    Status s =
        node->db()->IngestRun(version, node_ops.data(), node_ops.size());
    if (s.ok()) {
      ++applied_nodes;
    } else if (!s.IsInvalidArgument() && first_error.ok()) {
      // InvalidArgument means the node has no session for this version —
      // it recovered mid-load and missed the begin; it heals later like any
      // node that missed a write. Anything else fails the run.
      first_error = s;
    }
  }
  if (!first_error.ok()) return first_error;
  if (applied_nodes == 0) {
    return Status::Unavailable("no live replica staged the bulk run");
  }
  return Status::OK();
}

Status MintCluster::BulkCommit(uint64_t version) {
  ReaderLock cluster_guard(&cluster_mu_);
  bool any = false;
  Status first_error;
  for (auto& node : nodes_) {
    ReaderLock guard(node->lifecycle_mu());
    if (!node->up()) continue;
    Status s = node->db()->IngestCommit(version);
    if (s.ok()) {
      any = true;
    } else if (!s.IsInvalidArgument() && first_error.ok()) {
      first_error = s;
    }
  }
  if (!first_error.ok()) return first_error;
  if (!any) return Status::Unavailable("no live node held the bulk session");
  return Status::OK();
}

Status MintCluster::BulkAbort(uint64_t version) {
  ReaderLock cluster_guard(&cluster_mu_);
  Status first_error;
  for (auto& node : nodes_) {
    ReaderLock guard(node->lifecycle_mu());
    if (!node->up()) continue;
    Status s = node->db()->IngestAbort(version);
    if (!s.ok() && !s.IsInvalidArgument() && first_error.ok()) {
      first_error = s;
    }
  }
  return first_error;
}

template <typename Fn>
Result<MintCluster::ReadResult> MintCluster::ParallelRead(const Slice& key,
                                                          const Fn& fn) {
  // Requests go to the group's nodes in parallel — one thread per live
  // replica — and the caller sees the fastest live replica's answer (each
  // node has its own clock, so the per-node elapsed device time is the
  // replica's service latency). Every thread is joined before selection:
  // no replica thread can outlive the cluster's node state, and picking
  // the minimum simulated latency keeps the winner deterministic no matter
  // how the OS schedules the threads.
  const int group = GroupOfLocked(key);
  const std::vector<int>& members = GroupNodesLocked(group);
  std::vector<int> live;
  live.reserve(members.size());
  for (int id : members) {
    if (nodes_[id]->up()) live.push_back(id);
  }
  if (live.empty()) {
    return Status::Unavailable("group " + std::to_string(group) +
                               " is entirely down; no replica to read");
  }

  struct Attempt {
    bool ok = false;
    std::string value;
    Status error = Status::OK();
    double latency_micros = 0;
  };
  std::vector<Attempt> attempts(live.size());

  auto run_one = [&](size_t slot) {
    StorageNode* node = nodes_[live[slot]].get();
    Attempt& attempt = attempts[slot];
#if DIRECTLOAD_FAILPOINTS_COMPILED
    if (fp_mint_replica_read->armed()) {
      Status injected = fp_mint_replica_read->MaybeFail();
      if (!injected.ok()) {
        // The replica "answered" with a failure before touching the engine;
        // selection below falls through to the surviving replicas.
        attempt.error = std::move(injected);
        attempt.latency_micros = options_.read_rtt_micros;
        return;
      }
    }
#endif
    ReaderLock guard(node->lifecycle_mu());
    if (!node->up()) {
      // Crashed between the live-replica scan and this thread running.
      attempt.error = Status::Unavailable("replica failed mid-read");
      attempt.latency_micros = options_.read_rtt_micros;
      return;
    }
    const uint64_t before = node->clock()->NowMicros();
    Result<std::string> got = fn(node->db());
    attempt.latency_micros =
        static_cast<double>(node->clock()->NowMicros() - before) +
        options_.read_rtt_micros;
    if (got.ok()) {
      attempt.ok = true;
      attempt.value = std::move(got).value();
    } else {
      attempt.error = got.status();
    }
  };

  if (options_.parallel_reads && live.size() > 1) {
    std::vector<std::thread> threads;
    threads.reserve(live.size());
    for (size_t i = 0; i < live.size(); ++i) {
      threads.emplace_back(run_one, i);  // Disjoint slots: no locking needed.
    }
    for (std::thread& t : threads) t.join();
  } else {
    for (size_t i = 0; i < live.size(); ++i) run_one(i);
  }

  // Feed the estimators before applying the timeout: a slow replica's
  // samples must land in its window even when the timeout rejects them, or
  // the estimate would never learn that the replica is slow.
  for (size_t i = 0; i < live.size(); ++i) {
    if (attempts[i].ok) {
      nodes_[live[i]]->read_latency()->Record(attempts[i].latency_micros);
    }
  }

  // The effective timeout: fixed when configured, otherwise derived from
  // the fastest live replica's rolling p95 (<= 0 disables it, including
  // while the estimators are still cold).
  double timeout_micros = options_.read_timeout_micros;
  if (timeout_micros == 0 && options_.auto_read_timeout) {
    double best_p95 = -1;
    for (int id : live) {
      const double p95 = nodes_[id]->read_latency()->Quantile(
          0.95, static_cast<size_t>(options_.read_timeout_min_samples));
      if (p95 >= 0 && (best_p95 < 0 || p95 < best_p95)) best_p95 = p95;
    }
    if (best_p95 >= 0) {
      timeout_micros = std::max(options_.read_timeout_floor_micros,
                                best_p95 * options_.read_timeout_multiplier);
    }
  }

  ReadResult best;
  bool found = false;
  Status last_error = Status::Unavailable(
      "group " + std::to_string(group) + " produced no usable replica read");
  for (size_t i = 0; i < live.size(); ++i) {
    Attempt& attempt = attempts[i];
    if (!attempt.ok) {
      last_error = attempt.error;
      continue;
    }
    if (timeout_micros > 0 && attempt.latency_micros > timeout_micros) {
      last_error = Status::Unavailable("replica exceeded read timeout");
      continue;
    }
    if (!found || attempt.latency_micros < best.latency_micros) {
      best.value = std::move(attempt.value);
      best.latency_micros = attempt.latency_micros;
      best.served_by = live[i];
      found = true;
    }
  }
  if (!found) return last_error;
  return best;
}

Result<MintCluster::ReadResult> MintCluster::Get(const Slice& key,
                                                 uint64_t version) {
  ReaderLock cluster_guard(&cluster_mu_);
  return ParallelRead(key, [&](qindb::QinDb* db) {
    return db->Get(key, version);
  });
}

Result<MintCluster::ReadResult> MintCluster::GetLatest(const Slice& key) {
  ReaderLock cluster_guard(&cluster_mu_);
  return ParallelRead(key, [&](qindb::QinDb* db) {
    return db->GetLatest(key);
  });
}

Status MintCluster::FailNode(int node_id) {
  ReaderLock cluster_guard(&cluster_mu_);
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("no such node");
  }
  nodes_[node_id]->Fail();
  return Status::OK();
}

Result<double> MintCluster::RecoverNode(int node_id) {
  ReaderLock cluster_guard(&cluster_mu_);
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("no such node");
  }
  return nodes_[node_id]->Recover();
}

Result<uint64_t> MintCluster::RepairNode(int node_id) {
  ReaderLock cluster_guard(&cluster_mu_);
  if (node_id < 0 || node_id >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("no such node");
  }
  StorageNode* target = nodes_[node_id].get();
  if (!target->up()) return Status::Unavailable("node is down");

  // Find the node's group.
  int group = -1;
  for (int g = 0; g < options_.num_groups; ++g) {
    for (int id : groups_[g]) {
      if (id == node_id) group = g;
    }
  }
  if (group < 0) return Status::Internal("node not in any group");

  uint64_t copied = 0;
  for (int peer_id : groups_[group]) {
    if (peer_id == node_id) continue;
    StorageNode* peer = nodes_[peer_id].get();

    // Phase 1: under the peer's lifecycle lock, walk its index and resolve
    // every pair this node should replicate. The batch is materialized
    // before touching the target so the two node locks are never nested
    // (they share rank kMintNode — nesting them is a rank violation and a
    // real deadlock lurking behind a concurrent Fail()).
    struct Pending {
      std::string key;
      uint64_t version;
      std::string value;
    };
    std::vector<Pending> batch;
    {
      ReaderLock peer_guard(peer->lifecycle_mu());
      if (!peer->up()) continue;
      // Engine keys are hash-partitioned across shards; repair must see all
      // of them, so walk every shard's index in turn.
      for (uint32_t shard = 0; shard < peer->db()->num_shards(); ++shard) {
        for (MemIndex::Iterator it =
                 peer->db()->memtable(shard).NewIterator();
             it.Valid(); it.Next()) {
          const MemEntry* entry = it.entry();
          if (entry->deleted) continue;
          const Slice key = entry->user_key();
          const std::vector<int> replicas = ReplicasOfLocked(key);
          if (std::find(replicas.begin(), replicas.end(), node_id) ==
              replicas.end()) {
            continue;  // Not this node's responsibility.
          }
          // Copy the *resolved* value: re-deduplicating on the target would
          // require its traceback chain to be complete, which repair cannot
          // assume (the peer may hold the referenced record only as a GC
          // referent). Materializing trades space for integrity.
          Result<std::string> value = peer->db()->Get(key, entry->version);
          if (!value.ok()) continue;  // Peer cannot resolve it; another may.
          batch.push_back(Pending{key.ToString(), entry->version,
                                  std::move(value).value()});
        }
      }
    }

    // Phase 2: apply the batch under the target's lock, skipping pairs the
    // target acquired in the meantime.
    ReaderLock target_guard(target->lifecycle_mu());
    if (!target->up()) {
      return Status::Unavailable("node failed during repair");
    }
    for (Pending& pending : batch) {
      if (target->db()->HasEntry(pending.key, pending.version)) {
        continue;  // Already present.
      }
      Status s =
          target->db()->Put(pending.key, pending.version, pending.value);
      if (!s.ok()) return s;
      ++copied;
    }
  }
  return copied;
}

Result<int> MintCluster::AddNode(int group) {
  // Exclusive: waits out every in-flight operation's shared hold before the
  // node table grows — the documented quiescence requirement, now enforced
  // by the lock instead of by hoping callers read the comment.
  WriterLock cluster_guard(&cluster_mu_);
  if (group < 0 || group >= options_.num_groups) {
    return Status::InvalidArgument("no such group");
  }
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::make_unique<StorageNode>(id, options_));
  Status s = nodes_.back()->Start();
  if (!s.ok()) return s;
  groups_[group].push_back(id);
  return id;
}

int MintCluster::num_nodes() const {
  ReaderLock cluster_guard(&cluster_mu_);
  return static_cast<int>(nodes_.size());
}

StorageNode* MintCluster::node(int id) {
  ReaderLock cluster_guard(&cluster_mu_);
  return nodes_[id].get();
}

uint64_t MintCluster::TotalUserBytesIngested() const {
  ReaderLock cluster_guard(&cluster_mu_);
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    ReaderLock guard(node->lifecycle_mu());
    if (node->up()) {
      total += node->db()->stats().user_bytes_ingested;
    }
  }
  return total;
}

uint64_t MintCluster::TotalDiskBytes() const {
  ReaderLock cluster_guard(&cluster_mu_);
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->env()->TotalFileBytes();
  }
  return total;
}

}  // namespace directload::mint
