#ifndef DIRECTLOAD_MINT_ROUTING_H_
#define DIRECTLOAD_MINT_ROUTING_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/slice.h"

namespace directload::mint {

/// Key placement, shared verbatim by the in-process MintCluster and the
/// distributed MintCoordinator: both sides of the process split must agree
/// on where a pair lives, or repair would "heal" pairs onto nodes that are
/// not responsible for them.

/// H(k) maps to a *group*, never directly to a node (Section 2.3:
/// scalability without redistribution).
inline int GroupOfKey(const Slice& key, int num_groups) {
  return static_cast<int>(Hash64(key) % static_cast<uint64_t>(num_groups));
}

/// Rendezvous hashing within the group: rank `members` (node ids) by
/// hash(key, node) and take the top `replicas`. Stable under membership
/// growth for most keys.
inline std::vector<int> RendezvousReplicas(const Slice& key,
                                           const std::vector<int>& members,
                                           int replicas) {
  std::vector<std::pair<uint64_t, int>> ranked;
  ranked.reserve(members.size());
  for (int id : members) {
    ranked.emplace_back(Hash64(key, /*seed=*/0x5eed0000 + id), id);
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  std::vector<int> out;
  const int want =
      std::min<int>(replicas, static_cast<int>(ranked.size()));
  out.reserve(static_cast<size_t>(want));
  for (int i = 0; i < want; ++i) out.push_back(ranked[i].second);
  return out;
}

}  // namespace directload::mint

#endif  // DIRECTLOAD_MINT_ROUTING_H_
