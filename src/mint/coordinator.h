#ifndef DIRECTLOAD_MINT_COORDINATOR_H_
#define DIRECTLOAD_MINT_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/latency_estimator.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "rpc/client.h"

namespace directload::mint {

/// Address of one storage-node KvServer process.
struct NodeEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Failure-detector verdict for a node. `kSuspect` deprioritizes the node
/// for reads (it is tried last among the candidates); `kDown` additionally
/// routes writes around it — the pairs it misses are healed by RepairNode.
enum class NodeHealth { kUp, kSuspect, kDown };

struct CoordinatorOptions {
  /// Copies per pair, chosen by rendezvous hashing within the key's group.
  int replicas = 3;

  /// Replica acks required before a write is reported durable to the
  /// caller. 0 derives a majority of the key's replica set (2 of 3) — the
  /// default that makes "SIGKILL one replica" lose zero acked writes, since
  /// every ack then has a surviving copy.
  int write_quorum = 0;

  /// Per-replica send attempts for retryable failures (kBusy and transport
  /// errors), on top of the RPC client's own reconnect handling. The delay
  /// before attempt k doubles from write_backoff_initial_ms, jittered to
  /// [base/2, base] like the client's reconnect backoff.
  int write_attempts = 2;
  int write_backoff_initial_ms = 5;

  // -- Hedged reads ("Tail-Tolerant Distributed Search") -------------------
  /// Send the read to the preferred replica; if it has not answered within
  /// the hedge delay, fire a backup attempt at the next candidate and take
  /// whichever answers first. The loser is abandoned (its thread drains on
  /// its own deadline) — the DLP1 protocol has no cancel, and the pooled
  /// client is only reused after its call fully completes, so an abandoned
  /// response can never bleed into a later request.
  bool hedged_reads = true;
  /// Hedge after hedge_multiplier × the primary's rolling
  /// hedge_quantile latency (the p95-derived delay), never below the
  /// floor; until the primary has hedge_min_samples samples, after
  /// hedge_default_delay_ms.
  double hedge_quantile = 0.95;
  double hedge_multiplier = 1.0;
  double hedge_floor_ms = 1.0;
  double hedge_default_delay_ms = 20.0;
  int hedge_min_samples = 16;

  // -- Failure detector ----------------------------------------------------
  /// The detector thread probes every node each interval with kHeartbeat on
  /// a dedicated no-retry client; data-path transport failures count as
  /// misses too, so a dead node is usually detected by the first write that
  /// hits it rather than by the next probe.
  int heartbeat_interval_ms = 50;
  int heartbeat_timeout_ms = 250;
  int suspect_after_misses = 2;
  int down_after_misses = 4;

  /// Pairs requested per kRepairScan page.
  uint32_t repair_page_pairs = 512;

  /// Data-path client knobs. Defaults keep per-op worst cases short: a
  /// coordinator facing a dead replica should fail the replica fast and
  /// let quorum + the detector absorb it, not burn the caller's patience.
  rpc::RpcClient::Options rpc = [] {
    rpc::RpcClient::Options o;
    o.connect_timeout_ms = 500;
    o.request_timeout_ms = 2000;
    o.max_reconnects = 1;
    o.retry_budget_ms = 1000;
    return o;
  }();

  uint64_t seed = 1;
};

/// The coordinator half of distributed Mint: speaks DLP1 to a fleet of
/// storage-node KvServer processes, replicating writes to each key's
/// rendezvous replicas with quorum accounting, serving hedged reads, running
/// the heartbeat failure detector, and healing replicas over RPC. Placement
/// (group dispatch + rendezvous ranking) is shared with the in-process
/// MintCluster via mint/routing.h, so a coordinator and a cluster given the
/// same topology agree on where every pair lives.
///
/// Thread-safe. Lock order: mu_ (rank kMintCoord) guards the node table
/// (health, miss counters, client pools) and is only ever taken standalone;
/// each hedged read owns a HedgeState lock (rank kMintHedge), also a leaf.
/// Attempt threads are detached — Stop() gates on the active-attempt count,
/// so no thread outlives the coordinator.
class MintCoordinator {
 public:
  /// `groups[g]` lists group g's node endpoints; node ids are assigned
  /// contiguously in iteration order (group 0's nodes first).
  MintCoordinator(std::vector<std::vector<NodeEndpoint>> groups,
                  CoordinatorOptions options);
  ~MintCoordinator();

  MintCoordinator(const MintCoordinator&) = delete;
  MintCoordinator& operator=(const MintCoordinator&) = delete;

  /// Starts the failure-detector thread. Does not require the nodes to be
  /// reachable yet — unreachable nodes simply accumulate misses.
  Status Start();

  /// Stops the detector and waits out in-flight read attempts. Idempotent.
  void Stop();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_groups() const { return static_cast<int>(groups_.size()); }
  const NodeEndpoint& endpoint(int node_id) const {
    return nodes_[node_id]->endpoint;
  }

  int GroupOf(const Slice& key) const;
  std::vector<int> ReplicasOf(const Slice& key) const;

  struct WriteReport {
    int acks = 0;      // Replicas that applied the write.
    int targets = 0;   // Replica-set size.
    int quorum = 0;    // Acks required.
    int attempts = 0;  // Total sends, retries included.
  };

  /// Replicates the put to the key's rendezvous replicas, one ack per
  /// replica, and succeeds once `write_quorum` acks are in. Down nodes are
  /// skipped (routed around); replicas that miss the write are healed by
  /// RepairNode.
  Status Put(const Slice& key, uint64_t version, const Slice& value,
             bool dedup = false, WriteReport* report = nullptr);

  /// Deletes fan out to the key's whole group (mirroring MintCluster::Del):
  /// any replica acking suffices, NotFound aggregates across replicas.
  Status Del(const Slice& key, uint64_t version);

  struct ReadResult {
    std::string value;
    int served_by = -1;     // Node id that answered.
    bool hedged = false;    // A backup attempt was launched.
    double latency_ms = 0;  // Wall time of the whole read.
  };

  Result<ReadResult> Get(const Slice& key, uint64_t version);
  Result<ReadResult> GetLatest(const Slice& key);

  /// Re-replication over RPC: inventories the target (keys-only scan), then
  /// pages every live peer's repair scan, filters each page down to pairs
  /// the target is responsible for but lacks, and bulk-applies them via
  /// kWriteBatch. Returns the number of pairs copied. The target serves
  /// (and takes new writes) throughout.
  Result<uint64_t> RepairNode(int node_id);

  /// Verifies the replication factor for `node_id`: counts pairs held by
  /// live peers that rendezvous-route to the node but are missing from it.
  /// 0 means the node holds its full share.
  Result<uint64_t> VerifyNodeComplete(int node_id);

  NodeHealth health(int node_id) const EXCLUDES(mu_);

  struct Counters {
    uint64_t writes_acked = 0;
    uint64_t write_quorum_failures = 0;
    uint64_t replica_write_failures = 0;
    uint64_t hedged_reads = 0;   // Backup attempts launched by the timer.
    uint64_t hedge_wins = 0;     // Reads won by a non-primary attempt.
    uint64_t read_failovers = 0; // Attempts launched by a failed attempt.
    uint64_t heartbeat_misses = 0;
    uint64_t repair_pairs_copied = 0;
  };
  Counters counters() const;

  /// The hedge delay the next read of this node's group would use; exposed
  /// for tests and the load generator's reporting.
  double HedgeDelayMsFor(int node_id);

 private:
  struct Node {
    NodeEndpoint endpoint;
    int group = -1;
    NodeHealth health = NodeHealth::kUp;  // Guarded by mu_ (see below).
    int misses = 0;                       // Guarded by mu_.
    /// Idle data-path clients. A client is popped for the duration of one
    /// call and pushed back only if the transport stayed healthy.
    std::vector<std::unique_ptr<rpc::RpcClient>> pool;  // Guarded by mu_.
    /// The detector's dedicated probe client; detector thread only.
    std::unique_ptr<rpc::RpcClient> probe;
    /// Rolling successful-read latencies (wall ms); internally locked.
    LatencyEstimator latency_ms;
  };

  struct HedgeState;

  Result<ReadResult> ReadInternal(const Slice& key, uint64_t version,
                                  bool latest);
  /// Spawns one detached read attempt against `node_id`.
  void LaunchAttempt(int node_id, std::string key, uint64_t version,
                     bool latest, std::shared_ptr<HedgeState> state, int slot)
      EXCLUDES(mu_);

  std::unique_ptr<rpc::RpcClient> AcquireClient(int node_id) EXCLUDES(mu_);
  void ReleaseClient(int node_id, std::unique_ptr<rpc::RpcClient> client,
                     bool reusable) EXCLUDES(mu_);

  /// Feeds the failure detector from probe results and data-path outcomes.
  void ReportNodeOutcome(int node_id, bool healthy) EXCLUDES(mu_);

  /// Read candidates for a group: up nodes first (fastest rolling p95
  /// first), then suspects, then down nodes as a last resort — a down node
  /// may have restarted before the detector noticed.
  std::vector<int> ReadOrder(int group) const EXCLUDES(mu_);

  int JitteredBackoffMs(int attempt) EXCLUDES(mu_);

  void DetectorLoop();

  /// Keys-only inventory of everything `node_id` currently holds, as
  /// key-bytes + fixed64-version tokens (the fixed-width suffix makes the
  /// encoding unambiguous for arbitrary key bytes).
  Result<std::unordered_set<std::string>> InventoryNode(int node_id);

  const CoordinatorOptions options_;
  // The vector itself is immutable after the ctor (Node pointers stay
  // stable); each Node's mutable fields are guarded by mu_ individually.
  std::vector<std::unique_ptr<Node>>
      nodes_;  // dl-lint: ignore(guarded-by-coverage)
  std::vector<std::vector<int>> groups_;      // Immutable after ctor.

  mutable Mutex mu_{LockRank::kMintCoord, "MintCoordinator::mu_"};
  CondVar cv_{&mu_};  // Detector sleep + Stop()'s attempt drain.
  bool stopping_ GUARDED_BY(mu_) = false;
  int active_attempts_ GUARDED_BY(mu_) = 0;
  Random backoff_rng_ GUARDED_BY(mu_);
  std::thread detector_;
  bool started_ = false;

  std::atomic<uint64_t> writes_acked_{0};
  std::atomic<uint64_t> write_quorum_failures_{0};
  std::atomic<uint64_t> replica_write_failures_{0};
  std::atomic<uint64_t> hedged_reads_{0};
  std::atomic<uint64_t> hedge_wins_{0};
  std::atomic<uint64_t> read_failovers_{0};
  std::atomic<uint64_t> heartbeat_misses_{0};
  std::atomic<uint64_t> repair_pairs_copied_{0};
};

}  // namespace directload::mint

#endif  // DIRECTLOAD_MINT_COORDINATOR_H_
