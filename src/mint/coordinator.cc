#include "mint/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/coding.h"
#include "common/failpoint.h"
#include "mint/routing.h"

namespace directload::mint {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Fires once per replica inside the write fan-out, before the RPC is sent —
// the chaos harness uses it to starve individual replicas of writes and
// then watch quorum accounting and repair make up the difference.
DIRECTLOAD_FAILPOINT_DEFINE(fp_coord_replica_write, "coord_replica_write");

// Fires once per read attempt (primary, hedge, and failover alike) before
// its RPC — injected failures exercise the failover ladder without any
// server-side cooperation.
DIRECTLOAD_FAILPOINT_DEFINE(fp_coord_read_attempt, "coord_read_attempt");

/// A failure of the transport (or the peer's availability), as opposed to
/// the server answering the operation with an error. Only these count as
/// failure-detector misses: a NotFound is a healthy node disagreeing about
/// data, not a dead one.
bool IsTransportError(const Status& s) {
  return s.IsUnavailable() || s.IsIOError() || s.IsTimedOut();
}

double ElapsedMs(SteadyClock::time_point since) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - since)
      .count();
}

std::string InventoryToken(const Slice& key, uint64_t version) {
  std::string token(key.data(), key.size());
  PutFixed64(&token, version);
  return token;
}

}  // namespace

/// Completion state shared between a hedged read's issuing thread and its
/// detached attempt threads. First successful attempt wins; the issuing
/// thread extracts the result, and losers just bump `finished` on the way
/// out. The lock is a leaf (rank kMintHedge) taken by attempt threads only
/// after every kMintCoord acquisition has been released.
struct MintCoordinator::HedgeState {
  Mutex mu{LockRank::kMintHedge, "HedgeState::mu"};
  CondVar cv{&mu};
  bool done GUARDED_BY(mu) = false;
  int launched GUARDED_BY(mu) = 0;
  int finished GUARDED_BY(mu) = 0;
  std::string value GUARDED_BY(mu);
  int served_by GUARDED_BY(mu) = -1;
  int winner_slot GUARDED_BY(mu) = -1;
  Status last_error GUARDED_BY(mu) =
      Status::Unavailable("no read attempt made");
};

MintCoordinator::MintCoordinator(std::vector<std::vector<NodeEndpoint>> groups,
                                 CoordinatorOptions options)
    : options_(options), backoff_rng_(options.seed) {
  // Probe clients are deliberately impatient: no reconnects, short
  // deadlines — a probe that needs a retry *is* a miss.
  rpc::RpcClient::Options probe_opts = options_.rpc;
  probe_opts.connect_timeout_ms = options_.heartbeat_timeout_ms;
  probe_opts.request_timeout_ms = options_.heartbeat_timeout_ms;
  probe_opts.max_reconnects = 0;
  probe_opts.retry_budget_ms = options_.heartbeat_timeout_ms;

  groups_.resize(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    for (NodeEndpoint& endpoint : groups[g]) {
      const int id = static_cast<int>(nodes_.size());
      auto node = std::make_unique<Node>();
      node->endpoint = endpoint;
      node->group = static_cast<int>(g);
      node->probe = std::make_unique<rpc::RpcClient>(
          endpoint.host, endpoint.port, probe_opts);
      nodes_.push_back(std::move(node));
      groups_[g].push_back(id);
    }
  }
}

MintCoordinator::~MintCoordinator() { Stop(); }

Status MintCoordinator::Start() {
  if (started_) return Status::InvalidArgument("coordinator already started");
  started_ = true;
  detector_ = std::thread(&MintCoordinator::DetectorLoop, this);
  return Status::OK();
}

void MintCoordinator::Stop() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    cv_.SignalAll();
  }
  if (detector_.joinable()) detector_.join();
  // Wait out detached read attempts: they hold `this` and must not outlive
  // the coordinator.
  MutexLock lock(&mu_);
  while (active_attempts_ > 0) cv_.Wait();
}

int MintCoordinator::GroupOf(const Slice& key) const {
  return GroupOfKey(key, num_groups());
}

std::vector<int> MintCoordinator::ReplicasOf(const Slice& key) const {
  return RendezvousReplicas(key, groups_[GroupOf(key)], options_.replicas);
}

NodeHealth MintCoordinator::health(int node_id) const {
  MutexLock lock(&mu_);
  return nodes_[node_id]->health;
}

MintCoordinator::Counters MintCoordinator::counters() const {
  Counters c;
  c.writes_acked = writes_acked_.load(std::memory_order_relaxed);
  c.write_quorum_failures =
      write_quorum_failures_.load(std::memory_order_relaxed);
  c.replica_write_failures =
      replica_write_failures_.load(std::memory_order_relaxed);
  c.hedged_reads = hedged_reads_.load(std::memory_order_relaxed);
  c.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  c.read_failovers = read_failovers_.load(std::memory_order_relaxed);
  c.heartbeat_misses = heartbeat_misses_.load(std::memory_order_relaxed);
  c.repair_pairs_copied =
      repair_pairs_copied_.load(std::memory_order_relaxed);
  return c;
}

double MintCoordinator::HedgeDelayMsFor(int node_id) {
  const double q = nodes_[node_id]->latency_ms.Quantile(
      options_.hedge_quantile,
      static_cast<size_t>(options_.hedge_min_samples), /*fallback=*/-1.0);
  if (q < 0) return options_.hedge_default_delay_ms;
  return std::max(options_.hedge_floor_ms, q * options_.hedge_multiplier);
}

std::unique_ptr<rpc::RpcClient> MintCoordinator::AcquireClient(int node_id) {
  {
    MutexLock lock(&mu_);
    auto& pool = nodes_[node_id]->pool;
    if (!pool.empty()) {
      std::unique_ptr<rpc::RpcClient> client = std::move(pool.back());
      pool.pop_back();
      return client;
    }
  }
  const NodeEndpoint& endpoint = nodes_[node_id]->endpoint;
  return std::make_unique<rpc::RpcClient>(endpoint.host, endpoint.port,
                                          options_.rpc);
}

void MintCoordinator::ReleaseClient(int node_id,
                                    std::unique_ptr<rpc::RpcClient> client,
                                    bool reusable) {
  // A client whose transport failed is dropped, not pooled: its stream may
  // hold half a frame, and reconnecting is the next caller's job anyway.
  static constexpr size_t kMaxPooledPerNode = 8;
  if (!reusable) return;  // unique_ptr dtor closes the socket.
  MutexLock lock(&mu_);
  auto& pool = nodes_[node_id]->pool;
  if (pool.size() < kMaxPooledPerNode) pool.push_back(std::move(client));
}

void MintCoordinator::ReportNodeOutcome(int node_id, bool healthy) {
  MutexLock lock(&mu_);
  Node* node = nodes_[node_id].get();
  if (healthy) {
    node->misses = 0;
    node->health = NodeHealth::kUp;
    return;
  }
  ++node->misses;
  if (node->misses >= options_.down_after_misses) {
    node->health = NodeHealth::kDown;
  } else if (node->misses >= options_.suspect_after_misses) {
    node->health = NodeHealth::kSuspect;
  }
}

std::vector<int> MintCoordinator::ReadOrder(int group) const {
  struct Candidate {
    int health_rank;
    double p95;
    int id;
  };
  std::vector<Candidate> candidates;
  {
    MutexLock lock(&mu_);
    for (int id : groups_[group]) {
      const Node& node = *nodes_[id];
      Candidate c;
      c.health_rank = static_cast<int>(node.health);
      // No samples yet sorts ahead of a known-slow replica: a fresh node
      // deserves the benefit of the doubt (and quickly earns a real
      // estimate either way).
      c.p95 = node.latency_ms.Quantile(0.95, 1, /*fallback=*/0.0);
      c.id = id;
      candidates.push_back(c);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.health_rank != b.health_rank) {
                return a.health_rank < b.health_rank;
              }
              if (a.p95 != b.p95) return a.p95 < b.p95;
              return a.id < b.id;
            });
  std::vector<int> order;
  order.reserve(candidates.size());
  for (const Candidate& c : candidates) order.push_back(c.id);
  return order;
}

int MintCoordinator::JitteredBackoffMs(int attempt) {
  int64_t base = options_.write_backoff_initial_ms;
  for (int i = 1; i < attempt && base < 200; ++i) base *= 2;
  base = std::min<int64_t>(base, 200);
  if (base <= 0) return 0;
  uint64_t jitter;
  {
    MutexLock lock(&mu_);
    jitter = backoff_rng_.Uniform(static_cast<uint64_t>(base / 2 + 1));
  }
  return static_cast<int>(base - base / 2 + static_cast<int64_t>(jitter));
}

// ---------------------------------------------------------------------------
// Writes
// ---------------------------------------------------------------------------

Status MintCoordinator::Put(const Slice& key, uint64_t version,
                            const Slice& value, bool dedup,
                            WriteReport* report) {
  const std::vector<int> targets = ReplicasOf(key);
  if (targets.empty()) {
    return Status::InvalidArgument("key maps to no replicas");
  }
  const int quorum =
      options_.write_quorum > 0
          ? std::min<int>(options_.write_quorum,
                          static_cast<int>(targets.size()))
          : static_cast<int>(targets.size()) / 2 + 1;

  int acks = 0;
  int attempts_total = 0;
  Status first_error;
  for (int id : targets) {
    if (health(id) == NodeHealth::kDown) {
      // Routed around; RepairNode re-replicates what it missed.
      ++replica_write_failures_;
      if (first_error.ok()) {
        first_error = Status::Unavailable("replica " + std::to_string(id) +
                                          " is down (routed around)");
      }
      continue;
    }
    Status s;
#if DIRECTLOAD_FAILPOINTS_COMPILED
    if (fp_coord_replica_write->armed()) {
      s = fp_coord_replica_write->MaybeFail();
    }
#endif
    if (s.ok()) {
      const int max_attempts = std::max(1, options_.write_attempts);
      for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        if (attempt > 1) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(JitteredBackoffMs(attempt - 1)));
        }
        std::unique_ptr<rpc::RpcClient> client = AcquireClient(id);
        s = client->Put(key, version, value, dedup);
        const bool transport_ok = !IsTransportError(s);
        ReleaseClient(id, std::move(client), transport_ok);
        ReportNodeOutcome(id, transport_ok);
        ++attempts_total;
        if (s.ok()) break;
        // Retry what waiting can fix: admission-control pushback and
        // transport failures. A definitive server answer is final.
        if (!s.IsBusy() && transport_ok) break;
        if (health(id) == NodeHealth::kDown) break;
      }
    }
    if (s.ok()) {
      ++acks;
    } else {
      ++replica_write_failures_;
      if (first_error.ok()) first_error = s;
    }
  }

  if (report != nullptr) {
    report->acks = acks;
    report->targets = static_cast<int>(targets.size());
    report->quorum = quorum;
    report->attempts = attempts_total;
  }
  if (acks >= quorum) {
    ++writes_acked_;
    return Status::OK();
  }
  ++write_quorum_failures_;
  std::string message = "write acked by " + std::to_string(acks) + " of " +
                        std::to_string(targets.size()) +
                        " replicas (quorum " + std::to_string(quorum) + ")";
  if (!first_error.ok()) {
    message += ": " + std::string(first_error.message());
  }
  return Status::Unavailable(message);
}

Status MintCoordinator::Del(const Slice& key, uint64_t version) {
  const int group = GroupOf(key);
  bool any = false;
  bool any_live = false;
  Status first_error;
  for (int id : groups_[group]) {
    if (health(id) == NodeHealth::kDown) continue;
    std::unique_ptr<rpc::RpcClient> client = AcquireClient(id);
    Status s = client->Del(key, version);
    const bool transport_ok = !IsTransportError(s);
    ReleaseClient(id, std::move(client), transport_ok);
    ReportNodeOutcome(id, transport_ok);
    if (transport_ok) any_live = true;
    if (s.ok()) {
      any = true;
    } else if (!s.IsNotFound() && transport_ok && first_error.ok()) {
      first_error = s;
    }
  }
  if (any) return Status::OK();
  if (!any_live) {
    return Status::Unavailable("group " + std::to_string(group) +
                               " is entirely unreachable; delete not applied");
  }
  if (!first_error.ok()) return first_error;
  return Status::NotFound("no replica held the pair");
}

// ---------------------------------------------------------------------------
// Hedged reads
// ---------------------------------------------------------------------------

void MintCoordinator::LaunchAttempt(int node_id, std::string key,
                                    uint64_t version, bool latest,
                                    std::shared_ptr<HedgeState> state,
                                    int slot) {
  bool stopping;
  {
    MutexLock lock(&mu_);
    stopping = stopping_;
    if (!stopping) ++active_attempts_;
  }
  if (stopping) {
    MutexLock slock(&state->mu);
    ++state->launched;
    ++state->finished;
    state->last_error = Status::Unavailable("coordinator is stopping");
    state->cv.SignalAll();
    return;
  }
  {
    MutexLock slock(&state->mu);
    ++state->launched;
  }
  std::thread([this, node_id, key = std::move(key), version, latest,
               state = std::move(state), slot] {
    const SteadyClock::time_point start = SteadyClock::now();
    bool ok = false;
    std::string value;
    Status error;
#if DIRECTLOAD_FAILPOINTS_COMPILED
    if (fp_coord_read_attempt->armed()) {
      error = fp_coord_read_attempt->MaybeFail();
    }
#endif
    if (error.ok()) {
      std::unique_ptr<rpc::RpcClient> client = AcquireClient(node_id);
      Result<std::string> got = latest ? client->GetLatest(key)
                                       : client->Get(key, version);
      const Status& status = got.ok() ? Status::OK() : got.status();
      const bool transport_ok = !IsTransportError(status);
      ReleaseClient(node_id, std::move(client), transport_ok);
      ReportNodeOutcome(node_id, transport_ok);
      if (got.ok()) {
        ok = true;
        value = std::move(got).value();
        nodes_[node_id]->latency_ms.Record(ElapsedMs(start));
      } else {
        error = got.status();
      }
    } else {
      // Injected attempt failure: feed the detector exactly as a real
      // transport failure would.
      if (IsTransportError(error)) ReportNodeOutcome(node_id, false);
    }
    {
      MutexLock slock(&state->mu);
      ++state->finished;
      if (ok && !state->done) {
        state->done = true;
        state->value = std::move(value);
        state->served_by = node_id;
        state->winner_slot = slot;
      } else if (!ok) {
        state->last_error = error;
      }
      state->cv.SignalAll();
    }
    MutexLock lock(&mu_);
    --active_attempts_;
    cv_.SignalAll();
  }).detach();
}

Result<MintCoordinator::ReadResult> MintCoordinator::ReadInternal(
    const Slice& key, uint64_t version, bool latest) {
  const SteadyClock::time_point start = SteadyClock::now();
  const int group = GroupOf(key);
  const std::vector<int> order = ReadOrder(group);
  if (order.empty()) {
    return Status::Unavailable("group " + std::to_string(group) +
                               " has no nodes");
  }
  {
    MutexLock lock(&mu_);
    if (stopping_) return Status::Unavailable("coordinator is stopping");
  }

  auto state = std::make_shared<HedgeState>();
  const double hedge_ms = HedgeDelayMsFor(order[0]);
  size_t next = 0;
  LaunchAttempt(order[next], key.ToString(), version, latest, state,
                static_cast<int>(next));
  ++next;

  bool hedged = false;
  while (true) {
    bool launch_hedge = false;
    bool exhausted = false;
    Status failure;
    {
      MutexLock slock(&state->mu);
      while (!state->done && state->finished < state->launched) {
        if (options_.hedged_reads && !hedged && next < order.size()) {
          if (!state->cv.WaitFor(std::chrono::duration_cast<
                                 std::chrono::nanoseconds>(
                  std::chrono::duration<double, std::milli>(hedge_ms)))) {
            // The primary went silent past its p95-derived budget: fire
            // the backup and race them.
            launch_hedge = true;
            break;
          }
        } else {
          state->cv.Wait();
        }
      }
      if (state->done) {
        ReadResult result;
        result.value = std::move(state->value);
        result.served_by = state->served_by;
        result.hedged = hedged;
        result.latency_ms = ElapsedMs(start);
        if (state->winner_slot > 0) ++hedge_wins_;
        return result;
      }
      if (!launch_hedge) {
        // Every launched attempt failed; fail over to the next candidate
        // immediately, or give up when the ladder is exhausted.
        if (next >= order.size()) {
          exhausted = true;
          failure = state->last_error;
        }
      }
    }
    if (exhausted) return failure;
    if (launch_hedge) {
      hedged = true;
      ++hedged_reads_;
    } else {
      ++read_failovers_;
    }
    LaunchAttempt(order[next], key.ToString(), version, latest, state,
                  static_cast<int>(next));
    ++next;
  }
}

Result<MintCoordinator::ReadResult> MintCoordinator::Get(const Slice& key,
                                                         uint64_t version) {
  return ReadInternal(key, version, /*latest=*/false);
}

Result<MintCoordinator::ReadResult> MintCoordinator::GetLatest(
    const Slice& key) {
  return ReadInternal(key, 0, /*latest=*/true);
}

// ---------------------------------------------------------------------------
// Failure detector
// ---------------------------------------------------------------------------

void MintCoordinator::DetectorLoop() {
  while (true) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      {
        MutexLock lock(&mu_);
        if (stopping_) return;
      }
      Node* node = nodes_[i].get();
      Result<rpc::HeartbeatInfo> hb = node->probe->Heartbeat();
      const bool healthy = hb.ok() && hb->serving;
      if (!healthy) {
        heartbeat_misses_.fetch_add(1, std::memory_order_relaxed);
        // Drop the probe's connection so the next round dials fresh instead
        // of trusting a half-dead stream.
        node->probe->Close();
      }
      ReportNodeOutcome(static_cast<int>(i), healthy);
    }
    MutexLock lock(&mu_);
    if (stopping_) return;
    cv_.WaitFor(std::chrono::milliseconds(options_.heartbeat_interval_ms));
  }
}

// ---------------------------------------------------------------------------
// Repair
// ---------------------------------------------------------------------------

Result<std::unordered_set<std::string>> MintCoordinator::InventoryNode(
    int node_id) {
  std::unordered_set<std::string> tokens;
  rpc::RepairScanRequest request;
  request.keys_only = true;
  request.max_pairs = options_.repair_page_pairs;
  std::unique_ptr<rpc::RpcClient> client = AcquireClient(node_id);
  Status failure;
  while (true) {
    Result<rpc::RepairPage> page = client->RepairScan(request);
    if (!page.ok()) {
      failure = page.status();
      break;
    }
    for (const rpc::RepairPair& pair : page->pairs) {
      tokens.insert(InventoryToken(pair.key, pair.version));
    }
    if (page->done) break;
    request.cursor = page->next;
  }
  ReleaseClient(node_id, std::move(client),
                failure.ok() || !IsTransportError(failure));
  if (!failure.ok()) return failure;
  return tokens;
}

Result<uint64_t> MintCoordinator::RepairNode(int node_id) {
  if (node_id < 0 || node_id >= num_nodes()) {
    return Status::InvalidArgument("no such node");
  }
  // The target must be serving before repair starts: everything below
  // writes into it.
  {
    std::unique_ptr<rpc::RpcClient> client = AcquireClient(node_id);
    Result<rpc::HeartbeatInfo> hb = client->Heartbeat();
    const bool serving = hb.ok() && hb->serving;
    ReleaseClient(node_id, std::move(client),
                  hb.ok() || !IsTransportError(hb.status()));
    if (!serving) {
      return Status::Unavailable("repair target is not serving");
    }
    ReportNodeOutcome(node_id, true);
  }

  Result<std::unordered_set<std::string>> inventory = InventoryNode(node_id);
  if (!inventory.ok()) return inventory.status();
  std::unordered_set<std::string> present = std::move(inventory).value();

  const int group = nodes_[node_id]->group;
  uint64_t copied = 0;
  Status first_error;
  for (int peer : groups_[group]) {
    if (peer == node_id) continue;
    if (health(peer) == NodeHealth::kDown) continue;

    rpc::RepairScanRequest request;
    request.max_pairs = options_.repair_page_pairs;
    std::unique_ptr<rpc::RpcClient> scan_client = AcquireClient(peer);
    bool scan_transport_ok = true;
    while (true) {
      Result<rpc::RepairPage> page = scan_client->RepairScan(request);
      if (!page.ok()) {
        if (first_error.ok()) first_error = page.status();
        scan_transport_ok = !IsTransportError(page.status());
        break;  // Next peer may still cover the missing pairs.
      }
      // Filter the page down to pairs the target owns but lacks.
      std::vector<rpc::BatchOp> ops;
      std::vector<std::string> op_tokens;
      for (rpc::RepairPair& pair : page->pairs) {
        const std::vector<int> owners = ReplicasOf(pair.key);
        if (std::find(owners.begin(), owners.end(), node_id) ==
            owners.end()) {
          continue;  // Not this node's responsibility.
        }
        std::string token = InventoryToken(pair.key, pair.version);
        if (present.count(token) != 0) continue;
        rpc::BatchOp op;
        op.version = pair.version;
        op.key = std::move(pair.key);
        op.value = std::move(pair.value);
        ops.push_back(std::move(op));
        op_tokens.push_back(std::move(token));
      }
      if (!ops.empty()) {
        std::unique_ptr<rpc::RpcClient> target_client =
            AcquireClient(node_id);
        std::vector<Status> statuses;
        Status s = target_client->WriteBatch(ops, &statuses);
        ReleaseClient(node_id, std::move(target_client),
                      !IsTransportError(s));
        if (statuses.size() == ops.size()) {
          for (size_t i = 0; i < statuses.size(); ++i) {
            if (statuses[i].ok()) {
              ++copied;
              present.insert(std::move(op_tokens[i]));
            }
          }
        }
        if (!s.ok() && first_error.ok()) first_error = s;
      }
      if (page->done) break;
      request.cursor = page->next;
    }
    ReleaseClient(peer, std::move(scan_client), scan_transport_ok);
  }
  repair_pairs_copied_.fetch_add(copied, std::memory_order_relaxed);
  if (copied == 0 && !first_error.ok()) return first_error;
  return copied;
}

Result<uint64_t> MintCoordinator::VerifyNodeComplete(int node_id) {
  if (node_id < 0 || node_id >= num_nodes()) {
    return Status::InvalidArgument("no such node");
  }
  Result<std::unordered_set<std::string>> inventory = InventoryNode(node_id);
  if (!inventory.ok()) return inventory.status();
  const std::unordered_set<std::string> present = std::move(inventory).value();

  std::unordered_set<std::string> missing;
  const int group = nodes_[node_id]->group;
  for (int peer : groups_[group]) {
    if (peer == node_id) continue;
    if (health(peer) == NodeHealth::kDown) continue;
    rpc::RepairScanRequest request;
    request.keys_only = true;
    request.max_pairs = options_.repair_page_pairs;
    std::unique_ptr<rpc::RpcClient> client = AcquireClient(peer);
    Status failure;
    while (true) {
      Result<rpc::RepairPage> page = client->RepairScan(request);
      if (!page.ok()) {
        failure = page.status();
        break;
      }
      for (const rpc::RepairPair& pair : page->pairs) {
        const std::vector<int> owners = ReplicasOf(pair.key);
        if (std::find(owners.begin(), owners.end(), node_id) ==
            owners.end()) {
          continue;
        }
        std::string token = InventoryToken(pair.key, pair.version);
        if (present.count(token) == 0) missing.insert(std::move(token));
      }
      if (page->done) break;
      request.cursor = page->next;
    }
    ReleaseClient(peer, std::move(client),
                  failure.ok() || !IsTransportError(failure));
    if (!failure.ok()) return failure;
  }
  return static_cast<uint64_t>(missing.size());
}

}  // namespace directload::mint
