#ifndef DIRECTLOAD_QINDB_WRITE_BATCH_H_
#define DIRECTLOAD_QINDB_WRITE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "aof/record.h"
#include "common/slice.h"
#include "common/status.h"

namespace directload::qindb {

/// One mutation inside a WriteBatch. Owning strings (rather than slices)
/// because a batch outlives the call that built it: under group commit the
/// leader thread reads the ops of *other* threads' batches while those
/// threads wait.
enum class WriteOpKind : uint8_t {
  kPut = 0,
  kDel = 1,
  kDropVersion = 2,
};

struct WriteOp {
  WriteOpKind kind = WriteOpKind::kPut;
  std::string key;    // Unused for kDropVersion.
  uint64_t version = 0;
  std::string value;  // kPut only; empty when dedup is set.
  bool dedup = false;
};

/// An ordered sequence of Put/Del/DropVersion operations committed together
/// by QinDb::Write. Ops are applied strictly in insertion order, so an op
/// observes the effects of every earlier op in the same batch (a Del can
/// delete a Put that precedes it). After Write returns, statuses() holds one
/// status per op — a bad op (empty key, oversized record, Del of a missing
/// pair) fails alone without poisoning its neighbors, exactly as the
/// equivalent single-op call would.
class WriteBatch {
 public:
  void Put(const Slice& key, uint64_t version, const Slice& value,
           bool dedup = false) {
    WriteOp op;
    op.kind = WriteOpKind::kPut;
    op.key = key.ToString();
    op.version = version;
    if (!dedup) op.value = value.ToString();
    op.dedup = dedup;
    approximate_bytes_ += aof::RecordExtent(op.key.size(), op.value.size());
    ops_.push_back(std::move(op));
  }

  void Del(const Slice& key, uint64_t version) {
    WriteOp op;
    op.kind = WriteOpKind::kDel;
    op.key = key.ToString();
    op.version = version;
    // Budget for the tombstone a delete may log.
    approximate_bytes_ += aof::RecordExtent(op.key.size(), 0);
    ops_.push_back(std::move(op));
  }

  void DropVersion(uint64_t version) {
    WriteOp op;
    op.kind = WriteOpKind::kDropVersion;
    op.version = version;
    approximate_bytes_ += aof::RecordHeader::kSize;
    ops_.push_back(std::move(op));
  }

  void Clear() {
    ops_.clear();
    statuses_.clear();
    dropped_.clear();
    approximate_bytes_ = 0;
  }

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// Log-extent estimate, the input to the group-commit byte budget. An
  /// estimate only: DropVersion appends one tombstone per flagged pair,
  /// which is unknowable until commit time.
  uint64_t ApproximateBytes() const { return approximate_bytes_; }

  const std::vector<WriteOp>& ops() const { return ops_; }

  /// Filled by QinDb::Write: one status per op, in op order. Empty until a
  /// Write has run over this batch.
  const std::vector<Status>& statuses() const { return statuses_; }

  /// For kDropVersion ops: the number of pairs flagged, parallel to ops()
  /// (zero for other kinds). Valid after Write.
  uint64_t dropped(size_t op_index) const {
    return op_index < dropped_.size() ? dropped_[op_index] : 0;
  }

 private:
  friend class QinDb;
  friend class Shard;

  std::vector<WriteOp> ops_;
  std::vector<Status> statuses_;
  std::vector<uint64_t> dropped_;
  uint64_t approximate_bytes_ = 0;
};

}  // namespace directload::qindb

#endif  // DIRECTLOAD_QINDB_WRITE_BATCH_H_
