#ifndef DIRECTLOAD_QINDB_VERSION_REGISTRY_H_
#define DIRECTLOAD_QINDB_VERSION_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>

#include "common/thread_annotations.h"

namespace directload::qindb {

/// Bookkeeping for lazy version indexes, one instance per shard.
///
/// When `Options::index_memory_bytes` is set, a shard whose resident index
/// arena outgrows its slice *unloads* cold versions: their index entries are
/// purged from the memtable and the version shrinks to the metadata held
/// here — an entry count, the lowest AOF segment that can hold its
/// records, and the packed address of each pair's live record. The first
/// access that needs the version *materializes* it by replaying exactly
/// those records from the AOF back into the index.
///
/// This class only tracks state (what is cold, how recently each version
/// was read, whether scanners pin the residency set); the actual
/// unload/materialize machinery lives in Shard, which owns the index and
/// the AOF. Split this way, the registry can be consulted from lock-free
/// read paths with one brief leaf-lock acquisition and no knowledge of the
/// shard's locking story.
///
/// Unload safety is the shard's responsibility and deliberately
/// conservative — a version only unloads when replay provably reconstructs
/// the exact index state: no deleted entries (deletion state lives only in
/// memory unless tombstones were logged), no dedup entries in it or in any
/// newer version (a traceback chain must never descend into a cold
/// version), no open scanners (their iterators walk the live index), and
/// no open ingest sessions.
class VersionIndexRegistry {
 public:
  struct ColdVersion {
    uint64_t entry_count = 0;
    /// Lowest AOF segment id holding any of the version's records, taken
    /// from the entries' addresses at unload time. GC only ever relocates
    /// records into *newer* segments, so the bound stays valid without
    /// updates for the whole time the version is cold.
    uint32_t min_segment = 0;
    /// The packed record address of each cold pair's winning (live) copy —
    /// exactly the addresses the purged entries pointed at. This is what
    /// makes the replay unambiguous: superseded duplicates of a pair may
    /// appear in any scan order once GC has relocated copies across
    /// passes, so "last record wins" cannot be trusted; membership here
    /// can. At ~8 bytes a pair (versus a full arena-backed index entry)
    /// the set is the "lightweight metadata" a cold version shrinks to.
    /// GC keeps precisely these records (classify), rewrites members on
    /// relocation (RekeyCold), and never erases one while the version
    /// stays cold.
    std::unordered_set<uint64_t> live_addresses;
  };

  struct Stats {
    uint64_t loads = 0;
    uint64_t unloads = 0;
    uint64_t cold_versions = 0;
  };

  /// `budget_bytes` is this shard's slice of `Options::index_memory_bytes`;
  /// zero disables lazy indexes (nothing ever unloads, every query below
  /// is a constant). `shard_id` names the lock for the rank checker.
  VersionIndexRegistry(uint64_t budget_bytes, uint32_t shard_id);
  VersionIndexRegistry(const VersionIndexRegistry&) = delete;
  VersionIndexRegistry& operator=(const VersionIndexRegistry&) = delete;

  bool enabled() const { return budget_bytes_ > 0; }
  uint64_t budget_bytes() const { return budget_bytes_; }

  /// Fast read-path gate: one relaxed load, true while any version is
  /// cold. All the slow-path questions hide behind it.
  bool AnyCold() const {
    return cold_count_.load(std::memory_order_relaxed) != 0;
  }

  bool IsCold(uint64_t version) const;
  bool PeekCold(uint64_t version, ColdVersion* meta) const;

  /// True when `packed` is the live record address of one of `version`'s
  /// cold pairs. Called from the GC classify callback (with the AOF
  /// manager's lock held — this lock ranks above it for that reason).
  bool IsColdLive(uint64_t version, uint64_t packed) const;

  /// Follows a GC relocation of a cold live record (the relocate
  /// callback): the pair's winning copy now lives at `new_packed`.
  void RekeyCold(uint64_t version, uint64_t old_packed, uint64_t new_packed);

  /// Copy of the cold map (materialize-all loops, VersionCounts).
  std::map<uint64_t, ColdVersion> ColdSnapshot() const;

  /// Moves `version` from resident to cold. The caller (Shard) has already
  /// purged its entries from the index.
  void MarkCold(uint64_t version, const ColdVersion& meta);

  /// Marks a cold version resident again after a successful materialize
  /// and counts the load. A failed replay leaves the version cold so the
  /// next access retries (MemIndex::Insert is idempotent, so a partial
  /// replay re-runs safely).
  void MarkResident(uint64_t version);

  /// Forgets a version entirely (DropVersion of a cold version).
  void Forget(uint64_t version);

  /// Records a read access for LRU ordering of unload candidates.
  void Touch(uint64_t version);

  /// Access tick of `version`; 0 when it was never touched (making
  /// never-read versions the coldest of all).
  uint64_t TickOf(uint64_t version) const;

  /// While any pin is alive, no version may unload: scanners hold raw
  /// iterators into the live index. The token is a plain shared_ptr so a
  /// scanner's copy semantics keep the pin alive exactly as long as any
  /// clone of it.
  std::shared_ptr<void> AcquireScanPin();
  bool ScanPinned() const {
    return scan_pins_.load(std::memory_order_relaxed) != 0;
  }

  Stats stats() const;

 private:
  const uint64_t budget_bytes_;
  const std::string lock_name_;
  mutable Mutex mu_;

  std::map<uint64_t, ColdVersion> cold_ GUARDED_BY(mu_);
  std::map<uint64_t, uint64_t> access_tick_ GUARDED_BY(mu_);
  uint64_t tick_ GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> cold_count_{0};
  std::atomic<uint64_t> scan_pins_{0};
  std::atomic<uint64_t> loads_{0};
  std::atomic<uint64_t> unloads_{0};
};

}  // namespace directload::qindb

#endif  // DIRECTLOAD_QINDB_VERSION_REGISTRY_H_
