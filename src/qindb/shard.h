#ifndef DIRECTLOAD_QINDB_SHARD_H_
#define DIRECTLOAD_QINDB_SHARD_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "aof/aof_manager.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "memtable/mem_index.h"
#include "qindb/block_cache.h"
#include "qindb/options.h"
#include "qindb/version_registry.h"
#include "qindb/write_batch.h"
#include "ssd/env.h"

namespace directload::qindb {

/// One pair of a bulk-ingest run (QinDb::IngestRun — the Bifrost delivery
/// fast path). Slices reference the caller's buffers, which must stay alive
/// for the duration of the call.
struct IngestOp {
  Slice key;
  /// Puts must carry the session's version; tombstones may target any
  /// version (the paper's `d` flag: deletes of older versions ride the
  /// delivery of a new one).
  uint64_t version = 0;
  Slice value;
  bool dedup = false;      // The `r` flag: value removed by Bifrost's dedup.
  bool tombstone = false;  // The `d` flag: flag (key, version) deleted.
};

/// One shard of QinDB: a complete single-stream engine — memtable skip list,
/// AOF segment set with occupancy/GC, group-commit queue, checkpoint — over
/// a hash-assigned subset of the key space. This class IS the pre-sharding
/// engine; the QinDb facade routes keys to shards, splits WriteBatches into
/// per-shard sub-batches, and stitches results back together.
///
/// Thread model (unchanged from the unsharded engine): mutations are
/// serialized on write_mutex_ (rank LockRank::kQinDbWrite); reads take no
/// engine lock — they pin the current memtable index via the leaf pin_mu_
/// (rank LockRank::kQinDbPin), traverse the skip list lock-free, and read
/// sealed AOF bytes under the AOF manager's shared lock. Every shard's locks
/// carry the same ranks with per-shard names; the rank checker rejects
/// equal-rank nesting, so it machine-enforces the sharding discipline that
/// no thread ever holds one shard's lock while acquiring another shard's.
/// Cross-shard operations (facade Write, Checkpoint, GC, Scrub) visit shards
/// strictly one at a time. See docs/qindb_internals.md.
class Shard {
 public:
  /// Opens (or recovers) one shard over `env`. `options.aof.file_prefix`
  /// namespaces this shard's files; `options.aof.shared_gc_stats`, `stats`
  /// and `reads_in_flight` point at facade-owned aggregates shared by all
  /// shards (they must outlive the shard).
  static Result<std::unique_ptr<Shard>> Open(ssd::SsdEnv* env,
                                             const QinDbOptions& options,
                                             uint32_t shard_id,
                                             QinDbStats* stats,
                                             std::atomic<int>* reads_in_flight);

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// One writer's batch waiting in the group-commit queue. Lives on the
  /// waiting thread's stack; the leader publishes `overall` and `done`
  /// under batch_mu_, and the owner cannot return before observing done.
  struct PendingWrite {
    explicit PendingWrite(WriteBatch* b) : batch(b) {}
    WriteBatch* batch;
    bool done = false;
    Status overall;
    /// Record bytes for the batch's valid Put ops, encoded (checksums and
    /// all) by the OWNING thread before it enqueued — the dominant per-op
    /// cost runs in parallel across writers instead of on the leader.
    /// `spans[i]` is (offset, length) into `encoded` for op i; length 0
    /// means not pre-encoded (non-Put or invalid — the leader decides).
    std::string encoded;
    std::vector<std::pair<size_t, size_t>> spans;
  };

  /// Applies the batch's ops strictly in order through this shard's
  /// committer. The facade calls this directly when every op of a Write
  /// landed on one shard (the hot path — no sub-batch copies).
  Status Write(WriteBatch& batch) EXCLUDES(write_mutex_);

  /// Split write protocol for cross-shard batches: the facade enqueues one
  /// PendingWrite per involved shard (ascending shard order), then completes
  /// them in the same order, so sub-batches commit in parallel under the
  /// shards' independent leaders. EnqueueWrite pre-encodes the sub-batch's
  /// Put records on the calling thread and parks nothing; CompleteWrite runs
  /// the park-or-lead loop and returns the sub-batch's overall status.
  /// `pending->batch` must stay alive until CompleteWrite returns.
  void EnqueueWrite(PendingWrite* pending) EXCLUDES(write_mutex_, batch_mu_);
  Status CompleteWrite(PendingWrite* pending) EXCLUDES(write_mutex_);

  /// Ungrouped sub-batch commit (group_commit off): one lock hold, legacy
  /// per-record appends.
  Status WriteUngrouped(WriteBatch& batch) EXCLUDES(write_mutex_);

  // --- Bulk ingest (Bifrost over the wire) ------------------------------
  //
  // A session stages pre-encoded record runs for one version: records are
  // appended (durable) with kFlagIngestPending but NOT indexed, so reads
  // cannot see the version. IngestCommit appends a durable commit marker
  // and then indexes the staged pairs — the version appears atomically for
  // this shard. IngestAbort (or a crash before the marker) leaves no trace:
  // the staged records are marked dead and recovery never indexes a pending
  // record without its marker. While any session is active, checkpoints and
  // GC are deferred (pending records are invisible to both).

  /// Opens (idempotently) the session for `version`.
  Status IngestBegin(uint64_t version) EXCLUDES(write_mutex_);

  /// Validates + pre-encodes the run off-lock, then lands it with ONE
  /// vectored AofManager::AppendMany — no group-commit queue, no per-op
  /// planning, no memtable work until commit. A failed run fails whole
  /// (AppendMany rolls back its occupancy accounting); the session
  /// survives for a retry or abort.
  Status IngestRun(uint64_t version, const IngestOp* ops, size_t count)
      EXCLUDES(write_mutex_);

  /// Appends the commit marker, then applies the staged pairs to the
  /// memtable in run order: puts supersede like re-PUTs, tombstones flag
  /// their target deleted (a missing target is a no-op).
  Status IngestCommit(uint64_t version) EXCLUDES(write_mutex_);

  /// Drops the session: every staged record is marked dead in the
  /// occupancy table (the PR 5 vectored rollback) and never indexed.
  Status IngestAbort(uint64_t version) EXCLUDES(write_mutex_);

  /// GET(k/t): the value of `key` at exactly `version`, tracing back through
  /// older versions when the pair was deduplicated.
  Result<std::string> Get(const Slice& key, uint64_t version);

  /// The value of the newest non-deleted version of `key`.
  Result<std::string> GetLatest(const Slice& key);

  /// Live (non-deleted) pair counts per version within this shard.
  std::map<uint64_t, uint64_t> VersionCounts() const;

  /// Runs the lazy GC policy: collects victim segments (occupancy <=
  /// threshold) unless deferred by ongoing reads with free space remaining.
  Status MaybeGc() EXCLUDES(write_mutex_);

  /// Collects all victims regardless of the deferral policy.
  Status ForceGc() EXCLUDES(write_mutex_);

  /// Seals the active segment and persists this shard's checkpoint.
  Status Checkpoint() EXCLUDES(write_mutex_);

  /// Integrity scrub of this shard's entries (see qindb/options.h).
  Result<ScrubReport> Scrub();

  /// Ordered range scan over the live pairs of one version within this
  /// shard. The facade's scanner merges the per-shard scanners into one
  /// globally ordered stream.
  class Scanner {
   public:
    bool Valid() const { return valid_; }
    /// Positions at the first key >= `start`.
    void Seek(const Slice& start);
    void SeekToFirst() { Seek(Slice()); }
    void Next();
    Slice key() const { return current_->user_key(); }
    uint64_t version() const { return current_->version; }
    /// Reads the value (possibly via traceback). Device I/O happens here.
    Result<std::string> value() const;

   private:
    friend class Shard;
    Scanner(Shard* shard, uint64_t version);
    /// Walks key runs until one has a visible entry at `version_`.
    void FindVisibleEntry();

    Shard* shard_;
    uint64_t version_;
    std::shared_ptr<const MemIndex> index_;  // Keeps entries alive across GC.
    /// Blocks version unloads for the scanner's lifetime: its iterator
    /// walks the live index, and a purge mid-scan would hide rows.
    std::shared_ptr<void> scan_pin_;
    MemIndex::Iterator it_;
    MemEntry* current_ = nullptr;
    bool valid_ = false;
  };

  /// Scanner over the state at `version` (UINT64_MAX = newest of each key).
  Scanner NewScanner(uint64_t version = UINT64_MAX);

  /// True once a write-path failure has forced this shard into read-only
  /// degraded mode (see QinDb::degraded()).
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  /// The shard's current memtable index. Quiescent inspection only; see
  /// QinDb::memtable().
  const MemIndex& memtable() const EXCLUDES(pin_mu_) {
    MutexLock lock(&pin_mu_);
    return *mem_;
  }
  aof::AofManager& aof() { return *aof_; }
  uint32_t shard_id() const { return shard_id_; }

  ShardStatsSnapshot StatsSnapshot() const;

 private:
  Shard(ssd::SsdEnv* env, const QinDbOptions& options, uint32_t shard_id,
        QinDbStats* stats, std::atomic<int>* reads_in_flight);

  Status RecoverFromScan(uint32_t min_segment) REQUIRES(write_mutex_);
  Status LoadCheckpoint(const std::string& name, bool* loaded,
                        std::map<uint32_t, aof::SegmentMeta>* metas,
                        uint32_t* next_segment) REQUIRES(write_mutex_);
  Status ApplyCheckpointEntries() REQUIRES(write_mutex_);
  Status InvalidateCheckpoint() REQUIRES(write_mutex_);

  /// Takes a refcount on the current index so its entries (and arena) stay
  /// alive even if GC swaps in a rebuilt index meanwhile.
  std::shared_ptr<const MemIndex> PinIndex() const EXCLUDES(pin_mu_);

  /// The raw current-index pointer, for mutators running under
  /// write_mutex_: takes pin_mu_ only for the pointer copy, and the index
  /// stays alive because only CollectVictimsLocked — itself serialized on
  /// write_mutex_ — retires indices.
  MemIndex* CurrentIndex() const EXCLUDES(pin_mu_);

  /// Reads the value bytes of a memtable entry's record, retrying when the
  /// record was relocated by GC or superseded by a re-PUT mid-read.
  Result<std::string> ReadEntryValue(const MemEntry* entry);

  /// Routes a mutation-path status: failures that can leave the log or its
  /// accounting torn (kIOError/kCorruption/kInternal) trip degraded mode.
  /// Environmental rejections (kNoSpace, kInvalidArgument, kNotFound, an
  /// injected transient) pass through untouched. Returns `s` either way.
  Status NoteWriteError(Status s);
  /// The degraded-mode gate every mutation entry point runs first.
  Status CheckWritable() const;

  // *Locked variants require write_mutex_ held by the caller.
  Status MaybeGcLocked() REQUIRES(write_mutex_);
  Status CollectVictimsLocked() REQUIRES(write_mutex_);
  Status CheckpointLocked() REQUIRES(write_mutex_);

  // --- Lazy version indexes (registry_; no-ops when disabled) -----------

  /// Re-materializes `version` if it is cold: replays its records from the
  /// AOF back into the live index, then marks it resident. Idempotent.
  Status EnsureVersionResidentLocked(uint64_t version)
      REQUIRES(write_mutex_);
  Status EnsureVersionResident(uint64_t version) EXCLUDES(write_mutex_);
  /// Materializes every cold version (GetLatest, scans, scrub, checkpoint
  /// — anything whose answer spans versions).
  Status EnsureAllResidentLocked() REQUIRES(write_mutex_);
  Status EnsureAllResident() EXCLUDES(write_mutex_);
  /// The replay itself (no registry bookkeeping): scans segments >=
  /// meta.min_segment and applies `version`'s records in log order.
  Status MaterializeVersionLocked(uint64_t version,
                                  const VersionIndexRegistry::ColdVersion&
                                      meta) REQUIRES(write_mutex_);
  /// Unloads cold versions while the index arena exceeds the registry
  /// budget and provably-safe candidates exist. Runs at mutation
  /// boundaries (commit tail, checkpoint tail, materialize tail).
  void MaybeUnloadIndexLocked() REQUIRES(write_mutex_);

  // Legacy single-append mutation bodies (group_commit off). Shared by the
  // public entry points and the ungrouped WriteBatch path.
  Status PutLocked(const Slice& key, uint64_t version, const Slice& value,
                   bool dedup) REQUIRES(write_mutex_);
  Status DelLocked(const Slice& key, uint64_t version)
      REQUIRES(write_mutex_);
  Result<uint64_t> DropVersionLocked(uint64_t version)
      REQUIRES(write_mutex_);

  /// The leader's commit: plans every op in order, appends all records with
  /// one AofManager::AppendMany, applies the memtable mutations in op order,
  /// and stamps per-op statuses + per-batch overall results into the group.
  void CommitGroupLocked(const std::vector<PendingWrite*>& group)
      REQUIRES(write_mutex_) EXCLUDES(batch_mu_);

  friend class QinDb;

  ssd::SsdEnv* env_;
  QinDbOptions options_;
  const uint32_t shard_id_;

  /// Prefixed file names of this shard's checkpoint pair.
  const std::string checkpoint_name_;
  const std::string checkpoint_temp_;

  /// Stable storage for the per-shard lock names below ("qindb-write/s03").
  /// Declared before the mutexes so the pointers are valid at their
  /// construction.
  const std::string write_name_;
  const std::string queue_name_;
  const std::string pin_name_;

  /// Serializes all mutations on THIS shard. Same rank as every other
  /// shard's write mutex (LockRank::kQinDbWrite): the rank checker's
  /// equal-rank rejection turns any cross-shard lock nesting into an
  /// immediate abort, which is the sharding discipline — shards are visited
  /// one at a time, never nested.
  Mutex write_mutex_;

  /// The group-commit pending queue. Writers enqueue under it *before*
  /// contending on write_mutex_, so batches pile up while a leader commits;
  /// the queue FRONT is the only thread that ever touches write_mutex_ —
  /// everyone else parks on batch_cv_ and returns as soon as a leader marks
  /// its batch done, without a write_mutex_ handoff per follower. Taken
  /// either standalone (enqueue/park) or under write_mutex_ (drain/publish)
  /// — never the other way around — and nothing is acquired while holding
  /// it.
  Mutex batch_mu_;
  CondVar batch_cv_{&batch_mu_};
  std::deque<PendingWrite*> write_queue_ GUARDED_BY(batch_mu_);

  /// Guards the mem_ pointer itself (not the index contents). Readers take
  /// it briefly to copy the shared_ptr; GC takes it to swap in a rebuild.
  /// Leaf lock (LockRank::kQinDbPin): taken under write_mutex_, under the
  /// AOF manager's lock (GC classify callbacks), or standalone by readers.
  mutable Mutex pin_mu_;
  std::shared_ptr<MemIndex> mem_ GUARDED_BY(pin_mu_);
  /// Indices retired by GC rebuilds that pinned readers may still traverse.
  /// Relocations patch these too so stale snapshots keep resolving reads.
  std::vector<std::weak_ptr<MemIndex>> retired_ GUARDED_BY(pin_mu_);

  // Mutators reach it under write_mutex_, but readers (Get traceback,
  // scans) call it with no shard lock at all — the manager is internally
  // synchronized (LockRank::kAofManager), so a GUARDED_BY here would be
  // wrong, not just noisy.
  std::unique_ptr<aof::AofManager> aof_;  // dl-lint: ignore(guarded-by-coverage)

  /// AOF record cache (null when Options::cache_bytes is 0). Internally
  /// synchronized (LockRank::kQinDbBlockCache); reached from the lock-free
  /// read path and from invalidation sites under write_mutex_ / the AOF
  /// lock alike.
  std::unique_ptr<BlockCache> cache_;  // dl-lint: ignore(guarded-by-coverage)

  /// Lazy-index bookkeeping (disabled when Options::index_memory_bytes is
  /// 0). Internally synchronized (LockRank::kQinDbVersionRegistry).
  VersionIndexRegistry registry_;  // dl-lint: ignore(guarded-by-coverage)

  /// Facade-owned aggregates shared by all shards.
  QinDbStats* const stats_;
  std::atomic<int>* const reads_in_flight_;

  /// Per-shard counters behind StatsSnapshot (the aggregate lives in
  /// *stats_).
  std::atomic<uint64_t> shard_puts_{0};
  std::atomic<uint64_t> shard_dels_{0};
  std::atomic<uint64_t> shard_bytes_ingested_{0};

  /// Set by NoteWriteError, never cleared in-process; see degraded().
  std::atomic<bool> degraded_{false};
  /// Bumped whenever GC relocates records; readers use it to detect that a
  /// failed record read raced a collection and should be retried.
  std::atomic<uint64_t> gc_epoch_{0};
  uint64_t bytes_at_last_checkpoint_ GUARDED_BY(write_mutex_) = 0;
  bool checkpoint_valid_ GUARDED_BY(write_mutex_) = false;
  /// Deserialized entries awaiting apply.
  std::string pending_checkpoint_ GUARDED_BY(write_mutex_);

  /// One open bulk-ingest session: the staged pairs (applied to the
  /// memtable at commit) and the appended record extents (the rollback
  /// list an abort feeds to MarkDeadMany).
  struct IngestSession {
    struct Staged {
      std::string key;
      uint64_t version = 0;
      uint64_t address = 0;  // Packed RecordAddress.
      uint32_t value_size = 0;
      bool dedup = false;
      bool tombstone = false;
    };
    std::vector<Staged> staged;
    std::vector<std::pair<aof::RecordAddress, uint64_t>> appended;
  };
  /// Open sessions keyed by version. Non-empty defers checkpoints and GC:
  /// pending records are durable but unindexed, so a checkpoint taken now
  /// would let recovery skip their segments, and GC's classify pass would
  /// drop them as garbage.
  std::map<uint64_t, IngestSession> ingest_sessions_
      GUARDED_BY(write_mutex_);
  /// Versions whose commit marker landed — in this process or found by
  /// recovery. Makes IngestCommit idempotent: a cross-shard commit torn
  /// between shards retries against every shard, and the ones that already
  /// committed must answer OK rather than "no session".
  std::set<uint64_t> ingest_committed_ GUARDED_BY(write_mutex_);
};

}  // namespace directload::qindb

#endif  // DIRECTLOAD_QINDB_SHARD_H_
