#ifndef DIRECTLOAD_QINDB_BLOCK_CACHE_H_
#define DIRECTLOAD_QINDB_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/slice.h"
#include "common/thread_annotations.h"

namespace directload::qindb {

/// Memory-budgeted read cache for AOF record values, one instance per shard.
///
/// A cache hit serves a `Get` straight from memory — no AofManager lock, no
/// device command. Entries are keyed by the packed `RecordAddress` the
/// memtable stores, which makes correctness tractable: the AOF never reuses
/// an address (segment ids are monotonic), and every read starts from the
/// entry's *current* address, so a stale mapping is unreachable by
/// construction. Invalidation (GC relocation, segment erase, supersede,
/// ingest abort, DropVersion) is still performed eagerly at every site that
/// kills or moves a record — cached bytes for dead records are wasted
/// budget, and the defensive key/version check in `Lookup` must never be
/// the only line of defense.
///
/// Structure: N internal stripes (selected by address hash), each an
/// independently locked segmented LRU — a *probation* list for first-time
/// admissions and a *protected* list (capped at ~80% of the stripe budget)
/// that an entry is promoted into on its first repeat hit. Admission under
/// pressure is TinyLFU-style: every lookup feeds a compact frequency sketch
/// (4-way count-min of saturating counters, periodically halved), and a
/// candidate only displaces the probation-LRU victim when the sketch says
/// it has been touched more often. One-touch scan traffic therefore cannot
/// wash the hot set out of the protected segment.
///
/// Thread safety: every public method locks exactly one stripe mutex
/// (LockRank::kQinDbBlockCache) and acquires nothing under it, so callers
/// may invoke the cache while holding any lower-ranked engine lock — the
/// write mutex, the AOF lock inside GC callbacks, or none at all on the
/// lock-free read path.
class BlockCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t admission_rejects = 0;
    uint64_t evicted_bytes = 0;
    uint64_t charged_bytes = 0;
    uint64_t entries = 0;
  };

  /// `budget_bytes` is this shard's slice of `Options::cache_bytes`;
  /// `shard_id` only names the stripe locks for the rank checker.
  BlockCache(uint64_t budget_bytes, uint32_t shard_id);
  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns true and fills `*value` when `address` is cached AND the
  /// cached identity matches the caller's (key, version). A mismatch —
  /// impossible unless an invalidation site was missed — erases the entry
  /// and reports a miss rather than ever returning wrong bytes. Every call
  /// (hit or miss) feeds the admission sketch, so a key that keeps missing
  /// accumulates the frequency it needs to get admitted.
  bool Lookup(uint64_t address, const Slice& key, uint64_t version,
              std::string* value);

  /// Offers a record the read path just fetched from the device. May be
  /// dropped by the admission filter (budget full and the sketch ranks the
  /// probation victim higher) or because the entry alone exceeds the
  /// stripe budget; both count as `admission_rejects`.
  void Insert(uint64_t address, const Slice& key, uint64_t version,
              const Slice& value);

  /// Drops the entry for `address`, if cached. Called from every site that
  /// kills a record: supersede, delete accounting, GC drop, segment erase,
  /// ingest abort, DropVersion.
  void Erase(uint64_t address);

  /// Moves a cached entry to a new address (GC relocated the record; the
  /// bytes are identical). Keeps the entry's LRU position and segment.
  void Rekey(uint64_t old_address, uint64_t new_address);

  /// Point-in-time counter snapshot (monotonic counters plus current
  /// charge). Cheap enough for a stats endpoint: atomics plus one brief
  /// lock per stripe for the charge/entry totals.
  Stats stats() const;

  uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    uint64_t address = 0;
    uint64_t version = 0;
    std::string key;
    std::string value;
    uint64_t charge = 0;
    bool is_protected = false;
  };
  using EntryList = std::list<Entry>;

  /// 4-way count-min sketch of access frequencies with saturating 8-bit
  /// counters. After `kAgeSamplePeriod × size` observations every counter
  /// is halved, so frequency estimates decay and yesterday's hot keys can
  /// be displaced. All methods require the owning stripe's lock.
  struct FrequencySketch {
    std::vector<uint8_t> counters;  // Power-of-two size.
    uint64_t mask = 0;
    uint64_t observations = 0;

    void Init(uint64_t budget_bytes);
    void Observe(uint64_t hash);
    uint32_t Estimate(uint64_t hash) const;
    void Age();
  };

  struct Stripe {
    Stripe(uint64_t budget, uint32_t shard_id, size_t index);

    const std::string name_storage;
    Mutex mu_;
    const uint64_t budget;
    const uint64_t protected_cap;  // ~80% of budget.

    EntryList probation GUARDED_BY(mu_);
    EntryList prot GUARDED_BY(mu_);
    std::unordered_map<uint64_t, EntryList::iterator> index GUARDED_BY(mu_);
    uint64_t charged GUARDED_BY(mu_) = 0;
    uint64_t protected_bytes GUARDED_BY(mu_) = 0;
    FrequencySketch sketch GUARDED_BY(mu_);
  };

  Stripe& StripeFor(uint64_t address);

  /// Evicts from the probation tail (protected tail once probation is
  /// empty) until `incoming` more bytes fit. When `candidate_freq` is
  /// non-negative the TinyLFU duel applies: returns false (reject the
  /// candidate, evict nothing further) if the next victim's estimated
  /// frequency is at least the candidate's. REQUIRES(s.mu_).
  bool MakeRoomLocked(Stripe& s, uint64_t incoming, int64_t candidate_freq)
      REQUIRES(s.mu_);
  void RemoveLocked(Stripe& s, EntryList::iterator it) REQUIRES(s.mu_);
  void InsertEntryLocked(Stripe& s, Entry&& entry) REQUIRES(s.mu_);

  const uint64_t budget_bytes_;
  std::vector<std::unique_ptr<Stripe>> stripes_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> admission_rejects_{0};
  std::atomic<uint64_t> evicted_bytes_{0};
};

}  // namespace directload::qindb

#endif  // DIRECTLOAD_QINDB_BLOCK_CACHE_H_
