#ifndef DIRECTLOAD_QINDB_QINDB_H_
#define DIRECTLOAD_QINDB_QINDB_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aof/aof_manager.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "memtable/mem_index.h"
#include "qindb/options.h"
#include "qindb/shard.h"
#include "qindb/write_batch.h"
#include "ssd/env.h"

namespace directload::qindb {

/// QinDB: the paper's per-node key-value storage engine (Section 2.3).
/// Keys are versioned; the memory-resident skip list maps (key, version) to
/// record offsets in append-only files; the regular operations are mutated
/// to cope with deduplicated (value-less) pairs:
///
///   * Put appends the record — value or NULL — and inserts a memtable item
///     carrying the `r` (dedup) flag.
///   * Get reads the value through the memtable offset; for deduplicated
///     items it *tracebacks* to the newest older version that still carries
///     a value.
///   * Del only sets the `d` flag and updates the GC occupancy table; space
///     is reclaimed by the lazy AOF GC, which preserves deleted records that
///     are still referenced by later deduplicated versions (referents).
///
/// Sharding: the engine is partitioned into `num_shards` independent shards
/// (see Shard), each a complete single-stream engine — memtable, AOF segment
/// set with its own occupancy/GC, group-commit queue, checkpoint — over a
/// hash-assigned slice of the key space (shard = Hash64(key, seed) %
/// num_shards). The layout is persisted in a shard manifest at first open;
/// every reopen validates against it, so a count or seed mismatch fails the
/// open with a clear error instead of silently misrouting keys. This facade
/// routes point ops to their shard, splits a WriteBatch into per-shard
/// sub-batches committed in PARALLEL through the shards' independent
/// group-commit leaders, merges scans, and aggregates stats. At num_shards=1
/// the engine is the pre-sharding engine byte-for-byte: legacy file names,
/// no routing hash on the read path.
///
/// Thread model: each shard serializes its mutations on its own write mutex
/// (all at rank LockRank::kQinDbWrite — the rank checker's equal-rank
/// rejection machine-enforces that no thread ever nests two shards' locks);
/// reads take no engine lock. Cross-shard operations visit shards strictly
/// one at a time, in ascending shard order. See docs/qindb_internals.md.
class QinDb {
 public:
  /// Opens (or recovers) an engine over `env`. The first open writes the
  /// shard manifest (resolving `options.num_shards`: 0 means
  /// hardware_concurrency, or 1 when unsharded legacy files exist); a reopen
  /// adopts the manifest's layout and fails with kInvalidArgument when the
  /// options demand a different one. Shards recover in parallel — each from
  /// its checkpoint plus the post-checkpoint segment suffix when a valid
  /// checkpoint is present, otherwise by scanning its entire AOF space (the
  /// paper's recovery story, per shard).
  static Result<std::unique_ptr<QinDb>> Open(ssd::SsdEnv* env,
                                             const QinDbOptions& options);

  QinDb(const QinDb&) = delete;
  QinDb& operator=(const QinDb&) = delete;

  /// PUT(<k/t, v>). `dedup` marks a pair whose value Bifrost removed; the
  /// record is appended with a NULL value and the `r` flag set.
  Status Put(const Slice& key, uint64_t version, const Slice& value,
             bool dedup = false);

  /// Applies the batch's ops through the owning shards' committers. Fills
  /// batch.statuses() with one status per op in submission order — an
  /// invalid op (empty key, oversized record, Del of a missing pair) fails
  /// alone, exactly as the equivalent single-op call would. Returns the
  /// first non-OK per-op status in submission order.
  ///
  /// A batch whose ops all route to ONE shard keeps the unsharded contract:
  /// ops apply strictly in order, concurrent readers may observe a prefix
  /// but never a key's version chain out of order. A cross-shard batch is
  /// split into per-shard sub-batches committed in parallel (enqueued on
  /// every involved shard, then completed in ascending shard order); ops on
  /// the SAME shard — in particular every op on one key — still apply in
  /// submission order, but cross-shard inter-op order is unspecified and
  /// the batch is not atomic across shards: if one shard's append fails,
  /// only that shard's ops fail (their statuses say why), and a crash can
  /// persist one shard's sub-batch without another's. DropVersion ops fan
  /// out to every shard; their dropped() counts are summed.
  Status Write(WriteBatch& batch);

  // --- Bulk ingest (Bifrost over the wire) ------------------------------

  /// Opens a bulk-ingest session for `version` on every shard. Records
  /// streamed through IngestRun become durable immediately but stay
  /// INVISIBLE to reads (nothing is indexed) until IngestCommit;
  /// IngestAbort — or a crash — rolls the version back without a trace.
  /// Idempotent. Checkpoints and GC are deferred while sessions are open.
  Status IngestBegin(uint64_t version);

  /// Lands one run of pairs through the shards' vectored-append fast path:
  /// ops route per shard, pre-encode off-lock, and append with one
  /// AofManager::AppendMany per shard — no group-commit queue, no per-op
  /// planning, no memtable work until commit. Dedup (`r`-flag) ops stage
  /// value-less records that traceback at read time; tombstone (`d`-flag)
  /// ops flag (key, op.version) deleted at commit and may target older
  /// versions. Put ops must carry the session version. A failed run fails
  /// whole; the session survives for a retry or abort.
  Status IngestRun(uint64_t version, const IngestOp* ops, size_t count);

  /// Commits `version`: each shard appends a durable commit marker and
  /// then indexes its staged pairs — the version becomes readable
  /// atomically per shard, in ascending shard order. A crash between
  /// shards leaves markers on a prefix; only those shards' pairs survive
  /// recovery (the cross-shard WriteBatch durability rule).
  Status IngestCommit(uint64_t version);

  /// Abandons `version` on every shard holding a session: staged records
  /// are marked dead (occupancy rolled back) and never become visible.
  Status IngestAbort(uint64_t version);

  /// GET(k/t): the value of `key` at exactly `version`, tracing back through
  /// older versions when the pair was deduplicated.
  Result<std::string> Get(const Slice& key, uint64_t version);

  /// The value of the newest non-deleted version of `key`.
  Result<std::string> GetLatest(const Slice& key);

  /// DEL(k/t): flags the pair deleted; physical reclamation is lazy.
  Status Del(const Slice& key, uint64_t version);

  /// Flags every pair of `version` deleted (the paper's deletion thread
  /// dropping the oldest of the four retained versions), across all shards.
  /// Returns the number of pairs flagged.
  Result<uint64_t> DropVersion(uint64_t version);

  /// Inventory of live (non-deleted) pairs per version — what the deletion
  /// thread consults to decide which version to retire ("at most four
  /// versions of index data persist", Section 1.1.2). Merged over shards.
  std::map<uint64_t, uint64_t> VersionCounts() const;

  /// Runs the lazy GC policy on every shard, one at a time: each collects
  /// its victim segments (occupancy <= threshold) unless deferred by
  /// ongoing reads with free space remaining.
  Status MaybeGc();

  /// Collects all victims on all shards regardless of the deferral policy.
  Status ForceGc();

  /// Seals each shard's active segment and persists per-shard checkpoints,
  /// so a subsequent Open avoids the full AOF scans. Shards checkpoint one
  /// at a time; each checkpoint is consistent for that shard (writes racing
  /// a later shard's checkpoint simply recover from that shard's AOF tail).
  Status Checkpoint();

  /// Scrub outcome type, aliased for source compatibility with the
  /// pre-sharding API (`QinDb::ScrubReport`). Defined in qindb/options.h.
  using ScrubReport = qindb::ScrubReport;

  /// Integrity scrub: verifies that every live memtable item points at a
  /// checksum-valid record carrying the right key/version, and that every
  /// live deduplicated item can resolve a value. The online analogue of the
  /// transmission-side checksum verification (Section 3) for data at rest.
  /// Meaningful when the engine is quiescent; while writers race it, entries
  /// mutated mid-scrub can be reported damaged spuriously. Sums the
  /// per-shard reports.
  Result<ScrubReport> Scrub();

  /// Ordered range scan over the live pairs of one version — the "advanced
  /// feature" hash-based flash stores give up (Section 6.1) and QinDB's
  /// sorted memtable provides for free. A k-way merge over the per-shard
  /// scanners (shard key sets are disjoint, so the merge never ties): the
  /// stream is globally key-ordered exactly as the unsharded scanner was.
  /// Each per-shard cursor pins the index that was current at construction;
  /// keys inserted afterwards may not be visible, and values of pairs
  /// deleted+collected concurrently may fail to read.
  class Scanner {
   public:
    bool Valid() const { return current_ != SIZE_MAX; }
    /// Positions at the first key >= `start`.
    void Seek(const Slice& start);
    void SeekToFirst() { Seek(Slice()); }
    void Next();
    Slice key() const { return parts_[current_].key(); }
    uint64_t version() const { return parts_[current_].version(); }
    /// Reads the value (possibly via traceback). Device I/O happens here.
    Result<std::string> value() const {
      if (current_ == SIZE_MAX) {
        return Status::InvalidArgument("scanner not positioned");
      }
      return parts_[current_].value();
    }

   private:
    friend class QinDb;
    explicit Scanner(std::vector<Shard::Scanner> parts)
        : parts_(std::move(parts)) {}
    /// Repositions current_ at the valid part with the smallest key.
    void FindMin();

    std::vector<Shard::Scanner> parts_;
    size_t current_ = SIZE_MAX;  // SIZE_MAX = not positioned / exhausted.
  };

  /// Scanner over the state at `version` (UINT64_MAX = newest of each key).
  Scanner NewScanner(uint64_t version = UINT64_MAX);

  /// RAII guard marking a logical read stream in flight (GC deferral).
  /// Guards may be taken from any thread and may nest. The counter is
  /// engine-wide: any in-flight read defers every shard's GC.
  class ReadGuard {
   public:
    explicit ReadGuard(QinDb* db) : db_(db) {
      db_->reads_in_flight_.fetch_add(1, std::memory_order_relaxed);
    }
    ~ReadGuard() {
      db_->reads_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    QinDb* db_;
  };

  /// Number of read streams currently in flight (GC deferral input).
  int reads_in_flight() const {
    return reads_in_flight_.load(std::memory_order_relaxed);
  }

  /// True once a write-path failure (I/O error, corruption, or invariant
  /// violation while appending, checkpointing, or collecting) has forced
  /// ANY shard into read-only degraded mode. A degraded shard fails every
  /// mutation routed to it with kIOError immediately — it fail-stops rather
  /// than risk acking writes onto a log in an unknown state — while reads
  /// keep serving the index built so far; other shards keep writing.
  /// Reopening the engine (a fresh Open over the same env) runs recovery
  /// and clears the condition.
  bool degraded() const;

  // --- Sharding surface -----------------------------------------------

  /// The resolved shard count (>= 1; fixed for the lifetime of the layout).
  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }

  /// The shard `key` routes to: Hash64(key, shard_hash_seed) % num_shards.
  /// Stable across reopens — the seed and count live in the manifest.
  uint32_t ShardOf(const Slice& key) const;

  /// Point-in-time counters of one shard (tests, the stats endpoint).
  ShardStatsSnapshot shard_stats(uint32_t shard) const {
    return shards_[shard]->StatsSnapshot();
  }

  /// Engine-wide cache and registry counters: the per-shard snapshots
  /// summed (the stats endpoint's one-line view of the read path).
  EngineCacheTotals CacheTotals() const;

  const QinDbStats& stats() const { return stats_; }
  const aof::GcStats& gc_stats() const { return gc_stats_; }

  /// One shard's current memtable index (default: shard 0 — THE memtable at
  /// num_shards=1). Quiescent inspection only; the reference can outlive
  /// the index across a concurrent GC rebuild.
  const MemIndex& memtable(size_t shard = 0) const {
    return shards_[shard]->memtable();
  }
  /// One shard's AOF manager (default: shard 0).
  aof::AofManager& aof(size_t shard = 0) { return shards_[shard]->aof(); }
  ssd::SsdEnv* env() { return env_; }

  /// Indexed (non-purged) memtable entries, summed over shards. Matches
  /// MemIndex::live_count semantics: deleted-flagged entries count until GC
  /// purges them.
  uint64_t LiveEntryCount() const;
  /// True if (key, version) is present (live or deleted) in its shard's
  /// memtable — the sharded replacement for memtable().FindExact checks.
  bool HasEntry(const Slice& key, uint64_t version) const;
  /// Live AOF bytes per the GC occupancy tables, summed over shards.
  uint64_t LiveBytes() const;
  /// Memtable arena bytes, summed over shards.
  uint64_t ApproximateMemtableBytes() const;
  /// Seals every shard's active segment (testing hook: makes all appended
  /// records durable-on-crash in one call).
  Status SealActive();

  /// On-device footprint (Figure 7's storage occupation).
  uint64_t DiskBytes() const { return env_->TotalFileBytes(); }

 private:
  QinDb(ssd::SsdEnv* env, const QinDbOptions& options);

  ssd::SsdEnv* env_;
  QinDbOptions options_;  // num_shards resolved against the manifest.

  /// Facade-owned aggregates every shard updates through pointers.
  QinDbStats stats_;
  aof::GcStats gc_stats_;
  std::atomic<int> reads_in_flight_{0};

  /// The shards, indexed by routing id. Immutable after Open.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace directload::qindb

#endif  // DIRECTLOAD_QINDB_QINDB_H_
