#ifndef DIRECTLOAD_QINDB_QINDB_H_
#define DIRECTLOAD_QINDB_QINDB_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aof/aof_manager.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "memtable/mem_index.h"
#include "qindb/write_batch.h"
#include "ssd/env.h"

namespace directload::qindb {

struct QinDbOptions {
  aof::AofOptions aof;

  /// Defer AOF GC while reads are in flight, unless disk usage crosses
  /// `gc_space_pressure` (fraction of device capacity). This is the paper's
  /// "GC will be deferred if there are ongoing reads and free disk space".
  bool defer_gc_during_reads = true;
  double gc_space_pressure = 0.85;

  /// Periodic checkpointing ("the memtable ... is checkpointed
  /// periodically", Section 2.1): after this many ingested bytes a
  /// checkpoint is written automatically. Zero disables it.
  uint64_t checkpoint_interval_bytes = 0;

  /// Run the lazy GC opportunistically at write boundaries. Disable to
  /// drive GC manually (benchmarks that isolate GC cost do this).
  bool auto_gc = true;

  /// Group commit. When on, concurrent writers enqueue their batches and
  /// the first thread into write_mutex_ becomes the leader: it drains the
  /// queue up to the budgets below and commits the whole group with one
  /// vectored AOF append. When off, every op takes the legacy
  /// one-append-per-record path (the A/B knob the benchmarks flip).
  bool group_commit = true;
  /// Budget caps for one commit group. The leader always takes at least one
  /// batch, even an oversized one, so a single huge batch cannot wedge.
  size_t group_commit_max_ops = 256;
  uint64_t group_commit_max_bytes = 1ull << 20;
};

/// Operation counters. All fields are atomics so that reader threads and the
/// writer can bump them concurrently; reads are monotonic but a multi-field
/// snapshot is not atomic as a whole.
struct QinDbStats {
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> dedup_puts{0};  // PUTs whose value was removed by Bifrost.
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> traceback_gets{0};  // GETs resolved via older versions.
  std::atomic<uint64_t> dels{0};
  std::atomic<uint64_t> gc_invocations{0};  // MaybeGc calls that collected.
  std::atomic<uint64_t> gc_deferrals{0};    // Victims existed but GC deferred.

  /// Application-level ingested bytes (keys + values of PUTs). This is the
  /// "User Write" of the paper's Figure 5.
  std::atomic<uint64_t> user_bytes_ingested{0};
};

/// QinDB: the paper's per-node key-value storage engine (Section 2.3).
/// Keys are versioned; the memory-resident skip list maps (key, version) to
/// record offsets in append-only files; the regular operations are mutated
/// to cope with deduplicated (value-less) pairs:
///
///   * Put appends the record — value or NULL — and inserts a memtable item
///     carrying the `r` (dedup) flag.
///   * Get reads the value through the memtable offset; for deduplicated
///     items it *tracebacks* to the newest older version that still carries
///     a value.
///   * Del only sets the `d` flag and updates the GC occupancy table; space
///     is reclaimed by the lazy AOF GC, which preserves deleted records that
///     are still referenced by later deduplicated versions (referents).
///
/// Thread model: mutations (Put/Del/DropVersion/Checkpoint/GC) are
/// serialized on write_mutex_ (rank LockRank::kQinDbWrite) — the paper's
/// writer threads map to caller threads contending on it. Reads
/// (Get/GetLatest/Scanner/Scrub) take no engine lock: they pin the current
/// memtable index with a refcount (shared_ptr) via the leaf pin_mu_ (rank
/// LockRank::kQinDbPin), traverse the skip list lock-free, and read sealed
/// AOF bytes under the AOF manager's shared lock. The lazy GC coordinates
/// with in-flight readers through that refcount plus a GC epoch counter: a
/// rebuilt index is swapped in while pinned readers keep the retired one
/// alive, relocations patch both, and a reader whose record read fails
/// retries when the epoch or the entry's address moved underneath it.
/// See docs/qindb_internals.md for the full rank table.
class QinDb {
 public:
  /// Opens (or recovers) an engine over `env`. If AOF segments exist, the
  /// memtable and GC table are rebuilt — from the checkpoint plus the
  /// post-checkpoint segment suffix when a valid checkpoint is present,
  /// otherwise by scanning the entire AOF space (the paper's recovery
  /// story).
  static Result<std::unique_ptr<QinDb>> Open(ssd::SsdEnv* env,
                                             const QinDbOptions& options);

  QinDb(const QinDb&) = delete;
  QinDb& operator=(const QinDb&) = delete;

  /// PUT(<k/t, v>). `dedup` marks a pair whose value Bifrost removed; the
  /// record is appended with a NULL value and the `r` flag set.
  Status Put(const Slice& key, uint64_t version, const Slice& value,
             bool dedup = false) EXCLUDES(write_mutex_);

  /// Applies the batch's ops strictly in order, committing them together
  /// (group commit: one vectored AOF append for the whole group). Fills
  /// batch.statuses() with one status per op — an invalid op (empty key,
  /// oversized record, Del of a missing pair) fails alone, exactly as the
  /// equivalent single-op call would, without affecting its neighbors.
  /// Returns the first non-OK per-op status (or the batch-wide failure when
  /// the group's append/checkpoint/GC failed). Concurrent readers may
  /// observe a prefix of the batch, but never a single key's version chain
  /// with an op applied out of order.
  Status Write(WriteBatch& batch) EXCLUDES(write_mutex_);

  /// GET(k/t): the value of `key` at exactly `version`, tracing back through
  /// older versions when the pair was deduplicated.
  Result<std::string> Get(const Slice& key, uint64_t version);

  /// The value of the newest non-deleted version of `key`.
  Result<std::string> GetLatest(const Slice& key);

  /// DEL(k/t): flags the pair deleted; physical reclamation is lazy.
  Status Del(const Slice& key, uint64_t version) EXCLUDES(write_mutex_);

  /// Flags every pair of `version` deleted (the paper's deletion thread
  /// dropping the oldest of the four retained versions). Returns the number
  /// of pairs flagged.
  Result<uint64_t> DropVersion(uint64_t version) EXCLUDES(write_mutex_);

  /// Inventory of live (non-deleted) pairs per version — what the deletion
  /// thread consults to decide which version to retire ("at most four
  /// versions of index data persist", Section 1.1.2).
  std::map<uint64_t, uint64_t> VersionCounts() const;

  /// Runs the lazy GC policy: collects victim segments (occupancy <=
  /// threshold) unless deferred by ongoing reads with free space remaining.
  Status MaybeGc() EXCLUDES(write_mutex_);

  /// Collects all victims regardless of the deferral policy.
  Status ForceGc() EXCLUDES(write_mutex_);

  /// Seals the active segment and persists a checkpoint of the memtable and
  /// GC table, so a subsequent Open avoids the full AOF scan.
  Status Checkpoint() EXCLUDES(write_mutex_);

  /// Integrity scrub: verifies that every live memtable item points at a
  /// checksum-valid record carrying the right key/version, and that every
  /// live deduplicated item can resolve a value. The online analogue of the
  /// transmission-side checksum verification (Section 3) for data at rest.
  /// Meaningful when the engine is quiescent; while writers race it, entries
  /// mutated mid-scrub can be reported damaged spuriously.
  struct ScrubReport {
    uint64_t entries_checked = 0;
    uint64_t bytes_verified = 0;
    uint64_t damaged_entries = 0;       // Checksum / identity failures.
    uint64_t unresolvable_dedups = 0;   // Broken traceback chains.

    bool clean() const {
      return damaged_entries == 0 && unresolvable_dedups == 0;
    }
  };
  Result<ScrubReport> Scrub();

  /// Ordered range scan over the live pairs of one version — the "advanced
  /// feature" hash-based flash stores give up (Section 6.1) and QinDB's
  /// sorted memtable provides for free. The scanner sees the newest
  /// non-deleted version of each key at or below `version`, resolving
  /// deduplicated pairs by traceback. The scanner pins the index that was
  /// current at construction; keys inserted afterwards may not be visible,
  /// and values of pairs deleted+collected concurrently may fail to read.
  class Scanner {
   public:
    bool Valid() const { return valid_; }
    /// Positions at the first key >= `start`.
    void Seek(const Slice& start);
    void SeekToFirst() { Seek(Slice()); }
    void Next();
    Slice key() const { return current_->user_key(); }
    uint64_t version() const { return current_->version; }
    /// Reads the value (possibly via traceback). Device I/O happens here.
    Result<std::string> value() const;

   private:
    friend class QinDb;
    Scanner(QinDb* db, uint64_t version);
    /// Walks key runs until one has a visible entry at `version_`.
    void FindVisibleEntry();

    QinDb* db_;
    uint64_t version_;
    std::shared_ptr<const MemIndex> index_;  // Keeps entries alive across GC.
    MemIndex::Iterator it_;
    MemEntry* current_ = nullptr;
    bool valid_ = false;
  };

  /// Scanner over the state at `version` (UINT64_MAX = newest of each key).
  Scanner NewScanner(uint64_t version = UINT64_MAX);

  /// RAII guard marking a logical read stream in flight (GC deferral).
  /// Guards may be taken from any thread and may nest.
  class ReadGuard {
   public:
    explicit ReadGuard(QinDb* db) : db_(db) {
      db_->reads_in_flight_.fetch_add(1, std::memory_order_relaxed);
    }
    ~ReadGuard() {
      db_->reads_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    QinDb* db_;
  };

  /// Number of read streams currently in flight (GC deferral input).
  int reads_in_flight() const {
    return reads_in_flight_.load(std::memory_order_relaxed);
  }

  /// True once a write-path failure (I/O error, corruption, or invariant
  /// violation while appending, checkpointing, or collecting) has forced the
  /// engine into read-only degraded mode. Degraded, every mutation returns
  /// kIOError immediately — the engine fail-stops rather than risk acking
  /// writes onto a log in an unknown state — while Get/GetLatest/Scanner
  /// keep serving the index built so far. Reopening the engine (a fresh
  /// Open over the same env) runs recovery and clears the condition.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  const QinDbStats& stats() const { return stats_; }
  const aof::GcStats& gc_stats() const { return aof_->gc_stats(); }
  /// The current memtable index. The reference can outlive the index across
  /// a concurrent GC rebuild; use PinIndex-based readers (Get/Scanner) for
  /// cross-thread access and this accessor for quiescent inspection.
  const MemIndex& memtable() const EXCLUDES(pin_mu_) {
    MutexLock lock(&pin_mu_);
    return *mem_;
  }
  aof::AofManager& aof() { return *aof_; }
  ssd::SsdEnv* env() { return env_; }

  /// On-device footprint (Figure 7's storage occupation).
  uint64_t DiskBytes() const { return env_->TotalFileBytes(); }

 private:
  QinDb(ssd::SsdEnv* env, const QinDbOptions& options);

  Status RecoverFromScan(uint32_t min_segment) REQUIRES(write_mutex_);
  Status LoadCheckpoint(const std::string& name, bool* loaded,
                        std::map<uint32_t, aof::SegmentMeta>* metas,
                        uint32_t* next_segment) REQUIRES(write_mutex_);
  Status ApplyCheckpointEntries() REQUIRES(write_mutex_);
  Status InvalidateCheckpoint() REQUIRES(write_mutex_);

  /// Takes a refcount on the current index so its entries (and arena) stay
  /// alive even if GC swaps in a rebuilt index meanwhile.
  std::shared_ptr<const MemIndex> PinIndex() const EXCLUDES(pin_mu_);

  /// The raw current-index pointer, for mutators running under
  /// write_mutex_: takes pin_mu_ only for the pointer copy, and the index
  /// stays alive because only CollectVictimsLocked — itself serialized on
  /// write_mutex_ — retires indices.
  MemIndex* CurrentIndex() const EXCLUDES(pin_mu_);

  /// Reads the value bytes of a memtable entry's record, retrying when the
  /// record was relocated by GC or superseded by a re-PUT mid-read.
  Result<std::string> ReadEntryValue(const MemEntry* entry);

  /// Routes a mutation-path status: failures that can leave the log or its
  /// accounting torn (kIOError/kCorruption/kInternal) trip degraded mode.
  /// Environmental rejections (kNoSpace, kInvalidArgument, kNotFound, an
  /// injected transient) pass through untouched. Returns `s` either way.
  Status NoteWriteError(Status s);
  /// The degraded-mode gate every mutation entry point runs first.
  Status CheckWritable() const;

  // *Locked variants require write_mutex_ held by the caller.
  Status MaybeGcLocked() REQUIRES(write_mutex_);
  Status CollectVictimsLocked() REQUIRES(write_mutex_);
  Status CheckpointLocked() REQUIRES(write_mutex_);

  // Legacy single-append mutation bodies (group_commit off). Shared by the
  // public entry points and the ungrouped WriteBatch path.
  Status PutLocked(const Slice& key, uint64_t version, const Slice& value,
                   bool dedup) REQUIRES(write_mutex_);
  Status DelLocked(const Slice& key, uint64_t version)
      REQUIRES(write_mutex_);
  Result<uint64_t> DropVersionLocked(uint64_t version)
      REQUIRES(write_mutex_);

  /// One writer's batch waiting in the group-commit queue. Lives on the
  /// waiting thread's stack; the leader publishes `overall` and `done`
  /// under batch_mu_, and the owner cannot return before observing done.
  struct PendingWrite {
    explicit PendingWrite(WriteBatch* b) : batch(b) {}
    WriteBatch* batch;
    bool done = false;
    Status overall;
    /// Record bytes for the batch's valid Put ops, encoded (checksums and
    /// all) by the OWNING thread before it enqueued — the dominant per-op
    /// cost runs in parallel across writers instead of on the leader.
    /// `spans[i]` is (offset, length) into `encoded` for op i; length 0
    /// means not pre-encoded (non-Put or invalid — the leader decides).
    std::string encoded;
    std::vector<std::pair<size_t, size_t>> spans;
  };

  /// Applies each batch ungrouped: one lock hold, legacy per-record appends
  /// (the pre-group-commit write path, preserved as the benchmark baseline).
  Status WriteUngrouped(WriteBatch& batch) EXCLUDES(write_mutex_);

  /// The leader's commit: plans every op in order, appends all records with
  /// one AofManager::AppendMany, applies the memtable mutations in op order,
  /// and stamps per-op statuses + per-batch overall results into the group.
  void CommitGroupLocked(const std::vector<PendingWrite*>& group)
      REQUIRES(write_mutex_) EXCLUDES(batch_mu_);

  ssd::SsdEnv* env_;
  QinDbOptions options_;

  /// Serializes all mutations: Put/Del/DropVersion/Checkpoint/GC. First in
  /// the documented lock order (LockRank::kQinDbWrite): acquired before any
  /// AofManager or env lock.
  Mutex write_mutex_{LockRank::kQinDbWrite, "qindb-write"};

  /// The group-commit pending queue. Writers enqueue under it *before*
  /// contending on write_mutex_, so batches pile up while a leader commits;
  /// the queue FRONT is the only thread that ever touches write_mutex_ —
  /// everyone else parks on batch_cv_ and returns as soon as a leader marks
  /// its batch done, without a write_mutex_ handoff per follower. Taken
  /// either standalone (enqueue/park) or under write_mutex_ (drain/publish)
  /// — never the other way around — and nothing is acquired while holding
  /// it.
  Mutex batch_mu_{LockRank::kQinDbBatchQueue, "qindb-batch-queue"};
  CondVar batch_cv_{&batch_mu_};
  std::deque<PendingWrite*> write_queue_ GUARDED_BY(batch_mu_);

  /// Guards the mem_ pointer itself (not the index contents). Readers take
  /// it briefly to copy the shared_ptr; GC takes it to swap in a rebuild.
  /// Leaf lock (LockRank::kQinDbPin): taken under write_mutex_, under the
  /// AOF manager's lock (GC classify callbacks), or standalone by readers.
  mutable Mutex pin_mu_{LockRank::kQinDbPin, "qindb-pin"};
  std::shared_ptr<MemIndex> mem_ GUARDED_BY(pin_mu_);
  /// Indices retired by GC rebuilds that pinned readers may still traverse.
  /// Relocations patch these too so stale snapshots keep resolving reads.
  std::vector<std::weak_ptr<MemIndex>> retired_ GUARDED_BY(pin_mu_);

  std::unique_ptr<aof::AofManager> aof_;
  QinDbStats stats_;
  std::atomic<int> reads_in_flight_{0};
  /// Set by NoteWriteError, never cleared in-process; see degraded().
  std::atomic<bool> degraded_{false};
  /// Bumped whenever GC relocates records; readers use it to detect that a
  /// failed record read raced a collection and should be retried.
  std::atomic<uint64_t> gc_epoch_{0};
  uint64_t bytes_at_last_checkpoint_ GUARDED_BY(write_mutex_) = 0;
  bool checkpoint_valid_ GUARDED_BY(write_mutex_) = false;
  /// Deserialized entries awaiting apply.
  std::string pending_checkpoint_ GUARDED_BY(write_mutex_);
};

}  // namespace directload::qindb

#endif  // DIRECTLOAD_QINDB_QINDB_H_
