#include "qindb/block_cache.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace directload::qindb {

namespace {

constexpr size_t kNumStripes = 4;

/// Bookkeeping bytes charged per entry on top of the key/value payload:
/// two list pointers, the hash-map slot, and the Entry header. An estimate,
/// deliberately on the high side so the real footprint stays under budget.
constexpr uint64_t kEntryOverhead = 64;

/// splitmix64 finalizer: cheap, full-avalanche mixing of the packed
/// address (whose low bits are file offsets with poor entropy).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string StripeName(uint32_t shard_id, size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "qindb-cache/s%02u/%zu", shard_id, index);
  return buf;
}

}  // namespace

void BlockCache::FrequencySketch::Init(uint64_t budget_bytes) {
  // One counter per ~256 budget bytes: enough resolution to rank a working
  // set several times larger than the cache, at <0.5% of the budget in
  // sketch overhead.
  uint64_t want = budget_bytes / 256;
  want = std::clamp<uint64_t>(want, 256, 1u << 18);
  uint64_t size = 256;
  while (size < want) size <<= 1;
  counters.assign(size, 0);
  mask = size - 1;
  observations = 0;
}

void BlockCache::FrequencySketch::Observe(uint64_t hash) {
  const uint64_t h2 = (hash >> 32) | (hash << 32);
  const uint32_t current = Estimate(hash);
  for (uint64_t i = 0; i < 4; ++i) {
    uint8_t& c = counters[(hash + i * h2) & mask];
    // Conservative update: only the minimal counters advance, which keeps
    // unrelated keys sharing a slot from inflating each other.
    if (c == current && c < 255) ++c;
  }
  if (++observations >= counters.size() * 8) Age();
}

uint32_t BlockCache::FrequencySketch::Estimate(uint64_t hash) const {
  const uint64_t h2 = (hash >> 32) | (hash << 32);
  uint32_t min = 255;
  for (uint64_t i = 0; i < 4; ++i) {
    min = std::min<uint32_t>(min, counters[(hash + i * h2) & mask]);
  }
  return min;
}

void BlockCache::FrequencySketch::Age() {
  // Halving keeps relative order while decaying history, so a key that was
  // hot an hour ago cannot block today's working set forever.
  for (uint8_t& c : counters) c >>= 1;
  observations = 0;
}

BlockCache::Stripe::Stripe(uint64_t stripe_budget, uint32_t shard_id,
                           size_t idx)
    : name_storage(StripeName(shard_id, idx)),
      mu_(LockRank::kQinDbBlockCache, name_storage.c_str()),
      budget(stripe_budget),
      protected_cap(stripe_budget - stripe_budget / 5) {
  MutexLock lock(&mu_);
  sketch.Init(stripe_budget);
}

BlockCache::BlockCache(uint64_t budget_bytes, uint32_t shard_id)
    : budget_bytes_(budget_bytes) {
  stripes_.reserve(kNumStripes);
  for (size_t i = 0; i < kNumStripes; ++i) {
    stripes_.push_back(
        std::make_unique<Stripe>(budget_bytes / kNumStripes, shard_id, i));
  }
}

BlockCache::Stripe& BlockCache::StripeFor(uint64_t address) {
  return *stripes_[(Mix64(address) >> 60) & (kNumStripes - 1)];
}

bool BlockCache::Lookup(uint64_t address, const Slice& key, uint64_t version,
                        std::string* value) {
  Stripe& s = StripeFor(address);
  const uint64_t h = Mix64(address);
  MutexLock lock(&s.mu_);
  s.sketch.Observe(h);
  auto it = s.index.find(address);
  if (it == s.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  EntryList::iterator node = it->second;
  if (node->version != version || Slice(node->key) != key) {
    // Identity mismatch: an invalidation site was missed. Never serve the
    // bytes; drop the entry and fall through to the device.
    RemoveLocked(s, node);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (node->is_protected) {
    s.prot.splice(s.prot.begin(), s.prot, node);
  } else {
    // First repeat hit: promote into the protected segment, demoting its
    // coldest entries back to probation until the cap holds again.
    s.prot.splice(s.prot.begin(), s.probation, node);
    node->is_protected = true;
    s.protected_bytes += node->charge;
    while (s.protected_bytes > s.protected_cap && s.prot.size() > 1) {
      EntryList::iterator tail = std::prev(s.prot.end());
      tail->is_protected = false;
      s.protected_bytes -= tail->charge;
      s.probation.splice(s.probation.begin(), s.prot, tail);
    }
  }
  *value = node->value;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void BlockCache::Insert(uint64_t address, const Slice& key, uint64_t version,
                        const Slice& value) {
  Stripe& s = StripeFor(address);
  const uint64_t h = Mix64(address);
  const uint64_t charge = key.size() + value.size() + kEntryOverhead;
  MutexLock lock(&s.mu_);
  if (s.index.find(address) != s.index.end()) {
    // Records are immutable once written: the cached bytes are the bytes.
    return;
  }
  if (charge > s.budget) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!MakeRoomLocked(s, charge,
                      static_cast<int64_t>(s.sketch.Estimate(h)))) {
    admission_rejects_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Entry e;
  e.address = address;
  e.version = version;
  e.key = key.ToString();
  e.value = value.ToString();
  e.charge = charge;
  e.is_protected = false;
  InsertEntryLocked(s, std::move(e));
  inserts_.fetch_add(1, std::memory_order_relaxed);
}

void BlockCache::Erase(uint64_t address) {
  Stripe& s = StripeFor(address);
  MutexLock lock(&s.mu_);
  auto it = s.index.find(address);
  if (it != s.index.end()) RemoveLocked(s, it->second);
}

void BlockCache::Rekey(uint64_t old_address, uint64_t new_address) {
  if (old_address == new_address) return;
  Stripe& from = StripeFor(old_address);
  Stripe& to = StripeFor(new_address);
  if (&from == &to) {
    MutexLock lock(&from.mu_);
    auto it = from.index.find(old_address);
    if (it == from.index.end()) return;
    EntryList::iterator node = it->second;
    from.index.erase(it);
    // Addresses are never reused, so the new slot must be empty; stay
    // defensive and drop any impostor rather than leaving two mappings.
    auto prev = from.index.find(new_address);
    if (prev != from.index.end()) RemoveLocked(from, prev->second);
    node->address = new_address;
    from.index.emplace(new_address, node);
    return;
  }
  // The stripes share a rank, so the two locks are taken one after the
  // other, never nested: extract under the old stripe's lock, re-insert
  // under the new one's.
  Entry moved;
  {
    MutexLock lock(&from.mu_);
    auto it = from.index.find(old_address);
    if (it == from.index.end()) return;
    moved = std::move(*it->second);
    RemoveLocked(from, it->second);
  }
  moved.address = new_address;
  MutexLock lock(&to.mu_);
  auto prev = to.index.find(new_address);
  if (prev != to.index.end()) RemoveLocked(to, prev->second);
  if (moved.charge > to.budget) return;
  MakeRoomLocked(to, moved.charge, -1);  // freq < 0: plain eviction, no duel.
  InsertEntryLocked(to, std::move(moved));
}

BlockCache::Stats BlockCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.inserts = inserts_.load(std::memory_order_relaxed);
  out.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  out.evicted_bytes = evicted_bytes_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Stripe>& s : stripes_) {
    MutexLock lock(&s->mu_);
    out.charged_bytes += s->charged;
    out.entries += s->index.size();
  }
  return out;
}

bool BlockCache::MakeRoomLocked(Stripe& s, uint64_t incoming,
                                int64_t candidate_freq) {
  while (s.charged + incoming > s.budget) {
    EntryList& victims = s.probation.empty() ? s.prot : s.probation;
    if (victims.empty()) return true;  // Nothing cached; caller bounded size.
    EntryList::iterator victim = std::prev(victims.end());
    if (candidate_freq >= 0) {
      // TinyLFU duel: the newcomer must beat the victim's frequency, or a
      // one-touch scan would churn the whole segment through the cache.
      const int64_t victim_freq = s.sketch.Estimate(Mix64(victim->address));
      if (victim_freq >= candidate_freq) return false;
    }
    evicted_bytes_.fetch_add(victim->charge, std::memory_order_relaxed);
    RemoveLocked(s, victim);
  }
  return true;
}

void BlockCache::RemoveLocked(Stripe& s, EntryList::iterator it) {
  s.index.erase(it->address);
  s.charged -= it->charge;
  if (it->is_protected) {
    s.protected_bytes -= it->charge;
    s.prot.erase(it);
  } else {
    s.probation.erase(it);
  }
}

void BlockCache::InsertEntryLocked(Stripe& s, Entry&& entry) {
  const uint64_t charge = entry.charge;
  const bool into_protected = entry.is_protected;
  EntryList& list = into_protected ? s.prot : s.probation;
  list.push_front(std::move(entry));
  s.index.emplace(list.begin()->address, list.begin());
  s.charged += charge;
  if (into_protected) {
    s.protected_bytes += charge;
    while (s.protected_bytes > s.protected_cap && s.prot.size() > 1) {
      EntryList::iterator tail = std::prev(s.prot.end());
      tail->is_protected = false;
      s.protected_bytes -= tail->charge;
      s.probation.splice(s.probation.begin(), s.prot, tail);
    }
  }
}

}  // namespace directload::qindb
