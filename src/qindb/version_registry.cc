#include "qindb/version_registry.h"

#include <cstdio>

namespace directload::qindb {

namespace {

std::string RegistryLockName(uint32_t shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "qindb-registry/s%02u", shard_id);
  return buf;
}

}  // namespace

VersionIndexRegistry::VersionIndexRegistry(uint64_t budget_bytes,
                                           uint32_t shard_id)
    : budget_bytes_(budget_bytes),
      lock_name_(RegistryLockName(shard_id)),
      mu_(LockRank::kQinDbVersionRegistry, lock_name_.c_str()) {}

bool VersionIndexRegistry::IsCold(uint64_t version) const {
  MutexLock lock(&mu_);
  return cold_.find(version) != cold_.end();
}

bool VersionIndexRegistry::PeekCold(uint64_t version,
                                    ColdVersion* meta) const {
  MutexLock lock(&mu_);
  auto it = cold_.find(version);
  if (it == cold_.end()) return false;
  *meta = it->second;
  return true;
}

bool VersionIndexRegistry::IsColdLive(uint64_t version,
                                      uint64_t packed) const {
  MutexLock lock(&mu_);
  auto it = cold_.find(version);
  if (it == cold_.end()) return false;
  return it->second.live_addresses.count(packed) != 0;
}

void VersionIndexRegistry::RekeyCold(uint64_t version, uint64_t old_packed,
                                     uint64_t new_packed) {
  MutexLock lock(&mu_);
  auto it = cold_.find(version);
  if (it == cold_.end()) return;
  if (it->second.live_addresses.erase(old_packed) != 0) {
    it->second.live_addresses.insert(new_packed);
  }
}

std::map<uint64_t, VersionIndexRegistry::ColdVersion>
VersionIndexRegistry::ColdSnapshot() const {
  MutexLock lock(&mu_);
  return cold_;
}

void VersionIndexRegistry::MarkCold(uint64_t version,
                                    const ColdVersion& meta) {
  MutexLock lock(&mu_);
  if (cold_.emplace(version, meta).second) {
    cold_count_.fetch_add(1, std::memory_order_relaxed);
    unloads_.fetch_add(1, std::memory_order_relaxed);
  }
}

void VersionIndexRegistry::MarkResident(uint64_t version) {
  MutexLock lock(&mu_);
  if (cold_.erase(version) != 0) {
    cold_count_.fetch_sub(1, std::memory_order_relaxed);
    loads_.fetch_add(1, std::memory_order_relaxed);
  }
}

void VersionIndexRegistry::Forget(uint64_t version) {
  MutexLock lock(&mu_);
  if (cold_.erase(version) != 0) {
    cold_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  access_tick_.erase(version);
}

void VersionIndexRegistry::Touch(uint64_t version) {
  MutexLock lock(&mu_);
  access_tick_[version] = ++tick_;
}

uint64_t VersionIndexRegistry::TickOf(uint64_t version) const {
  MutexLock lock(&mu_);
  auto it = access_tick_.find(version);
  return it == access_tick_.end() ? 0 : it->second;
}

std::shared_ptr<void> VersionIndexRegistry::AcquireScanPin() {
  scan_pins_.fetch_add(1, std::memory_order_relaxed);
  std::atomic<uint64_t>* pins = &scan_pins_;
  // The token's only job is to decrement on destruction of the last copy.
  return std::shared_ptr<void>(
      nullptr, [pins](void*) { pins->fetch_sub(1, std::memory_order_relaxed); });
}

VersionIndexRegistry::Stats VersionIndexRegistry::stats() const {
  Stats out;
  out.loads = loads_.load(std::memory_order_relaxed);
  out.unloads = unloads_.load(std::memory_order_relaxed);
  out.cold_versions = cold_count_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace directload::qindb
