#ifndef DIRECTLOAD_QINDB_OPTIONS_H_
#define DIRECTLOAD_QINDB_OPTIONS_H_

#include <atomic>
#include <cstdint>

#include "aof/aof_manager.h"

namespace directload::qindb {

struct QinDbOptions {
  aof::AofOptions aof;

  /// Number of independent shards the engine is partitioned into. Each shard
  /// owns its memtable index, AOF segment set (with its own occupancy/GC),
  /// and group-commit queue; keys are hash-routed so concurrent writers on
  /// different shards commit in parallel. Zero (the default) resolves to
  /// hardware_concurrency at first open, and to the persisted shard count on
  /// reopen; a nonzero value is validated against the shard manifest — a
  /// mismatch fails the open rather than silently misrouting keys. One shard
  /// reproduces the pre-sharding engine byte-for-byte (legacy file names, no
  /// manifest-routing overhead on reads).
  uint32_t num_shards = 0;

  /// Seed of the routing hash (shard = Hash64(key, seed) % num_shards),
  /// persisted in the shard manifest so every reopen routes identically.
  uint64_t shard_hash_seed = 0x51494e44u;  // "QIND"

  /// Defer AOF GC while reads are in flight, unless disk usage crosses
  /// `gc_space_pressure` (fraction of device capacity). This is the paper's
  /// "GC will be deferred if there are ongoing reads and free disk space".
  bool defer_gc_during_reads = true;
  double gc_space_pressure = 0.85;

  /// Periodic checkpointing ("the memtable ... is checkpointed
  /// periodically", Section 2.1): after this many ingested bytes a
  /// checkpoint is written automatically. Zero disables it. Sharded, each
  /// shard tracks its own ingested bytes against this interval, so
  /// checkpoint work stays proportional to per-shard ingest.
  uint64_t checkpoint_interval_bytes = 0;

  /// Run the lazy GC opportunistically at write boundaries. Disable to
  /// drive GC manually (benchmarks that isolate GC cost do this).
  bool auto_gc = true;

  /// Byte budget for the AOF block cache, split evenly across shards. Cache
  /// hits serve `Get` values straight from memory without touching the
  /// device; a TinyLFU admission filter keeps one-touch scans from washing
  /// out the hot set. Zero (the default) disables the cache entirely — the
  /// read path then has no cache branches beyond one null check.
  uint64_t cache_bytes = 0;

  /// Byte budget for resident memtable index memory, split evenly across
  /// shards. When a shard's index arena exceeds its slice, cold versions
  /// (least recently read, and only when provably safe — no deleted
  /// entries, no dedup chains through them) unload to version metadata and
  /// re-materialize on first access by replaying their AOF records. Zero
  /// (the default) keeps every version resident forever.
  uint64_t index_memory_bytes = 0;

  /// Group commit. When on, concurrent writers enqueue their batches and
  /// the first thread into the shard's write mutex becomes the leader: it
  /// drains the queue up to the budgets below and commits the whole group
  /// with one vectored AOF append. When off, every op takes the legacy
  /// one-append-per-record path (the A/B knob the benchmarks flip).
  bool group_commit = true;
  /// Budget caps for one commit group. The leader always takes at least one
  /// batch, even an oversized one, so a single huge batch cannot wedge.
  size_t group_commit_max_ops = 256;
  uint64_t group_commit_max_bytes = 1ull << 20;
};

/// Operation counters. All fields are atomics so that reader threads and the
/// writer can bump them concurrently; reads are monotonic but a multi-field
/// snapshot is not atomic as a whole. One instance is owned by the engine
/// facade and shared by every shard.
struct QinDbStats {
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> dedup_puts{0};  // PUTs whose value was removed by Bifrost.
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> traceback_gets{0};  // GETs resolved via older versions.
  std::atomic<uint64_t> dels{0};
  std::atomic<uint64_t> gc_invocations{0};  // MaybeGc calls that collected.
  std::atomic<uint64_t> gc_deferrals{0};    // Victims existed but GC deferred.

  /// Application-level ingested bytes (keys + values of PUTs). This is the
  /// "User Write" of the paper's Figure 5.
  std::atomic<uint64_t> user_bytes_ingested{0};
};

/// Result of an integrity scrub (see QinDb::Scrub). Sharded scrubs sum the
/// per-shard reports field-wise.
struct ScrubReport {
  uint64_t entries_checked = 0;
  uint64_t bytes_verified = 0;
  uint64_t damaged_entries = 0;       // Checksum / identity failures.
  uint64_t unresolvable_dedups = 0;   // Broken traceback chains.

  bool clean() const {
    return damaged_entries == 0 && unresolvable_dedups == 0;
  }
};

/// Point-in-time, per-shard view of the counters a sharding-aware caller
/// (tests, the stats endpoint) wants without aggregation.
struct ShardStatsSnapshot {
  uint32_t shard_id = 0;
  uint64_t puts = 0;
  uint64_t dels = 0;
  uint64_t user_bytes_ingested = 0;
  uint64_t live_entries = 0;
  size_t segments = 0;
  bool degraded = false;

  // Block cache (all zero when the cache is disabled).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_admission_rejects = 0;
  uint64_t cache_evicted_bytes = 0;
  uint64_t cache_charged_bytes = 0;

  // Version-index registry (all zero when lazy indexes are disabled).
  uint64_t index_loads = 0;
  uint64_t index_unloads = 0;
  uint64_t resident_versions = 0;
  uint64_t cold_versions = 0;
};

/// Facade-level sum of the per-shard snapshots (see QinDb::TotalStats).
struct EngineCacheTotals {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_admission_rejects = 0;
  uint64_t cache_evicted_bytes = 0;
  uint64_t cache_charged_bytes = 0;
  uint64_t index_loads = 0;
  uint64_t index_unloads = 0;
  uint64_t resident_versions = 0;
  uint64_t cold_versions = 0;
};

}  // namespace directload::qindb

#endif  // DIRECTLOAD_QINDB_OPTIONS_H_
