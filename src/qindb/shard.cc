#include "qindb/shard.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/failpoint.h"

namespace directload::qindb {

namespace {

// Shard-internal failpoints: the startup scan and the checkpoint writer,
// the two paths whose failures matter most for recovery testing. They fire
// once per SHARD (recovery and checkpointing are per-shard operations);
// the API-level qindb_put/get/del points live in the facade (qindb.cc) and
// fire once per call. Deeper faults come from the aof_*/ssd_* points.
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_recovery_scan, "qindb_recovery_scan");
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_checkpoint, "qindb_checkpoint");
// Fires at the top of a bulk IngestRun, before the vectored append: the
// injection point for "the slice landed on the server but the engine could
// not persist it" (the loader retries or aborts; the session survives).
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_ingest_append, "qindb_ingest_append");

constexpr char kCheckpointName[] = "checkpoint.dat";
constexpr char kCheckpointTemp[] = "checkpoint.tmp";
constexpr uint64_t kCheckpointMagic = 0x51494e4443484b50ull;  // "QINDCHKP"

// Per-entry flag bits in the checkpoint serialization.
constexpr uint8_t kCkptDedup = 1u << 0;
constexpr uint8_t kCkptDeleted = 1u << 1;

std::string ShardLockName(const char* base, uint32_t shard_id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s/s%02u", base, shard_id);
  return buf;
}

/// RAII bump of the engine-wide reads-in-flight counter (GC deferral).
/// Shard-internal readers (Get, Scrub, Scanner::value) count like facade
/// ReadGuards so a shard's GC defers for reads against any shard.
struct FlightGuard {
  explicit FlightGuard(std::atomic<int>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~FlightGuard() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  FlightGuard(const FlightGuard&) = delete;
  FlightGuard& operator=(const FlightGuard&) = delete;

  std::atomic<int>* counter_;
};

uint64_t EntryExtent(const MemEntry* e) {
  return aof::RecordExtent(e->key_size,
                           e->value_size.load(std::memory_order_acquire));
}

/// Destination for occupancy updates. Recovery runs inside
/// AofManager::Scan — which holds the manager's lock shared — so marking a
/// record dead there would self-deadlock; the recovery path buffers into
/// `deferred` and the shard applies the batch after the scan returns.
/// Runtime mutators (not under any AOF lock) mark directly.
struct DeadSink {
  aof::AofManager* aof = nullptr;
  std::vector<std::pair<aof::RecordAddress, uint64_t>>* deferred = nullptr;

  void MarkDead(const aof::RecordAddress& addr, uint64_t extent) const {
    if (deferred != nullptr) {
      deferred->emplace_back(addr, extent);
    } else {
      aof->MarkDead(addr, extent);
    }
  }
};

/// True if the record of (key, version) is still referenced by a newer,
/// live, deduplicated version (Figure 2's "invalid key-value pairs that
/// are referred by later version keys"). Free functions over an explicit
/// index (rather than Shard members) so the GC callbacks — which execute
/// with the AOF manager's lock held — can call them against a pre-captured
/// index pointer without touching the shard's guarded state.
bool IsReferentIn(const MemIndex& idx, const Slice& key, uint64_t version) {
  // Walk the versions strictly newer than `version`, nearest first. The
  // record stays needed while the contiguous run of deduplicated versions
  // above it contains at least one live one.
  std::vector<MemEntry*> entries = idx.EntriesForKey(key);  // Newest first.
  // Find the first index whose version is <= `version`; walk upwards.
  size_t at = entries.size();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i]->version <= version) {
      at = i;
      break;
    }
  }
  for (size_t i = at; i-- > 0;) {  // Increasing version order.
    MemEntry* e = entries[i];
    if (!e->dedup) return false;  // Carries its own value: chain broken.
    if (!e->deleted) return true;
  }
  return false;
}

/// Marks the record behind `entry` dead in the occupancy table unless it is
/// still a referent.
void MarkDeadUnlessReferent(const MemIndex& idx, const DeadSink& sink,
                            MemEntry* entry) {
  if (!IsReferentIn(idx, entry->user_key(), entry->version)) {
    sink.MarkDead(aof::RecordAddress::Unpack(entry->address),
                  EntryExtent(entry));
  }
}

void ApplyDeleteAccounting(const MemIndex& idx, const DeadSink& sink,
                           MemEntry* entry) {
  const Slice key = entry->user_key();
  if (entry->dedup) {
    // The NULL record itself is dead the moment the pair is deleted.
    sink.MarkDead(aof::RecordAddress::Unpack(entry->address),
                  EntryExtent(entry));
    // The value it resolved to may have just lost its last referent.
    MemEntry* target = idx.TracebackValue(key, entry->version);
    if (target != nullptr && target->deleted) {
      MarkDeadUnlessReferent(idx, sink, target);
    }
  } else {
    // A value-bearing record stays live while newer deduplicated versions
    // reference it.
    MarkDeadUnlessReferent(idx, sink, entry);
  }
}

}  // namespace

Shard::Shard(ssd::SsdEnv* env, const QinDbOptions& options, uint32_t shard_id,
             QinDbStats* stats, std::atomic<int>* reads_in_flight)
    : env_(env),
      options_(options),
      shard_id_(shard_id),
      checkpoint_name_(options.aof.file_prefix + kCheckpointName),
      checkpoint_temp_(options.aof.file_prefix + kCheckpointTemp),
      write_name_(ShardLockName("qindb-write", shard_id)),
      queue_name_(ShardLockName("qindb-batch-queue", shard_id)),
      pin_name_(ShardLockName("qindb-pin", shard_id)),
      write_mutex_(LockRank::kQinDbWrite, write_name_.c_str()),
      batch_mu_(LockRank::kQinDbBatchQueue, queue_name_.c_str()),
      pin_mu_(LockRank::kQinDbPin, pin_name_.c_str()),
      stats_(stats),
      reads_in_flight_(reads_in_flight) {}

Result<std::unique_ptr<Shard>> Shard::Open(ssd::SsdEnv* env,
                                           const QinDbOptions& options,
                                           uint32_t shard_id,
                                           QinDbStats* stats,
                                           std::atomic<int>* reads_in_flight) {
  std::unique_ptr<Shard> shard(
      new Shard(env, options, shard_id, stats, reads_in_flight));
  // Nothing else can reach the shard yet; hold the write mutex anyway so
  // the recovery helpers see their capability held.
  MutexLock lock(&shard->write_mutex_);
  {
    MutexLock pin(&shard->pin_mu_);
    shard->mem_ = std::make_shared<MemIndex>();
  }

  std::map<uint32_t, aof::SegmentMeta> metas;
  uint32_t next_segment = 0;
  bool checkpoint_loaded = false;
  if (env->FileExists(shard->checkpoint_name_)) {
    Status s = shard->LoadCheckpoint(shard->checkpoint_name_,
                                     &checkpoint_loaded, &metas,
                                     &next_segment);
    if (!s.ok() && !s.IsCorruption()) return s;
    // A corrupt checkpoint is ignored; recovery falls back to the full scan.
  }

  Result<std::unique_ptr<aof::AofManager>> mgr = aof::AofManager::Open(
      env, options.aof, checkpoint_loaded ? &metas : nullptr);
  if (!mgr.ok()) return mgr.status();
  shard->aof_ = std::move(mgr).value();

  if (checkpoint_loaded) {
    Status s = shard->ApplyCheckpointEntries();
    if (!s.ok()) return s;
    s = shard->RecoverFromScan(next_segment);
    if (!s.ok()) return s;
    shard->checkpoint_valid_ = true;
  } else if (shard->aof_->segment_count() > 0) {
    Status s = shard->RecoverFromScan(0);
    if (!s.ok()) return s;
  }
  return shard;
}

std::shared_ptr<const MemIndex> Shard::PinIndex() const {
  MutexLock lock(&pin_mu_);
  return mem_;
}

MemIndex* Shard::CurrentIndex() const {
  MutexLock lock(&pin_mu_);
  return mem_.get();
}

Status Shard::CheckWritable() const {
  if (degraded_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "QinDB is read-only: a write-path failure forced degraded mode; "
        "reopen the engine to recover");
  }
  return Status::OK();
}

Status Shard::NoteWriteError(Status s) {
  // kNoSpace stays transient: the device rejected the write whole, nothing
  // is torn, and callers legitimately free space (Del + GC) and continue.
  if (s.IsIOError() || s.IsCorruption() || s.IsInternal()) {
    degraded_.store(true, std::memory_order_release);
  }
  return s;
}

Status Shard::PutLocked(const Slice& key, uint64_t version,
                        const Slice& value, bool dedup) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  const Slice stored_value = dedup ? Slice() : value;
  const uint8_t flags = dedup ? aof::kFlagDedup : aof::kFlagNone;

  MemIndex* idx = CurrentIndex();
  const uint32_t segment_before = aof_->active_segment();
  Result<aof::RecordAddress> addr =
      aof_->AppendRecord(key, version, flags, stored_value);
  if (!addr.ok()) return NoteWriteError(addr.status());

  MemEntry* old = idx->FindExact(key, version);
  if (old != nullptr) {
    // Re-PUT of the same versioned key supersedes the previous record.
    aof_->MarkDead(aof::RecordAddress::Unpack(old->address),
                   EntryExtent(old));
  }
  idx->Insert(key, version, addr->Pack(),
              static_cast<uint32_t>(stored_value.size()), dedup);

  ++stats_->puts;
  if (dedup) ++stats_->dedup_puts;
  const uint64_t ingested = key.size() + stored_value.size();
  stats_->user_bytes_ingested += ingested;
  ++shard_puts_;
  shard_bytes_ingested_.fetch_add(ingested, std::memory_order_relaxed);

  if (options_.checkpoint_interval_bytes > 0 &&
      shard_bytes_ingested_.load(std::memory_order_relaxed) -
              bytes_at_last_checkpoint_ >=
          options_.checkpoint_interval_bytes) {
    Status s = CheckpointLocked();
    if (!s.ok()) return NoteWriteError(s);
    bytes_at_last_checkpoint_ =
        shard_bytes_ingested_.load(std::memory_order_relaxed);
  }

  if (options_.auto_gc && aof_->active_segment() != segment_before) {
    // A segment sealed: cheap moment to evaluate the lazy GC policy.
    return MaybeGcLocked();
  }
  return Status::OK();
}

Result<ScrubReport> Shard::Scrub() {
  ScrubReport report;
  FlightGuard guard(reads_in_flight_);  // Scrubbing is an ongoing read.
  const std::shared_ptr<const MemIndex> index = PinIndex();
  for (MemIndex::Iterator it = index->NewIterator(); it.Valid(); it.Next()) {
    MemEntry* entry = it.entry();
    ++report.entries_checked;
    aof::RecordView view;
    Status s = aof_->ReadRecord(aof::RecordAddress::Unpack(entry->address),
                                EntryExtent(entry), &view);
    if (!s.ok() || view.key != entry->user_key() ||
        view.header.version != entry->version ||
        view.is_dedup() != entry->dedup) {
      ++report.damaged_entries;
      continue;
    }
    report.bytes_verified += EntryExtent(entry);
    if (entry->dedup && !entry->deleted &&
        index->TracebackValue(entry->user_key(), entry->version) == nullptr) {
      ++report.unresolvable_dedups;
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

Shard::Scanner::Scanner(Shard* shard, uint64_t version)
    : shard_(shard),
      version_(version),
      index_(shard->PinIndex()),
      it_(index_->NewIterator()) {}

Shard::Scanner Shard::NewScanner(uint64_t version) {
  return Scanner(this, version);
}

void Shard::Scanner::Seek(const Slice& start) {
  if (start.empty()) {
    it_.SeekToFirst();
  } else {
    it_.Seek(start);
  }
  FindVisibleEntry();
}

void Shard::Scanner::Next() {
  // FindVisibleEntry left the underlying iterator at the next key run.
  FindVisibleEntry();
}

void Shard::Scanner::FindVisibleEntry() {
  valid_ = false;
  current_ = nullptr;
  while (it_.Valid()) {
    // Versions of a key are adjacent, newest first: take the first entry at
    // or below the scan version, then consume the rest of the run.
    MemEntry* candidate = nullptr;
    const MemEntry* run_head = it_.entry();
    const Slice run_key = run_head->user_key();  // Arena-backed, stable.
    while (it_.Valid() && it_.entry()->user_key() == run_key) {
      MemEntry* entry = it_.entry();
      if (candidate == nullptr && entry->version <= version_) {
        candidate = entry;
      }
      it_.Next();
    }
    if (candidate != nullptr && !candidate->deleted) {
      current_ = candidate;
      valid_ = true;
      return;
    }
  }
}

Result<std::string> Shard::Scanner::value() const {
  if (!valid_) return Status::InvalidArgument("scanner not positioned");
  FlightGuard guard(shard_->reads_in_flight_);
  MemEntry* source = current_;
  if (current_->dedup) {
    source = index_->TracebackValue(current_->user_key(), current_->version);
    if (source == nullptr) {
      return Status::Corruption("deduplicated pair with no value-bearing older version");
    }
  }
  return shard_->ReadEntryValue(source);
}

Result<std::string> Shard::ReadEntryValue(const MemEntry* entry) {
  constexpr int kMaxAttempts = 8;
  Status last = Status::Aborted("record kept moving during read");
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const uint64_t epoch = gc_epoch_.load(std::memory_order_acquire);
    const uint64_t address = entry->address.load(std::memory_order_acquire);
    const uint32_t value_size =
        entry->value_size.load(std::memory_order_acquire);
    aof::RecordView view;
    Status s = aof_->ReadRecord(aof::RecordAddress::Unpack(address),
                                aof::RecordExtent(entry->key_size, value_size),
                                &view);
    if (s.ok()) {
      if (view.key == entry->user_key() &&
          view.header.version == entry->version) {
        return view.value.ToString();
      }
      s = Status::Internal("memtable offset points at the wrong record");
    }
    // A failed read may have raced a GC relocation of the record or a re-PUT
    // superseding it (address/value_size observed torn). Retry when either
    // signal moved; otherwise the failure is real.
    if (entry->address.load(std::memory_order_acquire) == address &&
        gc_epoch_.load(std::memory_order_acquire) == epoch) {
      return s;
    }
    last = s;
  }
  return last;
}

Result<std::string> Shard::Get(const Slice& key, uint64_t version) {
  ++stats_->gets;
  FlightGuard guard(reads_in_flight_);
  const std::shared_ptr<const MemIndex> index = PinIndex();
  MemEntry* entry = index->FindExact(key, version);
  if (entry == nullptr || entry->deleted) {
    return Status::NotFound("no such key/version");
  }
  if (!entry->dedup) {
    return ReadEntryValue(entry);
  }
  // The value field was removed by Bifrost: traceback to the newest older
  // version that still carries one (Figure 2, bottom right).
  ++stats_->traceback_gets;
  MemEntry* source = index->TracebackValue(key, entry->version);
  if (source == nullptr) {
    return Status::Corruption("deduplicated pair with no value-bearing older version");
  }
  return ReadEntryValue(source);
}

Result<std::string> Shard::GetLatest(const Slice& key) {
  ++stats_->gets;
  FlightGuard guard(reads_in_flight_);
  const std::shared_ptr<const MemIndex> index = PinIndex();
  for (MemEntry* entry : index->EntriesForKey(key)) {
    if (entry->deleted) continue;
    if (!entry->dedup) return ReadEntryValue(entry);
    ++stats_->traceback_gets;
    MemEntry* source = index->TracebackValue(key, entry->version);
    if (source == nullptr) {
      return Status::Corruption("deduplicated pair with no value-bearing older version");
    }
    return ReadEntryValue(source);
  }
  return Status::NotFound("no live version");
}

Status Shard::DelLocked(const Slice& key, uint64_t version) {
  MemIndex* idx = CurrentIndex();
  MemEntry* entry = idx->FindExact(key, version);
  if (entry == nullptr) return Status::NotFound("no such key/version");
  if (!entry->deleted.exchange(true, std::memory_order_acq_rel)) {
    ++stats_->dels;
    ++shard_dels_;
    const DeadSink sink{aof_.get(), nullptr};
    ApplyDeleteAccounting(*idx, sink, entry);
    if (options_.aof.log_deletes) {
      Result<aof::RecordAddress> addr =
          aof_->AppendRecord(key, version, aof::kFlagTombstone, Slice());
      if (!addr.ok()) return NoteWriteError(addr.status());
      // Tombstones are dead on arrival for occupancy purposes.
      aof_->MarkDead(*addr, aof::RecordExtent(key.size(), 0));
    }
  }
  if (options_.auto_gc) return MaybeGcLocked();
  return Status::OK();
}

Result<uint64_t> Shard::DropVersionLocked(uint64_t version) {
  MemIndex* idx = CurrentIndex();
  uint64_t flagged = 0;
  std::vector<MemEntry*> hits;
  for (MemIndex::Iterator it = idx->NewIterator(); it.Valid(); it.Next()) {
    MemEntry* entry = it.entry();
    if (entry->version == version && !entry->deleted) hits.push_back(entry);
  }
  const DeadSink sink{aof_.get(), nullptr};
  for (MemEntry* entry : hits) {
    entry->deleted = true;
    ++stats_->dels;
    ++shard_dels_;
    ++flagged;
    ApplyDeleteAccounting(*idx, sink, entry);
    if (options_.aof.log_deletes) {
      Result<aof::RecordAddress> addr = aof_->AppendRecord(
          entry->user_key(), version, aof::kFlagTombstone, Slice());
      if (!addr.ok()) return NoteWriteError(addr.status());
      aof_->MarkDead(*addr, aof::RecordExtent(entry->key_size, 0));
    }
  }
  if (options_.auto_gc) {
    Status s = MaybeGcLocked();
    if (!s.ok()) return s;
  }
  return flagged;
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

Status Shard::Write(WriteBatch& batch) {
  batch.statuses_.clear();
  batch.dropped_.assign(batch.ops_.size(), 0);
  if (batch.ops_.empty()) return Status::OK();
  if (Status w = CheckWritable(); !w.ok()) {
    batch.statuses_.assign(batch.ops_.size(), w);
    return w;
  }
  if (!options_.group_commit) return WriteUngrouped(batch);
  PendingWrite self(&batch);
  EnqueueWrite(&self);
  return CompleteWrite(&self);
}

void Shard::EnqueueWrite(PendingWrite* pending) {
  WriteBatch& batch = *pending->batch;
  // Pre-encode this batch's Put records — checksum included — on the
  // calling thread, before taking any lock. Encoding is the dominant
  // per-op cost of a write (the CRC over the value), so under group commit
  // it runs in parallel across the enqueueing writers while the leader's
  // critical section shrinks to concatenate-append-apply. Ops that fail
  // the appender's own limits are left unencoded; the plan phase rejects
  // them per-op with a precise status.
  pending->spans.assign(batch.ops_.size(), {0, 0});
  for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
    const WriteOp& op = batch.ops_[oi];
    if (op.kind != WriteOpKind::kPut) continue;
    if (op.key.empty() || op.key.size() > UINT16_MAX ||
        aof::RecordExtent(op.key.size(), op.value.size()) >
            options_.aof.segment_bytes) {
      continue;
    }
    const size_t at = pending->encoded.size();
    aof::EncodeRecord(op.key, op.version,
                      op.dedup ? aof::kFlagDedup : aof::kFlagNone, op.value,
                      &pending->encoded);
    pending->spans[oi] = {at, pending->encoded.size() - at};
  }

  // Enqueue before contending on write_mutex_: while the current leader
  // commits (holding write_mutex_), later writers still reach the queue, so
  // the next leader finds a group, not a single batch.
  MutexLock queue_lock(&batch_mu_);
  write_queue_.push_back(pending);
}

Status Shard::CompleteWrite(PendingWrite* pending) {
  PendingWrite& self = *pending;
  // Only the queue FRONT proceeds to write_mutex_; every other writer parks
  // on batch_cv_ and is released by the leader that commits its batch.
  // Followers therefore never touch write_mutex_ at all — without the gate,
  // each committed follower still had to win one write_mutex_ handoff just
  // to observe done, which serialized a futex wake per op and erased the
  // win from batching.
  {
    MutexLock queue_lock(&batch_mu_);
    // An empty queue while !done means a looping leader drained this batch
    // into its in-flight group; done is forthcoming, so keep waiting.
    while (!self.done &&
           (write_queue_.empty() || write_queue_.front() != &self)) {
      batch_cv_.Wait();
    }
    if (self.done) return self.overall;
  }

  MutexLock lock(&write_mutex_);
  while (true) {
    std::vector<PendingWrite*> group;
    {
      MutexLock queue_lock(&batch_mu_);
      // A previous leader may have committed this batch between the park
      // above and this thread acquiring write_mutex_.
      if (self.done) return self.overall;
      size_t group_ops = 0;
      uint64_t group_bytes = 0;
      while (!write_queue_.empty()) {
        PendingWrite* candidate = write_queue_.front();
        if (!group.empty() &&
            (group_ops + candidate->batch->size() >
                 options_.group_commit_max_ops ||
             group_bytes + candidate->batch->ApproximateBytes() >
                 options_.group_commit_max_bytes)) {
          break;
        }
        group.push_back(candidate);
        group_ops += candidate->batch->size();
        group_bytes += candidate->batch->ApproximateBytes();
        write_queue_.pop_front();
      }
    }
    // The queue still held this thread's own batch, so group is non-empty.
    CommitGroupLocked(group);
    bool self_done = false;
    {
      MutexLock queue_lock(&batch_mu_);
      for (PendingWrite* member : group) member->done = true;
      self_done = self.done;
      // Wakes the committed followers (they return) and the new queue
      // front (it becomes the next leader).
      batch_cv_.SignalAll();
    }
    if (self_done) return self.overall;
    // The budget cut the drain before reaching this thread's batch (older
    // batches filled the group): lead another round.
  }
}

Status Shard::WriteUngrouped(WriteBatch& batch) {
  MutexLock lock(&write_mutex_);
  batch.statuses_.clear();
  batch.dropped_.assign(batch.ops_.size(), 0);
  batch.statuses_.reserve(batch.ops_.size());
  for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
    const WriteOp& op = batch.ops_[oi];
    Status s;
    switch (op.kind) {
      case WriteOpKind::kPut:
        s = PutLocked(op.key, op.version, op.value, op.dedup);
        break;
      case WriteOpKind::kDel:
        s = DelLocked(op.key, op.version);
        break;
      case WriteOpKind::kDropVersion: {
        Result<uint64_t> flagged = DropVersionLocked(op.version);
        if (flagged.ok()) batch.dropped_[oi] = *flagged;
        s = flagged.status();
        break;
      }
    }
    batch.statuses_.push_back(s);
    if (!s.ok() && degraded()) {
      // A write fault tripped degraded mode mid-batch: the remaining ops
      // fail the same way a sequence of single-op calls would.
      for (size_t rest = oi + 1; rest < batch.ops_.size(); ++rest) {
        batch.statuses_.push_back(CheckWritable());
      }
      break;
    }
  }
  for (const Status& s : batch.statuses_) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void Shard::CommitGroupLocked(const std::vector<PendingWrite*>& group) {
  // A previous group may have tripped degraded mode while this batch
  // waited; fail every drained batch the way a lone op would fail.
  if (Status w = CheckWritable(); !w.ok()) {
    for (PendingWrite* member : group) {
      member->batch->statuses_.assign(member->batch->ops_.size(), w);
      member->overall = w;
    }
    return;
  }

  MemIndex* idx = CurrentIndex();
  const uint32_t segment_before = aof_->active_segment();

  // --- Plan: walk every op of every batch in order, deciding per-op
  // validity and collecting the records the group will append. Del and
  // DropVersion must observe the effect of earlier ops in the group whose
  // records are not yet appended (hence not yet in the index); `overlay`
  // carries that pending state keyed on (key, version). Planning and apply
  // run inside one write_mutex_ critical section, so plan-time decisions
  // are exact, not speculative.
  enum class Action : uint8_t {
    kSkip,  // Per-op status already final (invalid op, NotFound, no-op).
    kPut,   // Insert the record at slot `slot`.
    kDel,   // Flag (key, version) deleted; tombstone at `slot` if logged.
    kDrop,  // Flag hits [hit_begin, hit_end); tombstones from `slot` on.
  };
  struct PlannedOp {
    Action action = Action::kSkip;
    size_t slot = SIZE_MAX;
    size_t hit_begin = 0;
    size_t hit_end = 0;
  };
  struct OverlayState {
    bool live = false;
  };

  std::vector<aof::AofManager::AppendOp> slots;
  std::vector<Slice> drop_hits;  // Backing: memtable arena or batch ops.
  std::map<std::pair<std::string_view, uint64_t>, OverlayState> overlay;
  std::vector<std::vector<PlannedOp>> plans(group.size());

  // The overlay only ever feeds Del/DropVersion decisions. Pure-Put groups
  // — the hot path — skip its per-op node allocations entirely.
  size_t total_ops = 0;
  bool needs_overlay = false;
  for (const PendingWrite* member : group) {
    total_ops += member->batch->ops_.size();
    for (const WriteOp& op : member->batch->ops_) {
      needs_overlay |= op.kind != WriteOpKind::kPut;
    }
  }
  slots.reserve(total_ops);

  for (size_t b = 0; b < group.size(); ++b) {
    WriteBatch& batch = *group[b]->batch;
    batch.statuses_.assign(batch.ops_.size(), Status::OK());
    batch.dropped_.assign(batch.ops_.size(), 0);
    plans[b].resize(batch.ops_.size());
    for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
      const WriteOp& op = batch.ops_[oi];
      PlannedOp& plan = plans[b][oi];
      const std::string_view key_view(op.key);
      switch (op.kind) {
        case WriteOpKind::kPut: {
          if (op.key.empty()) {
            batch.statuses_[oi] = Status::InvalidArgument("empty key");
            break;
          }
          // Pre-screen with the appender's own limits so one oversized op
          // fails alone instead of failing the group's vectored append.
          if (op.key.size() > UINT16_MAX) {
            batch.statuses_[oi] = Status::InvalidArgument("key too long");
            break;
          }
          if (aof::RecordExtent(op.key.size(), op.value.size()) >
              options_.aof.segment_bytes) {
            batch.statuses_[oi] =
                Status::InvalidArgument("record exceeds segment capacity");
            break;
          }
          plan.action = Action::kPut;
          plan.slot = slots.size();
          aof::AofManager::AppendOp slot{
              Slice(op.key), op.version,
              op.dedup ? aof::kFlagDedup : aof::kFlagNone, Slice(op.value),
              Slice()};
          const auto& span = group[b]->spans[oi];
          if (span.second != 0) {
            slot.preencoded =
                Slice(group[b]->encoded.data() + span.first, span.second);
          }
          slots.push_back(slot);
          if (needs_overlay) overlay[{key_view, op.version}] = OverlayState{true};
          break;
        }
        case WriteOpKind::kDel: {
          bool exists = false;
          bool live = false;
          if (auto it = overlay.find({key_view, op.version});
              it != overlay.end()) {
            exists = true;
            live = it->second.live;
          } else if (MemEntry* e = idx->FindExact(op.key, op.version);
                     e != nullptr) {
            exists = true;
            live = !e->deleted.load(std::memory_order_acquire);
          }
          if (!exists) {
            batch.statuses_[oi] = Status::NotFound("no such key/version");
            break;
          }
          if (!live) break;  // Already deleted: a successful no-op.
          plan.action = Action::kDel;
          if (options_.aof.log_deletes) {
            plan.slot = slots.size();
            slots.push_back({Slice(op.key), op.version, aof::kFlagTombstone,
                             Slice(), Slice()});
          }
          overlay[{key_view, op.version}] = OverlayState{false};
          break;
        }
        case WriteOpKind::kDropVersion: {
          plan.action = Action::kDrop;
          plan.hit_begin = drop_hits.size();
          // Index pass: live pairs of this version the group has not
          // already re-decided (the overlay pass covers those).
          for (MemIndex::Iterator it = idx->NewIterator(); it.Valid();
               it.Next()) {
            MemEntry* entry = it.entry();
            if (entry->version != op.version || entry->deleted) continue;
            const Slice entry_key = entry->user_key();
            if (overlay.count({std::string_view(entry_key.data(),
                                                entry_key.size()),
                               op.version}) != 0) {
              continue;
            }
            drop_hits.push_back(entry_key);
          }
          for (const auto& [ov_key, state] : overlay) {
            if (ov_key.second == op.version && state.live) {
              drop_hits.push_back(Slice(ov_key.first));
            }
          }
          plan.hit_end = drop_hits.size();
          if (options_.aof.log_deletes) {
            plan.slot = slots.size();
            for (size_t h = plan.hit_begin; h < plan.hit_end; ++h) {
              slots.push_back({drop_hits[h], op.version, aof::kFlagTombstone,
                               Slice(), Slice()});
            }
          }
          for (size_t h = plan.hit_begin; h < plan.hit_end; ++h) {
            overlay[{std::string_view(drop_hits[h].data(),
                                      drop_hits[h].size()),
                     op.version}] = OverlayState{false};
          }
          break;
        }
      }
    }
  }

  // --- Append: every record of the group, one vectored call. One segment
  // append + one roll check + one occupancy update per run instead of N.
  std::vector<aof::RecordAddress> addresses;
  if (!slots.empty()) {
    Status s = aof_->AppendMany(slots.data(), slots.size(), &addresses);
    if (!s.ok()) {
      s = NoteWriteError(std::move(s));
      // The group commits or fails as one append, like a lone Put whose
      // AppendRecord failed. Ops already rejected during planning keep
      // their more specific statuses.
      for (size_t b = 0; b < group.size(); ++b) {
        WriteBatch& batch = *group[b]->batch;
        for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
          if (plans[b][oi].action != Action::kSkip) batch.statuses_[oi] = s;
        }
        group[b]->overall = s;
      }
      return;
    }
  }

  // --- Apply: memtable mutations strictly in op order, so a concurrent
  // lock-free reader can observe a prefix of the group but never a key's
  // version chain with an op applied out of order (a dedup entry always
  // lands after the base value it tracebacks to). Occupancy updates are
  // deferred into one MarkDeadMany.
  uint64_t ingested = 0;
  bool any_applied_delete = false;
  std::vector<std::pair<aof::RecordAddress, uint64_t>> dead;
  const DeadSink sink{nullptr, &dead};
  for (size_t b = 0; b < group.size(); ++b) {
    WriteBatch& batch = *group[b]->batch;
    for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
      const WriteOp& op = batch.ops_[oi];
      const PlannedOp& plan = plans[b][oi];
      switch (plan.action) {
        case Action::kSkip:
          break;
        case Action::kPut: {
          MemEntry* old = idx->FindExact(op.key, op.version);
          if (old != nullptr) {
            // Re-PUT of the same versioned key supersedes the previous
            // record (possibly one from earlier in this very group).
            sink.MarkDead(aof::RecordAddress::Unpack(old->address),
                          EntryExtent(old));
          }
          idx->Insert(op.key, op.version, addresses[plan.slot].Pack(),
                      static_cast<uint32_t>(op.value.size()), op.dedup);
          ++stats_->puts;
          ++shard_puts_;
          if (op.dedup) ++stats_->dedup_puts;
          ingested += op.key.size() + op.value.size();
          break;
        }
        case Action::kDel: {
          MemEntry* entry = idx->FindExact(op.key, op.version);
          if (entry != nullptr &&
              !entry->deleted.exchange(true, std::memory_order_acq_rel)) {
            ++stats_->dels;
            ++shard_dels_;
            any_applied_delete = true;
            ApplyDeleteAccounting(*idx, sink, entry);
          }
          if (plan.slot != SIZE_MAX) {
            // Tombstones are dead on arrival for occupancy purposes.
            sink.MarkDead(addresses[plan.slot],
                          aof::RecordExtent(op.key.size(), 0));
          }
          break;
        }
        case Action::kDrop: {
          uint64_t flagged = 0;
          for (size_t h = plan.hit_begin; h < plan.hit_end; ++h) {
            MemEntry* entry = idx->FindExact(drop_hits[h], op.version);
            if (entry != nullptr &&
                !entry->deleted.exchange(true, std::memory_order_acq_rel)) {
              ++stats_->dels;
              ++shard_dels_;
              ++flagged;
              any_applied_delete = true;
              ApplyDeleteAccounting(*idx, sink, entry);
            }
            if (plan.slot != SIZE_MAX) {
              sink.MarkDead(addresses[plan.slot + (h - plan.hit_begin)],
                            aof::RecordExtent(drop_hits[h].size(), 0));
            }
          }
          batch.dropped_[oi] = flagged;
          break;
        }
      }
    }
  }
  stats_->user_bytes_ingested += ingested;
  shard_bytes_ingested_.fetch_add(ingested, std::memory_order_relaxed);
  aof_->MarkDeadMany(dead);

  // Per-batch overall: the first failing per-op status, like the return of
  // the equivalent single-op call sequence.
  for (PendingWrite* member : group) {
    member->overall = Status::OK();
    for (const Status& s : member->batch->statuses_) {
      if (!s.ok()) {
        member->overall = s;
        break;
      }
    }
  }

  // Maintenance runs once per group, at the same boundaries the single-op
  // path used: the interval checkpoint on ingested bytes, the lazy GC when
  // a segment sealed or a delete freed space. A maintenance failure leaves
  // the group's data committed but surfaces as every batch's overall
  // status — exactly how a lone Put reports a failed interval checkpoint.
  Status maintenance;
  if (options_.checkpoint_interval_bytes > 0 &&
      shard_bytes_ingested_.load(std::memory_order_relaxed) -
              bytes_at_last_checkpoint_ >=
          options_.checkpoint_interval_bytes) {
    maintenance = NoteWriteError(CheckpointLocked());
    if (maintenance.ok()) {
      bytes_at_last_checkpoint_ =
          shard_bytes_ingested_.load(std::memory_order_relaxed);
    }
  }
  if (maintenance.ok() && options_.auto_gc &&
      (any_applied_delete || aof_->active_segment() != segment_before)) {
    maintenance = MaybeGcLocked();  // Applies NoteWriteError internally.
  }
  if (!maintenance.ok()) {
    for (PendingWrite* member : group) member->overall = maintenance;
  }
}

// ---------------------------------------------------------------------------
// Bulk ingest (Bifrost over the wire)
// ---------------------------------------------------------------------------

Status Shard::IngestBegin(uint64_t version) {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  // Idempotent: a repaired connection may re-open the session it already
  // holds; the staged state is keyed by version and survives.
  ingest_sessions_.try_emplace(version);
  return Status::OK();
}

Status Shard::IngestRun(uint64_t version, const IngestOp* ops, size_t count) {
  if (Status w = CheckWritable(); !w.ok()) return w;
  if (count == 0) return Status::OK();

  // Validate and pre-encode the whole run OUTSIDE the shard lock — like the
  // group-commit enqueue path, the CRC over the values is the dominant cost
  // and must not serialize behind the committer. Unlike a WriteBatch, a run
  // fails whole on an invalid op: a slice is re-sent, never patched per-op.
  std::string encoded;
  std::vector<std::pair<size_t, size_t>> spans(count);
  {
    // One allocation for the whole run: growth reallocs would re-copy the
    // already-encoded prefix, and runs are slice-sized.
    size_t total = 0;
    for (size_t i = 0; i < count; ++i) {
      const size_t value_size = (ops[i].dedup || ops[i].tombstone)
                                    ? 0
                                    : ops[i].value.size();
      total += aof::RecordExtent(ops[i].key.size(), value_size);
    }
    encoded.reserve(total);
  }
  for (size_t i = 0; i < count; ++i) {
    const IngestOp& op = ops[i];
    if (op.key.empty()) {
      return Status::InvalidArgument("empty key in ingest run");
    }
    if (op.key.size() > UINT16_MAX) {
      return Status::InvalidArgument("key too long in ingest run");
    }
    if (!op.tombstone && op.version != version) {
      return Status::InvalidArgument(
          "ingest put version differs from the session version");
    }
    const Slice stored_value = (op.dedup || op.tombstone) ? Slice() : op.value;
    if (aof::RecordExtent(op.key.size(), stored_value.size()) >
        options_.aof.segment_bytes) {
      return Status::InvalidArgument("record exceeds segment capacity");
    }
    uint8_t flags = aof::kFlagIngestPending;
    if (op.dedup) flags |= aof::kFlagDedup;
    if (op.tombstone) flags |= aof::kFlagTombstone;
    const size_t at = encoded.size();
    aof::EncodeRecord(op.key, op.version, flags, stored_value, &encoded);
    spans[i] = {at, encoded.size() - at};
  }

  MutexLock lock(&write_mutex_);
  if (Status w = CheckWritable(); !w.ok()) return w;
  auto session = ingest_sessions_.find(version);
  if (session == ingest_sessions_.end()) {
    return Status::InvalidArgument("no bulk-ingest session for this version");
  }
  DIRECTLOAD_FAILPOINT(fp_qindb_ingest_append);

  std::vector<aof::AofManager::AppendOp> slots;
  slots.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const IngestOp& op = ops[i];
    uint8_t flags = aof::kFlagIngestPending;
    if (op.dedup) flags |= aof::kFlagDedup;
    if (op.tombstone) flags |= aof::kFlagTombstone;
    slots.push_back({op.key, op.version, flags,
                     (op.dedup || op.tombstone) ? Slice() : op.value,
                     Slice(encoded.data() + spans[i].first, spans[i].second)});
  }
  std::vector<aof::RecordAddress> addresses;
  if (Status s = aof_->AppendMany(slots.data(), slots.size(), &addresses);
      !s.ok()) {
    // AppendMany already rolled back the occupancy accounting of any
    // durable prefix; the run fails whole and the session stays open for
    // the caller to retry or abort.
    return NoteWriteError(std::move(s));
  }

  IngestSession& sess = session->second;
  // Grow geometrically: an exact-size reserve per run would reallocate (and
  // copy every staged entry) on EVERY run — quadratic over a multi-run load.
  if (sess.staged.capacity() < sess.staged.size() + count) {
    sess.staged.reserve(
        std::max(sess.staged.size() + count, sess.staged.capacity() * 2));
  }
  for (size_t i = 0; i < count; ++i) {
    const IngestOp& op = ops[i];
    const Slice stored_value = (op.dedup || op.tombstone) ? Slice() : op.value;
    IngestSession::Staged staged;
    staged.key.assign(op.key.data(), op.key.size());
    staged.version = op.version;
    staged.address = addresses[i].Pack();
    staged.value_size = static_cast<uint32_t>(stored_value.size());
    staged.dedup = op.dedup;
    staged.tombstone = op.tombstone;
    sess.staged.push_back(std::move(staged));
    sess.appended.emplace_back(
        addresses[i], aof::RecordExtent(op.key.size(), stored_value.size()));
  }
  return Status::OK();
}

Status Shard::IngestCommit(uint64_t version) {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  if (Status w = CheckWritable(); !w.ok()) return w;
  auto it = ingest_sessions_.find(version);
  if (it == ingest_sessions_.end()) {
    // Idempotent retry: a cross-shard commit torn between shards re-runs
    // against every shard, and a shard whose marker already landed must
    // answer OK — "no session" here would wedge the retry forever.
    if (ingest_committed_.count(version) != 0) return Status::OK();
    return Status::InvalidArgument("no bulk-ingest session for this version");
  }

  const uint32_t segment_before = aof_->active_segment();
  // The marker IS the commit point: once durable, recovery indexes every
  // pending record of this version; before it, the version leaves no
  // trace. The marker is never marked dead and GC keeps markers forever
  // (the classify rule) — a relocated pending record can land after its
  // marker in segment order, and the marker is what vouches for it.
  Result<aof::RecordAddress> marker =
      aof_->AppendRecord(Slice(), version, aof::kFlagIngestCommit, Slice());
  if (!marker.ok()) return NoteWriteError(marker.status());

  // Apply the staged pairs to the memtable in run order: puts supersede
  // any existing (key, version) entry exactly like a re-PUT; tombstones
  // flag pairs (typically of older versions — the d-flag riding the load)
  // deleted. Occupancy updates batch into one MarkDeadMany.
  MemIndex* idx = CurrentIndex();
  IngestSession& sess = it->second;
  uint64_t ingested = 0;
  bool any_applied_delete = false;
  std::vector<std::pair<aof::RecordAddress, uint64_t>> dead;
  const DeadSink sink{nullptr, &dead};
  for (const IngestSession::Staged& op : sess.staged) {
    const Slice key(op.key);
    if (op.tombstone) {
      // The pending tombstone record is dead on arrival, like every
      // logged delete; a missing target is a no-op, not an error.
      sink.MarkDead(aof::RecordAddress::Unpack(op.address),
                    aof::RecordExtent(op.key.size(), 0));
      MemEntry* entry = idx->FindExact(key, op.version);
      if (entry != nullptr &&
          !entry->deleted.exchange(true, std::memory_order_acq_rel)) {
        ++stats_->dels;
        ++shard_dels_;
        any_applied_delete = true;
        ApplyDeleteAccounting(*idx, sink, entry);
      }
      continue;
    }
    MemEntry* old = idx->FindExact(key, op.version);
    if (old != nullptr) {
      sink.MarkDead(aof::RecordAddress::Unpack(old->address),
                    EntryExtent(old));
    }
    idx->Insert(key, op.version, op.address, op.value_size, op.dedup);
    ++stats_->puts;
    ++shard_puts_;
    if (op.dedup) ++stats_->dedup_puts;
    ingested += op.key.size() + op.value_size;
  }
  stats_->user_bytes_ingested += ingested;
  shard_bytes_ingested_.fetch_add(ingested, std::memory_order_relaxed);
  aof_->MarkDeadMany(dead);
  ingest_sessions_.erase(it);
  ingest_committed_.insert(version);

  // Maintenance at the write paths' boundaries — legal again now that the
  // session is gone (unless a concurrent load still holds one).
  if (options_.checkpoint_interval_bytes > 0 &&
      shard_bytes_ingested_.load(std::memory_order_relaxed) -
              bytes_at_last_checkpoint_ >=
          options_.checkpoint_interval_bytes) {
    if (Status s = CheckpointLocked(); !s.ok()) return NoteWriteError(s);
    bytes_at_last_checkpoint_ =
        shard_bytes_ingested_.load(std::memory_order_relaxed);
  }
  if (options_.auto_gc &&
      (any_applied_delete || aof_->active_segment() != segment_before)) {
    return MaybeGcLocked();
  }
  return Status::OK();
}

Status Shard::IngestAbort(uint64_t version) {
  // No CheckWritable gate: abort is cleanup and must work (and release the
  // checkpoint/GC deferral) even after a write fault degraded the shard.
  MutexLock lock(&write_mutex_);
  auto it = ingest_sessions_.find(version);
  if (it == ingest_sessions_.end()) {
    return Status::InvalidArgument("no bulk-ingest session for this version");
  }
  // Roll back occupancy: every staged record becomes garbage in one
  // vectored MarkDeadMany (the PR 5 rollback machinery). The bytes stay on
  // disk until GC, but recovery never indexes them — there is no marker.
  aof_->MarkDeadMany(it->second.appended);
  ingest_sessions_.erase(it);
  if (!degraded() && options_.auto_gc) return MaybeGcLocked();
  return Status::OK();
}

std::map<uint64_t, uint64_t> Shard::VersionCounts() const {
  std::map<uint64_t, uint64_t> counts;
  const std::shared_ptr<const MemIndex> index = PinIndex();
  for (MemIndex::Iterator it = index->NewIterator(); it.Valid(); it.Next()) {
    const MemEntry* entry = it.entry();
    if (!entry->deleted) ++counts[entry->version];
  }
  return counts;
}

ShardStatsSnapshot Shard::StatsSnapshot() const {
  ShardStatsSnapshot snap;
  snap.shard_id = shard_id_;
  snap.puts = shard_puts_.load(std::memory_order_relaxed);
  snap.dels = shard_dels_.load(std::memory_order_relaxed);
  snap.user_bytes_ingested =
      shard_bytes_ingested_.load(std::memory_order_relaxed);
  snap.live_entries = PinIndex()->live_count();
  snap.segments = aof_->segment_count();
  snap.degraded = degraded();
  return snap;
}

Status Shard::MaybeGc() {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  return MaybeGcLocked();
}

Status Shard::MaybeGcLocked() {
  if (!ingest_sessions_.empty()) {
    // Pending bulk-ingest records are not in the memtable yet, so the
    // classify pass would drop them as superseded garbage. Defer until
    // every session commits or aborts.
    ++stats_->gc_deferrals;
    return Status::OK();
  }
  if (aof_->GcVictims().empty()) return Status::OK();
  if (options_.defer_gc_during_reads &&
      reads_in_flight_->load(std::memory_order_relaxed) > 0) {
    const double usage = static_cast<double>(env_->TotalFileBytes()) /
                         static_cast<double>(env_->CapacityBytes());
    if (usage < options_.gc_space_pressure) {
      ++stats_->gc_deferrals;
      return Status::OK();
    }
  }
  // GC rewrites live records; a failure partway through can leave a victim
  // half-relocated, so it degrades the engine like any other write fault.
  return NoteWriteError(CollectVictimsLocked());
}

Status Shard::ForceGc() {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  if (!ingest_sessions_.empty()) {
    // Unlike the lazy policy's silent deferral, a forced collection that
    // cannot run (it would drop unindexed pending records) says so.
    return Status::Busy("bulk-ingest session active; GC deferred");
  }
  if (aof_->GcVictims().empty()) return Status::OK();
  return NoteWriteError(CollectVictimsLocked());
}

Status Shard::CollectVictimsLocked() {
  const std::vector<uint32_t> victims = aof_->GcVictims();
  if (victims.empty()) return Status::OK();

  // Relocations make any existing checkpoint's addresses stale, so drop it
  // BEFORE touching a single record. If the checkpoint outlived any part of
  // a collection — a crash after a victim segment is erased but before the
  // invalidation — recovery would trust checkpoint addresses that point
  // into segments that no longer exist. Invalidating first means a crash
  // anywhere inside GC recovers by full scan, which reconciles original
  // and relocated copies from the on-disk records alone. (The crash-point
  // sweep in tests/chaos_test.cc exercises exactly these windows.)
  if (Status s = InvalidateCheckpoint(); !s.ok()) return s;

  // The callbacks below run with the AOF manager's lock held exclusively,
  // so they must not re-enter the manager and must not take pin_mu_ (the
  // rank order allows it, but the analysis cannot see into lambdas): the
  // live index is captured up front. It cannot be retired mid-collection
  // because only this function retires indices, under write_mutex_.
  MemIndex* live = CurrentIndex();

  // Snapshot the retired indices still pinned by readers: relocations must
  // patch their entries too, or a pinned snapshot would keep chasing
  // addresses inside segments that no longer exist.
  std::vector<std::shared_ptr<MemIndex>> retired;
  {
    MutexLock pin_lock(&pin_mu_);
    retired.reserve(retired_.size());
    for (auto it = retired_.begin(); it != retired_.end();) {
      if (std::shared_ptr<MemIndex> idx = it->lock()) {
        retired.push_back(std::move(idx));
        ++it;
      } else {
        it = retired_.erase(it);  // No pinned reader left.
      }
    }
  }

  for (uint32_t id : victims) {
    Status s = aof_->CollectSegment(
        id,
        /*classify=*/
        [live](const aof::RecordAddress& addr, const aof::RecordView& rec) {
          if (rec.is_ingest_commit()) {
            // Commit markers are kept forever: a relocated pending record
            // can land after its marker in segment order, and the marker
            // is what vouches for it at recovery. One 20-byte record per
            // shard per bulk load.
            return true;
          }
          if (rec.is_tombstone()) {
            // Keep the tombstone while the pair it deletes is still indexed:
            // the dead record may survive in an uncollected segment (or as a
            // relocated referent), and a recovery scan without the tombstone
            // would resurrect it. Once the record's entry is purged the
            // tombstone has nothing left to delete and can go.
            MemEntry* entry = live->FindExact(rec.key, rec.header.version);
            return entry != nullptr && entry->deleted;
          }
          MemEntry* entry = live->FindExact(rec.key, rec.header.version);
          if (entry == nullptr ||
              aof::RecordAddress::Unpack(entry->address) != addr) {
            return false;  // Superseded copy or already purged.
          }
          if (!entry->deleted) return true;  // Live data.
          // Deleted but possibly still referenced by a newer deduplicated
          // version (Figure 2, top right).
          return IsReferentIn(*live, rec.key, rec.header.version);
        },
        /*relocate=*/
        [live, &retired](const aof::RecordAddress& old_addr,
                         const aof::RecordAddress& new_addr,
                         const aof::RecordView& rec) {
          if (rec.is_tombstone()) return;  // No memtable item to patch.
          if (rec.is_ingest_commit()) return;  // Markers are never indexed.
          const uint64_t old_packed = old_addr.Pack();
          const uint64_t new_packed = new_addr.Pack();
          MemEntry* entry = live->FindExact(rec.key, rec.header.version);
          if (entry != nullptr) {
            entry->address.store(new_packed, std::memory_order_release);
          }
          for (const auto& idx : retired) {
            MemEntry* ghost = idx->FindExact(rec.key, rec.header.version);
            if (ghost != nullptr &&
                ghost->address.load(std::memory_order_acquire) == old_packed) {
              ghost->address.store(new_packed, std::memory_order_release);
            }
          }
        },
        /*drop=*/
        [live](const aof::RecordAddress& old_addr,
               const aof::RecordView& rec) {
          if (rec.is_tombstone()) return;
          MemEntry* entry = live->FindExact(rec.key, rec.header.version);
          if (entry != nullptr &&
              aof::RecordAddress::Unpack(entry->address) == old_addr &&
              entry->deleted) {
            // Deleted with no referent: remove the item from the skip list.
            live->Purge(entry);
          }
        });
    if (!s.ok()) return s;
    // Readers whose record read failed mid-collection use the epoch bump as
    // the signal to retry against the patched addresses.
    gc_epoch_.fetch_add(1, std::memory_order_release);
  }
  ++stats_->gc_invocations;

  // The skip list never physically unlinks nodes; once purged ghosts
  // dominate, rebuild a dense index so memory stays proportional to live
  // entries (Section 2.1's "sufficient memory space" invariant). Pinned
  // readers keep the retired index alive via their refcount; it is freed
  // when the last of them drops its pin.
  if (live->total_count() > 4096 &&
      live->live_count() * 2 < live->total_count()) {
    auto fresh = std::make_shared<MemIndex>();
    live->CompactInto(fresh.get());
    MutexLock pin_lock(&pin_mu_);
    retired_.push_back(mem_);
    mem_ = std::move(fresh);
  }

  return Status::OK();
}

Status Shard::InvalidateCheckpoint() {
  checkpoint_valid_ = false;
  if (env_->FileExists(checkpoint_name_)) {
    return env_->DeleteFile(checkpoint_name_);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery and checkpointing
// ---------------------------------------------------------------------------

Status Shard::RecoverFromScan(uint32_t min_segment) {
  DIRECTLOAD_FAILPOINT(fp_qindb_recovery_scan);
  MemIndex* idx = CurrentIndex();
  // Scan holds the AOF manager's lock shared, so the callback must not
  // re-enter the manager: dead marks are buffered through `sink` and
  // applied after the scan returns. Decisions are still made inline against
  // the memtable — nothing during the scan reads occupancy, so the deferral
  // is invisible.
  std::vector<std::pair<aof::RecordAddress, uint64_t>> deferred;
  const DeadSink sink{nullptr, &deferred};
  // A tombstone can precede the record it deletes in scan order: GC
  // relocates kept referents past their tombstones. Such a tombstone is
  // remembered as a deleted placeholder so the relocated copy cannot
  // resurrect the pair; placeholders no copy claimed are purged afterwards.
  std::vector<std::pair<MemEntry*, uint64_t>> placeholders;

  // One record's replay, shared by the scan callback (normal records) and
  // the commit-marker replay of buffered bulk-ingest records below.
  auto apply_record = [idx, &sink, &placeholders](
                          const Slice& key, uint64_t version,
                          uint32_t value_len, uint8_t flags, uint64_t packed) {
    if ((flags & aof::kFlagTombstone) != 0) {
      MemEntry* entry = idx->FindExact(key, version);
      if (entry == nullptr) {
        entry = idx->Insert(key, version, packed,
                            /*value_size=*/0, /*dedup=*/false);
        entry->deleted.store(true, std::memory_order_relaxed);
        placeholders.emplace_back(entry, packed);
      } else if (!entry->deleted) {
        entry->deleted = true;
        ApplyDeleteAccounting(*idx, sink, entry);
      }
      sink.MarkDead(aof::RecordAddress::Unpack(packed),
                    aof::RecordExtent(key.size(), 0));
      return;
    }
    const bool dedup = (flags & aof::kFlagDedup) != 0;
    MemEntry* old = idx->FindExact(key, version);
    if (old != nullptr && (flags & aof::kFlagRelocated) != 0) {
      // A relocated copy is the same logical record the index already
      // tracks, not a newer write: adopt the new address but preserve
      // the deleted state an earlier tombstone established. A deleted
      // entry's old record is already accounted dead.
      if (!old->deleted) {
        sink.MarkDead(aof::RecordAddress::Unpack(old->address),
                      EntryExtent(old));
      }
      old->address.store(packed, std::memory_order_relaxed);
      old->value_size.store(value_len, std::memory_order_relaxed);
      old->dedup.store(dedup, std::memory_order_relaxed);
      return;
    }
    if (old != nullptr) {
      sink.MarkDead(aof::RecordAddress::Unpack(old->address),
                    EntryExtent(old));
    }
    idx->Insert(key, version, packed, value_len, dedup);
  };

  // Bulk-ingest replay state. A pending record may only be indexed once
  // the commit marker of its version is seen; until then it is buffered
  // (copied — the scan's views do not outlive the callback) and replayed
  // at the marker, which is exactly where the pairs became visible in the
  // pre-crash process. Pending records whose marker never appears — the
  // load crashed or aborted before kBulkCommit — are dead on arrival.
  struct PendingIngest {
    std::string key;
    uint32_t value_len = 0;
    uint8_t flags = 0;
    uint64_t address = 0;
  };
  std::map<uint64_t, std::vector<PendingIngest>> pending_ingest;
  std::set<uint64_t> committed_versions;

  Status s = aof_->Scan(
      [&apply_record, &pending_ingest, &committed_versions, &sink](
          const aof::RecordAddress& addr, const aof::RecordView& rec) {
        const uint64_t packed = addr.Pack();
        if (rec.is_ingest_commit()) {
          committed_versions.insert(rec.header.version);
          if (auto it = pending_ingest.find(rec.header.version);
              it != pending_ingest.end()) {
            for (const PendingIngest& p : it->second) {
              apply_record(Slice(p.key), rec.header.version, p.value_len,
                           p.flags, p.address);
            }
            pending_ingest.erase(it);
          }
          return true;  // Markers stay live and never index anything.
        }
        if (rec.is_ingest_pending() &&
            committed_versions.count(rec.header.version) == 0) {
          // Marker not seen yet (it normally follows in append order; GC
          // can also relocate a pending copy past a marker already seen —
          // that case replays inline through apply_record below).
          PendingIngest p;
          p.key.assign(rec.key.data(), rec.key.size());
          p.value_len = rec.header.value_len;
          p.flags = rec.header.flags;
          p.address = packed;
          pending_ingest[rec.header.version].push_back(std::move(p));
          return true;
        }
        apply_record(rec.key, rec.header.version, rec.header.value_len,
                     rec.header.flags, packed);
        return true;
      },
      min_segment);
  if (!s.ok()) return s;
  // Markers found on disk re-seed the idempotency set: a commit retry
  // arriving after a reopen still answers OK for these versions.
  ingest_committed_.insert(committed_versions.begin(),
                           committed_versions.end());
  // Uncommitted pending records: the version leaves no trace — never
  // indexed, and accounted garbage so GC reclaims the bytes.
  for (const auto& [version, records] : pending_ingest) {
    for (const PendingIngest& p : records) {
      sink.MarkDead(aof::RecordAddress::Unpack(p.address),
                    aof::RecordExtent(p.key.size(), p.value_len));
    }
  }
  for (const auto& [addr, extent] : deferred) {
    aof_->MarkDead(addr, extent);
  }
  for (const auto& [entry, tomb_addr] : placeholders) {
    if (entry->deleted &&
        entry->address.load(std::memory_order_relaxed) == tomb_addr) {
      idx->Purge(entry);  // The delete's record never showed up: drop both.
    }
  }
  return Status::OK();
}

Status Shard::Checkpoint() {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  return NoteWriteError(CheckpointLocked());
}

Status Shard::CheckpointLocked() {
  if (!ingest_sessions_.empty()) {
    // Pending bulk-ingest records are durable but unindexed; a checkpoint
    // taken now would let a later recovery skip the sealed segments that
    // hold them, and a commit after this checkpoint would then lose the
    // version on the next crash. Skip — the next checkpoint after the
    // sessions resolve covers everything.
    return Status::OK();
  }
  DIRECTLOAD_FAILPOINT(fp_qindb_checkpoint);
  Status s = aof_->SealActive();
  if (!s.ok()) return s;

  MemIndex* idx = CurrentIndex();
  std::string blob;
  PutFixed64(&blob, kCheckpointMagic);
  PutFixed32(&blob, aof_->active_segment());
  const std::map<uint32_t, aof::SegmentMeta> metas = aof_->SegmentMetas();
  PutVarint64(&blob, metas.size());
  for (const auto& [id, meta] : metas) {
    PutFixed32(&blob, id);
    PutVarint64(&blob, meta.total_bytes);
    PutVarint64(&blob, meta.live_bytes);
  }
  PutVarint64(&blob, idx->live_count());
  for (MemIndex::Iterator it = idx->NewIterator(); it.Valid(); it.Next()) {
    const MemEntry* e = it.entry();
    PutLengthPrefixedSlice(&blob, e->user_key());
    PutVarint64(&blob, e->version);
    PutFixed64(&blob, e->address);
    PutVarint32(&blob, e->value_size);
    uint8_t flags = 0;
    if (e->dedup) flags |= kCkptDedup;
    if (e->deleted) flags |= kCkptDeleted;
    blob.push_back(static_cast<char>(flags));
  }
  PutFixed32(&blob, crc32c::Mask(crc32c::Value(blob.data(), blob.size())));

  if (env_->FileExists(checkpoint_temp_)) {
    s = env_->DeleteFile(checkpoint_temp_);
    if (!s.ok()) return s;
  }
  Result<std::unique_ptr<ssd::WritableFile>> file =
      env_->NewWritableFile(checkpoint_temp_);
  if (!file.ok()) return file.status();
  s = (*file)->Append(blob);
  if (!s.ok()) return s;
  s = (*file)->Close();
  if (!s.ok()) return s;
  s = env_->RenameFile(checkpoint_temp_, checkpoint_name_);
  if (!s.ok()) return s;
  checkpoint_valid_ = true;
  return Status::OK();
}

Status Shard::LoadCheckpoint(const std::string& name, bool* loaded,
                             std::map<uint32_t, aof::SegmentMeta>* metas,
                             uint32_t* next_segment) {
  *loaded = false;
  Result<uint64_t> size = env_->GetFileSize(name);
  if (!size.ok()) return size.status();
  Result<std::unique_ptr<ssd::RandomAccessFile>> file =
      env_->NewRandomAccessFile(name);
  if (!file.ok()) return file.status();
  std::string blob;
  Status s = (*file)->Read(0, *size, &blob);
  if (!s.ok()) return s;

  if (blob.size() < 16) return Status::Corruption("checkpoint too small");
  const uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(blob.data() + blob.size() - 4));
  const uint32_t actual_crc = crc32c::Value(blob.data(), blob.size() - 4);
  if (stored_crc != actual_crc) {
    return Status::Corruption("checkpoint checksum mismatch");
  }

  Slice in(blob.data(), blob.size() - 4);
  if (DecodeFixed64(in.data()) != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  in.remove_prefix(8);
  *next_segment = DecodeFixed32(in.data());
  in.remove_prefix(4);

  uint64_t meta_count = 0;
  if (!GetVarint64(&in, &meta_count)) return Status::Corruption("metas");
  for (uint64_t i = 0; i < meta_count; ++i) {
    if (in.size() < 4) return Status::Corruption("meta id");
    const uint32_t id = DecodeFixed32(in.data());
    in.remove_prefix(4);
    aof::SegmentMeta meta;
    if (!GetVarint64(&in, &meta.total_bytes) ||
        !GetVarint64(&in, &meta.live_bytes)) {
      return Status::Corruption("meta bytes");
    }
    (*metas)[id] = meta;
  }

  // Entries are stashed raw and applied after the AOF manager opens.
  pending_checkpoint_.assign(in.data(), in.size());
  *loaded = true;
  return Status::OK();
}

Status Shard::ApplyCheckpointEntries() {
  MemIndex* idx = CurrentIndex();
  Slice in(pending_checkpoint_);
  uint64_t count = 0;
  if (!GetVarint64(&in, &count)) return Status::Corruption("entry count");
  for (uint64_t i = 0; i < count; ++i) {
    Slice key;
    uint64_t version = 0;
    uint32_t value_size = 0;
    if (!GetLengthPrefixedSlice(&in, &key) || !GetVarint64(&in, &version)) {
      return Status::Corruption("entry key/version");
    }
    if (in.size() < 8) return Status::Corruption("entry address");
    const uint64_t address = DecodeFixed64(in.data());
    in.remove_prefix(8);
    if (!GetVarint32(&in, &value_size) || in.empty()) {
      return Status::Corruption("entry value size");
    }
    const auto flags = static_cast<uint8_t>(in[0]);
    in.remove_prefix(1);
    MemEntry* entry = idx->Insert(key, version, address, value_size,
                                  (flags & kCkptDedup) != 0);
    entry->deleted = (flags & kCkptDeleted) != 0;
  }
  pending_checkpoint_.clear();
  return Status::OK();
}

}  // namespace directload::qindb
