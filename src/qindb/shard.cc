#include "qindb/shard.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string_view>
#include <utility>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/logging.h"

namespace directload::qindb {

namespace {

// Shard-internal failpoints: the startup scan and the checkpoint writer,
// the two paths whose failures matter most for recovery testing. They fire
// once per SHARD (recovery and checkpointing are per-shard operations);
// the API-level qindb_put/get/del points live in the facade (qindb.cc) and
// fire once per call. Deeper faults come from the aof_*/ssd_* points.
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_recovery_scan, "qindb_recovery_scan");
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_checkpoint, "qindb_checkpoint");
// Fires at the top of a bulk IngestRun, before the vectored append: the
// injection point for "the slice landed on the server but the engine could
// not persist it" (the loader retries or aborts; the session survives).
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_ingest_append, "qindb_ingest_append");
// Read-path cache points. `cache_lookup` fires before the cache is
// consulted (a failure fails the read like a device error would);
// `cache_insert` fires after a successful device read and suppresses only
// the cache fill — the read itself still succeeds, modelling a cache too
// contended or too broken to accept the entry. `index_load` fires at the
// top of a cold-version materialize, before the AOF replay.
DIRECTLOAD_FAILPOINT_DEFINE(fp_cache_lookup, "cache_lookup");
DIRECTLOAD_FAILPOINT_DEFINE(fp_cache_insert, "cache_insert");
DIRECTLOAD_FAILPOINT_DEFINE(fp_index_load, "index_load");

constexpr char kCheckpointName[] = "checkpoint.dat";
constexpr char kCheckpointTemp[] = "checkpoint.tmp";
constexpr uint64_t kCheckpointMagic = 0x51494e4443484b50ull;  // "QINDCHKP"

// Per-entry flag bits in the checkpoint serialization.
constexpr uint8_t kCkptDedup = 1u << 0;
constexpr uint8_t kCkptDeleted = 1u << 1;

std::string ShardLockName(const char* base, uint32_t shard_id) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s/s%02u", base, shard_id);
  return buf;
}

/// RAII bump of the engine-wide reads-in-flight counter (GC deferral).
/// Shard-internal readers (Get, Scrub, Scanner::value) count like facade
/// ReadGuards so a shard's GC defers for reads against any shard.
struct FlightGuard {
  explicit FlightGuard(std::atomic<int>* counter) : counter_(counter) {
    counter_->fetch_add(1, std::memory_order_relaxed);
  }
  ~FlightGuard() { counter_->fetch_sub(1, std::memory_order_relaxed); }
  FlightGuard(const FlightGuard&) = delete;
  FlightGuard& operator=(const FlightGuard&) = delete;

  std::atomic<int>* counter_;
};

uint64_t EntryExtent(const MemEntry* e) {
  return aof::RecordExtent(e->key_size,
                           e->value_size.load(std::memory_order_acquire));
}

/// Destination for occupancy updates. Recovery runs inside
/// AofManager::Scan — which holds the manager's lock shared — so marking a
/// record dead there would self-deadlock; the recovery path buffers into
/// `deferred` and the shard applies the batch after the scan returns.
/// Runtime mutators (not under any AOF lock) mark directly.
struct DeadSink {
  aof::AofManager* aof = nullptr;
  std::vector<std::pair<aof::RecordAddress, uint64_t>>* deferred = nullptr;
  /// When set, a record marked dead is also evicted from the read cache:
  /// every dead-marking site (supersede, delete, drop) is exactly a site
  /// where cached bytes for the address become unreachable garbage.
  BlockCache* cache = nullptr;

  void MarkDead(const aof::RecordAddress& addr, uint64_t extent) const {
    if (cache != nullptr) cache->Erase(addr.Pack());
    if (deferred != nullptr) {
      deferred->emplace_back(addr, extent);
    } else {
      aof->MarkDead(addr, extent);
    }
  }
};

/// True if the record of (key, version) is still referenced by a newer,
/// live, deduplicated version (Figure 2's "invalid key-value pairs that
/// are referred by later version keys"). Free functions over an explicit
/// index (rather than Shard members) so the GC callbacks — which execute
/// with the AOF manager's lock held — can call them against a pre-captured
/// index pointer without touching the shard's guarded state.
bool IsReferentIn(const MemIndex& idx, const Slice& key, uint64_t version) {
  // Walk the versions strictly newer than `version`, nearest first. The
  // record stays needed while the contiguous run of deduplicated versions
  // above it contains at least one live one.
  std::vector<MemEntry*> entries = idx.EntriesForKey(key);  // Newest first.
  // Find the first index whose version is <= `version`; walk upwards.
  size_t at = entries.size();
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i]->version <= version) {
      at = i;
      break;
    }
  }
  for (size_t i = at; i-- > 0;) {  // Increasing version order.
    MemEntry* e = entries[i];
    if (!e->dedup) return false;  // Carries its own value: chain broken.
    if (!e->deleted) return true;
  }
  return false;
}

/// Marks the record behind `entry` dead in the occupancy table unless it is
/// still a referent.
void MarkDeadUnlessReferent(const MemIndex& idx, const DeadSink& sink,
                            MemEntry* entry) {
  if (!IsReferentIn(idx, entry->user_key(), entry->version)) {
    sink.MarkDead(aof::RecordAddress::Unpack(entry->address),
                  EntryExtent(entry));
  }
}

void ApplyDeleteAccounting(const MemIndex& idx, const DeadSink& sink,
                           MemEntry* entry) {
  const Slice key = entry->user_key();
  if (entry->dedup) {
    // The NULL record itself is dead the moment the pair is deleted.
    sink.MarkDead(aof::RecordAddress::Unpack(entry->address),
                  EntryExtent(entry));
    // The value it resolved to may have just lost its last referent.
    MemEntry* target = idx.TracebackValue(key, entry->version);
    if (target != nullptr && target->deleted) {
      MarkDeadUnlessReferent(idx, sink, target);
    }
  } else {
    // A value-bearing record stays live while newer deduplicated versions
    // reference it.
    MarkDeadUnlessReferent(idx, sink, entry);
  }
}

}  // namespace

Shard::Shard(ssd::SsdEnv* env, const QinDbOptions& options, uint32_t shard_id,
             QinDbStats* stats, std::atomic<int>* reads_in_flight)
    : env_(env),
      options_(options),
      shard_id_(shard_id),
      checkpoint_name_(options.aof.file_prefix + kCheckpointName),
      checkpoint_temp_(options.aof.file_prefix + kCheckpointTemp),
      write_name_(ShardLockName("qindb-write", shard_id)),
      queue_name_(ShardLockName("qindb-batch-queue", shard_id)),
      pin_name_(ShardLockName("qindb-pin", shard_id)),
      write_mutex_(LockRank::kQinDbWrite, write_name_.c_str()),
      batch_mu_(LockRank::kQinDbBatchQueue, queue_name_.c_str()),
      pin_mu_(LockRank::kQinDbPin, pin_name_.c_str()),
      cache_(options.cache_bytes > 0
                 ? std::make_unique<BlockCache>(options.cache_bytes, shard_id)
                 : nullptr),
      registry_(options.index_memory_bytes, shard_id),
      stats_(stats),
      reads_in_flight_(reads_in_flight) {}

Result<std::unique_ptr<Shard>> Shard::Open(ssd::SsdEnv* env,
                                           const QinDbOptions& options,
                                           uint32_t shard_id,
                                           QinDbStats* stats,
                                           std::atomic<int>* reads_in_flight) {
  std::unique_ptr<Shard> shard(
      new Shard(env, options, shard_id, stats, reads_in_flight));
  // Nothing else can reach the shard yet; hold the write mutex anyway so
  // the recovery helpers see their capability held.
  MutexLock lock(&shard->write_mutex_);
  {
    MutexLock pin(&shard->pin_mu_);
    shard->mem_ = std::make_shared<MemIndex>();
  }

  std::map<uint32_t, aof::SegmentMeta> metas;
  uint32_t next_segment = 0;
  bool checkpoint_loaded = false;
  if (env->FileExists(shard->checkpoint_name_)) {
    Status s = shard->LoadCheckpoint(shard->checkpoint_name_,
                                     &checkpoint_loaded, &metas,
                                     &next_segment);
    if (!s.ok() && !s.IsCorruption()) return s;
    // A corrupt checkpoint is ignored; recovery falls back to the full scan.
  }

  Result<std::unique_ptr<aof::AofManager>> mgr = aof::AofManager::Open(
      env, options.aof, checkpoint_loaded ? &metas : nullptr);
  if (!mgr.ok()) return mgr.status();
  shard->aof_ = std::move(mgr).value();

  if (checkpoint_loaded) {
    Status s = shard->ApplyCheckpointEntries();
    if (!s.ok()) return s;
    s = shard->RecoverFromScan(next_segment);
    if (!s.ok()) return s;
    shard->checkpoint_valid_ = true;
  } else if (shard->aof_->segment_count() > 0) {
    Status s = shard->RecoverFromScan(0);
    if (!s.ok()) return s;
  }
  // Recovery materializes everything (the registry starts empty); shed
  // cold versions right away if the recovered index already exceeds the
  // lazy-index budget.
  shard->MaybeUnloadIndexLocked();
  return shard;
}

std::shared_ptr<const MemIndex> Shard::PinIndex() const {
  MutexLock lock(&pin_mu_);
  return mem_;
}

MemIndex* Shard::CurrentIndex() const {
  MutexLock lock(&pin_mu_);
  return mem_.get();
}

Status Shard::CheckWritable() const {
  if (degraded_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "QinDB is read-only: a write-path failure forced degraded mode; "
        "reopen the engine to recover");
  }
  return Status::OK();
}

Status Shard::NoteWriteError(Status s) {
  // kNoSpace stays transient: the device rejected the write whole, nothing
  // is torn, and callers legitimately free space (Del + GC) and continue.
  if (s.IsIOError() || s.IsCorruption() || s.IsInternal()) {
    degraded_.store(true, std::memory_order_release);
  }
  return s;
}

Status Shard::PutLocked(const Slice& key, uint64_t version,
                        const Slice& value, bool dedup) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  if (registry_.enabled() && registry_.AnyCold()) {
    // A re-PUT into a cold version must see the existing entry to
    // supersede it; a dedup put must be able to traceback through every
    // older version. Materialize before deciding anything.
    Status s = dedup ? EnsureAllResidentLocked()
                     : EnsureVersionResidentLocked(version);
    if (!s.ok()) return s;
  }
  const Slice stored_value = dedup ? Slice() : value;
  const uint8_t flags = dedup ? aof::kFlagDedup : aof::kFlagNone;

  MemIndex* idx = CurrentIndex();
  const uint32_t segment_before = aof_->active_segment();
  Result<aof::RecordAddress> addr =
      aof_->AppendRecord(key, version, flags, stored_value);
  if (!addr.ok()) return NoteWriteError(addr.status());

  MemEntry* old = idx->FindExact(key, version);
  if (old != nullptr) {
    // Re-PUT of the same versioned key supersedes the previous record.
    if (cache_ != nullptr) {
      cache_->Erase(old->address.load(std::memory_order_acquire));
    }
    aof_->MarkDead(aof::RecordAddress::Unpack(old->address),
                   EntryExtent(old));
  }
  idx->Insert(key, version, addr->Pack(),
              static_cast<uint32_t>(stored_value.size()), dedup);

  ++stats_->puts;
  if (dedup) ++stats_->dedup_puts;
  const uint64_t ingested = key.size() + stored_value.size();
  stats_->user_bytes_ingested += ingested;
  ++shard_puts_;
  shard_bytes_ingested_.fetch_add(ingested, std::memory_order_relaxed);

  if (options_.checkpoint_interval_bytes > 0 &&
      shard_bytes_ingested_.load(std::memory_order_relaxed) -
              bytes_at_last_checkpoint_ >=
          options_.checkpoint_interval_bytes) {
    Status s = CheckpointLocked();
    if (!s.ok()) return NoteWriteError(s);
    bytes_at_last_checkpoint_ =
        shard_bytes_ingested_.load(std::memory_order_relaxed);
  }

  if (options_.auto_gc && aof_->active_segment() != segment_before) {
    // A segment sealed: cheap moment to evaluate the lazy GC policy.
    Status s = MaybeGcLocked();
    MaybeUnloadIndexLocked();
    return s;
  }
  MaybeUnloadIndexLocked();
  return Status::OK();
}

Result<ScrubReport> Shard::Scrub() {
  ScrubReport report;
  FlightGuard guard(reads_in_flight_);  // Scrubbing is an ongoing read.
  // A scrub walks every entry, so every version must be resident, and the
  // pin keeps unloads from hiding entries mid-walk.
  std::shared_ptr<void> scan_pin;
  if (registry_.enabled()) {
    MutexLock lock(&write_mutex_);
    if (Status s = EnsureAllResidentLocked(); !s.ok()) return s;
    scan_pin = registry_.AcquireScanPin();
  }
  const std::shared_ptr<const MemIndex> index = PinIndex();
  for (MemIndex::Iterator it = index->NewIterator(); it.Valid(); it.Next()) {
    MemEntry* entry = it.entry();
    ++report.entries_checked;
    aof::RecordView view;
    Status s = aof_->ReadRecord(aof::RecordAddress::Unpack(entry->address),
                                EntryExtent(entry), &view);
    if (!s.ok() || view.key != entry->user_key() ||
        view.header.version != entry->version ||
        view.is_dedup() != entry->dedup) {
      ++report.damaged_entries;
      continue;
    }
    report.bytes_verified += EntryExtent(entry);
    if (entry->dedup && !entry->deleted &&
        index->TracebackValue(entry->user_key(), entry->version) == nullptr) {
      ++report.unresolvable_dedups;
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

Shard::Scanner::Scanner(Shard* shard, uint64_t version)
    : shard_(shard),
      version_(version),
      index_(shard->PinIndex()),
      it_(index_->NewIterator()) {}

Shard::Scanner Shard::NewScanner(uint64_t version) {
  if (!registry_.enabled()) return Scanner(this, version);
  // Pin acquisition and the index snapshot must be atomic against unloads,
  // which run under write_mutex_: a pin taken after an unload's cold-check
  // but before its purge would still watch rows vanish mid-scan.
  MutexLock lock(&write_mutex_);
  if (registry_.AnyCold()) {
    DL_DISCARD_STATUS(
        "scanner construction has no status channel; a failed materialize "
        "surfaces as the still-cold version's rows missing from this scan "
        "(and a write fault sticks as degraded mode)",
        EnsureAllResidentLocked());
  }
  Scanner scanner(this, version);
  scanner.scan_pin_ = registry_.AcquireScanPin();
  return scanner;
}

void Shard::Scanner::Seek(const Slice& start) {
  if (start.empty()) {
    it_.SeekToFirst();
  } else {
    it_.Seek(start);
  }
  FindVisibleEntry();
}

void Shard::Scanner::Next() {
  // FindVisibleEntry left the underlying iterator at the next key run.
  FindVisibleEntry();
}

void Shard::Scanner::FindVisibleEntry() {
  valid_ = false;
  current_ = nullptr;
  while (it_.Valid()) {
    // Versions of a key are adjacent, newest first: take the first entry at
    // or below the scan version, then consume the rest of the run.
    MemEntry* candidate = nullptr;
    const MemEntry* run_head = it_.entry();
    const Slice run_key = run_head->user_key();  // Arena-backed, stable.
    while (it_.Valid() && it_.entry()->user_key() == run_key) {
      MemEntry* entry = it_.entry();
      if (candidate == nullptr && entry->version <= version_) {
        candidate = entry;
      }
      it_.Next();
    }
    if (candidate != nullptr && !candidate->deleted) {
      current_ = candidate;
      valid_ = true;
      return;
    }
  }
}

Result<std::string> Shard::Scanner::value() const {
  if (!valid_) return Status::InvalidArgument("scanner not positioned");
  FlightGuard guard(shard_->reads_in_flight_);
  MemEntry* source = current_;
  if (current_->dedup) {
    source = index_->TracebackValue(current_->user_key(), current_->version);
    if (source == nullptr) {
      return Status::Corruption("deduplicated pair with no value-bearing older version");
    }
  }
  return shard_->ReadEntryValue(source);
}

Result<std::string> Shard::ReadEntryValue(const MemEntry* entry) {
  constexpr int kMaxAttempts = 8;
  Status last = Status::Aborted("record kept moving during read");
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const uint64_t epoch = gc_epoch_.load(std::memory_order_acquire);
    const uint64_t address = entry->address.load(std::memory_order_acquire);
    const uint32_t value_size =
        entry->value_size.load(std::memory_order_acquire);
    if (cache_ != nullptr) {
      DIRECTLOAD_FAILPOINT(fp_cache_lookup);
      std::string cached;
      if (cache_->Lookup(address, entry->user_key(), entry->version,
                         &cached)) {
        return cached;
      }
    }
    aof::RecordView view;
    Status s = aof_->ReadRecord(aof::RecordAddress::Unpack(address),
                                aof::RecordExtent(entry->key_size, value_size),
                                &view);
    if (s.ok()) {
      if (view.key == entry->user_key() &&
          view.header.version == entry->version) {
        if (cache_ != nullptr) {
          bool fill = true;
#if DIRECTLOAD_FAILPOINTS_COMPILED
          if (fp_cache_insert->armed() &&
              !fp_cache_insert->MaybeFail().ok()) {
            fill = false;  // Injected: serve the value, skip the fill.
          }
#endif
          if (fill) {
            cache_->Insert(address, view.key, entry->version, view.value);
          }
        }
        return view.value.ToString();
      }
      s = Status::Internal("memtable offset points at the wrong record");
    }
    // A failed read may have raced a GC relocation of the record or a re-PUT
    // superseding it (address/value_size observed torn). Retry when either
    // signal moved; otherwise the failure is real.
    if (entry->address.load(std::memory_order_acquire) == address &&
        gc_epoch_.load(std::memory_order_acquire) == epoch) {
      return s;
    }
    last = s;
  }
  return last;
}

Result<std::string> Shard::Get(const Slice& key, uint64_t version) {
  ++stats_->gets;
  FlightGuard guard(reads_in_flight_);
  const bool lazy = registry_.enabled();
  // Up to two passes when lazy indexes are on: the second runs after a
  // materialize, or after a read failure that may have raced an unload+GC
  // pair (the entry purged mid-read, its record relocated with nothing
  // left to patch the pinned entry's address).
  std::shared_ptr<void> pin;
  for (int attempt = 0;; ++attempt) {
    const std::shared_ptr<const MemIndex> index = PinIndex();
    MemEntry* entry = index->FindExact(key, version);
    if (entry == nullptr || entry->deleted) {
      if (lazy && attempt < 2 && registry_.AnyCold() &&
          registry_.IsCold(version)) {
        // Pin BEFORE materializing: without it a commit-tail unload could
        // purge the version again between the load and the retry's pin.
        if (pin == nullptr) pin = registry_.AcquireScanPin();
        if (Status s = EnsureVersionResident(version); !s.ok()) return s;
        continue;  // Retry against the materialized index.
      }
      return Status::NotFound("no such key/version");
    }
    if (lazy) registry_.Touch(version);
    MemEntry* source = entry;
    if (entry->dedup) {
      // The value field was removed by Bifrost: traceback to the newest
      // older version that still carries one (Figure 2, bottom right).
      ++stats_->traceback_gets;
      source = index->TracebackValue(key, entry->version);
      if (source == nullptr) {
        return Status::Corruption(
            "deduplicated pair with no value-bearing older version");
      }
    }
    Result<std::string> value = ReadEntryValue(source);
    if (value.ok() || !lazy || attempt > 0) return value;
  }
}

Result<std::string> Shard::GetLatest(const Slice& key) {
  ++stats_->gets;
  FlightGuard guard(reads_in_flight_);
  const bool lazy = registry_.enabled();
  std::shared_ptr<void> pin;
  for (int attempt = 0;; ++attempt) {
    // "Latest" spans every version, so everything must be resident.
    if (lazy && registry_.AnyCold()) {
      // Pin first so no unload can re-purge a version between the
      // materialize below and the index pin that reads it.
      if (pin == nullptr) pin = registry_.AcquireScanPin();
      if (Status s = EnsureAllResident(); !s.ok()) return s;
    }
    const std::shared_ptr<const MemIndex> index = PinIndex();
    bool retry = false;
    for (MemEntry* entry : index->EntriesForKey(key)) {
      if (entry->deleted) continue;
      if (lazy) registry_.Touch(entry->version);
      MemEntry* source = entry;
      if (entry->dedup) {
        ++stats_->traceback_gets;
        source = index->TracebackValue(key, entry->version);
        if (source == nullptr) {
          return Status::Corruption(
              "deduplicated pair with no value-bearing older version");
        }
      }
      Result<std::string> value = ReadEntryValue(source);
      if (value.ok() || !lazy || attempt > 0) return value;
      retry = true;  // Raced an unload+GC pair: re-resolve from scratch.
      break;
    }
    if (!retry) return Status::NotFound("no live version");
  }
}

Status Shard::DelLocked(const Slice& key, uint64_t version) {
  if (registry_.enabled() && registry_.AnyCold() && registry_.IsCold(version)) {
    // The entry must be resident to flag it deleted (and once deleted the
    // version can never unload again, so the load is not churn).
    if (Status s = EnsureVersionResidentLocked(version); !s.ok()) return s;
  }
  MemIndex* idx = CurrentIndex();
  MemEntry* entry = idx->FindExact(key, version);
  if (entry == nullptr) return Status::NotFound("no such key/version");
  if (!entry->deleted.exchange(true, std::memory_order_acq_rel)) {
    ++stats_->dels;
    ++shard_dels_;
    const DeadSink sink{aof_.get(), nullptr, cache_.get()};
    ApplyDeleteAccounting(*idx, sink, entry);
    if (options_.aof.log_deletes) {
      Result<aof::RecordAddress> addr =
          aof_->AppendRecord(key, version, aof::kFlagTombstone, Slice());
      if (!addr.ok()) return NoteWriteError(addr.status());
      // Tombstones are dead on arrival for occupancy purposes.
      aof_->MarkDead(*addr, aof::RecordExtent(key.size(), 0));
    }
  }
  if (options_.auto_gc) return MaybeGcLocked();
  return Status::OK();
}

Result<uint64_t> Shard::DropVersionLocked(uint64_t version) {
  if (registry_.enabled() && registry_.AnyCold() && registry_.IsCold(version)) {
    // Dropping a cold version still needs its entries: each pair must be
    // flagged, logged (when log_deletes) and accounted dead individually.
    if (Status s = EnsureVersionResidentLocked(version); !s.ok()) return s;
  }
  MemIndex* idx = CurrentIndex();
  uint64_t flagged = 0;
  std::vector<MemEntry*> hits;
  for (MemIndex::Iterator it = idx->NewIterator(); it.Valid(); it.Next()) {
    MemEntry* entry = it.entry();
    if (entry->version == version && !entry->deleted) hits.push_back(entry);
  }
  const DeadSink sink{aof_.get(), nullptr, cache_.get()};
  for (MemEntry* entry : hits) {
    entry->deleted = true;
    ++stats_->dels;
    ++shard_dels_;
    ++flagged;
    ApplyDeleteAccounting(*idx, sink, entry);
    if (options_.aof.log_deletes) {
      Result<aof::RecordAddress> addr = aof_->AppendRecord(
          entry->user_key(), version, aof::kFlagTombstone, Slice());
      if (!addr.ok()) return NoteWriteError(addr.status());
      aof_->MarkDead(*addr, aof::RecordExtent(entry->key_size, 0));
    }
  }
  // The version's pairs are all deleted now, so it can never unload again;
  // drop its registry bookkeeping (access tick) for good.
  if (registry_.enabled()) registry_.Forget(version);
  if (options_.auto_gc) {
    Status s = MaybeGcLocked();
    if (!s.ok()) return s;
  }
  return flagged;
}

// ---------------------------------------------------------------------------
// Group commit
// ---------------------------------------------------------------------------

Status Shard::Write(WriteBatch& batch) {
  batch.statuses_.clear();
  batch.dropped_.assign(batch.ops_.size(), 0);
  if (batch.ops_.empty()) return Status::OK();
  if (Status w = CheckWritable(); !w.ok()) {
    batch.statuses_.assign(batch.ops_.size(), w);
    return w;
  }
  if (!options_.group_commit) return WriteUngrouped(batch);
  PendingWrite self(&batch);
  EnqueueWrite(&self);
  return CompleteWrite(&self);
}

void Shard::EnqueueWrite(PendingWrite* pending) {
  WriteBatch& batch = *pending->batch;
  // Pre-encode this batch's Put records — checksum included — on the
  // calling thread, before taking any lock. Encoding is the dominant
  // per-op cost of a write (the CRC over the value), so under group commit
  // it runs in parallel across the enqueueing writers while the leader's
  // critical section shrinks to concatenate-append-apply. Ops that fail
  // the appender's own limits are left unencoded; the plan phase rejects
  // them per-op with a precise status.
  pending->spans.assign(batch.ops_.size(), {0, 0});
  for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
    const WriteOp& op = batch.ops_[oi];
    if (op.kind != WriteOpKind::kPut) continue;
    if (op.key.empty() || op.key.size() > UINT16_MAX ||
        aof::RecordExtent(op.key.size(), op.value.size()) >
            options_.aof.segment_bytes) {
      continue;
    }
    const size_t at = pending->encoded.size();
    aof::EncodeRecord(op.key, op.version,
                      op.dedup ? aof::kFlagDedup : aof::kFlagNone, op.value,
                      &pending->encoded);
    pending->spans[oi] = {at, pending->encoded.size() - at};
  }

  // Enqueue before contending on write_mutex_: while the current leader
  // commits (holding write_mutex_), later writers still reach the queue, so
  // the next leader finds a group, not a single batch.
  MutexLock queue_lock(&batch_mu_);
  write_queue_.push_back(pending);
}

Status Shard::CompleteWrite(PendingWrite* pending) {
  PendingWrite& self = *pending;
  // Only the queue FRONT proceeds to write_mutex_; every other writer parks
  // on batch_cv_ and is released by the leader that commits its batch.
  // Followers therefore never touch write_mutex_ at all — without the gate,
  // each committed follower still had to win one write_mutex_ handoff just
  // to observe done, which serialized a futex wake per op and erased the
  // win from batching.
  {
    MutexLock queue_lock(&batch_mu_);
    // An empty queue while !done means a looping leader drained this batch
    // into its in-flight group; done is forthcoming, so keep waiting.
    while (!self.done &&
           (write_queue_.empty() || write_queue_.front() != &self)) {
      batch_cv_.Wait();
    }
    if (self.done) return self.overall;
  }

  MutexLock lock(&write_mutex_);
  while (true) {
    std::vector<PendingWrite*> group;
    {
      MutexLock queue_lock(&batch_mu_);
      // A previous leader may have committed this batch between the park
      // above and this thread acquiring write_mutex_.
      if (self.done) return self.overall;
      size_t group_ops = 0;
      uint64_t group_bytes = 0;
      while (!write_queue_.empty()) {
        PendingWrite* candidate = write_queue_.front();
        if (!group.empty() &&
            (group_ops + candidate->batch->size() >
                 options_.group_commit_max_ops ||
             group_bytes + candidate->batch->ApproximateBytes() >
                 options_.group_commit_max_bytes)) {
          break;
        }
        group.push_back(candidate);
        group_ops += candidate->batch->size();
        group_bytes += candidate->batch->ApproximateBytes();
        write_queue_.pop_front();
      }
    }
    // The queue still held this thread's own batch, so group is non-empty.
    CommitGroupLocked(group);
    bool self_done = false;
    {
      MutexLock queue_lock(&batch_mu_);
      for (PendingWrite* member : group) member->done = true;
      self_done = self.done;
      // Wakes the committed followers (they return) and the new queue
      // front (it becomes the next leader).
      batch_cv_.SignalAll();
    }
    if (self_done) return self.overall;
    // The budget cut the drain before reaching this thread's batch (older
    // batches filled the group): lead another round.
  }
}

Status Shard::WriteUngrouped(WriteBatch& batch) {
  MutexLock lock(&write_mutex_);
  batch.statuses_.clear();
  batch.dropped_.assign(batch.ops_.size(), 0);
  batch.statuses_.reserve(batch.ops_.size());
  for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
    const WriteOp& op = batch.ops_[oi];
    Status s;
    switch (op.kind) {
      case WriteOpKind::kPut:
        s = PutLocked(op.key, op.version, op.value, op.dedup);
        break;
      case WriteOpKind::kDel:
        s = DelLocked(op.key, op.version);
        break;
      case WriteOpKind::kDropVersion: {
        Result<uint64_t> flagged = DropVersionLocked(op.version);
        if (flagged.ok()) batch.dropped_[oi] = *flagged;
        s = flagged.status();
        break;
      }
    }
    batch.statuses_.push_back(s);
    if (!s.ok() && degraded()) {
      // A write fault tripped degraded mode mid-batch: the remaining ops
      // fail the same way a sequence of single-op calls would.
      for (size_t rest = oi + 1; rest < batch.ops_.size(); ++rest) {
        batch.statuses_.push_back(CheckWritable());
      }
      break;
    }
  }
  for (const Status& s : batch.statuses_) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void Shard::CommitGroupLocked(const std::vector<PendingWrite*>& group) {
  // A previous group may have tripped degraded mode while this batch
  // waited; fail every drained batch the way a lone op would fail.
  if (Status w = CheckWritable(); !w.ok()) {
    for (PendingWrite* member : group) {
      member->batch->statuses_.assign(member->batch->ops_.size(), w);
      member->overall = w;
    }
    return;
  }

  if (registry_.enabled() && registry_.AnyCold()) {
    // Plan-time decisions (supersede, Del existence, DropVersion hits,
    // dedup traceback targets) need the touched versions resident. Puts
    // name their versions up front; any Del/Drop/dedup op spans versions
    // unpredictably, so those groups materialize everything.
    bool all = false;
    std::set<uint64_t> versions;
    for (const PendingWrite* member : group) {
      for (const WriteOp& op : member->batch->ops_) {
        if (op.kind != WriteOpKind::kPut || op.dedup) {
          all = true;
          break;
        }
        versions.insert(op.version);
      }
      if (all) break;
    }
    Status resident;
    if (all) {
      resident = EnsureAllResidentLocked();
    } else {
      for (uint64_t v : versions) {
        resident = EnsureVersionResidentLocked(v);
        if (!resident.ok()) break;
      }
    }
    if (!resident.ok()) {
      // Fail the group whole, like a failed append: nothing was applied.
      for (PendingWrite* member : group) {
        member->batch->statuses_.assign(member->batch->ops_.size(), resident);
        member->overall = resident;
      }
      return;
    }
  }

  MemIndex* idx = CurrentIndex();
  const uint32_t segment_before = aof_->active_segment();

  // --- Plan: walk every op of every batch in order, deciding per-op
  // validity and collecting the records the group will append. Del and
  // DropVersion must observe the effect of earlier ops in the group whose
  // records are not yet appended (hence not yet in the index); `overlay`
  // carries that pending state keyed on (key, version). Planning and apply
  // run inside one write_mutex_ critical section, so plan-time decisions
  // are exact, not speculative.
  enum class Action : uint8_t {
    kSkip,  // Per-op status already final (invalid op, NotFound, no-op).
    kPut,   // Insert the record at slot `slot`.
    kDel,   // Flag (key, version) deleted; tombstone at `slot` if logged.
    kDrop,  // Flag hits [hit_begin, hit_end); tombstones from `slot` on.
  };
  struct PlannedOp {
    Action action = Action::kSkip;
    size_t slot = SIZE_MAX;
    size_t hit_begin = 0;
    size_t hit_end = 0;
  };
  struct OverlayState {
    bool live = false;
  };

  std::vector<aof::AofManager::AppendOp> slots;
  std::vector<Slice> drop_hits;  // Backing: memtable arena or batch ops.
  std::map<std::pair<std::string_view, uint64_t>, OverlayState> overlay;
  std::vector<std::vector<PlannedOp>> plans(group.size());

  // The overlay only ever feeds Del/DropVersion decisions. Pure-Put groups
  // — the hot path — skip its per-op node allocations entirely.
  size_t total_ops = 0;
  bool needs_overlay = false;
  for (const PendingWrite* member : group) {
    total_ops += member->batch->ops_.size();
    for (const WriteOp& op : member->batch->ops_) {
      needs_overlay |= op.kind != WriteOpKind::kPut;
    }
  }
  slots.reserve(total_ops);

  for (size_t b = 0; b < group.size(); ++b) {
    WriteBatch& batch = *group[b]->batch;
    batch.statuses_.assign(batch.ops_.size(), Status::OK());
    batch.dropped_.assign(batch.ops_.size(), 0);
    plans[b].resize(batch.ops_.size());
    for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
      const WriteOp& op = batch.ops_[oi];
      PlannedOp& plan = plans[b][oi];
      const std::string_view key_view(op.key);
      switch (op.kind) {
        case WriteOpKind::kPut: {
          if (op.key.empty()) {
            batch.statuses_[oi] = Status::InvalidArgument("empty key");
            break;
          }
          // Pre-screen with the appender's own limits so one oversized op
          // fails alone instead of failing the group's vectored append.
          if (op.key.size() > UINT16_MAX) {
            batch.statuses_[oi] = Status::InvalidArgument("key too long");
            break;
          }
          if (aof::RecordExtent(op.key.size(), op.value.size()) >
              options_.aof.segment_bytes) {
            batch.statuses_[oi] =
                Status::InvalidArgument("record exceeds segment capacity");
            break;
          }
          plan.action = Action::kPut;
          plan.slot = slots.size();
          aof::AofManager::AppendOp slot{
              Slice(op.key), op.version,
              op.dedup ? aof::kFlagDedup : aof::kFlagNone, Slice(op.value),
              Slice()};
          const auto& span = group[b]->spans[oi];
          if (span.second != 0) {
            slot.preencoded =
                Slice(group[b]->encoded.data() + span.first, span.second);
          }
          slots.push_back(slot);
          if (needs_overlay) overlay[{key_view, op.version}] = OverlayState{true};
          break;
        }
        case WriteOpKind::kDel: {
          bool exists = false;
          bool live = false;
          if (auto it = overlay.find({key_view, op.version});
              it != overlay.end()) {
            exists = true;
            live = it->second.live;
          } else if (MemEntry* e = idx->FindExact(op.key, op.version);
                     e != nullptr) {
            exists = true;
            live = !e->deleted.load(std::memory_order_acquire);
          }
          if (!exists) {
            batch.statuses_[oi] = Status::NotFound("no such key/version");
            break;
          }
          if (!live) break;  // Already deleted: a successful no-op.
          plan.action = Action::kDel;
          if (options_.aof.log_deletes) {
            plan.slot = slots.size();
            slots.push_back({Slice(op.key), op.version, aof::kFlagTombstone,
                             Slice(), Slice()});
          }
          overlay[{key_view, op.version}] = OverlayState{false};
          break;
        }
        case WriteOpKind::kDropVersion: {
          plan.action = Action::kDrop;
          plan.hit_begin = drop_hits.size();
          // Index pass: live pairs of this version the group has not
          // already re-decided (the overlay pass covers those).
          for (MemIndex::Iterator it = idx->NewIterator(); it.Valid();
               it.Next()) {
            MemEntry* entry = it.entry();
            if (entry->version != op.version || entry->deleted) continue;
            const Slice entry_key = entry->user_key();
            if (overlay.count({std::string_view(entry_key.data(),
                                                entry_key.size()),
                               op.version}) != 0) {
              continue;
            }
            drop_hits.push_back(entry_key);
          }
          for (const auto& [ov_key, state] : overlay) {
            if (ov_key.second == op.version && state.live) {
              drop_hits.push_back(Slice(ov_key.first));
            }
          }
          plan.hit_end = drop_hits.size();
          if (options_.aof.log_deletes) {
            plan.slot = slots.size();
            for (size_t h = plan.hit_begin; h < plan.hit_end; ++h) {
              slots.push_back({drop_hits[h], op.version, aof::kFlagTombstone,
                               Slice(), Slice()});
            }
          }
          for (size_t h = plan.hit_begin; h < plan.hit_end; ++h) {
            overlay[{std::string_view(drop_hits[h].data(),
                                      drop_hits[h].size()),
                     op.version}] = OverlayState{false};
          }
          break;
        }
      }
    }
  }

  // --- Append: every record of the group, one vectored call. One segment
  // append + one roll check + one occupancy update per run instead of N.
  std::vector<aof::RecordAddress> addresses;
  if (!slots.empty()) {
    Status s = aof_->AppendMany(slots.data(), slots.size(), &addresses);
    if (!s.ok()) {
      s = NoteWriteError(std::move(s));
      // The group commits or fails as one append, like a lone Put whose
      // AppendRecord failed. Ops already rejected during planning keep
      // their more specific statuses.
      for (size_t b = 0; b < group.size(); ++b) {
        WriteBatch& batch = *group[b]->batch;
        for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
          if (plans[b][oi].action != Action::kSkip) batch.statuses_[oi] = s;
        }
        group[b]->overall = s;
      }
      return;
    }
  }

  // --- Apply: memtable mutations strictly in op order, so a concurrent
  // lock-free reader can observe a prefix of the group but never a key's
  // version chain with an op applied out of order (a dedup entry always
  // lands after the base value it tracebacks to). Occupancy updates are
  // deferred into one MarkDeadMany.
  uint64_t ingested = 0;
  bool any_applied_delete = false;
  std::vector<std::pair<aof::RecordAddress, uint64_t>> dead;
  const DeadSink sink{nullptr, &dead, cache_.get()};
  for (size_t b = 0; b < group.size(); ++b) {
    WriteBatch& batch = *group[b]->batch;
    for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
      const WriteOp& op = batch.ops_[oi];
      const PlannedOp& plan = plans[b][oi];
      switch (plan.action) {
        case Action::kSkip:
          break;
        case Action::kPut: {
          MemEntry* old = idx->FindExact(op.key, op.version);
          if (old != nullptr) {
            // Re-PUT of the same versioned key supersedes the previous
            // record (possibly one from earlier in this very group).
            sink.MarkDead(aof::RecordAddress::Unpack(old->address),
                          EntryExtent(old));
          }
          idx->Insert(op.key, op.version, addresses[plan.slot].Pack(),
                      static_cast<uint32_t>(op.value.size()), op.dedup);
          ++stats_->puts;
          ++shard_puts_;
          if (op.dedup) ++stats_->dedup_puts;
          ingested += op.key.size() + op.value.size();
          break;
        }
        case Action::kDel: {
          MemEntry* entry = idx->FindExact(op.key, op.version);
          if (entry != nullptr &&
              !entry->deleted.exchange(true, std::memory_order_acq_rel)) {
            ++stats_->dels;
            ++shard_dels_;
            any_applied_delete = true;
            ApplyDeleteAccounting(*idx, sink, entry);
          }
          if (plan.slot != SIZE_MAX) {
            // Tombstones are dead on arrival for occupancy purposes.
            sink.MarkDead(addresses[plan.slot],
                          aof::RecordExtent(op.key.size(), 0));
          }
          break;
        }
        case Action::kDrop: {
          uint64_t flagged = 0;
          for (size_t h = plan.hit_begin; h < plan.hit_end; ++h) {
            MemEntry* entry = idx->FindExact(drop_hits[h], op.version);
            if (entry != nullptr &&
                !entry->deleted.exchange(true, std::memory_order_acq_rel)) {
              ++stats_->dels;
              ++shard_dels_;
              ++flagged;
              any_applied_delete = true;
              ApplyDeleteAccounting(*idx, sink, entry);
            }
            if (plan.slot != SIZE_MAX) {
              sink.MarkDead(addresses[plan.slot + (h - plan.hit_begin)],
                            aof::RecordExtent(drop_hits[h].size(), 0));
            }
          }
          batch.dropped_[oi] = flagged;
          break;
        }
      }
    }
  }
  stats_->user_bytes_ingested += ingested;
  shard_bytes_ingested_.fetch_add(ingested, std::memory_order_relaxed);
  aof_->MarkDeadMany(dead);

  // Per-batch overall: the first failing per-op status, like the return of
  // the equivalent single-op call sequence.
  for (PendingWrite* member : group) {
    member->overall = Status::OK();
    for (const Status& s : member->batch->statuses_) {
      if (!s.ok()) {
        member->overall = s;
        break;
      }
    }
  }

  // Maintenance runs once per group, at the same boundaries the single-op
  // path used: the interval checkpoint on ingested bytes, the lazy GC when
  // a segment sealed or a delete freed space. A maintenance failure leaves
  // the group's data committed but surfaces as every batch's overall
  // status — exactly how a lone Put reports a failed interval checkpoint.
  Status maintenance;
  if (options_.checkpoint_interval_bytes > 0 &&
      shard_bytes_ingested_.load(std::memory_order_relaxed) -
              bytes_at_last_checkpoint_ >=
          options_.checkpoint_interval_bytes) {
    maintenance = NoteWriteError(CheckpointLocked());
    if (maintenance.ok()) {
      bytes_at_last_checkpoint_ =
          shard_bytes_ingested_.load(std::memory_order_relaxed);
    }
  }
  if (maintenance.ok() && options_.auto_gc &&
      (any_applied_delete || aof_->active_segment() != segment_before)) {
    maintenance = MaybeGcLocked();  // Applies NoteWriteError internally.
  }
  if (!maintenance.ok()) {
    for (PendingWrite* member : group) member->overall = maintenance;
  }
  MaybeUnloadIndexLocked();
}

// ---------------------------------------------------------------------------
// Bulk ingest (Bifrost over the wire)
// ---------------------------------------------------------------------------

Status Shard::IngestBegin(uint64_t version) {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  // Idempotent: a repaired connection may re-open the session it already
  // holds; the staged state is keyed by version and survives.
  ingest_sessions_.try_emplace(version);
  return Status::OK();
}

Status Shard::IngestRun(uint64_t version, const IngestOp* ops, size_t count) {
  if (Status w = CheckWritable(); !w.ok()) return w;
  if (count == 0) return Status::OK();

  // Validate and pre-encode the whole run OUTSIDE the shard lock — like the
  // group-commit enqueue path, the CRC over the values is the dominant cost
  // and must not serialize behind the committer. Unlike a WriteBatch, a run
  // fails whole on an invalid op: a slice is re-sent, never patched per-op.
  std::string encoded;
  std::vector<std::pair<size_t, size_t>> spans(count);
  {
    // One allocation for the whole run: growth reallocs would re-copy the
    // already-encoded prefix, and runs are slice-sized.
    size_t total = 0;
    for (size_t i = 0; i < count; ++i) {
      const size_t value_size = (ops[i].dedup || ops[i].tombstone)
                                    ? 0
                                    : ops[i].value.size();
      total += aof::RecordExtent(ops[i].key.size(), value_size);
    }
    encoded.reserve(total);
  }
  for (size_t i = 0; i < count; ++i) {
    const IngestOp& op = ops[i];
    if (op.key.empty()) {
      return Status::InvalidArgument("empty key in ingest run");
    }
    if (op.key.size() > UINT16_MAX) {
      return Status::InvalidArgument("key too long in ingest run");
    }
    if (!op.tombstone && op.version != version) {
      return Status::InvalidArgument(
          "ingest put version differs from the session version");
    }
    const Slice stored_value = (op.dedup || op.tombstone) ? Slice() : op.value;
    if (aof::RecordExtent(op.key.size(), stored_value.size()) >
        options_.aof.segment_bytes) {
      return Status::InvalidArgument("record exceeds segment capacity");
    }
    uint8_t flags = aof::kFlagIngestPending;
    if (op.dedup) flags |= aof::kFlagDedup;
    if (op.tombstone) flags |= aof::kFlagTombstone;
    const size_t at = encoded.size();
    aof::EncodeRecord(op.key, op.version, flags, stored_value, &encoded);
    spans[i] = {at, encoded.size() - at};
  }

  MutexLock lock(&write_mutex_);
  if (Status w = CheckWritable(); !w.ok()) return w;
  auto session = ingest_sessions_.find(version);
  if (session == ingest_sessions_.end()) {
    return Status::InvalidArgument("no bulk-ingest session for this version");
  }
  DIRECTLOAD_FAILPOINT(fp_qindb_ingest_append);

  std::vector<aof::AofManager::AppendOp> slots;
  slots.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const IngestOp& op = ops[i];
    uint8_t flags = aof::kFlagIngestPending;
    if (op.dedup) flags |= aof::kFlagDedup;
    if (op.tombstone) flags |= aof::kFlagTombstone;
    slots.push_back({op.key, op.version, flags,
                     (op.dedup || op.tombstone) ? Slice() : op.value,
                     Slice(encoded.data() + spans[i].first, spans[i].second)});
  }
  std::vector<aof::RecordAddress> addresses;
  if (Status s = aof_->AppendMany(slots.data(), slots.size(), &addresses);
      !s.ok()) {
    // AppendMany already rolled back the occupancy accounting of any
    // durable prefix; the run fails whole and the session stays open for
    // the caller to retry or abort.
    return NoteWriteError(std::move(s));
  }

  IngestSession& sess = session->second;
  // Grow geometrically: an exact-size reserve per run would reallocate (and
  // copy every staged entry) on EVERY run — quadratic over a multi-run load.
  if (sess.staged.capacity() < sess.staged.size() + count) {
    sess.staged.reserve(
        std::max(sess.staged.size() + count, sess.staged.capacity() * 2));
  }
  for (size_t i = 0; i < count; ++i) {
    const IngestOp& op = ops[i];
    const Slice stored_value = (op.dedup || op.tombstone) ? Slice() : op.value;
    IngestSession::Staged staged;
    staged.key.assign(op.key.data(), op.key.size());
    staged.version = op.version;
    staged.address = addresses[i].Pack();
    staged.value_size = static_cast<uint32_t>(stored_value.size());
    staged.dedup = op.dedup;
    staged.tombstone = op.tombstone;
    sess.staged.push_back(std::move(staged));
    sess.appended.emplace_back(
        addresses[i], aof::RecordExtent(op.key.size(), stored_value.size()));
  }
  return Status::OK();
}

Status Shard::IngestCommit(uint64_t version) {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  if (Status w = CheckWritable(); !w.ok()) return w;
  auto it = ingest_sessions_.find(version);
  if (it == ingest_sessions_.end()) {
    // Idempotent retry: a cross-shard commit torn between shards re-runs
    // against every shard, and a shard whose marker already landed must
    // answer OK — "no session" here would wedge the retry forever.
    if (ingest_committed_.count(version) != 0) return Status::OK();
    return Status::InvalidArgument("no bulk-ingest session for this version");
  }

  if (registry_.enabled() && registry_.AnyCold()) {
    // Staged puts supersede and staged tombstones (the d-flag) may target
    // any version; a bulk commit is rare enough to just materialize all.
    if (Status s = EnsureAllResidentLocked(); !s.ok()) return s;
  }

  const uint32_t segment_before = aof_->active_segment();
  // The marker IS the commit point: once durable, recovery indexes every
  // pending record of this version; before it, the version leaves no
  // trace. The marker is never marked dead and GC keeps markers forever
  // (the classify rule) — a relocated pending record can land after its
  // marker in segment order, and the marker is what vouches for it.
  Result<aof::RecordAddress> marker =
      aof_->AppendRecord(Slice(), version, aof::kFlagIngestCommit, Slice());
  if (!marker.ok()) return NoteWriteError(marker.status());

  // Apply the staged pairs to the memtable in run order: puts supersede
  // any existing (key, version) entry exactly like a re-PUT; tombstones
  // flag pairs (typically of older versions — the d-flag riding the load)
  // deleted. Occupancy updates batch into one MarkDeadMany.
  MemIndex* idx = CurrentIndex();
  IngestSession& sess = it->second;
  uint64_t ingested = 0;
  bool any_applied_delete = false;
  std::vector<std::pair<aof::RecordAddress, uint64_t>> dead;
  const DeadSink sink{nullptr, &dead, cache_.get()};
  for (const IngestSession::Staged& op : sess.staged) {
    const Slice key(op.key);
    if (op.tombstone) {
      // The pending tombstone record is dead on arrival, like every
      // logged delete; a missing target is a no-op, not an error.
      sink.MarkDead(aof::RecordAddress::Unpack(op.address),
                    aof::RecordExtent(op.key.size(), 0));
      MemEntry* entry = idx->FindExact(key, op.version);
      if (entry != nullptr &&
          !entry->deleted.exchange(true, std::memory_order_acq_rel)) {
        ++stats_->dels;
        ++shard_dels_;
        any_applied_delete = true;
        ApplyDeleteAccounting(*idx, sink, entry);
      }
      continue;
    }
    MemEntry* old = idx->FindExact(key, op.version);
    if (old != nullptr) {
      sink.MarkDead(aof::RecordAddress::Unpack(old->address),
                    EntryExtent(old));
    }
    idx->Insert(key, op.version, op.address, op.value_size, op.dedup);
    ++stats_->puts;
    ++shard_puts_;
    if (op.dedup) ++stats_->dedup_puts;
    ingested += op.key.size() + op.value_size;
  }
  stats_->user_bytes_ingested += ingested;
  shard_bytes_ingested_.fetch_add(ingested, std::memory_order_relaxed);
  aof_->MarkDeadMany(dead);
  ingest_sessions_.erase(it);
  ingest_committed_.insert(version);

  // Maintenance at the write paths' boundaries — legal again now that the
  // session is gone (unless a concurrent load still holds one).
  if (options_.checkpoint_interval_bytes > 0 &&
      shard_bytes_ingested_.load(std::memory_order_relaxed) -
              bytes_at_last_checkpoint_ >=
          options_.checkpoint_interval_bytes) {
    if (Status s = CheckpointLocked(); !s.ok()) return NoteWriteError(s);
    bytes_at_last_checkpoint_ =
        shard_bytes_ingested_.load(std::memory_order_relaxed);
  }
  Status tail;
  if (options_.auto_gc &&
      (any_applied_delete || aof_->active_segment() != segment_before)) {
    tail = MaybeGcLocked();
  }
  MaybeUnloadIndexLocked();
  return tail;
}

Status Shard::IngestAbort(uint64_t version) {
  // No CheckWritable gate: abort is cleanup and must work (and release the
  // checkpoint/GC deferral) even after a write fault degraded the shard.
  MutexLock lock(&write_mutex_);
  auto it = ingest_sessions_.find(version);
  if (it == ingest_sessions_.end()) {
    return Status::InvalidArgument("no bulk-ingest session for this version");
  }
  // Roll back occupancy: every staged record becomes garbage in one
  // vectored MarkDeadMany (the PR 5 rollback machinery). The bytes stay on
  // disk until GC, but recovery never indexes them — there is no marker.
  // Staged records were never indexed, hence never read, hence never
  // cached; the purge below is belt-and-braces against any future path
  // that reads staged bytes before commit.
  if (cache_ != nullptr) {
    for (const auto& [addr, extent] : it->second.appended) {
      cache_->Erase(addr.Pack());
    }
  }
  aof_->MarkDeadMany(it->second.appended);
  ingest_sessions_.erase(it);
  if (!degraded() && options_.auto_gc) return MaybeGcLocked();
  return Status::OK();
}

std::map<uint64_t, uint64_t> Shard::VersionCounts() const {
  std::map<uint64_t, uint64_t> counts;
  const std::shared_ptr<const MemIndex> index = PinIndex();
  for (MemIndex::Iterator it = index->NewIterator(); it.Valid(); it.Next()) {
    const MemEntry* entry = it.entry();
    if (!entry->deleted) ++counts[entry->version];
  }
  // Cold versions have no index entries; their counts live in the registry
  // metadata (every cold pair is live — deletions block unloading).
  if (registry_.enabled()) {
    for (const auto& [version, meta] : registry_.ColdSnapshot()) {
      counts[version] += meta.entry_count;
    }
  }
  return counts;
}

ShardStatsSnapshot Shard::StatsSnapshot() const {
  ShardStatsSnapshot snap;
  snap.shard_id = shard_id_;
  snap.puts = shard_puts_.load(std::memory_order_relaxed);
  snap.dels = shard_dels_.load(std::memory_order_relaxed);
  snap.user_bytes_ingested =
      shard_bytes_ingested_.load(std::memory_order_relaxed);
  const std::shared_ptr<const MemIndex> index = PinIndex();
  snap.live_entries = index->live_count();
  snap.segments = aof_->segment_count();
  snap.degraded = degraded();
  if (cache_ != nullptr) {
    const BlockCache::Stats cs = cache_->stats();
    snap.cache_hits = cs.hits;
    snap.cache_misses = cs.misses;
    snap.cache_inserts = cs.inserts;
    snap.cache_admission_rejects = cs.admission_rejects;
    snap.cache_evicted_bytes = cs.evicted_bytes;
    snap.cache_charged_bytes = cs.charged_bytes;
  }
  const VersionIndexRegistry::Stats rs = registry_.stats();
  snap.index_loads = rs.loads;
  snap.index_unloads = rs.unloads;
  snap.cold_versions = rs.cold_versions;
  if (registry_.enabled()) {
    // Distinct versions with at least one resident entry: one index walk,
    // acceptable for a stats endpoint.
    std::set<uint64_t> resident;
    for (MemIndex::Iterator it = index->NewIterator(); it.Valid();
         it.Next()) {
      resident.insert(it.entry()->version);
    }
    snap.resident_versions = resident.size();
  }
  return snap;
}

Status Shard::MaybeGc() {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  return MaybeGcLocked();
}

Status Shard::MaybeGcLocked() {
  if (!ingest_sessions_.empty()) {
    // Pending bulk-ingest records are not in the memtable yet, so the
    // classify pass would drop them as superseded garbage. Defer until
    // every session commits or aborts.
    ++stats_->gc_deferrals;
    return Status::OK();
  }
  if (aof_->GcVictims().empty()) return Status::OK();
  if (options_.defer_gc_during_reads &&
      reads_in_flight_->load(std::memory_order_relaxed) > 0) {
    const double usage = static_cast<double>(env_->TotalFileBytes()) /
                         static_cast<double>(env_->CapacityBytes());
    if (usage < options_.gc_space_pressure) {
      ++stats_->gc_deferrals;
      return Status::OK();
    }
  }
  // GC rewrites live records; a failure partway through can leave a victim
  // half-relocated, so it degrades the engine like any other write fault.
  return NoteWriteError(CollectVictimsLocked());
}

Status Shard::ForceGc() {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  if (!ingest_sessions_.empty()) {
    // Unlike the lazy policy's silent deferral, a forced collection that
    // cannot run (it would drop unindexed pending records) says so.
    return Status::Busy("bulk-ingest session active; GC deferred");
  }
  if (aof_->GcVictims().empty()) return Status::OK();
  return NoteWriteError(CollectVictimsLocked());
}

Status Shard::CollectVictimsLocked() {
  const std::vector<uint32_t> victims = aof_->GcVictims();
  if (victims.empty()) return Status::OK();

  // Relocations make any existing checkpoint's addresses stale, so drop it
  // BEFORE touching a single record. If the checkpoint outlived any part of
  // a collection — a crash after a victim segment is erased but before the
  // invalidation — recovery would trust checkpoint addresses that point
  // into segments that no longer exist. Invalidating first means a crash
  // anywhere inside GC recovers by full scan, which reconciles original
  // and relocated copies from the on-disk records alone. (The crash-point
  // sweep in tests/chaos_test.cc exercises exactly these windows.)
  if (Status s = InvalidateCheckpoint(); !s.ok()) return s;

  // The callbacks below run with the AOF manager's lock held exclusively,
  // so they must not re-enter the manager and must not take pin_mu_ (the
  // rank order allows it, but the analysis cannot see into lambdas): the
  // live index is captured up front. It cannot be retired mid-collection
  // because only this function retires indices, under write_mutex_.
  MemIndex* live = CurrentIndex();
  BlockCache* cache = cache_.get();
  // The registry's lock ranks above the AOF manager's precisely so the
  // classify/relocate callbacks may consult it with the manager's lock
  // held.
  VersionIndexRegistry* registry = registry_.enabled() ? &registry_ : nullptr;

  // Snapshot the retired indices still pinned by readers: relocations must
  // patch their entries too, or a pinned snapshot would keep chasing
  // addresses inside segments that no longer exist.
  std::vector<std::shared_ptr<MemIndex>> retired;
  {
    MutexLock pin_lock(&pin_mu_);
    retired.reserve(retired_.size());
    for (auto it = retired_.begin(); it != retired_.end();) {
      if (std::shared_ptr<MemIndex> idx = it->lock()) {
        retired.push_back(std::move(idx));
        ++it;
      } else {
        it = retired_.erase(it);  // No pinned reader left.
      }
    }
  }

  for (uint32_t id : victims) {
    Status s = aof_->CollectSegment(
        id,
        /*classify=*/
        [live, registry](const aof::RecordAddress& addr,
                         const aof::RecordView& rec) {
          if (rec.is_ingest_commit()) {
            // Commit markers are kept forever: a relocated pending record
            // can land after its marker in segment order, and the marker
            // is what vouches for it at recovery. One 20-byte record per
            // shard per bulk load.
            return true;
          }
          if (rec.is_tombstone()) {
            // Keep the tombstone while the pair it deletes is still indexed:
            // the dead record may survive in an uncollected segment (or as a
            // relocated referent), and a recovery scan without the tombstone
            // would resurrect it. Once the record's entry is purged the
            // tombstone has nothing left to delete and can go.
            MemEntry* entry = live->FindExact(rec.key, rec.header.version);
            return entry != nullptr && entry->deleted;
          }
          if (registry != nullptr &&
              registry->IsColdLive(rec.header.version, addr.Pack())) {
            // A cold pair's winning record is its only representation —
            // the index entry is purged — and the materialize replay
            // needs it. Superseded duplicates of cold pairs fall through
            // to the normal rules and drop (FindExact misses on purged
            // entries), exactly as their accounting says.
            return true;
          }
          MemEntry* entry = live->FindExact(rec.key, rec.header.version);
          if (entry == nullptr ||
              aof::RecordAddress::Unpack(entry->address) != addr) {
            return false;  // Superseded copy or already purged.
          }
          if (!entry->deleted) return true;  // Live data.
          // Deleted but possibly still referenced by a newer deduplicated
          // version (Figure 2, top right).
          return IsReferentIn(*live, rec.key, rec.header.version);
        },
        /*relocate=*/
        [live, &retired, cache, registry](const aof::RecordAddress& old_addr,
                                          const aof::RecordAddress& new_addr,
                                          const aof::RecordView& rec) {
          if (rec.is_tombstone()) return;  // No memtable item to patch.
          if (rec.is_ingest_commit()) return;  // Markers are never indexed.
          const uint64_t old_packed = old_addr.Pack();
          const uint64_t new_packed = new_addr.Pack();
          if (cache != nullptr) {
            // The bytes are identical at the new address: move the cached
            // copy instead of losing it (stale-address entries would miss
            // forever — addresses are never reused).
            cache->Rekey(old_packed, new_packed);
          }
          if (registry != nullptr) {
            // A cold pair's winner moved: the registry's address set is
            // the index for cold versions and must follow.
            registry->RekeyCold(rec.header.version, old_packed, new_packed);
          }
          MemEntry* entry = live->FindExact(rec.key, rec.header.version);
          if (entry != nullptr) {
            entry->address.store(new_packed, std::memory_order_release);
          }
          for (const auto& idx : retired) {
            MemEntry* ghost = idx->FindExact(rec.key, rec.header.version);
            if (ghost != nullptr &&
                ghost->address.load(std::memory_order_acquire) == old_packed) {
              ghost->address.store(new_packed, std::memory_order_release);
            }
          }
        },
        /*drop=*/
        [live, cache](const aof::RecordAddress& old_addr,
                      const aof::RecordView& rec) {
          if (cache != nullptr) {
            // The record is about to be erased with its segment; cached
            // bytes for its address must never be served again.
            cache->Erase(old_addr.Pack());
          }
          if (rec.is_tombstone()) return;
          MemEntry* entry = live->FindExact(rec.key, rec.header.version);
          if (entry != nullptr &&
              aof::RecordAddress::Unpack(entry->address) == old_addr &&
              entry->deleted) {
            // Deleted with no referent: remove the item from the skip list.
            live->Purge(entry);
          }
        });
    if (!s.ok()) return s;
    // Readers whose record read failed mid-collection use the epoch bump as
    // the signal to retry against the patched addresses.
    gc_epoch_.fetch_add(1, std::memory_order_release);
  }
  ++stats_->gc_invocations;

  // The skip list never physically unlinks nodes; once purged ghosts
  // dominate, rebuild a dense index so memory stays proportional to live
  // entries (Section 2.1's "sufficient memory space" invariant). Pinned
  // readers keep the retired index alive via their refcount; it is freed
  // when the last of them drops its pin.
  if (live->total_count() > 4096 &&
      live->live_count() * 2 < live->total_count()) {
    auto fresh = std::make_shared<MemIndex>();
    live->CompactInto(fresh.get());
    MutexLock pin_lock(&pin_mu_);
    retired_.push_back(mem_);
    mem_ = std::move(fresh);
  }

  return Status::OK();
}

Status Shard::InvalidateCheckpoint() {
  checkpoint_valid_ = false;
  if (env_->FileExists(checkpoint_name_)) {
    return env_->DeleteFile(checkpoint_name_);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery and checkpointing
// ---------------------------------------------------------------------------

Status Shard::RecoverFromScan(uint32_t min_segment) {
  DIRECTLOAD_FAILPOINT(fp_qindb_recovery_scan);
  MemIndex* idx = CurrentIndex();
  // Scan holds the AOF manager's lock shared, so the callback must not
  // re-enter the manager: dead marks are buffered through `sink` and
  // applied after the scan returns. Decisions are still made inline against
  // the memtable — nothing during the scan reads occupancy, so the deferral
  // is invisible.
  std::vector<std::pair<aof::RecordAddress, uint64_t>> deferred;
  const DeadSink sink{nullptr, &deferred};
  // A tombstone can precede the record it deletes in scan order: GC
  // relocates kept referents past their tombstones. Such a tombstone is
  // remembered as a deleted placeholder so the relocated copy cannot
  // resurrect the pair; placeholders no copy claimed are purged afterwards.
  std::vector<std::pair<MemEntry*, uint64_t>> placeholders;

  // One record's replay, shared by the scan callback (normal records) and
  // the commit-marker replay of buffered bulk-ingest records below.
  auto apply_record = [idx, &sink, &placeholders](
                          const Slice& key, uint64_t version,
                          uint32_t value_len, uint8_t flags, uint64_t packed) {
    if ((flags & aof::kFlagTombstone) != 0) {
      MemEntry* entry = idx->FindExact(key, version);
      if (entry == nullptr) {
        entry = idx->Insert(key, version, packed,
                            /*value_size=*/0, /*dedup=*/false);
        entry->deleted.store(true, std::memory_order_relaxed);
        placeholders.emplace_back(entry, packed);
      } else if (!entry->deleted) {
        entry->deleted = true;
        ApplyDeleteAccounting(*idx, sink, entry);
      }
      sink.MarkDead(aof::RecordAddress::Unpack(packed),
                    aof::RecordExtent(key.size(), 0));
      return;
    }
    const bool dedup = (flags & aof::kFlagDedup) != 0;
    MemEntry* old = idx->FindExact(key, version);
    if (old != nullptr && (flags & aof::kFlagRelocated) != 0) {
      // A relocated copy is the same logical record the index already
      // tracks, not a newer write: adopt the new address but preserve
      // the deleted state an earlier tombstone established. A deleted
      // entry's old record is already accounted dead.
      if (!old->deleted) {
        sink.MarkDead(aof::RecordAddress::Unpack(old->address),
                      EntryExtent(old));
      }
      old->address.store(packed, std::memory_order_relaxed);
      old->value_size.store(value_len, std::memory_order_relaxed);
      old->dedup.store(dedup, std::memory_order_relaxed);
      return;
    }
    if (old != nullptr) {
      sink.MarkDead(aof::RecordAddress::Unpack(old->address),
                    EntryExtent(old));
    }
    idx->Insert(key, version, packed, value_len, dedup);
  };

  // Bulk-ingest replay state. A pending record may only be indexed once
  // the commit marker of its version is seen; until then it is buffered
  // (copied — the scan's views do not outlive the callback) and replayed
  // at the marker, which is exactly where the pairs became visible in the
  // pre-crash process. Pending records whose marker never appears — the
  // load crashed or aborted before kBulkCommit — are dead on arrival.
  struct PendingIngest {
    std::string key;
    uint32_t value_len = 0;
    uint8_t flags = 0;
    uint64_t address = 0;
  };
  std::map<uint64_t, std::vector<PendingIngest>> pending_ingest;
  std::set<uint64_t> committed_versions;

  Status s = aof_->Scan(
      [&apply_record, &pending_ingest, &committed_versions, &sink](
          const aof::RecordAddress& addr, const aof::RecordView& rec) {
        const uint64_t packed = addr.Pack();
        if (rec.is_ingest_commit()) {
          committed_versions.insert(rec.header.version);
          if (auto it = pending_ingest.find(rec.header.version);
              it != pending_ingest.end()) {
            for (const PendingIngest& p : it->second) {
              apply_record(Slice(p.key), rec.header.version, p.value_len,
                           p.flags, p.address);
            }
            pending_ingest.erase(it);
          }
          return true;  // Markers stay live and never index anything.
        }
        if (rec.is_ingest_pending() &&
            committed_versions.count(rec.header.version) == 0) {
          // Marker not seen yet (it normally follows in append order; GC
          // can also relocate a pending copy past a marker already seen —
          // that case replays inline through apply_record below).
          PendingIngest p;
          p.key.assign(rec.key.data(), rec.key.size());
          p.value_len = rec.header.value_len;
          p.flags = rec.header.flags;
          p.address = packed;
          pending_ingest[rec.header.version].push_back(std::move(p));
          return true;
        }
        apply_record(rec.key, rec.header.version, rec.header.value_len,
                     rec.header.flags, packed);
        return true;
      },
      min_segment);
  if (!s.ok()) return s;
  // Markers found on disk re-seed the idempotency set: a commit retry
  // arriving after a reopen still answers OK for these versions.
  ingest_committed_.insert(committed_versions.begin(),
                           committed_versions.end());
  // Uncommitted pending records: the version leaves no trace — never
  // indexed, and accounted garbage so GC reclaims the bytes.
  for (const auto& [version, records] : pending_ingest) {
    for (const PendingIngest& p : records) {
      sink.MarkDead(aof::RecordAddress::Unpack(p.address),
                    aof::RecordExtent(p.key.size(), p.value_len));
    }
  }
  for (const auto& [addr, extent] : deferred) {
    aof_->MarkDead(addr, extent);
  }
  for (const auto& [entry, tomb_addr] : placeholders) {
    if (entry->deleted &&
        entry->address.load(std::memory_order_relaxed) == tomb_addr) {
      idx->Purge(entry);  // The delete's record never showed up: drop both.
    }
  }
  return Status::OK();
}

Status Shard::Checkpoint() {
  if (Status w = CheckWritable(); !w.ok()) return w;
  MutexLock lock(&write_mutex_);
  return NoteWriteError(CheckpointLocked());
}

Status Shard::CheckpointLocked() {
  if (!ingest_sessions_.empty()) {
    // Pending bulk-ingest records are durable but unindexed; a checkpoint
    // taken now would let a later recovery skip the sealed segments that
    // hold them, and a commit after this checkpoint would then lose the
    // version on the next crash. Skip — the next checkpoint after the
    // sessions resolve covers everything.
    return Status::OK();
  }
  if (registry_.enabled() && registry_.AnyCold()) {
    // The checkpoint serializes index entries, and recovery only scans
    // segments past it — a checkpoint taken with versions cold would lose
    // them at the next reopen (their records live in pre-checkpoint
    // segments). Materialize everything first; unloads after this
    // checkpoint are fine, since the entries are already inside it.
    if (Status s = EnsureAllResidentLocked(); !s.ok()) return s;
  }
  DIRECTLOAD_FAILPOINT(fp_qindb_checkpoint);
  Status s = aof_->SealActive();
  if (!s.ok()) return s;

  MemIndex* idx = CurrentIndex();
  std::string blob;
  PutFixed64(&blob, kCheckpointMagic);
  PutFixed32(&blob, aof_->active_segment());
  const std::map<uint32_t, aof::SegmentMeta> metas = aof_->SegmentMetas();
  PutVarint64(&blob, metas.size());
  for (const auto& [id, meta] : metas) {
    PutFixed32(&blob, id);
    PutVarint64(&blob, meta.total_bytes);
    PutVarint64(&blob, meta.live_bytes);
  }
  PutVarint64(&blob, idx->live_count());
  for (MemIndex::Iterator it = idx->NewIterator(); it.Valid(); it.Next()) {
    const MemEntry* e = it.entry();
    PutLengthPrefixedSlice(&blob, e->user_key());
    PutVarint64(&blob, e->version);
    PutFixed64(&blob, e->address);
    PutVarint32(&blob, e->value_size);
    uint8_t flags = 0;
    if (e->dedup) flags |= kCkptDedup;
    if (e->deleted) flags |= kCkptDeleted;
    blob.push_back(static_cast<char>(flags));
  }
  // Committed bulk-load versions, appended after the entries (absent in
  // older checkpoints; ApplyCheckpointEntries treats it as optional).
  // Persisting the set keeps IngestCommit idempotency across a reopen
  // whose recovery scan no longer covers the markers' segments, and lets a
  // cold-version materialize vouch for pending records in the same case.
  PutVarint64(&blob, ingest_committed_.size());
  for (uint64_t v : ingest_committed_) PutVarint64(&blob, v);
  PutFixed32(&blob, crc32c::Mask(crc32c::Value(blob.data(), blob.size())));

  if (env_->FileExists(checkpoint_temp_)) {
    s = env_->DeleteFile(checkpoint_temp_);
    if (!s.ok()) return s;
  }
  Result<std::unique_ptr<ssd::WritableFile>> file =
      env_->NewWritableFile(checkpoint_temp_);
  if (!file.ok()) return file.status();
  s = (*file)->Append(blob);
  if (!s.ok()) return s;
  s = (*file)->Close();
  if (!s.ok()) return s;
  s = env_->RenameFile(checkpoint_temp_, checkpoint_name_);
  if (!s.ok()) return s;
  checkpoint_valid_ = true;
  return Status::OK();
}

Status Shard::LoadCheckpoint(const std::string& name, bool* loaded,
                             std::map<uint32_t, aof::SegmentMeta>* metas,
                             uint32_t* next_segment) {
  *loaded = false;
  Result<uint64_t> size = env_->GetFileSize(name);
  if (!size.ok()) return size.status();
  Result<std::unique_ptr<ssd::RandomAccessFile>> file =
      env_->NewRandomAccessFile(name);
  if (!file.ok()) return file.status();
  std::string blob;
  Status s = (*file)->Read(0, *size, &blob);
  if (!s.ok()) return s;

  if (blob.size() < 16) return Status::Corruption("checkpoint too small");
  const uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(blob.data() + blob.size() - 4));
  const uint32_t actual_crc = crc32c::Value(blob.data(), blob.size() - 4);
  if (stored_crc != actual_crc) {
    return Status::Corruption("checkpoint checksum mismatch");
  }

  Slice in(blob.data(), blob.size() - 4);
  if (DecodeFixed64(in.data()) != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  in.remove_prefix(8);
  *next_segment = DecodeFixed32(in.data());
  in.remove_prefix(4);

  uint64_t meta_count = 0;
  if (!GetVarint64(&in, &meta_count)) return Status::Corruption("metas");
  for (uint64_t i = 0; i < meta_count; ++i) {
    if (in.size() < 4) return Status::Corruption("meta id");
    const uint32_t id = DecodeFixed32(in.data());
    in.remove_prefix(4);
    aof::SegmentMeta meta;
    if (!GetVarint64(&in, &meta.total_bytes) ||
        !GetVarint64(&in, &meta.live_bytes)) {
      return Status::Corruption("meta bytes");
    }
    (*metas)[id] = meta;
  }

  // Entries are stashed raw and applied after the AOF manager opens.
  pending_checkpoint_.assign(in.data(), in.size());
  *loaded = true;
  return Status::OK();
}

Status Shard::ApplyCheckpointEntries() {
  MemIndex* idx = CurrentIndex();
  Slice in(pending_checkpoint_);
  uint64_t count = 0;
  if (!GetVarint64(&in, &count)) return Status::Corruption("entry count");
  for (uint64_t i = 0; i < count; ++i) {
    Slice key;
    uint64_t version = 0;
    uint32_t value_size = 0;
    if (!GetLengthPrefixedSlice(&in, &key) || !GetVarint64(&in, &version)) {
      return Status::Corruption("entry key/version");
    }
    if (in.size() < 8) return Status::Corruption("entry address");
    const uint64_t address = DecodeFixed64(in.data());
    in.remove_prefix(8);
    if (!GetVarint32(&in, &value_size) || in.empty()) {
      return Status::Corruption("entry value size");
    }
    const auto flags = static_cast<uint8_t>(in[0]);
    in.remove_prefix(1);
    MemEntry* entry = idx->Insert(key, version, address, value_size,
                                  (flags & kCkptDedup) != 0);
    entry->deleted = (flags & kCkptDeleted) != 0;
  }
  // Optional trailer (newer checkpoints only): the committed bulk-load
  // versions. Its absence is legal; a present-but-torn set is corruption
  // like any other truncated field.
  if (!in.empty()) {
    uint64_t committed_count = 0;
    if (!GetVarint64(&in, &committed_count)) {
      return Status::Corruption("committed-version count");
    }
    for (uint64_t i = 0; i < committed_count; ++i) {
      uint64_t v = 0;
      if (!GetVarint64(&in, &v)) {
        return Status::Corruption("committed version");
      }
      ingest_committed_.insert(v);
    }
  }
  pending_checkpoint_.clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Lazy version indexes: unload cold versions to registry metadata, replay
// them back from the AOF on first access.
// ---------------------------------------------------------------------------

Status Shard::EnsureVersionResident(uint64_t version) {
  MutexLock lock(&write_mutex_);
  return EnsureVersionResidentLocked(version);
}

Status Shard::EnsureAllResident() {
  MutexLock lock(&write_mutex_);
  return EnsureAllResidentLocked();
}

Status Shard::EnsureAllResidentLocked() {
  if (!registry_.enabled()) return Status::OK();
  for (const auto& [version, meta] : registry_.ColdSnapshot()) {
    if (Status s = EnsureVersionResidentLocked(version); !s.ok()) return s;
  }
  return Status::OK();
}

Status Shard::EnsureVersionResidentLocked(uint64_t version) {
  VersionIndexRegistry::ColdVersion meta;
  if (!registry_.PeekCold(version, &meta)) return Status::OK();
  DIRECTLOAD_FAILPOINT(fp_index_load);
  if (Status s = MaterializeVersionLocked(version, meta); !s.ok()) {
    // The version stays cold: MemIndex::Insert is idempotent, so a partial
    // replay simply re-runs on the next access.
    return s;
  }
  registry_.MarkResident(version);
  registry_.Touch(version);
  return Status::OK();
}

Status Shard::MaterializeVersionLocked(
    uint64_t version, const VersionIndexRegistry::ColdVersion& meta) {
  MemIndex* idx = CurrentIndex();
  uint64_t applied = 0;
  // The callback only touches the index — Scan holds the manager's lock
  // shared, so re-entering the manager here would deadlock.
  Status s = aof_->Scan(
      [idx, version, &meta, &applied](const aof::RecordAddress& addr,
                                      const aof::RecordView& rec) {
        if (rec.header.version != version) return true;
        const uint64_t packed = addr.Pack();
        if (meta.live_addresses.count(packed) == 0) {
          // Tombstones, commit markers, and superseded or relocated-away
          // copies: not part of the version's live image.
          return true;
        }
        idx->Insert(rec.key, version, packed, rec.header.value_len,
                    rec.is_dedup());
        ++applied;
        return true;
      },
      meta.min_segment);
  if (!s.ok()) return s;
  if (applied != meta.entry_count) {
    // GC classify keeps every cold live record, so each address in the set
    // must still resolve to exactly one record. A shortfall means the
    // registry and the log disagree — refuse to serve a partial version.
    return Status::Corruption("cold version replay missed live records");
  }
  return Status::OK();
}

void Shard::MaybeUnloadIndexLocked() {
  if (!registry_.enabled()) return;
  if (registry_.ScanPinned()) return;
  if (!ingest_sessions_.empty()) return;
  MemIndex* idx = CurrentIndex();
  const uint64_t budget = registry_.budget_bytes();
  if (idx->ApproximateMemoryUsage() <= budget) return;

  // One walk tallies, per version, everything the unload decision needs.
  struct Tally {
    uint64_t live = 0;
    uint64_t deleted = 0;
    uint64_t dedup = 0;
    uint64_t bytes = 0;  // Arena footprint estimate for the version.
    uint32_t min_segment = UINT32_MAX;
  };
  std::map<uint64_t, Tally> tallies;
  for (MemIndex::Iterator it = idx->NewIterator(); it.Valid(); it.Next()) {
    const MemEntry* e = it.entry();
    Tally& t = tallies[e->version];
    if (e->deleted.load(std::memory_order_relaxed)) {
      ++t.deleted;
    } else {
      ++t.live;
    }
    if (e->dedup.load(std::memory_order_relaxed)) ++t.dedup;
    // Entry struct + skip-list node + key bytes; the value lives on disk.
    t.bytes += sizeof(MemEntry) + 64 + e->key_size;
    t.min_segment = std::min(
        t.min_segment,
        aof::RecordAddress::Unpack(e->address.load(std::memory_order_relaxed))
            .segment_id);
  }

  // No version at or below the highest dedup-carrying one may unload: a
  // traceback from such a version walks down through all of them.
  uint64_t max_dedup = 0;
  bool any_dedup = false;
  for (const auto& [version, t] : tallies) {
    if (t.dedup > 0) {
      any_dedup = true;
      max_dedup = version;  // Ordered map: ends at the highest such version.
    }
  }

  // Unload candidates, coldest first (tick 0 = never read).
  std::vector<std::pair<uint64_t, uint64_t>> candidates;  // (tick, version)
  for (const auto& [version, t] : tallies) {
    if (t.live == 0 || t.deleted != 0 || t.dedup != 0) continue;
    if (any_dedup && version <= max_dedup) continue;
    candidates.emplace_back(registry_.TickOf(version), version);
  }
  if (candidates.empty()) return;
  std::sort(candidates.begin(), candidates.end());

  uint64_t estimated = idx->ApproximateMemoryUsage();
  std::set<uint64_t> unload;
  for (const auto& [tick, version] : candidates) {
    if (estimated <= budget) break;
    unload.insert(version);
    estimated -= std::min(estimated, tallies[version].bytes);
  }
  if (unload.empty()) return;

  // Second walk collects each unloading version's live-address set.
  std::map<uint64_t, VersionIndexRegistry::ColdVersion> metas;
  std::vector<MemEntry*> purge;
  for (MemIndex::Iterator it = idx->NewIterator(); it.Valid(); it.Next()) {
    MemEntry* e = it.entry();
    if (unload.count(e->version) == 0) continue;
    VersionIndexRegistry::ColdVersion& meta = metas[e->version];
    ++meta.entry_count;
    meta.live_addresses.insert(e->address.load(std::memory_order_relaxed));
    purge.push_back(e);
  }
  for (auto& [version, meta] : metas) {
    meta.min_segment = tallies[version].min_segment;
    // Mark cold BEFORE purging: a concurrent reader that misses a purged
    // entry must already see the version as cold, or it would report
    // NotFound for a pair that exists.
    registry_.MarkCold(version, meta);
  }
  for (MemEntry* e : purge) idx->Purge(e);

  // Purging only hides entries; rebuild dense so the arena actually
  // shrinks. Retired snapshots stay patchable by GC until unpinned.
  auto fresh = std::make_shared<MemIndex>();
  idx->CompactInto(fresh.get());
  MutexLock pin_lock(&pin_mu_);
  retired_.push_back(mem_);
  mem_ = std::move(fresh);
}

}  // namespace directload::qindb
