#include "qindb/qindb.h"

#include <cstdio>
#include <thread>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"

namespace directload::qindb {

namespace {

// API-level failpoints: fire once per call at the facade, before any shard
// is touched — the position the pre-sharding engine fired them from. The
// per-shard qindb_recovery_scan / qindb_checkpoint points live in shard.cc.
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_put, "qindb_put");
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_get, "qindb_get");
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_del, "qindb_del");
// Fires BETWEEN per-shard bulk-ingest commits (never before the first):
// an abort action here models the paper's worst delivery crash — a torn
// cross-shard commit where a prefix of shards has durable markers.
DIRECTLOAD_FAILPOINT_DEFINE(fp_qindb_ingest_commit, "qindb_ingest_commit");

// The shard manifest pins the routing layout (count + hash seed) to the
// device: Hash64(key, seed) % num_shards must evaluate identically on every
// open, or keys silently land on shards that never saw their records. The
// manifest is written once, before the first shard's first byte, and every
// reopen validates against it.
constexpr char kManifestName[] = "shard_manifest.dat";
constexpr char kManifestTemp[] = "shard_manifest.tmp";
constexpr uint64_t kManifestMagic = 0x51494e4453484152ull;  // "QINDSHAR"
constexpr uint32_t kManifestVersion = 1;

// "s%02u_" supports two-digit ids; far above any sane core count, and the
// cap keeps a typo'd num_shards from fabricating thousands of files.
constexpr uint32_t kMaxShards = 64;

std::string ShardFilePrefix(uint32_t shard_id) {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "s%02u_", shard_id);
  return buf;
}

Status WriteManifest(ssd::SsdEnv* env, uint32_t num_shards, uint64_t seed) {
  std::string blob;
  PutFixed64(&blob, kManifestMagic);
  PutFixed32(&blob, kManifestVersion);
  PutFixed32(&blob, num_shards);
  PutFixed64(&blob, seed);
  PutFixed32(&blob, crc32c::Mask(crc32c::Value(blob.data(), blob.size())));

  if (env->FileExists(kManifestTemp)) {
    if (Status s = env->DeleteFile(kManifestTemp); !s.ok()) return s;
  }
  Result<std::unique_ptr<ssd::WritableFile>> file =
      env->NewWritableFile(kManifestTemp);
  if (!file.ok()) return file.status();
  if (Status s = (*file)->Append(blob); !s.ok()) return s;
  if (Status s = (*file)->Sync(); !s.ok()) return s;
  if (Status s = (*file)->Close(); !s.ok()) return s;
  return env->RenameFile(kManifestTemp, kManifestName);
}

Status ReadManifest(ssd::SsdEnv* env, uint32_t* num_shards, uint64_t* seed) {
  Result<uint64_t> size = env->GetFileSize(kManifestName);
  if (!size.ok()) return size.status();
  Result<std::unique_ptr<ssd::RandomAccessFile>> file =
      env->NewRandomAccessFile(kManifestName);
  if (!file.ok()) return file.status();
  std::string blob;
  if (Status s = (*file)->Read(0, *size, &blob); !s.ok()) return s;

  // 8 magic + 4 version + 4 count + 8 seed + 4 crc.
  if (blob.size() != 28) {
    return Status::Corruption("shard manifest has the wrong size");
  }
  const uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(blob.data() + blob.size() - 4));
  if (stored_crc != crc32c::Value(blob.data(), blob.size() - 4)) {
    return Status::Corruption("shard manifest checksum mismatch");
  }
  if (DecodeFixed64(blob.data()) != kManifestMagic) {
    return Status::Corruption("bad shard manifest magic");
  }
  const uint32_t version = DecodeFixed32(blob.data() + 8);
  if (version != kManifestVersion) {
    return Status::Corruption("unknown shard manifest version");
  }
  *num_shards = DecodeFixed32(blob.data() + 12);
  *seed = DecodeFixed64(blob.data() + 16);
  if (*num_shards == 0 || *num_shards > kMaxShards) {
    return Status::Corruption("shard manifest count out of range");
  }
  return Status::OK();
}

/// True when the env holds pre-sharding engine files (unprefixed AOF
/// segments or checkpoint) but no manifest: the layout predates sharding
/// and must be adopted as a single shard, never re-hashed.
bool HasLegacyUnshardedFiles(ssd::SsdEnv* env) {
  for (const std::string& name : env->ListFiles()) {
    if (name.rfind("aof_", 0) == 0 || name == "checkpoint.dat") return true;
  }
  return false;
}

}  // namespace

QinDb::QinDb(ssd::SsdEnv* env, const QinDbOptions& options)
    : env_(env), options_(options) {}

Result<std::unique_ptr<QinDb>> QinDb::Open(ssd::SsdEnv* env,
                                           const QinDbOptions& options) {
  if (options.num_shards > kMaxShards) {
    return Status::InvalidArgument("num_shards exceeds the supported maximum");
  }

  // Resolve the layout BEFORE any shard exists.
  uint32_t num_shards = 0;
  if (env->FileExists(kManifestName)) {
    uint64_t manifest_seed = 0;
    Status s = ReadManifest(env, &num_shards, &manifest_seed);
    if (!s.ok()) return s;
    if (options.shard_hash_seed != manifest_seed) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "shard manifest was written with hash seed %llu but the "
                    "options specify %llu; keys would be misrouted",
                    static_cast<unsigned long long>(manifest_seed),
                    static_cast<unsigned long long>(options.shard_hash_seed));
      return Status::InvalidArgument(msg);
    }
    if (options.num_shards != 0 && options.num_shards != num_shards) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "shard manifest records num_shards=%u but the options "
                    "request %u; reopen with num_shards=%u or 0 (adopt)",
                    num_shards, options.num_shards, num_shards);
      return Status::InvalidArgument(msg);
    }
  } else if (HasLegacyUnshardedFiles(env)) {
    if (options.num_shards > 1) {
      return Status::InvalidArgument(
          "env holds unsharded (pre-manifest) engine files; they can only "
          "be opened with num_shards=1 (or 0)");
    }
    num_shards = 1;
    if (Status s = WriteManifest(env, num_shards, options.shard_hash_seed);
        !s.ok()) {
      return s;
    }
  } else {
    num_shards = options.num_shards != 0
                     ? options.num_shards
                     : std::max(1u, std::thread::hardware_concurrency());
    if (num_shards > kMaxShards) num_shards = kMaxShards;
    if (Status s = WriteManifest(env, num_shards, options.shard_hash_seed);
        !s.ok()) {
      return s;
    }
  }

  std::unique_ptr<QinDb> db(new QinDb(env, options));
  db->options_.num_shards = num_shards;
  db->shards_.resize(num_shards);

  std::vector<Status> statuses(num_shards);
  auto open_one = [&](uint32_t shard_id) {
    QinDbOptions shard_options = db->options_;
    // One shard keeps the legacy unprefixed names, so a pre-sharding env
    // reopens byte-for-byte and single-shard tests see the familiar files.
    shard_options.aof.file_prefix =
        num_shards == 1 ? "" : ShardFilePrefix(shard_id);
    shard_options.aof.shared_gc_stats = &db->gc_stats_;
    // The memory budgets are engine-wide; each shard governs its slice.
    shard_options.cache_bytes = db->options_.cache_bytes / num_shards;
    shard_options.index_memory_bytes =
        db->options_.index_memory_bytes / num_shards;
    Result<std::unique_ptr<Shard>> shard = Shard::Open(
        env, shard_options, shard_id, &db->stats_, &db->reads_in_flight_);
    if (shard.ok()) {
      db->shards_[shard_id] = std::move(shard).value();
    } else {
      statuses[shard_id] = shard.status();
    }
  };

  if (num_shards == 1) {
    open_one(0);
  } else {
    // Shards own disjoint file sets, so their recovery scans only share the
    // env lock: replay them in parallel, one thread per shard.
    std::vector<std::thread> recovery;
    recovery.reserve(num_shards);
    for (uint32_t i = 0; i < num_shards; ++i) {
      recovery.emplace_back(open_one, i);
    }
    for (std::thread& t : recovery) t.join();
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return db;
}

uint32_t QinDb::ShardOf(const Slice& key) const {
  if (shards_.size() == 1) return 0;
  return static_cast<uint32_t>(Hash64(key, options_.shard_hash_seed) %
                               shards_.size());
}

bool QinDb::degraded() const {
  for (const auto& shard : shards_) {
    if (shard->degraded()) return true;
  }
  return false;
}

EngineCacheTotals QinDb::CacheTotals() const {
  EngineCacheTotals out;
  for (const auto& shard : shards_) {
    const ShardStatsSnapshot s = shard->StatsSnapshot();
    out.cache_hits += s.cache_hits;
    out.cache_misses += s.cache_misses;
    out.cache_inserts += s.cache_inserts;
    out.cache_admission_rejects += s.cache_admission_rejects;
    out.cache_evicted_bytes += s.cache_evicted_bytes;
    out.cache_charged_bytes += s.cache_charged_bytes;
    out.index_loads += s.index_loads;
    out.index_unloads += s.index_unloads;
    out.resident_versions += s.resident_versions;
    out.cold_versions += s.cold_versions;
  }
  return out;
}

Status QinDb::Put(const Slice& key, uint64_t version, const Slice& value,
                  bool dedup) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  // Single ops are one-op batches: under group commit they ride the owning
  // shard's pending queue, so concurrent Put callers routed to the same
  // shard coalesce into one leader-driven AOF append.
  WriteBatch batch;
  batch.Put(key, version, value, dedup);
  return Write(batch);
}

Status QinDb::Del(const Slice& key, uint64_t version) {
  WriteBatch batch;
  batch.Del(key, version);
  return Write(batch);
}

Result<uint64_t> QinDb::DropVersion(uint64_t version) {
  WriteBatch batch;
  batch.DropVersion(version);
  Status s = Write(batch);
  if (!s.ok()) return s;
  return batch.dropped(0);
}

Status QinDb::Write(WriteBatch& batch) {
  batch.statuses_.clear();
  batch.dropped_.assign(batch.ops_.size(), 0);
  if (batch.ops_.empty()) return Status::OK();

#if DIRECTLOAD_FAILPOINTS_COMPILED
  {
    // API-level injection fires once per batch per op kind, before any
    // state changes — the position the single-op entry points fired from.
    bool has_put = false;
    bool has_del = false;
    for (const WriteOp& op : batch.ops_) {
      has_put |= op.kind == WriteOpKind::kPut;
      has_del |= op.kind == WriteOpKind::kDel;
    }
    if (has_put && fp_qindb_put->armed()) {
      if (Status s = fp_qindb_put->MaybeFail(); !s.ok()) {
        batch.statuses_.assign(batch.ops_.size(), s);
        return s;
      }
    }
    if (has_del && fp_qindb_del->armed()) {
      if (Status s = fp_qindb_del->MaybeFail(); !s.ok()) {
        batch.statuses_.assign(batch.ops_.size(), s);
        return s;
      }
    }
  }
#endif

  // Route every op. A DropVersion fans out to all shards; at num_shards=1
  // everything is trivially single-shard and the batch passes through to
  // the shard untouched (no sub-batch copies on the hot path).
  const uint32_t n = num_shards();
  bool single_shard = true;
  uint32_t only_shard = 0;
  std::vector<uint32_t> routes(batch.ops_.size());
  for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
    const WriteOp& op = batch.ops_[oi];
    if (op.kind == WriteOpKind::kDropVersion) {
      routes[oi] = UINT32_MAX;  // All shards.
      if (n > 1) single_shard = false;
      continue;
    }
    routes[oi] = op.key.empty() ? 0 : ShardOf(op.key);
    if (oi == 0 || (single_shard && routes[oi] == only_shard)) {
      only_shard = routes[oi];
    } else {
      single_shard = false;
    }
  }
  if (n == 1) single_shard = true, only_shard = 0;
  if (single_shard) return shards_[only_shard]->Write(batch);

  // Split into per-shard sub-batches, remembering for each sub-op the
  // submission-order index it came from.
  std::vector<WriteBatch> subs(n);
  std::vector<std::vector<size_t>> origin(n);
  for (size_t oi = 0; oi < batch.ops_.size(); ++oi) {
    const WriteOp& op = batch.ops_[oi];
    if (routes[oi] == UINT32_MAX) {
      for (uint32_t s = 0; s < n; ++s) {
        subs[s].DropVersion(op.version);
        origin[s].push_back(oi);
      }
      continue;
    }
    WriteBatch& sub = subs[routes[oi]];
    switch (op.kind) {
      case WriteOpKind::kPut:
        sub.Put(op.key, op.version, op.value, op.dedup);
        break;
      case WriteOpKind::kDel:
        sub.Del(op.key, op.version);
        break;
      case WriteOpKind::kDropVersion:
        break;  // Handled above.
    }
    origin[routes[oi]].push_back(oi);
  }

  std::vector<uint32_t> involved;
  for (uint32_t s = 0; s < n; ++s) {
    if (!subs[s].ops_.empty()) involved.push_back(s);
  }

  if (!options_.group_commit) {
    // Ungrouped mode stays sequential (it is the single-threaded baseline);
    // each shard still applies its sub-batch under its own lock.
    for (uint32_t s : involved) {
      DL_DISCARD_STATUS("first failing per-op status; re-derived from the "
                        "stitched per-op statuses below",
                        shards_[s]->Write(subs[s]));
    }
  } else {
    // Parallel commit: enqueue the sub-batch on EVERY involved shard first,
    // then complete them in ascending shard order. All facade writers use
    // this order, so any wait chain between writers runs strictly from
    // higher to lower shard index and cannot cycle; meanwhile sub-batches
    // enqueued on shards this thread has not reached yet are committed by
    // those shards' own leaders — that is where the parallelism comes from.
    std::vector<Shard::PendingWrite> pending;
    pending.reserve(involved.size());
    for (uint32_t s : involved) {
      subs[s].statuses_.clear();
      subs[s].dropped_.assign(subs[s].ops_.size(), 0);
      pending.emplace_back(&subs[s]);
      shards_[s]->EnqueueWrite(&pending.back());
    }
    for (size_t i = 0; i < involved.size(); ++i) {
      DL_DISCARD_STATUS("first failing per-op status; re-derived from the "
                        "stitched per-op statuses below",
                        shards_[involved[i]]->CompleteWrite(&pending[i]));
    }
  }

  // Stitch per-op statuses back into submission order; DropVersion counts
  // sum across shards and surface the first shard failure.
  batch.statuses_.assign(batch.ops_.size(), Status::OK());
  for (uint32_t s : involved) {
    for (size_t j = 0; j < origin[s].size(); ++j) {
      const size_t oi = origin[s][j];
      if (routes[oi] == UINT32_MAX) {
        batch.dropped_[oi] += subs[s].dropped_[j];
        if (batch.statuses_[oi].ok() && !subs[s].statuses_[j].ok()) {
          batch.statuses_[oi] = subs[s].statuses_[j];
        }
      } else {
        batch.statuses_[oi] = subs[s].statuses_[j];
      }
    }
  }
  for (const Status& s : batch.statuses_) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status QinDb::IngestBegin(uint64_t version) {
  // Every shard gets a session, even ones no pair will route to: commit
  // then writes a marker on every shard, which keeps the commit protocol
  // independent of the key distribution.
  for (const auto& shard : shards_) {
    if (Status s = shard->IngestBegin(version); !s.ok()) return s;
  }
  return Status::OK();
}

Status QinDb::IngestRun(uint64_t version, const IngestOp* ops, size_t count) {
  if (count == 0) return Status::OK();
  if (shards_.size() == 1) return shards_[0]->IngestRun(version, ops, count);
  // Runs are slice-sized (thousands of pairs), so the routing pass is
  // cheap next to the per-shard encode+append.
  std::vector<std::vector<IngestOp>> routed(shards_.size());
  for (size_t i = 0; i < count; ++i) {
    routed[ops[i].key.empty() ? 0 : ShardOf(ops[i].key)].push_back(ops[i]);
  }
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (routed[s].empty()) continue;
    if (Status st =
            shards_[s]->IngestRun(version, routed[s].data(), routed[s].size());
        !st.ok()) {
      return st;
    }
  }
  return Status::OK();
}

Status QinDb::IngestCommit(uint64_t version) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (s > 0) {
      DIRECTLOAD_FAILPOINT(fp_qindb_ingest_commit);
    }
    if (Status st = shards_[s]->IngestCommit(version); !st.ok()) return st;
  }
  return Status::OK();
}

Status QinDb::IngestAbort(uint64_t version) {
  Status first_error;
  for (const auto& shard : shards_) {
    Status s = shard->IngestAbort(version);
    // A shard without a session is fine (Begin may not have reached it);
    // real rollback failures surface.
    if (!s.ok() && !s.IsInvalidArgument() && first_error.ok()) {
      first_error = s;
    }
  }
  return first_error;
}

Result<std::string> QinDb::Get(const Slice& key, uint64_t version) {
  DIRECTLOAD_FAILPOINT(fp_qindb_get);
  return shards_[ShardOf(key)]->Get(key, version);
}

Result<std::string> QinDb::GetLatest(const Slice& key) {
  DIRECTLOAD_FAILPOINT(fp_qindb_get);
  return shards_[ShardOf(key)]->GetLatest(key);
}

std::map<uint64_t, uint64_t> QinDb::VersionCounts() const {
  std::map<uint64_t, uint64_t> merged;
  for (const auto& shard : shards_) {
    for (const auto& [version, count] : shard->VersionCounts()) {
      merged[version] += count;
    }
  }
  return merged;
}

Status QinDb::MaybeGc() {
  for (const auto& shard : shards_) {
    if (Status s = shard->MaybeGc(); !s.ok()) return s;
  }
  return Status::OK();
}

Status QinDb::ForceGc() {
  for (const auto& shard : shards_) {
    if (Status s = shard->ForceGc(); !s.ok()) return s;
  }
  return Status::OK();
}

Status QinDb::Checkpoint() {
  for (const auto& shard : shards_) {
    if (Status s = shard->Checkpoint(); !s.ok()) return s;
  }
  return Status::OK();
}

Result<QinDb::ScrubReport> QinDb::Scrub() {
  ScrubReport total;
  for (const auto& shard : shards_) {
    Result<ScrubReport> report = shard->Scrub();
    if (!report.ok()) return report.status();
    total.entries_checked += report->entries_checked;
    total.bytes_verified += report->bytes_verified;
    total.damaged_entries += report->damaged_entries;
    total.unresolvable_dedups += report->unresolvable_dedups;
  }
  return total;
}

QinDb::Scanner QinDb::NewScanner(uint64_t version) {
  std::vector<Shard::Scanner> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    parts.push_back(shard->NewScanner(version));
  }
  return Scanner(std::move(parts));
}

void QinDb::Scanner::Seek(const Slice& start) {
  for (Shard::Scanner& part : parts_) part.Seek(start);
  FindMin();
}

void QinDb::Scanner::Next() {
  parts_[current_].Next();
  FindMin();
}

void QinDb::Scanner::FindMin() {
  current_ = SIZE_MAX;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (!parts_[i].Valid()) continue;
    // Shard key sets are disjoint (hash-partitioned), so two valid parts
    // never tie: strict < picks a unique minimum.
    if (current_ == SIZE_MAX ||
        parts_[i].key().compare(parts_[current_].key()) < 0) {
      current_ = i;
    }
  }
}

uint64_t QinDb::LiveEntryCount() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->memtable().live_count();
  return total;
}

bool QinDb::HasEntry(const Slice& key, uint64_t version) const {
  return shards_[ShardOf(key)]->memtable().FindExact(key, version) != nullptr;
}

uint64_t QinDb::LiveBytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->aof_->LiveBytes();
  return total;
}

uint64_t QinDb::ApproximateMemtableBytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->memtable().ApproximateMemoryUsage();
  }
  return total;
}

Status QinDb::SealActive() {
  for (const auto& shard : shards_) {
    if (Status s = shard->aof_->SealActive(); !s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace directload::qindb
