#ifndef DIRECTLOAD_NET_FLUID_NETWORK_H_
#define DIRECTLOAD_NET_FLUID_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/sim_clock.h"

namespace directload::net {

/// Traffic classes on a link share bandwidth by fixed reservation weights
/// (the paper's Bifrost empirically reserves 40 % for summary indices and
/// 60 % for inverted indices, Section 2.2). Unused reservations are
/// redistributed (work-conserving).
struct TrafficClass {
  std::string name;
  double weight = 1.0;
};

/// A directed capacity-limited link. `background` is the fraction of
/// capacity consumed by other applications sharing the relay nodes; the
/// fault-injection hooks vary it over time.
struct Link {
  int from = 0;
  int to = 0;
  double capacity_bytes_per_sec = 0;
  double background = 0.0;  // In [0, 1).

  double available() const { return capacity_bytes_per_sec * (1.0 - background); }
};

struct Flow {
  uint64_t id = 0;
  std::vector<int> path;  // Link ids, in order.
  double bytes_total = 0;
  double bytes_left = 0;
  int klass = 0;
  uint64_t start_micros = 0;
  uint64_t finish_micros = 0;  // Valid once completed.
  bool active = false;
  uint64_t tag = 0;  // Caller-defined (e.g., slice id).
};

/// A fluid-flow network simulation: flows progress at rates determined by
/// class-weighted sharing of every link on their path, advanced in discrete
/// time steps against the shared SimClock. Deterministic by construction.
class FluidNetwork {
 public:
  explicit FluidNetwork(SimClock* clock);

  int AddNode(const std::string& name);
  int AddLink(int from, int to, double capacity_bytes_per_sec);
  int AddTrafficClass(const std::string& name, double weight);

  int num_nodes() const { return static_cast<int>(node_names_.size()); }
  const std::string& node_name(int node) const { return node_names_[node]; }
  int num_links() const { return static_cast<int>(links_.size()); }
  const Link& link(int id) const { return links_[id]; }

  /// Sets the background-traffic fraction of a link (fault injection /
  /// congestion modeling).
  void SetBackground(int link_id, double fraction);

  /// Starts a flow along `path` (adjacent link ids). Returns its id.
  uint64_t StartFlow(const std::vector<int>& path, double bytes, int klass,
                     uint64_t tag = 0);

  /// Aborts an active flow (no completion callback fires). Returns false if
  /// the flow is unknown or already finished.
  bool CancelFlow(uint64_t id);

  /// Bytes remaining for an active flow; 0 when finished/cancelled/unknown.
  double FlowBytesLeft(uint64_t id) const;

  /// Advances the simulation by `dt` seconds. Completed flows are reported
  /// through `on_complete` with their exact (interpolated) finish time.
  using CompletionFn = std::function<void(const Flow&)>;
  void Advance(double dt_seconds, const CompletionFn& on_complete);

  /// Runs until all active flows finish or `max_seconds` of simulated time
  /// pass. Returns the number of flows still active.
  size_t AdvanceUntilIdle(double max_seconds, double dt_seconds,
                          const CompletionFn& on_complete);

  size_t active_flows() const { return active_count_; }

  /// The instantaneous rate (bytes/sec) flow `id` received in the last
  /// Advance step; 0 for inactive flows.
  double FlowRate(uint64_t id) const;

  /// Bytes moved over `link_id` since construction (monitor input).
  double LinkBytesCarried(int link_id) const { return link_carried_[link_id]; }

  /// Effective spare capacity of a link during the last step (bytes/sec).
  double LinkSpareCapacity(int link_id) const { return link_spare_[link_id]; }

 private:
  void ComputeRates();

  SimClock* clock_;
  std::vector<std::string> node_names_;
  std::vector<Link> links_;
  std::vector<TrafficClass> classes_;
  std::vector<Flow> flows_;
  std::vector<double> rates_;         // Per flow, bytes/sec.
  std::vector<double> link_carried_;  // Per link, cumulative bytes.
  std::vector<double> link_spare_;    // Per link, last-step spare Bps.
  size_t active_count_ = 0;
};

/// Exponentially-weighted predictor of per-link available bandwidth — the
/// paper's "centralized network monitoring platform [that] predicts the
/// available bandwidth resources of the network channels" (Section 2.2).
class BandwidthMonitor {
 public:
  BandwidthMonitor(const FluidNetwork* net, double alpha = 0.3);

  /// Samples current spare capacities (call once per monitoring interval).
  void Sample();

  /// Predicted spare bytes/sec on `link_id`.
  double PredictSpare(int link_id) const;

 private:
  const FluidNetwork* net_;
  double alpha_;
  std::vector<double> ewma_;
  std::vector<bool> seeded_;
};

}  // namespace directload::net

#endif  // DIRECTLOAD_NET_FLUID_NETWORK_H_
