#include "net/fluid_network.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace directload::net {

FluidNetwork::FluidNetwork(SimClock* clock) : clock_(clock) {
  // Default class so callers that don't care about classes can pass 0.
  classes_.push_back(TrafficClass{"default", 1.0});
}

int FluidNetwork::AddNode(const std::string& name) {
  node_names_.push_back(name);
  return static_cast<int>(node_names_.size()) - 1;
}

int FluidNetwork::AddLink(int from, int to, double capacity_bytes_per_sec) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  links_.push_back(Link{from, to, capacity_bytes_per_sec, 0.0});
  link_carried_.push_back(0.0);
  link_spare_.push_back(capacity_bytes_per_sec);
  return static_cast<int>(links_.size()) - 1;
}

int FluidNetwork::AddTrafficClass(const std::string& name, double weight) {
  classes_.push_back(TrafficClass{name, weight});
  return static_cast<int>(classes_.size()) - 1;
}

void FluidNetwork::SetBackground(int link_id, double fraction) {
  links_[link_id].background = std::clamp(fraction, 0.0, 0.99);
  // Refresh the spare-capacity snapshot so monitors sampling before the
  // next Advance step already see the congestion.
  link_spare_[link_id] = links_[link_id].available();
}

uint64_t FluidNetwork::StartFlow(const std::vector<int>& path, double bytes,
                                 int klass, uint64_t tag) {
  Flow flow;
  flow.id = flows_.size();
  flow.path = path;
  flow.bytes_total = bytes;
  flow.bytes_left = bytes;
  flow.klass = klass;
  flow.start_micros = clock_->NowMicros();
  flow.active = bytes > 0;
  flow.tag = tag;
  if (!flow.active) flow.finish_micros = flow.start_micros;
  flows_.push_back(flow);
  rates_.push_back(0.0);
  if (flow.active) ++active_count_;
  return flow.id;
}

bool FluidNetwork::CancelFlow(uint64_t id) {
  if (id >= flows_.size() || !flows_[id].active) return false;
  flows_[id].active = false;
  flows_[id].bytes_left = 0;
  --active_count_;
  return true;
}

double FluidNetwork::FlowBytesLeft(uint64_t id) const {
  if (id >= flows_.size() || !flows_[id].active) return 0.0;
  return flows_[id].bytes_left;
}

void FluidNetwork::ComputeRates() {
  // Per link: demand per class.
  std::vector<std::vector<int>> link_class_counts(
      links_.size(), std::vector<int>(classes_.size(), 0));
  for (const Flow& f : flows_) {
    if (!f.active) continue;
    for (int l : f.path) ++link_class_counts[l][f.klass];
  }
  // Per link and class: bytes/sec available to each flow of that class.
  // Reserved shares of idle classes are redistributed to busy classes in
  // proportion to their weights (work conservation).
  std::vector<std::vector<double>> per_flow_share(
      links_.size(), std::vector<double>(classes_.size(), 0.0));
  for (size_t l = 0; l < links_.size(); ++l) {
    double busy_weight = 0.0;
    for (size_t c = 0; c < classes_.size(); ++c) {
      if (link_class_counts[l][c] > 0) busy_weight += classes_[c].weight;
    }
    if (busy_weight == 0.0) continue;
    const double capacity = links_[l].available();
    for (size_t c = 0; c < classes_.size(); ++c) {
      if (link_class_counts[l][c] == 0) continue;
      const double class_bw = capacity * classes_[c].weight / busy_weight;
      per_flow_share[l][c] = class_bw / link_class_counts[l][c];
    }
  }
  // A flow's rate is its bottleneck share along the path.
  for (size_t i = 0; i < flows_.size(); ++i) {
    const Flow& f = flows_[i];
    if (!f.active) {
      rates_[i] = 0.0;
      continue;
    }
    double rate = std::numeric_limits<double>::max();
    for (int l : f.path) {
      rate = std::min(rate, per_flow_share[l][f.klass]);
    }
    rates_[i] = rate;
  }
}

void FluidNetwork::Advance(double dt_seconds, const CompletionFn& on_complete) {
  ComputeRates();
  const uint64_t step_start = clock_->NowMicros();
  // Track spare capacity for the monitor.
  std::vector<double> link_load(links_.size(), 0.0);
  for (size_t i = 0; i < flows_.size(); ++i) {
    if (!flows_[i].active) continue;
    for (int l : flows_[i].path) link_load[l] += rates_[i];
  }
  for (size_t l = 0; l < links_.size(); ++l) {
    link_spare_[l] = std::max(0.0, links_[l].available() - link_load[l]);
  }

  for (size_t i = 0; i < flows_.size(); ++i) {
    Flow& f = flows_[i];
    if (!f.active || rates_[i] <= 0.0) continue;
    const double progress = rates_[i] * dt_seconds;
    for (int l : f.path) {
      link_carried_[l] += std::min(progress, f.bytes_left);
    }
    if (progress >= f.bytes_left) {
      // Interpolate the exact finish time within the step.
      const double finish_frac = f.bytes_left / rates_[i] / dt_seconds;
      f.bytes_left = 0;
      f.active = false;
      f.finish_micros =
          step_start +
          static_cast<uint64_t>(finish_frac * dt_seconds * 1e6);
      --active_count_;
      if (on_complete) on_complete(f);
    } else {
      f.bytes_left -= progress;
    }
  }
  clock_->AdvanceTo(step_start + static_cast<uint64_t>(dt_seconds * 1e6));
}

size_t FluidNetwork::AdvanceUntilIdle(double max_seconds, double dt_seconds,
                                      const CompletionFn& on_complete) {
  double elapsed = 0.0;
  while (active_count_ > 0 && elapsed < max_seconds) {
    Advance(dt_seconds, on_complete);
    elapsed += dt_seconds;
  }
  return active_count_;
}

double FluidNetwork::FlowRate(uint64_t id) const {
  return id < rates_.size() ? rates_[id] : 0.0;
}

BandwidthMonitor::BandwidthMonitor(const FluidNetwork* net, double alpha)
    : net_(net),
      alpha_(alpha),
      ewma_(net->num_links(), 0.0),
      seeded_(net->num_links(), false) {}

void BandwidthMonitor::Sample() {
  if (ewma_.size() < static_cast<size_t>(net_->num_links())) {
    ewma_.resize(net_->num_links(), 0.0);
    seeded_.resize(net_->num_links(), false);
  }
  for (int l = 0; l < net_->num_links(); ++l) {
    const double spare = net_->LinkSpareCapacity(l);
    if (!seeded_[l]) {
      ewma_[l] = spare;
      seeded_[l] = true;
    } else {
      ewma_[l] = alpha_ * spare + (1.0 - alpha_) * ewma_[l];
    }
  }
}

double BandwidthMonitor::PredictSpare(int link_id) const {
  if (static_cast<size_t>(link_id) >= ewma_.size() || !seeded_[link_id]) {
    return net_->link(link_id).available();
  }
  return ewma_[link_id];
}

}  // namespace directload::net
