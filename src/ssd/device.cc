#include "ssd/device.h"

#include <algorithm>
#include <cstring>

namespace directload::ssd {

SsdDevice::SsdDevice(const Geometry& geometry, const LatencyModel& latency,
                     SimClock* clock)
    : geometry_(geometry),
      latency_(latency),
      clock_(clock),
      states_(geometry.total_pages(), PageState::kErased),
      valid_in_block_(geometry.num_blocks, 0),
      erase_counts_(geometry.num_blocks, 0),
      block_data_(geometry.num_blocks) {}

uint32_t SsdDevice::MaxEraseCount() const {
  uint32_t max = 0;
  for (uint32_t count : erase_counts_) max = std::max(max, count);
  return max;
}

double SsdDevice::MeanEraseCount() const {
  uint64_t total = 0;
  for (uint32_t count : erase_counts_) total += count;
  return static_cast<double>(total) / static_cast<double>(erase_counts_.size());
}

void SsdDevice::Occupy(uint64_t service_micros) {
  const uint64_t start = std::max(clock_->NowMicros(), busy_until_micros_);
  busy_until_micros_ = start + service_micros;
  clock_->AdvanceTo(busy_until_micros_);
}

Status SsdDevice::ProgramPage(uint64_t ppa, const Slice& data, bool is_gc) {
  if (ppa >= states_.size()) {
    return Status::InvalidArgument("page address out of range");
  }
  if (data.size() > geometry_.page_size) {
    return Status::InvalidArgument("payload exceeds page size");
  }
  if (states_[ppa] != PageState::kErased) {
    return Status::IOError("programming a non-erased page");
  }
  const uint32_t block = static_cast<uint32_t>(ppa / geometry_.pages_per_block);
  if (block_data_[block] == nullptr) {
    block_data_[block] = std::make_unique<char[]>(geometry_.block_size());
  }
  char* dst = block_data_[block].get() +
              (ppa % geometry_.pages_per_block) * geometry_.page_size;
  std::memset(dst, 0, geometry_.page_size);
  std::memcpy(dst, data.data(), data.size());
  states_[ppa] = PageState::kValid;
  ++valid_in_block_[block];
  if (is_gc) {
    ++stats_.gc_pages_migrated;
  } else {
    ++stats_.host_pages_written;
  }
  Occupy(latency_.page_program_us);
  return Status::OK();
}

Status SsdDevice::ReadPage(uint64_t ppa, std::string* out, bool is_gc) {
  if (ppa >= states_.size()) {
    return Status::InvalidArgument("page address out of range");
  }
  const uint32_t block = static_cast<uint32_t>(ppa / geometry_.pages_per_block);
  out->resize(geometry_.page_size);
  if (block_data_[block] == nullptr || states_[ppa] == PageState::kErased) {
    std::memset(out->data(), 0, geometry_.page_size);
  } else {
    const char* src = block_data_[block].get() +
                      (ppa % geometry_.pages_per_block) * geometry_.page_size;
    std::memcpy(out->data(), src, geometry_.page_size);
  }
  if (!is_gc) {
    ++stats_.host_pages_read;
  }
  Occupy(latency_.page_read_us);
  return Status::OK();
}

Status SsdDevice::InvalidatePage(uint64_t ppa) {
  if (ppa >= states_.size()) {
    return Status::InvalidArgument("page address out of range");
  }
  if (states_[ppa] != PageState::kValid) {
    return Status::IOError("invalidating a page that is not valid");
  }
  states_[ppa] = PageState::kInvalid;
  --valid_in_block_[ppa / geometry_.pages_per_block];
  return Status::OK();
}

Status SsdDevice::FlipByteForTesting(uint64_t ppa, uint32_t offset_in_page) {
  if (ppa >= states_.size() || offset_in_page >= geometry_.page_size) {
    return Status::InvalidArgument("address out of range");
  }
  const uint32_t block = static_cast<uint32_t>(ppa / geometry_.pages_per_block);
  if (block_data_[block] == nullptr || states_[ppa] != PageState::kValid) {
    return Status::InvalidArgument("page holds no data");
  }
  char* p = block_data_[block].get() +
            (ppa % geometry_.pages_per_block) * geometry_.page_size +
            offset_in_page;
  *p = static_cast<char>(*p ^ 0x40);
  return Status::OK();
}

Status SsdDevice::EraseBlock(uint32_t block) {
  if (block >= geometry_.num_blocks) {
    return Status::InvalidArgument("block out of range");
  }
  if (valid_in_block_[block] != 0) {
    return Status::IOError("erasing a block that still holds valid pages");
  }
  const uint64_t first = static_cast<uint64_t>(block) * geometry_.pages_per_block;
  for (uint32_t i = 0; i < geometry_.pages_per_block; ++i) {
    states_[first + i] = PageState::kErased;
  }
  block_data_[block].reset();
  ++stats_.blocks_erased;
  ++erase_counts_[block];
  Occupy(latency_.block_erase_us);
  return Status::OK();
}

}  // namespace directload::ssd
