#ifndef DIRECTLOAD_SSD_ENV_H_
#define DIRECTLOAD_SSD_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "ssd/geometry.h"

namespace directload::ssd {

/// Append-only file handle. Complete pages are written through to the device
/// as they fill; the sub-page tail is buffered in memory until Sync (FTL
/// mode) or Close (native mode — the tail page is padded so writes stay
/// block-aligned, per the paper's Section 2.3). Bytes not yet on the device
/// are lost on a simulated crash; storage engines handle torn tails with
/// record checksums.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;

  /// Persists as much as the interface mode allows (see class comment).
  virtual Status Sync() = 0;

  /// Persists everything and seals the file. Idempotent.
  virtual Status Close() = 0;

  /// Logical bytes appended so far (including unsynced tail).
  virtual uint64_t Size() const = 0;

  /// Logical bytes guaranteed readable via RandomAccessFile right now.
  virtual uint64_t PersistedSize() const = 0;
};

/// Read-only positional access to a file. May be opened while the file is
/// still being written; reads are limited to the persisted prefix.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads file bytes [offset, offset+n), clamped at the persisted size.
  /// Returns InvalidArgument if offset lies beyond it.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;

  virtual uint64_t Size() const = 0;
};

/// Which SSD interface backs the environment. This is the paper's central
/// hardware-level contrast (Section 2.3, "Block-aligned files").
enum class InterfaceMode {
  /// Conventional page-mapped FTL with device-internal GC; files may be
  /// placed and deleted at page granularity. The LevelDB baseline's world.
  kPageMappedFtl,
  /// Host-managed native interface: files own whole 256 KB erase blocks and
  /// deletion erases them directly, so the device never migrates pages.
  /// QinDB's world.
  kNativeBlock,
};

std::string_view InterfaceModeName(InterfaceMode mode);

/// A flat-namespace filesystem over a simulated SSD. Thread-safe: each
/// implementation serializes env and file operations on one plain mutex of
/// rank LockRank::kSsdEnv (internal composition — rename→delete, close→sync,
/// file→allocator — goes through *Locked methods rather than re-acquiring),
/// matching a real device's single command queue. Timing stays simulated,
/// but callers (engine writer/reader threads, replica read threads) are real
/// threads.
class SsdEnv {
 public:
  virtual ~SsdEnv() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& name) = 0;
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& name) = 0;

  /// Removes a file. FTL mode trims its pages (reclaimed later by device
  /// GC); native mode erases its blocks immediately.
  virtual Status DeleteFile(const std::string& name) = 0;

  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual bool FileExists(const std::string& name) const = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& name) const = 0;
  virtual std::vector<std::string> ListFiles() const = 0;

  /// Device-space footprint of all files: allocated pages (FTL mode) or
  /// owned blocks (native mode) times their size. Drives Figure 7.
  virtual uint64_t TotalFileBytes() const = 0;

  /// Host-usable capacity: logical capacity (FTL mode) or all blocks
  /// (native mode).
  virtual uint64_t CapacityBytes() const = 0;

  virtual const SsdStats& stats() const = 0;
  virtual const Geometry& geometry() const = 0;
  virtual InterfaceMode mode() const = 0;
  virtual SimClock* clock() = 0;

  /// Completion time of the latest device operation (for queueing-delay
  /// computation in latency benchmarks).
  virtual uint64_t busy_until_micros() const = 0;

  /// Targeted fault injection for tests: flips one bit of the persisted
  /// byte at `offset` of file `name` (silent media corruption). The
  /// checksums of the storage formats above must detect it. For randomized
  /// or schedule-driven injection use the failpoint framework instead
  /// (common/failpoint.h): the "ssd_file_append" point's `corrupt`/`short`
  /// actions damage data in flight, "ssd_file_read_corrupt" damages reads,
  /// and every env entry point carries an error/delay failpoint.
  virtual Status CorruptFileByteForTesting(const std::string& name,
                                           uint64_t offset) = 0;

  /// Crash simulation for tests: forgets every open writer, as if the
  /// process died — unsynced tails are lost and files become deletable.
  /// Leaked WritableFile handles must not be used afterwards.
  virtual void SimulateCrashForTesting() = 0;

  /// Total bytes the host has appended through WritableFile (pre-padding).
  /// Atomic: benchmark threads read it while writer threads append.
  uint64_t host_bytes_appended() const {
    return host_bytes_appended_.load(std::memory_order_relaxed);
  }

 protected:
  std::atomic<uint64_t> host_bytes_appended_{0};
};

/// Creates an environment over a freshly formatted simulated SSD.
std::unique_ptr<SsdEnv> NewSsdEnv(InterfaceMode mode, const Geometry& geometry,
                                  const LatencyModel& latency, SimClock* clock);

}  // namespace directload::ssd

#endif  // DIRECTLOAD_SSD_ENV_H_
