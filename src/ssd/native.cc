#include "ssd/native.h"

namespace directload::ssd {

NativeSsd::NativeSsd(const Geometry& geometry, const LatencyModel& latency,
                     SimClock* clock)
    : device_(geometry, latency, clock),
      owned_(geometry.num_blocks, false),
      next_page_(geometry.num_blocks, 0) {
  for (uint32_t b = 0; b < geometry.num_blocks; ++b) free_blocks_.push_back(b);
}

Result<uint32_t> NativeSsd::AllocateBlock() {
  if (free_blocks_.empty()) {
    return Status::NoSpace("no free erase blocks");
  }
  const uint32_t block = free_blocks_.front();
  free_blocks_.pop_front();
  owned_[block] = true;
  next_page_[block] = 0;
  return block;
}

Result<uint32_t> NativeSsd::AppendPage(uint32_t block, const Slice& data) {
  if (block >= owned_.size() || !owned_[block]) {
    return Status::InvalidArgument("block not owned");
  }
  const uint32_t pages_per_block = device_.geometry().pages_per_block;
  if (next_page_[block] >= pages_per_block) {
    return Status::NoSpace("block full");
  }
  const uint32_t page = next_page_[block];
  const uint64_t ppa =
      static_cast<uint64_t>(block) * pages_per_block + page;
  Status s = device_.ProgramPage(ppa, data, /*is_gc=*/false);
  if (!s.ok()) return s;
  ++next_page_[block];
  return page;
}

Status NativeSsd::ReadPage(uint32_t block, uint32_t page, std::string* out) {
  if (block >= owned_.size() || !owned_[block]) {
    return Status::InvalidArgument("block not owned");
  }
  if (page >= next_page_[block]) {
    return Status::InvalidArgument("reading an unwritten page");
  }
  const uint64_t ppa =
      static_cast<uint64_t>(block) * device_.geometry().pages_per_block + page;
  return device_.ReadPage(ppa, out, /*is_gc=*/false);
}

Status NativeSsd::ReleaseBlock(uint32_t block) {
  if (block >= owned_.size() || !owned_[block]) {
    return Status::InvalidArgument("block not owned");
  }
  const uint32_t pages_per_block = device_.geometry().pages_per_block;
  const uint64_t first =
      static_cast<uint64_t>(block) * pages_per_block;
  // Host-side release: invalidate whatever was programmed, then erase. The
  // device never migrates pages on this path (Figure 3's best case: every
  // page in the block is invalid at erase time).
  for (uint32_t i = 0; i < next_page_[block]; ++i) {
    if (device_.page_state(first + i) == PageState::kValid) {
      Status s = device_.InvalidatePage(first + i);
      if (!s.ok()) return s;
    }
  }
  Status s = device_.EraseBlock(block);
  if (!s.ok()) return s;
  owned_[block] = false;
  next_page_[block] = 0;
  free_blocks_.push_back(block);
  return Status::OK();
}

}  // namespace directload::ssd
