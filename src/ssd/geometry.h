#ifndef DIRECTLOAD_SSD_GEOMETRY_H_
#define DIRECTLOAD_SSD_GEOMETRY_H_

#include <cstdint>
#include <string>

namespace directload::ssd {

/// Flash geometry. Defaults follow the paper's Section 2.3 / Figure 3
/// description: 4 KB pages, 64 pages per 256 KB erase block.
struct Geometry {
  uint32_t page_size = 4096;
  uint32_t pages_per_block = 64;
  uint32_t num_blocks = 4096;  // 1 GiB device by default.

  /// Fraction of physical blocks reserved as over-provisioning in the
  /// page-mapped (conventional FTL) mode. The logical capacity exposed to
  /// the host is (1 - overprovision) of the physical capacity.
  double overprovision = 0.07;

  uint64_t block_size() const {
    return static_cast<uint64_t>(page_size) * pages_per_block;
  }
  uint64_t total_pages() const {
    return static_cast<uint64_t>(num_blocks) * pages_per_block;
  }
  uint64_t physical_bytes() const { return total_pages() * page_size; }
};

/// Service times for the simulated flash operations. Values are typical for
/// an MLC SATA-era SSD (the paper's 2TB/500GB production parts). All
/// simulated time derives from these constants, so runs are deterministic.
struct LatencyModel {
  uint64_t page_read_us = 80;
  uint64_t page_program_us = 200;
  uint64_t block_erase_us = 2000;
};

/// Device-level counters. "user" counters are host-issued I/O; "device"
/// counters additionally include pages moved by the device-internal garbage
/// collector (page-mapped mode only). The paper's Figure 5 contrasts
/// "User Write" (application bytes) with "Sys Write"/"Sys Read" (firmware
/// counters); those map onto device_pages_written / device_pages_read here.
struct SsdStats {
  uint64_t host_pages_written = 0;
  uint64_t host_pages_read = 0;
  uint64_t gc_pages_migrated = 0;  // Device GC page moves (read+program each).
  uint64_t blocks_erased = 0;

  uint64_t device_pages_written() const {
    return host_pages_written + gc_pages_migrated;
  }
  uint64_t device_pages_read() const {
    return host_pages_read + gc_pages_migrated;
  }

  /// Device-level write amplification: flash programs per host write.
  double write_amplification() const {
    return host_pages_written == 0
               ? 1.0
               : static_cast<double>(device_pages_written()) /
                     static_cast<double>(host_pages_written);
  }

  SsdStats Delta(const SsdStats& earlier) const {
    SsdStats d;
    d.host_pages_written = host_pages_written - earlier.host_pages_written;
    d.host_pages_read = host_pages_read - earlier.host_pages_read;
    d.gc_pages_migrated = gc_pages_migrated - earlier.gc_pages_migrated;
    d.blocks_erased = blocks_erased - earlier.blocks_erased;
    return d;
  }
};

}  // namespace directload::ssd

#endif  // DIRECTLOAD_SSD_GEOMETRY_H_
