#ifndef DIRECTLOAD_SSD_DEVICE_H_
#define DIRECTLOAD_SSD_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "ssd/geometry.h"

namespace directload::ssd {

enum class PageState : uint8_t {
  kErased = 0,  // Programmable.
  kValid,       // Holds live data.
  kInvalid,     // Holds stale data; freed only by erasing the whole block.
};

/// The physical flash array: pages with erase/program/read semantics and a
/// single-server latency model that advances a shared SimClock. Policy
/// (mapping, GC) lives in FtlDevice / NativeSsd, which own an SsdDevice.
///
/// Flash rules enforced here (Figure 3 of the paper):
///   * a page can only be programmed when in the erased state;
///   * invalidating a page does not reclaim it;
///   * reclamation happens only via EraseBlock, which erases all 64 pages.
class SsdDevice {
 public:
  SsdDevice(const Geometry& geometry, const LatencyModel& latency,
            SimClock* clock);

  SsdDevice(const SsdDevice&) = delete;
  SsdDevice& operator=(const SsdDevice&) = delete;

  const Geometry& geometry() const { return geometry_; }
  const SsdStats& stats() const { return stats_; }
  SimClock* clock() { return clock_; }

  /// Programs page `ppa` with one page worth of data (shorter data is
  /// zero-padded). Fails if the page is not erased.
  /// `is_gc` distinguishes device-GC migration writes from host writes in
  /// the stats.
  Status ProgramPage(uint64_t ppa, const Slice& data, bool is_gc = false);

  /// Reads page `ppa` into `out` (resized to page_size). Reading an erased
  /// page yields zeros; reading an invalid page returns its stale bytes
  /// (flash semantics), so mapping layers must never do that by accident.
  Status ReadPage(uint64_t ppa, std::string* out, bool is_gc = false);

  /// Marks a valid page invalid (host overwrite/trim). No media op, no time.
  Status InvalidatePage(uint64_t ppa);

  /// Erases every page in `block`. Fails if any page is still valid, to
  /// catch mapping-layer bugs (callers migrate or invalidate first).
  Status EraseBlock(uint32_t block);

  PageState page_state(uint64_t ppa) const { return states_[ppa]; }

  /// Number of valid pages in `block`.
  uint32_t ValidPagesInBlock(uint32_t block) const {
    return valid_in_block_[block];
  }

  /// Wear tracking: flash blocks endure a limited number of erase cycles
  /// (the paper's "life span based on limited write cycles", Section 2.1).
  uint32_t BlockEraseCount(uint32_t block) const {
    return erase_counts_[block];
  }
  uint32_t MaxEraseCount() const;
  double MeanEraseCount() const;

  /// The completion time of the most recent media operation; the device is
  /// busy until then. Used by latency benchmarks to compute queueing delay
  /// relative to externally scheduled arrival times.
  uint64_t busy_until_micros() const { return busy_until_micros_; }

  /// Fault injection: flips one bit of a programmed page in place (models
  /// silent media corruption / transmission damage). No time cost, no
  /// state change — checksumming layers above must catch it.
  Status FlipByteForTesting(uint64_t ppa, uint32_t offset_in_page);

 private:
  void Occupy(uint64_t service_micros);

  Geometry geometry_;
  LatencyModel latency_;
  SimClock* clock_;
  SsdStats stats_;
  uint64_t busy_until_micros_ = 0;

  std::vector<PageState> states_;
  std::vector<uint32_t> valid_in_block_;
  std::vector<uint32_t> erase_counts_;
  // Page payloads, allocated lazily per block to bound memory.
  std::vector<std::unique_ptr<char[]>> block_data_;
};

}  // namespace directload::ssd

#endif  // DIRECTLOAD_SSD_DEVICE_H_
