#ifndef DIRECTLOAD_SSD_FTL_H_
#define DIRECTLOAD_SSD_FTL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ssd/device.h"

namespace directload::ssd {

/// A conventional page-mapped flash translation layer: the host sees a flat
/// logical page space and may overwrite or trim any logical page; the FTL
/// redirects writes to erased pages and runs a greedy device-internal
/// garbage collector when free blocks run low. This is the mode the paper's
/// LevelDB baseline runs on, and the source of hardware-level write
/// amplification (Figure 4).
class FtlDevice {
 public:
  FtlDevice(const Geometry& geometry, const LatencyModel& latency,
            SimClock* clock);

  FtlDevice(const FtlDevice&) = delete;
  FtlDevice& operator=(const FtlDevice&) = delete;

  /// Logical pages exposed to the host: physical minus over-provisioning.
  uint64_t logical_pages() const { return logical_pages_; }

  /// Writes one page of data at logical page `lpa`, overwriting any previous
  /// contents (the old physical page is invalidated; device GC reclaims it
  /// later). May trigger device GC.
  Status Write(uint64_t lpa, const Slice& data);

  /// Reads logical page `lpa`. Never-written pages read as zeros.
  Status Read(uint64_t lpa, std::string* out);

  /// Discards logical page `lpa` (filesystem delete). The physical page is
  /// invalidated; reclamation is deferred to device GC.
  Status Trim(uint64_t lpa);

  bool IsMapped(uint64_t lpa) const {
    return lpa < logical_pages_ && map_[lpa] != kUnmapped;
  }

  const SsdStats& stats() const { return device_.stats(); }
  SsdDevice& device() { return device_; }
  const SsdDevice& device() const { return device_; }
  uint32_t free_blocks() const { return static_cast<uint32_t>(free_blocks_.size()); }

  /// Number of device-GC invocations so far (victim blocks reclaimed).
  uint64_t gc_runs() const { return gc_runs_; }

 private:
  static constexpr uint64_t kUnmapped = UINT64_MAX;

  /// Returns the next programmable physical page, opening a fresh block from
  /// the free list when the active block fills. Runs device GC first when
  /// the free list is at the low watermark.
  Result<uint64_t> NextProgramSlot(bool for_gc);

  /// Greedy GC: picks the non-active block with the fewest valid pages,
  /// migrates them, erases it. Repeats until free blocks recover.
  Status RunDeviceGc();

  Status MigrateAndErase(uint32_t victim);

  SsdDevice device_;
  uint64_t logical_pages_;
  std::vector<uint64_t> map_;      // lpa -> ppa
  std::vector<uint64_t> reverse_;  // ppa -> lpa
  std::vector<bool> is_free_;      // block -> currently in free_blocks_
  std::deque<uint32_t> free_blocks_;
  uint32_t active_block_ = UINT32_MAX;
  uint32_t active_next_page_ = 0;
  // A second active block used as the destination of GC migrations so that
  // host data and migrated (typically colder) data are not interleaved.
  uint32_t gc_block_ = UINT32_MAX;
  uint32_t gc_next_page_ = 0;
  uint64_t gc_runs_ = 0;

  // GC watermarks: trigger when the free list drops to the low mark, reclaim
  // until the high mark is restored.
  static constexpr uint32_t kGcLowWatermark = 4;
  static constexpr uint32_t kGcHighWatermark = 8;
};

}  // namespace directload::ssd

#endif  // DIRECTLOAD_SSD_FTL_H_
