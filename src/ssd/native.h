#ifndef DIRECTLOAD_SSD_NATIVE_H_
#define DIRECTLOAD_SSD_NATIVE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ssd/device.h"

namespace directload::ssd {

/// The SSD native (open-channel style) interface used by QinDB (Section 2.3,
/// "Block-aligned files"): the host allocates whole erase blocks, appends
/// pages sequentially inside them, and erases whole blocks itself. Because
/// the host only ever erases blocks it fully owns and never overwrites
/// pages, the device performs **no internal garbage collection** and device
/// writes equal host writes — eliminating hardware-level write
/// amplification.
class NativeSsd {
 public:
  NativeSsd(const Geometry& geometry, const LatencyModel& latency,
            SimClock* clock);

  NativeSsd(const NativeSsd&) = delete;
  NativeSsd& operator=(const NativeSsd&) = delete;

  /// Takes ownership of a free erase block. Pages are appended with
  /// AppendPage in strictly increasing order.
  Result<uint32_t> AllocateBlock();

  /// Programs the next unwritten page of owned block `block`. Returns the
  /// page index written.
  Result<uint32_t> AppendPage(uint32_t block, const Slice& data);

  /// Reads page `page` of owned block `block`.
  Status ReadPage(uint32_t block, uint32_t page, std::string* out);

  /// Erases an owned block and returns it to the free pool. All live data in
  /// it is lost; the caller (the AOF garbage collector) migrates live
  /// records first.
  Status ReleaseBlock(uint32_t block);

  /// Pages appended to `block` so far.
  uint32_t PagesWritten(uint32_t block) const { return next_page_[block]; }
  bool IsOwned(uint32_t block) const { return owned_[block]; }

  uint32_t free_blocks() const {
    return static_cast<uint32_t>(free_blocks_.size());
  }
  const Geometry& geometry() const { return device_.geometry(); }
  const SsdStats& stats() const { return device_.stats(); }
  SsdDevice& device() { return device_; }
  const SsdDevice& device() const { return device_; }

 private:
  SsdDevice device_;
  std::vector<bool> owned_;
  std::vector<uint32_t> next_page_;
  std::deque<uint32_t> free_blocks_;
};

}  // namespace directload::ssd

#endif  // DIRECTLOAD_SSD_NATIVE_H_
