#include "ssd/ftl.h"

#include <algorithm>

namespace directload::ssd {

FtlDevice::FtlDevice(const Geometry& geometry, const LatencyModel& latency,
                     SimClock* clock)
    : device_(geometry, latency, clock) {
  const auto usable_blocks = static_cast<uint32_t>(
      static_cast<double>(geometry.num_blocks) * (1.0 - geometry.overprovision));
  logical_pages_ =
      static_cast<uint64_t>(usable_blocks) * geometry.pages_per_block;
  map_.assign(logical_pages_, kUnmapped);
  reverse_.assign(geometry.total_pages(), kUnmapped);
  is_free_.assign(geometry.num_blocks, true);
  for (uint32_t b = 0; b < geometry.num_blocks; ++b) free_blocks_.push_back(b);
}

Result<uint64_t> FtlDevice::NextProgramSlot(bool for_gc) {
  uint32_t* block = for_gc ? &gc_block_ : &active_block_;
  uint32_t* next_page = for_gc ? &gc_next_page_ : &active_next_page_;
  const uint32_t pages_per_block = device_.geometry().pages_per_block;
  if (*block == UINT32_MAX || *next_page >= pages_per_block) {
    if (!for_gc && free_blocks_.size() <= kGcLowWatermark) {
      Status s = RunDeviceGc();
      if (!s.ok()) return s;
    }
    if (free_blocks_.empty()) {
      return Status::NoSpace("FTL out of free blocks");
    }
    *block = free_blocks_.front();
    free_blocks_.pop_front();
    is_free_[*block] = false;
    *next_page = 0;
  }
  const uint64_t ppa =
      static_cast<uint64_t>(*block) * pages_per_block + (*next_page);
  ++(*next_page);
  return ppa;
}

Status FtlDevice::Write(uint64_t lpa, const Slice& data) {
  if (lpa >= logical_pages_) {
    return Status::InvalidArgument("logical page out of range");
  }
  // Invalidate the previous physical copy first so device GC always has
  // reclaimable pages when the write needs a fresh slot.
  if (map_[lpa] != kUnmapped) {
    Status s = device_.InvalidatePage(map_[lpa]);
    if (!s.ok()) return s;
    reverse_[map_[lpa]] = kUnmapped;
    map_[lpa] = kUnmapped;
  }
  Result<uint64_t> slot = NextProgramSlot(/*for_gc=*/false);
  if (!slot.ok()) return slot.status();
  Status s = device_.ProgramPage(*slot, data, /*is_gc=*/false);
  if (!s.ok()) return s;
  map_[lpa] = *slot;
  reverse_[*slot] = lpa;
  return Status::OK();
}

Status FtlDevice::Read(uint64_t lpa, std::string* out) {
  if (lpa >= logical_pages_) {
    return Status::InvalidArgument("logical page out of range");
  }
  if (map_[lpa] == kUnmapped) {
    out->assign(device_.geometry().page_size, '\0');
    return Status::OK();
  }
  return device_.ReadPage(map_[lpa], out, /*is_gc=*/false);
}

Status FtlDevice::Trim(uint64_t lpa) {
  if (lpa >= logical_pages_) {
    return Status::InvalidArgument("logical page out of range");
  }
  if (map_[lpa] == kUnmapped) return Status::OK();
  Status s = device_.InvalidatePage(map_[lpa]);
  if (!s.ok()) return s;
  reverse_[map_[lpa]] = kUnmapped;
  map_[lpa] = kUnmapped;
  return Status::OK();
}

Status FtlDevice::RunDeviceGc() {
  const uint32_t pages_per_block = device_.geometry().pages_per_block;
  while (free_blocks_.size() < kGcHighWatermark) {
    // Greedy victim selection: sealed block with the fewest valid pages.
    uint32_t victim = UINT32_MAX;
    uint32_t victim_valid = pages_per_block;  // Fully-valid blocks are useless.
    for (uint32_t b = 0; b < device_.geometry().num_blocks; ++b) {
      if (is_free_[b] || b == active_block_ || b == gc_block_) continue;
      const uint32_t valid = device_.ValidPagesInBlock(b);
      if (valid < victim_valid) {
        victim = b;
        victim_valid = valid;
        if (valid == 0) break;
      }
    }
    if (victim == UINT32_MAX) {
      // Every candidate is fully valid: the device is genuinely full.
      return free_blocks_.empty() ? Status::NoSpace("device full") : Status::OK();
    }
    Status s = MigrateAndErase(victim);
    if (!s.ok()) return s;
    ++gc_runs_;
  }
  return Status::OK();
}

Status FtlDevice::MigrateAndErase(uint32_t victim) {
  const uint32_t pages_per_block = device_.geometry().pages_per_block;
  const uint64_t first =
      static_cast<uint64_t>(victim) * pages_per_block;
  std::string buf;
  for (uint32_t i = 0; i < pages_per_block; ++i) {
    const uint64_t ppa = first + i;
    if (device_.page_state(ppa) != PageState::kValid) continue;
    const uint64_t lpa = reverse_[ppa];
    Status s = device_.ReadPage(ppa, &buf, /*is_gc=*/true);
    if (!s.ok()) return s;
    Result<uint64_t> slot = NextProgramSlot(/*for_gc=*/true);
    if (!slot.ok()) return slot.status();
    s = device_.ProgramPage(*slot, buf, /*is_gc=*/true);
    if (!s.ok()) return s;
    s = device_.InvalidatePage(ppa);
    if (!s.ok()) return s;
    map_[lpa] = *slot;
    reverse_[*slot] = lpa;
    reverse_[ppa] = kUnmapped;
  }
  Status s = device_.EraseBlock(victim);
  if (!s.ok()) return s;
  free_blocks_.push_back(victim);
  is_free_[victim] = true;
  return Status::OK();
}

}  // namespace directload::ssd
