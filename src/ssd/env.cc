#include "ssd/env.h"

#include <deque>
#include <map>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/thread_annotations.h"
#include "ssd/ftl.h"
#include "ssd/native.h"

namespace directload::ssd {

std::string_view InterfaceModeName(InterfaceMode mode) {
  switch (mode) {
    case InterfaceMode::kPageMappedFtl:
      return "page-mapped-ftl";
    case InterfaceMode::kNativeBlock:
      return "native-block";
  }
  return "unknown";
}

namespace {

// Device-layer failpoints, shared by both backends (docs/fault_injection.md
// lists the full registry). The append and read-corrupt points are
// payload-aware: `short` tears an append after a prefix, `corrupt` flips a
// bit in the in-flight page image — the failpoint-driven successors to the
// targeted CorruptFileByteForTesting hook.
DIRECTLOAD_FAILPOINT_DEFINE(fp_env_open_writable, "ssd_env_open_writable");
DIRECTLOAD_FAILPOINT_DEFINE(fp_env_open_reader, "ssd_env_open_reader");
DIRECTLOAD_FAILPOINT_DEFINE(fp_env_delete, "ssd_env_delete");
DIRECTLOAD_FAILPOINT_DEFINE(fp_env_rename, "ssd_env_rename");
DIRECTLOAD_FAILPOINT_DEFINE(fp_file_append, "ssd_file_append");
DIRECTLOAD_FAILPOINT_DEFINE(fp_file_sync, "ssd_file_sync");
DIRECTLOAD_FAILPOINT_DEFINE(fp_file_close, "ssd_file_close");
DIRECTLOAD_FAILPOINT_DEFINE(fp_file_read, "ssd_file_read");
DIRECTLOAD_FAILPOINT_DEFINE(fp_file_read_corrupt, "ssd_file_read_corrupt");

// Each backend serializes env and file state on one plain ranked mutex — a
// single device command queue. The old implementation used a recursive
// mutex because public methods composed (RenameFile deletes, Close syncs)
// and file objects re-entered the env for allocation and accounting; those
// paths now go through *Locked internals that REQUIRE the lock instead of
// re-acquiring it, so the env participates in the lock-rank checker and the
// clang thread-safety analysis like every other layer.

// ---------------------------------------------------------------------------
// Page-mapped FTL backend
// ---------------------------------------------------------------------------

struct FtlFileMeta {
  std::vector<uint64_t> lpas;  // One logical page per written page, in order.
  uint64_t size = 0;           // Appended bytes (incl. unsynced tail).
  uint64_t persisted = 0;      // Bytes readable from the device.
  bool tail_on_disk = false;   // lpas.back() holds a padded partial page.
  bool has_writer = false;
};

class FtlWritableFile;
class FtlRandomAccessFile;

class FtlEnv final : public SsdEnv {
 public:
  FtlEnv(const Geometry& geometry, const LatencyModel& latency, SimClock* clock)
      : ftl_(geometry, latency, clock), clock_(clock) {}

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& name) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& name) override;

  Status DeleteFile(const std::string& name) override {
    DIRECTLOAD_FAILPOINT(fp_env_delete);
    MutexLock lock(&mu_);
    return DeleteFileLocked(name);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    DIRECTLOAD_FAILPOINT(fp_env_rename);
    MutexLock lock(&mu_);
    auto it = files_.find(from);
    if (it == files_.end()) return Status::NotFound(from);
    if (files_.count(to) != 0) {
      Status s = DeleteFileLocked(to);
      if (!s.ok()) return s;
    }
    files_[to] = it->second;
    files_.erase(from);
    return Status::OK();
  }

  bool FileExists(const std::string& name) const override {
    MutexLock lock(&mu_);
    return files_.count(name) != 0;
  }

  Result<uint64_t> GetFileSize(const std::string& name) const override {
    MutexLock lock(&mu_);
    auto it = files_.find(name);
    if (it == files_.end()) return Status::NotFound(name);
    return it->second->size;
  }

  std::vector<std::string> ListFiles() const override {
    MutexLock lock(&mu_);
    std::vector<std::string> names;
    names.reserve(files_.size());
    for (const auto& [name, meta] : files_) names.push_back(name);
    return names;
  }

  uint64_t TotalFileBytes() const override {
    MutexLock lock(&mu_);
    return allocated_pages_ * ftl_.device().geometry().page_size;
  }

  uint64_t CapacityBytes() const override {
    return ftl_.logical_pages() *
           static_cast<uint64_t>(ftl_.device().geometry().page_size);
  }

  const SsdStats& stats() const override { return ftl_.stats(); }
  const Geometry& geometry() const override {
    return ftl_.device().geometry();
  }
  InterfaceMode mode() const override { return InterfaceMode::kPageMappedFtl; }
  SimClock* clock() override { return clock_; }
  uint64_t busy_until_micros() const override {
    MutexLock lock(&mu_);
    return ftl_.device().busy_until_micros();
  }

  Status CorruptFileByteForTesting(const std::string& name,
                                   uint64_t offset) override {
    MutexLock lock(&mu_);
    auto it = files_.find(name);
    if (it == files_.end()) return Status::NotFound(name);
    const FtlFileMeta& meta = *it->second;
    const uint32_t page_size = geometry().page_size;
    const uint64_t page_idx = offset / page_size;
    if (offset >= meta.persisted || page_idx >= meta.lpas.size()) {
      return Status::InvalidArgument("offset not persisted");
    }
    // Reach under the mapping: corrupt the physical copy in place.
    const uint64_t lpa = meta.lpas[page_idx];
    std::string page;
    Status s = ftl_.Read(lpa, &page);
    if (!s.ok()) return s;
    // The FTL hides physical addresses; rewrite the page with one bit
    // flipped (timing side effects are irrelevant for fault tests).
    page[offset % page_size] =
        static_cast<char>(page[offset % page_size] ^ 0x40);
    return ftl_.Write(lpa, page);
  }

  void SimulateCrashForTesting() override {
    MutexLock lock(&mu_);
    for (auto& [name, meta] : files_) meta->has_writer = false;
  }

  // --- internals shared with the file objects; all require mu_ held ------

  Result<uint64_t> AllocateLpaLocked() REQUIRES(mu_) {
    if (!free_lpas_.empty()) {
      const uint64_t lpa = free_lpas_.front();
      free_lpas_.pop_front();
      ++allocated_pages_;
      return lpa;
    }
    if (next_lpa_ >= ftl_.logical_pages()) {
      return Status::NoSpace("logical capacity exhausted");
    }
    ++allocated_pages_;
    return next_lpa_++;
  }

  FtlDevice& ftl() REQUIRES(mu_) { return ftl_; }

  void AccountAppendLocked(size_t n) REQUIRES(mu_) {
    host_bytes_appended_.fetch_add(n, std::memory_order_relaxed);
  }

  /// One big lock around env and file state — the device's single command
  /// queue. Public so the file objects (same translation unit) can hold it
  /// across their operations.
  mutable Mutex mu_{LockRank::kSsdEnv, "ssd-env(ftl)"};

 private:
  Status DeleteFileLocked(const std::string& name) REQUIRES(mu_) {
    auto it = files_.find(name);
    if (it == files_.end()) return Status::NotFound(name);
    if (it->second->has_writer) {
      return Status::Busy("file has an open writer: " + name);
    }
    for (uint64_t lpa : it->second->lpas) {
      Status s = ftl_.Trim(lpa);
      if (!s.ok()) return s;
      free_lpas_.push_back(lpa);
      --allocated_pages_;
    }
    files_.erase(it);
    return Status::OK();
  }

  FtlDevice ftl_;
  SimClock* clock_;
  std::map<std::string, std::shared_ptr<FtlFileMeta>> files_ GUARDED_BY(mu_);
  std::deque<uint64_t> free_lpas_ GUARDED_BY(mu_);
  uint64_t next_lpa_ GUARDED_BY(mu_) = 0;
  uint64_t allocated_pages_ GUARDED_BY(mu_) = 0;
};

class FtlWritableFile final : public WritableFile {
 public:
  FtlWritableFile(FtlEnv* env, std::shared_ptr<FtlFileMeta> meta)
      : env_(env), meta_(std::move(meta)) {}
  ~FtlWritableFile() override {
    DL_LOG_IF_ERROR("ftl file close in destructor", Close());
  }

  Status Append(const Slice& data) override {
    MutexLock lock(&env_->mu_);
    if (closed_) return Status::InvalidArgument("file is closed");
#if DIRECTLOAD_FAILPOINTS_COMPILED
    if (fp_file_append->armed()) {
      std::string payload(data.data(), data.size());
      uint64_t allowed = payload.size();
      Status injected = fp_file_append->MaybeFailIo(&payload, &allowed);
      if (!injected.ok()) {
        // Torn append: the first `allowed` bytes reach the file, the call
        // fails. A plain injected error leaves the file untouched.
        if (allowed > 0 && allowed < payload.size()) {
          // The injected error is what the caller sees; the partial write
          // only shapes the torn tail it recovers from.
          DL_LOG_IF_ERROR("torn-append partial write",
                          AppendLocked(Slice(payload.data(), allowed)));
        }
        return injected;
      }
      // `corrupt` may have flipped a bit in the payload; apply it whole.
      return AppendLocked(Slice(payload.data(), payload.size()));
    }
#endif
    return AppendLocked(data);
  }

  Status Sync() override {
    DIRECTLOAD_FAILPOINT(fp_file_sync);
    MutexLock lock(&env_->mu_);
    return SyncLocked();
  }

  Status Close() override {
    MutexLock lock(&env_->mu_);
    if (closed_) return Status::OK();
    // An injected close failure leaves the handle open with its tail
    // unsynced — the caller sees the error, retrying (or the destructor)
    // finishes the close.
    DIRECTLOAD_FAILPOINT(fp_file_close);
    Status s = SyncLocked();
    closed_ = true;
    meta_->has_writer = false;
    return s;
  }

  uint64_t Size() const override {
    MutexLock lock(&env_->mu_);
    return meta_->size;
  }

  uint64_t PersistedSize() const override {
    MutexLock lock(&env_->mu_);
    return meta_->persisted;
  }

 private:
  Status AppendLocked(const Slice& data) REQUIRES(env_->mu_) {
    env_->AccountAppendLocked(data.size());
    meta_->size += data.size();
    tail_.append(data.data(), data.size());
    tail_dirty_ = true;
    return FlushFullPagesLocked();
  }

  Status FlushFullPagesLocked() REQUIRES(env_->mu_) {
    const uint32_t page_size = env_->geometry().page_size;
    while (tail_.size() >= page_size) {
      uint64_t lpa;
      if (meta_->tail_on_disk) {
        // The previously synced partial page is completed in place: the FTL
        // redirects the overwrite, invalidating the old copy (this is the
        // sync-amplification a conventional filesystem pays).
        lpa = meta_->lpas.back();
        meta_->tail_on_disk = false;
      } else {
        Result<uint64_t> alloc = env_->AllocateLpaLocked();
        if (!alloc.ok()) return alloc.status();
        lpa = *alloc;
        meta_->lpas.push_back(lpa);
      }
      Status s = env_->ftl().Write(lpa, Slice(tail_.data(), page_size));
      if (!s.ok()) return s;
      tail_.erase(0, page_size);
      meta_->persisted =
          static_cast<uint64_t>(meta_->lpas.size()) * page_size;
    }
    if (tail_.empty()) tail_dirty_ = false;
    return Status::OK();
  }

  Status SyncLocked() REQUIRES(env_->mu_) {
    if (closed_) return Status::InvalidArgument("file is closed");
    if (tail_.empty() || !tail_dirty_) return Status::OK();
    uint64_t lpa;
    if (meta_->tail_on_disk) {
      lpa = meta_->lpas.back();  // Rewrite the partial page in place.
    } else {
      Result<uint64_t> alloc = env_->AllocateLpaLocked();
      if (!alloc.ok()) return alloc.status();
      lpa = *alloc;
      meta_->lpas.push_back(lpa);
      meta_->tail_on_disk = true;
    }
    Status s = env_->ftl().Write(lpa, tail_);  // Device zero-pads the page.
    if (!s.ok()) return s;
    tail_dirty_ = false;
    meta_->persisted = meta_->size;
    return Status::OK();
  }

  FtlEnv* env_;
  std::shared_ptr<FtlFileMeta> meta_;
  std::string tail_;
  bool tail_dirty_ = false;
  bool closed_ = false;
};

class FtlRandomAccessFile final : public RandomAccessFile {
 public:
  FtlRandomAccessFile(FtlEnv* env, std::shared_ptr<FtlFileMeta> meta)
      : env_(env), meta_(std::move(meta)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    DIRECTLOAD_FAILPOINT(fp_file_read);
    MutexLock lock(&env_->mu_);
    out->clear();
    if (offset > meta_->persisted) {
      return Status::InvalidArgument("read past persisted size");
    }
    const uint64_t end = std::min<uint64_t>(offset + n, meta_->persisted);
    if (end == offset) return Status::OK();
    const uint32_t page_size = env_->geometry().page_size;
    out->reserve(end - offset);
    std::string page;
    for (uint64_t page_idx = offset / page_size; page_idx * page_size < end;
         ++page_idx) {
      Status s = env_->ftl().Read(meta_->lpas[page_idx], &page);
      if (!s.ok()) return s;
      const uint64_t page_start = page_idx * page_size;
      const uint64_t lo = std::max<uint64_t>(offset, page_start);
      const uint64_t hi = std::min<uint64_t>(end, page_start + page_size);
      out->append(page.data() + (lo - page_start), hi - lo);
    }
#if DIRECTLOAD_FAILPOINTS_COMPILED
    // Transient read-side damage: the media is intact, this return is not.
    if (fp_file_read_corrupt->armed()) {
      // `corrupt` flips a bit in `out` and returns OK; any other armed
      // action (e.g. return(io)) is a real injected failure — surface it
      // instead of silently swallowing the arming.
      if (Status injected = fp_file_read_corrupt->MaybeFailIo(out, nullptr);
          !injected.ok()) {
        return injected;
      }
    }
#endif
    return Status::OK();
  }

  uint64_t Size() const override {
    MutexLock lock(&env_->mu_);
    return meta_->persisted;
  }

 private:
  FtlEnv* env_;
  std::shared_ptr<FtlFileMeta> meta_;
};

Result<std::unique_ptr<WritableFile>> FtlEnv::NewWritableFile(
    const std::string& name) {
  DIRECTLOAD_FAILPOINT(fp_env_open_writable);
  MutexLock lock(&mu_);
  auto it = files_.find(name);
  if (it != files_.end()) {
    return Status::InvalidArgument("file already exists: " + name);
  }
  auto meta = std::make_shared<FtlFileMeta>();
  meta->has_writer = true;
  files_[name] = meta;
  return {std::unique_ptr<WritableFile>(new FtlWritableFile(this, meta))};
}

Result<std::unique_ptr<RandomAccessFile>> FtlEnv::NewRandomAccessFile(
    const std::string& name) {
  DIRECTLOAD_FAILPOINT(fp_env_open_reader);
  MutexLock lock(&mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound(name);
  return {std::unique_ptr<RandomAccessFile>(
      new FtlRandomAccessFile(this, it->second))};
}

// ---------------------------------------------------------------------------
// Native-block backend
// ---------------------------------------------------------------------------

struct NativeFileMeta {
  std::vector<uint32_t> blocks;  // Owned erase blocks, in append order.
  uint64_t size = 0;             // Appended bytes (incl. unflushed tail).
  uint64_t persisted = 0;        // Bytes readable from the device.
  uint32_t pages = 0;            // Pages programmed so far.
  bool has_writer = false;
};

class NativeWritableFile;
class NativeRandomAccessFile;

class NativeEnv final : public SsdEnv {
 public:
  NativeEnv(const Geometry& geometry, const LatencyModel& latency,
            SimClock* clock)
      : native_(geometry, latency, clock), clock_(clock) {}

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& name) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& name) override;

  Status DeleteFile(const std::string& name) override {
    DIRECTLOAD_FAILPOINT(fp_env_delete);
    MutexLock lock(&mu_);
    return DeleteFileLocked(name);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    DIRECTLOAD_FAILPOINT(fp_env_rename);
    MutexLock lock(&mu_);
    auto it = files_.find(from);
    if (it == files_.end()) return Status::NotFound(from);
    if (files_.count(to) != 0) {
      Status s = DeleteFileLocked(to);
      if (!s.ok()) return s;
    }
    files_[to] = it->second;
    files_.erase(from);
    return Status::OK();
  }

  bool FileExists(const std::string& name) const override {
    MutexLock lock(&mu_);
    return files_.count(name) != 0;
  }

  Result<uint64_t> GetFileSize(const std::string& name) const override {
    MutexLock lock(&mu_);
    auto it = files_.find(name);
    if (it == files_.end()) return Status::NotFound(name);
    return it->second->size;
  }

  std::vector<std::string> ListFiles() const override {
    MutexLock lock(&mu_);
    std::vector<std::string> names;
    names.reserve(files_.size());
    for (const auto& [name, meta] : files_) names.push_back(name);
    return names;
  }

  uint64_t TotalFileBytes() const override {
    MutexLock lock(&mu_);
    return allocated_blocks_ * native_.geometry().block_size();
  }

  uint64_t CapacityBytes() const override {
    return native_.geometry().physical_bytes();
  }

  const SsdStats& stats() const override { return native_.stats(); }
  const Geometry& geometry() const override { return native_.geometry(); }
  InterfaceMode mode() const override { return InterfaceMode::kNativeBlock; }
  SimClock* clock() override { return clock_; }
  uint64_t busy_until_micros() const override {
    MutexLock lock(&mu_);
    return native_.device().busy_until_micros();
  }

  Status CorruptFileByteForTesting(const std::string& name,
                                   uint64_t offset) override {
    MutexLock lock(&mu_);
    auto it = files_.find(name);
    if (it == files_.end()) return Status::NotFound(name);
    const NativeFileMeta& meta = *it->second;
    const uint32_t page_size = geometry().page_size;
    const uint32_t pages_per_block = geometry().pages_per_block;
    const uint64_t page_idx = offset / page_size;
    if (offset >= meta.persisted) {
      return Status::InvalidArgument("offset not persisted");
    }
    const uint32_t block =
        meta.blocks[static_cast<size_t>(page_idx / pages_per_block)];
    const uint64_t ppa =
        static_cast<uint64_t>(block) * pages_per_block +
        page_idx % pages_per_block;
    return native_.device().FlipByteForTesting(
        ppa, static_cast<uint32_t>(offset % page_size));
  }

  void SimulateCrashForTesting() override {
    MutexLock lock(&mu_);
    for (auto& [name, meta] : files_) meta->has_writer = false;
  }

  // --- internals shared with the file objects; all require mu_ held ------

  NativeSsd& native() REQUIRES(mu_) { return native_; }

  void AccountAppendLocked(size_t n) REQUIRES(mu_) {
    host_bytes_appended_.fetch_add(n, std::memory_order_relaxed);
  }

  void AccountBlockLocked() REQUIRES(mu_) { ++allocated_blocks_; }

  /// See FtlEnv::mu_: one plain ranked lock for env plus file state.
  mutable Mutex mu_{LockRank::kSsdEnv, "ssd-env(native)"};

 private:
  Status DeleteFileLocked(const std::string& name) REQUIRES(mu_) {
    auto it = files_.find(name);
    if (it == files_.end()) return Status::NotFound(name);
    if (it->second->has_writer) {
      return Status::Busy("file has an open writer: " + name);
    }
    // Block-aligned deletion: every owned block is erased directly; there is
    // nothing for a device GC to migrate (the paper's hardware-level win).
    for (uint32_t block : it->second->blocks) {
      Status s = native_.ReleaseBlock(block);
      if (!s.ok()) return s;
      --allocated_blocks_;
    }
    files_.erase(it);
    return Status::OK();
  }

  NativeSsd native_;
  SimClock* clock_;
  std::map<std::string, std::shared_ptr<NativeFileMeta>> files_
      GUARDED_BY(mu_);
  uint64_t allocated_blocks_ GUARDED_BY(mu_) = 0;
};

class NativeWritableFile final : public WritableFile {
 public:
  NativeWritableFile(NativeEnv* env, std::shared_ptr<NativeFileMeta> meta)
      : env_(env), meta_(std::move(meta)) {}
  ~NativeWritableFile() override {
    DL_LOG_IF_ERROR("native file close in destructor", Close());
  }

  Status Append(const Slice& data) override {
    MutexLock lock(&env_->mu_);
    if (closed_) return Status::InvalidArgument("file is closed");
#if DIRECTLOAD_FAILPOINTS_COMPILED
    if (fp_file_append->armed()) {
      std::string payload(data.data(), data.size());
      uint64_t allowed = payload.size();
      Status injected = fp_file_append->MaybeFailIo(&payload, &allowed);
      if (!injected.ok()) {
        // Torn append: the first `allowed` bytes reach the file, the call
        // fails. A plain injected error leaves the file untouched.
        if (allowed > 0 && allowed < payload.size()) {
          // The injected error is what the caller sees; the partial write
          // only shapes the torn tail it recovers from.
          DL_LOG_IF_ERROR("torn-append partial write",
                          AppendLocked(Slice(payload.data(), allowed)));
        }
        return injected;
      }
      // `corrupt` may have flipped a bit in the payload; apply it whole.
      return AppendLocked(Slice(payload.data(), payload.size()));
    }
#endif
    return AppendLocked(data);
  }

  // Native appends program whole pages as they fill; there is no dirty tail
  // on the device to flush, so Sync is a no-op — but it is still a failpoint
  // so sync failures are injectable in both interface modes.
  Status Sync() override {
    DIRECTLOAD_FAILPOINT(fp_file_sync);
    return Status::OK();
  }

  Status Close() override {
    MutexLock lock(&env_->mu_);
    if (closed_) return Status::OK();
    // See FtlWritableFile::Close: an injected failure precedes the pad-out,
    // leaving the handle open and the tail unpersisted.
    DIRECTLOAD_FAILPOINT(fp_file_close);
    if (!tail_.empty()) {
      // Pad the final page: native writes never rewrite a programmed page.
      Status s = WritePageLocked(tail_);
      if (!s.ok()) return s;
      tail_.clear();
    }
    meta_->persisted = meta_->size;
    closed_ = true;
    meta_->has_writer = false;
    return Status::OK();
  }

  uint64_t Size() const override {
    MutexLock lock(&env_->mu_);
    return meta_->size;
  }

  uint64_t PersistedSize() const override {
    MutexLock lock(&env_->mu_);
    return meta_->persisted;
  }

 private:
  Status AppendLocked(const Slice& data) REQUIRES(env_->mu_) {
    env_->AccountAppendLocked(data.size());
    meta_->size += data.size();
    tail_.append(data.data(), data.size());
    const uint32_t page_size = env_->geometry().page_size;
    while (tail_.size() >= page_size) {
      Status s = WritePageLocked(Slice(tail_.data(), page_size));
      if (!s.ok()) return s;
      tail_.erase(0, page_size);
    }
    return Status::OK();
  }

  Status WritePageLocked(const Slice& page) REQUIRES(env_->mu_) {
    const uint32_t pages_per_block = env_->geometry().pages_per_block;
    if (meta_->pages % pages_per_block == 0) {
      Result<uint32_t> block = env_->native().AllocateBlock();
      if (!block.ok()) return block.status();
      meta_->blocks.push_back(*block);
      env_->AccountBlockLocked();
    }
    Result<uint32_t> page_idx =
        env_->native().AppendPage(meta_->blocks.back(), page);
    if (!page_idx.ok()) return page_idx.status();
    ++meta_->pages;
    meta_->persisted =
        std::min<uint64_t>(meta_->size, static_cast<uint64_t>(meta_->pages) *
                                            env_->geometry().page_size);
    return Status::OK();
  }

  NativeEnv* env_;
  std::shared_ptr<NativeFileMeta> meta_;
  std::string tail_;
  bool closed_ = false;
};

class NativeRandomAccessFile final : public RandomAccessFile {
 public:
  NativeRandomAccessFile(NativeEnv* env, std::shared_ptr<NativeFileMeta> meta)
      : env_(env), meta_(std::move(meta)) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    DIRECTLOAD_FAILPOINT(fp_file_read);
    MutexLock lock(&env_->mu_);
    out->clear();
    if (offset > meta_->persisted) {
      return Status::InvalidArgument("read past persisted size");
    }
    const uint64_t end = std::min<uint64_t>(offset + n, meta_->persisted);
    if (end == offset) return Status::OK();
    const uint32_t page_size = env_->geometry().page_size;
    const uint32_t pages_per_block = env_->geometry().pages_per_block;
    out->reserve(end - offset);
    std::string page;
    for (uint64_t page_idx = offset / page_size; page_idx * page_size < end;
         ++page_idx) {
      const uint32_t block =
          meta_->blocks[static_cast<size_t>(page_idx / pages_per_block)];
      Status s = env_->native().ReadPage(
          block, static_cast<uint32_t>(page_idx % pages_per_block), &page);
      if (!s.ok()) return s;
      const uint64_t page_start = page_idx * page_size;
      const uint64_t lo = std::max<uint64_t>(offset, page_start);
      const uint64_t hi = std::min<uint64_t>(end, page_start + page_size);
      out->append(page.data() + (lo - page_start), hi - lo);
    }
#if DIRECTLOAD_FAILPOINTS_COMPILED
    // Transient read-side damage: the media is intact, this return is not.
    if (fp_file_read_corrupt->armed()) {
      // `corrupt` flips a bit in `out` and returns OK; any other armed
      // action (e.g. return(io)) is a real injected failure — surface it
      // instead of silently swallowing the arming.
      if (Status injected = fp_file_read_corrupt->MaybeFailIo(out, nullptr);
          !injected.ok()) {
        return injected;
      }
    }
#endif
    return Status::OK();
  }

  uint64_t Size() const override {
    MutexLock lock(&env_->mu_);
    return meta_->persisted;
  }

 private:
  NativeEnv* env_;
  std::shared_ptr<NativeFileMeta> meta_;
};

Result<std::unique_ptr<WritableFile>> NativeEnv::NewWritableFile(
    const std::string& name) {
  DIRECTLOAD_FAILPOINT(fp_env_open_writable);
  MutexLock lock(&mu_);
  if (files_.count(name) != 0) {
    return Status::InvalidArgument("file already exists: " + name);
  }
  auto meta = std::make_shared<NativeFileMeta>();
  meta->has_writer = true;
  files_[name] = meta;
  return {std::unique_ptr<WritableFile>(new NativeWritableFile(this, meta))};
}

Result<std::unique_ptr<RandomAccessFile>> NativeEnv::NewRandomAccessFile(
    const std::string& name) {
  DIRECTLOAD_FAILPOINT(fp_env_open_reader);
  MutexLock lock(&mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound(name);
  return {std::unique_ptr<RandomAccessFile>(
      new NativeRandomAccessFile(this, it->second))};
}

}  // namespace

std::unique_ptr<SsdEnv> NewSsdEnv(InterfaceMode mode, const Geometry& geometry,
                                  const LatencyModel& latency,
                                  SimClock* clock) {
  if (mode == InterfaceMode::kPageMappedFtl) {
    return std::make_unique<FtlEnv>(geometry, latency, clock);
  }
  return std::make_unique<NativeEnv>(geometry, latency, clock);
}

}  // namespace directload::ssd
