#ifndef DIRECTLOAD_LSM_ITERATOR_H_
#define DIRECTLOAD_LSM_ITERATOR_H_

#include <memory>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace directload::lsm {

/// Forward iterator over key-value pairs (the LevelDB shape, minus Prev,
/// which nothing in this project needs). Keys are internal keys unless
/// stated otherwise.
class Iterator {
 public:
  virtual ~Iterator() = default;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  /// Positions at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  /// Valid only while Valid() is true; invalidated by any reposition.
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status status() const = 0;
};

/// Comparator interface over slices (three-way).
class Comparator {
 public:
  virtual ~Comparator() = default;
  virtual int Compare(const Slice& a, const Slice& b) const = 0;
};

/// Byte-wise comparator singleton.
const Comparator* BytewiseComparator();

/// Merges n sorted inputs into one sorted stream (ties broken by input
/// order: earlier children win and duplicates from later children are still
/// emitted — the consumer deduplicates by user key, as compaction does).
std::unique_ptr<Iterator> NewMergingIterator(
    const Comparator* comparator, std::vector<std::unique_ptr<Iterator>> children);

/// An empty iterator carrying `status` (OK by default).
std::unique_ptr<Iterator> NewErrorIterator(const Status& status);

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_ITERATOR_H_
