#include "lsm/iterator.h"

namespace directload::lsm {

namespace {

class BytewiseComparatorImpl final : public Comparator {
 public:
  int Compare(const Slice& a, const Slice& b) const override {
    return a.compare(b);
  }
};

class EmptyIterator final : public Iterator {
 public:
  explicit EmptyIterator(Status status) : status_(std::move(status)) {}
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

class MergingIterator final : public Iterator {
 public:
  MergingIterator(const Comparator* comparator,
                  std::vector<std::unique_ptr<Iterator>> children)
      : comparator_(comparator), children_(std::move(children)) {}

  bool Valid() const override { return current_ >= 0; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    children_[current_]->Next();
    FindSmallest();
  }

  Slice key() const override { return children_[current_]->key(); }
  Slice value() const override { return children_[current_]->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    current_ = -1;
    for (size_t i = 0; i < children_.size(); ++i) {
      if (!children_[i]->Valid()) continue;
      if (current_ < 0 ||
          comparator_->Compare(children_[i]->key(),
                               children_[current_]->key()) < 0) {
        current_ = static_cast<int>(i);
      }
    }
  }

  const Comparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  int current_ = -1;
};

}  // namespace

const Comparator* BytewiseComparator() {
  static const BytewiseComparatorImpl* comparator =
      new BytewiseComparatorImpl();
  return comparator;
}

std::unique_ptr<Iterator> NewMergingIterator(
    const Comparator* comparator,
    std::vector<std::unique_ptr<Iterator>> children) {
  if (children.empty()) return NewErrorIterator(Status::OK());
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<MergingIterator>(comparator, std::move(children));
}

std::unique_ptr<Iterator> NewErrorIterator(const Status& status) {
  return std::make_unique<EmptyIterator>(status);
}

}  // namespace directload::lsm
