#include "lsm/wal.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace directload::lsm {

namespace {
constexpr uint8_t kFull = 1, kFirst = 2, kMiddle = 3, kLast = 4;
}  // namespace

LogWriter::LogWriter(ssd::WritableFile* file) : file_(file) {}

Status LogWriter::AddRecord(const Slice& record) {
  const char* ptr = record.data();
  size_t left = record.size();
  bool begin = true;
  do {
    const uint32_t leftover = kBlockSize - block_offset_;
    if (leftover < kHeaderSize) {
      // Fill the block trailer with zeros and start a new block.
      if (leftover > 0) {
        Status s = file_->Append(Slice("\0\0\0\0\0\0", leftover));
        if (!s.ok()) return s;
      }
      block_offset_ = 0;
    }
    const uint32_t avail = kBlockSize - block_offset_ - kHeaderSize;
    const size_t fragment = left < avail ? left : avail;
    const bool end = fragment == left;
    uint8_t type;
    if (begin && end) {
      type = kFull;
    } else if (begin) {
      type = kFirst;
    } else if (end) {
      type = kLast;
    } else {
      type = kMiddle;
    }

    char header[kHeaderSize];
    const uint32_t crc = crc32c::Mask(
        crc32c::Extend(crc32c::Value(reinterpret_cast<char*>(&type), 1), ptr,
                       fragment));
    EncodeFixed32(header, crc);
    header[4] = static_cast<char>(fragment & 0xff);
    header[5] = static_cast<char>((fragment >> 8) & 0xff);
    header[6] = static_cast<char>(type);
    Status s = file_->Append(Slice(header, kHeaderSize));
    if (!s.ok()) return s;
    s = file_->Append(Slice(ptr, fragment));
    if (!s.ok()) return s;
    block_offset_ += kHeaderSize + static_cast<uint32_t>(fragment);
    ptr += fragment;
    left -= fragment;
    begin = false;
  } while (left > 0);
  return Status::OK();
}

LogReader::LogReader(ssd::RandomAccessFile* file) : file_(file) {}

uint8_t LogReader::ReadPhysicalRecord(std::string* payload) {
  while (true) {
    if (buffer_.size() - buffer_pos_ < LogWriter::kHeaderSize) {
      if (eof_) return kZeroType;
      // Load the next block.
      buffer_start_ = offset_;
      Status s = file_->Read(offset_, LogWriter::kBlockSize, &buffer_);
      if (!s.ok()) {
        status_ = s;
        return kZeroType;
      }
      buffer_pos_ = 0;
      offset_ += buffer_.size();
      if (buffer_.size() < LogWriter::kBlockSize) eof_ = true;
      if (buffer_.size() < LogWriter::kHeaderSize) return kZeroType;
    }
    const char* header = buffer_.data() + buffer_pos_;
    const uint32_t length = static_cast<uint32_t>(
        static_cast<unsigned char>(header[4]) |
        (static_cast<unsigned char>(header[5]) << 8));
    const uint8_t type = static_cast<uint8_t>(header[6]);
    if (type == kZeroType && length == 0) {
      // Block trailer padding; skip to the next block.
      buffer_pos_ = buffer_.size();
      continue;
    }
    if (buffer_pos_ + LogWriter::kHeaderSize + length > buffer_.size()) {
      // Torn write at the tail: treat as clean EOF.
      buffer_pos_ = buffer_.size();
      eof_ = true;
      return kZeroType;
    }
    const char* data = header + LogWriter::kHeaderSize;
    const uint32_t expected = crc32c::Unmask(DecodeFixed32(header));
    char type_byte = static_cast<char>(type);
    const uint32_t actual =
        crc32c::Extend(crc32c::Value(&type_byte, 1), data, length);
    buffer_pos_ += LogWriter::kHeaderSize + length;
    if (expected != actual) {
      // Corrupt fragment: stop (a torn tail mid-block looks like this too).
      eof_ = true;
      return kZeroType;
    }
    payload->assign(data, length);
    return type;
  }
}

bool LogReader::ReadRecord(std::string* record) {
  record->clear();
  std::string fragment;
  bool in_record = false;
  while (true) {
    const uint8_t type = ReadPhysicalRecord(&fragment);
    switch (type) {
      case kFull:
        *record = fragment;
        return true;
      case kFirst:
        *record = fragment;
        in_record = true;
        break;
      case kMiddle:
        if (!in_record) {
          status_ = Status::Corruption("orphan MIDDLE fragment");
          return false;
        }
        record->append(fragment);
        break;
      case kLast:
        if (!in_record) {
          status_ = Status::Corruption("orphan LAST fragment");
          return false;
        }
        record->append(fragment);
        return true;
      default:  // kZeroType: EOF (possibly mid-record: discard the prefix).
        return false;
    }
  }
}

}  // namespace directload::lsm
