#ifndef DIRECTLOAD_LSM_FORMAT_H_
#define DIRECTLOAD_LSM_FORMAT_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "lsm/iterator.h"

namespace directload::lsm {

/// Sequence numbers order all writes; the high byte of the packed trailer
/// carries the value type (LevelDB's layout).
using SequenceNumber = uint64_t;
constexpr SequenceNumber kMaxSequenceNumber = (1ull << 56) - 1;

enum ValueType : uint8_t {
  kTypeDeletion = 0,
  kTypeValue = 1,
};

/// An internal key is user_key + fixed64(sequence << 8 | type). Internal
/// ordering: user key ascending, then sequence descending (newest first),
/// then type descending — so the newest entry for a user key is met first.
inline void AppendInternalKey(std::string* dst, const Slice& user_key,
                              SequenceNumber seq, ValueType type) {
  dst->append(user_key.data(), user_key.size());
  PutFixed64(dst, (seq << 8) | type);
}

inline std::string MakeInternalKey(const Slice& user_key, SequenceNumber seq,
                                   ValueType type) {
  std::string out;
  AppendInternalKey(&out, user_key, seq, type);
  return out;
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline uint64_t ExtractPackedTrailer(const Slice& internal_key) {
  return DecodeFixed64(internal_key.data() + internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  return ExtractPackedTrailer(internal_key) >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  return static_cast<ValueType>(ExtractPackedTrailer(internal_key) & 0xff);
}

/// Comparator over internal keys (see ordering above).
class InternalKeyComparator final : public Comparator {
 public:
  int Compare(const Slice& a, const Slice& b) const override {
    const int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r != 0) return r;
    const uint64_t at = ExtractPackedTrailer(a);
    const uint64_t bt = ExtractPackedTrailer(b);
    if (at > bt) return -1;  // Higher sequence sorts first.
    if (at < bt) return 1;
    return 0;
  }
};

const InternalKeyComparator* GetInternalKeyComparator();

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_FORMAT_H_
