#ifndef DIRECTLOAD_LSM_BLOOM_H_
#define DIRECTLOAD_LSM_BLOOM_H_

#include <string>
#include <vector>

#include "common/slice.h"

namespace directload::lsm {

/// Bloom filter over a set of keys (LevelDB's double-hashing scheme). One
/// filter per SSTable, built over user keys, so negative lookups skip the
/// table's data blocks entirely.
class BloomFilterBuilder {
 public:
  explicit BloomFilterBuilder(int bits_per_key);

  void AddKey(const Slice& key);

  /// Serializes the filter (bit array + probe count byte) and resets.
  std::string Finish();

 private:
  int bits_per_key_;
  int num_probes_;
  std::vector<uint32_t> key_hashes_;
};

/// Returns true if `key` may be in the set encoded by `filter`; false means
/// definitely absent. An empty/corrupt filter conservatively returns true.
bool BloomFilterMayMatch(const Slice& filter, const Slice& key);

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_BLOOM_H_
