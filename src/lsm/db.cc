#include "lsm/db.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/coding.h"
#include "common/logging.h"

namespace directload::lsm {

namespace {
constexpr char kWalPrefix[] = "wal_";
constexpr int kMaxCompactionsPerWrite = 64;  // Runaway guard.
}  // namespace

LsmDb::LsmDb(ssd::SsdEnv* env, const LsmOptions& options)
    : env_(env),
      options_(options),
      block_cache_(std::make_unique<BlockCache>(options.block_cache_bytes)),
      table_cache_(
          std::make_unique<TableCache>(env, options, block_cache_.get())),
      versions_(std::make_unique<VersionSet>(env, options)),
      mem_(std::make_unique<LsmMemTable>()) {}

LsmDb::~LsmDb() {
  if (wal_file_ != nullptr) {
    DL_LOG_IF_ERROR("lsm wal close on shutdown", wal_file_->Close());
  }
}

std::string LsmDb::WalFileName(uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu.log", kWalPrefix,
                static_cast<unsigned long long>(number));
  return buf;
}

Result<std::unique_ptr<LsmDb>> LsmDb::Open(ssd::SsdEnv* env,
                                           const LsmOptions& options) {
  std::unique_ptr<LsmDb> db(new LsmDb(env, options));
  Status s = db->Recover();
  if (!s.ok()) return s;
  return db;
}

Status LsmDb::Recover() {
  Status s = versions_->Recover();
  if (!s.ok()) return s;

  // Replay WALs at or above the manifest's log number, oldest first.
  std::vector<std::pair<uint64_t, std::string>> wals;
  for (const std::string& name : env_->ListFiles()) {
    if (name.rfind(kWalPrefix, 0) != 0) continue;
    const uint64_t number =
        std::strtoull(name.c_str() + sizeof(kWalPrefix) - 1, nullptr, 10);
    wals.emplace_back(number, name);
  }
  std::sort(wals.begin(), wals.end());
  for (const auto& [number, name] : wals) {
    if (number < versions_->log_number()) continue;
    s = ReplayWal(name);
    if (!s.ok()) return s;
  }

  if (!mem_->empty()) {
    // Persist the recovered memtable as an L0 table (rolls a fresh WAL).
    s = FlushMemTable();
    if (!s.ok()) return s;
  } else {
    s = NewWal();
    if (!s.ok()) return s;
    VersionEdit edit;
    edit.has_log_number = true;
    edit.log_number = wal_number_;
    s = versions_->LogAndApply(&edit);
    if (!s.ok()) return s;
  }

  // Obsolete WALs (below the new log number) can go.
  for (const auto& [number, name] : wals) {
    if (number < wal_number_ && env_->FileExists(name)) {
      s = env_->DeleteFile(name);
      if (!s.ok()) return s;
    }
  }
  return MaybeScheduleCompaction();
}

Status LsmDb::ReplayWal(const std::string& name) {
  Result<std::unique_ptr<ssd::RandomAccessFile>> file =
      env_->NewRandomAccessFile(name);
  if (!file.ok()) return file.status();
  LogReader reader(file->get());
  std::string record;
  SequenceNumber max_seq = versions_->last_sequence();
  while (reader.ReadRecord(&record)) {
    Slice in(record);
    if (in.size() < 9) return Status::Corruption("short WAL record");
    const SequenceNumber seq = DecodeFixed64(in.data());
    in.remove_prefix(8);
    const auto type = static_cast<ValueType>(in[0]);
    in.remove_prefix(1);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&in, &key) ||
        !GetLengthPrefixedSlice(&in, &value)) {
      return Status::Corruption("bad WAL record");
    }
    mem_->Add(seq, type, key, value);
    max_seq = std::max(max_seq, seq);
  }
  if (!reader.status().ok()) return reader.status();
  versions_->SetLastSequence(max_seq);
  return Status::OK();
}

Status LsmDb::NewWal() {
  wal_number_ = versions_->NewFileNumber();
  Result<std::unique_ptr<ssd::WritableFile>> file =
      env_->NewWritableFile(WalFileName(wal_number_));
  if (!file.ok()) return file.status();
  wal_file_ = std::move(file).value();
  wal_ = std::make_unique<LogWriter>(wal_file_.get());
  return Status::OK();
}

Status LsmDb::Put(const Slice& key, const Slice& value) {
  ++stats_.puts;
  stats_.user_bytes_ingested += key.size() + value.size();
  return WriteInternal(key, value, kTypeValue);
}

Status LsmDb::Delete(const Slice& key) {
  ++stats_.dels;
  return WriteInternal(key, Slice(), kTypeDeletion);
}

Status LsmDb::WriteInternal(const Slice& key, const Slice& value,
                            ValueType type) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  // Stall accounting: L0 backlog forces the write to wait on compaction.
  if (versions_->NumLevelFiles(0) >= options_.l0_stall_trigger) {
    ++stats_.write_stall_events;
    Status s = MaybeScheduleCompaction();
    if (!s.ok()) return s;
  }

  const SequenceNumber seq = versions_->last_sequence() + 1;
  std::string record;
  PutFixed64(&record, seq);
  record.push_back(static_cast<char>(type));
  PutLengthPrefixedSlice(&record, key);
  PutLengthPrefixedSlice(&record, value);
  Status s = wal_->AddRecord(record);
  if (!s.ok()) return s;
  if (options_.sync_writes) {
    s = wal_->Sync();
    if (!s.ok()) return s;
  }
  mem_->Add(seq, type, key, value);
  versions_->SetLastSequence(seq);

  if (mem_->ApproximateMemoryUsage() >= options_.write_buffer_bytes) {
    s = FlushMemTable();
    if (!s.ok()) return s;
    s = MaybeScheduleCompaction();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status LsmDb::ForceFlush() {
  Status s = FlushMemTable();
  if (!s.ok()) return s;
  return MaybeScheduleCompaction();
}

Status LsmDb::FlushMemTable() {
  if (mem_->empty()) return Status::OK();

  // Roll the WAL: the new table will carry everything the old log held.
  std::unique_ptr<ssd::WritableFile> old_wal_file = std::move(wal_file_);
  const uint64_t old_wal_number = wal_number_;
  Status s = NewWal();
  if (!s.ok()) return s;

  const uint64_t file_number = versions_->NewFileNumber();
  const std::string name = TableCache::TableFileName(file_number);
  Result<std::unique_ptr<ssd::WritableFile>> file = env_->NewWritableFile(name);
  if (!file.ok()) return file.status();
  TableBuilder builder(options_, file->get());
  std::unique_ptr<Iterator> it = mem_->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    s = builder.Add(it->key(), it->value());
    if (!s.ok()) return s;
  }
  s = builder.Finish();
  if (!s.ok()) return s;
  s = (*file)->Close();
  if (!s.ok()) return s;

  FileMetaData meta;
  meta.number = file_number;
  meta.file_size = (*file)->Size();
  meta.smallest = builder.smallest_key();
  meta.largest = builder.largest_key();

  VersionEdit edit;
  edit.has_log_number = true;
  edit.log_number = wal_number_;
  edit.new_files.emplace_back(0, std::move(meta));
  s = versions_->LogAndApply(&edit);
  if (!s.ok()) return s;

  if (old_wal_file != nullptr) {
    s = old_wal_file->Close();
    if (!s.ok()) return s;
    s = env_->DeleteFile(WalFileName(old_wal_number));
    if (!s.ok()) return s;
  }
  mem_ = std::make_unique<LsmMemTable>();
  ++stats_.memtable_flushes;
  return Status::OK();
}

Status LsmDb::MaybeScheduleCompaction() {
  for (int i = 0; i < kMaxCompactionsPerWrite; ++i) {
    const int level = versions_->PickCompactionLevel();
    if (level < 0) return Status::OK();
    Status s = DoCompaction(level);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status LsmDb::CompactUntilQuiescent() {
  while (true) {
    const int level = versions_->PickCompactionLevel();
    if (level < 0) return Status::OK();
    Status s = DoCompaction(level);
    if (!s.ok()) return s;
  }
}

Status LsmDb::DoCompaction(int level) {
  const int output_level = level + 1;

  // Select inputs at `level`.
  std::vector<FileMetaData> inputs0;
  if (level == 0) {
    inputs0 = versions_->files(0);
  } else {
    const auto& files = versions_->files(level);
    if (files.empty()) return Status::OK();
    const std::string pointer = versions_->compact_pointer(level);
    const FileMetaData* chosen = nullptr;
    for (const FileMetaData& f : files) {
      if (pointer.empty() || Slice(f.largest).compare(pointer) > 0) {
        chosen = &f;
        break;
      }
    }
    if (chosen == nullptr) chosen = &files[0];  // Wrap around.
    inputs0.push_back(*chosen);
  }
  if (inputs0.empty()) return Status::OK();

  // Key range of the inputs, then the overlapping files one level down.
  Slice smallest_user = ExtractUserKey(inputs0[0].smallest);
  Slice largest_user = ExtractUserKey(inputs0[0].largest);
  for (const FileMetaData& f : inputs0) {
    if (ExtractUserKey(f.smallest).compare(smallest_user) < 0) {
      smallest_user = ExtractUserKey(f.smallest);
    }
    if (ExtractUserKey(f.largest).compare(largest_user) > 0) {
      largest_user = ExtractUserKey(f.largest);
    }
  }
  std::vector<FileMetaData> inputs1 =
      versions_->GetOverlappingInputs(output_level, smallest_user,
                                      largest_user);

  // Trivial move: a single input with nothing to merge against slides down
  // a level without any I/O (LevelDB's IsTrivialMove). Keeping this matters
  // for a fair write-amplification baseline.
  if (inputs0.size() == 1 && inputs1.empty()) {
    VersionEdit move;
    move.has_log_number = true;
    move.log_number = wal_number_;
    move.deleted_files.emplace_back(level, inputs0[0].number);
    move.new_files.emplace_back(output_level, inputs0[0]);
    if (level > 0) {
      versions_->set_compact_pointer(level, inputs0[0].largest);
    }
    return versions_->LogAndApply(&move);
  }

  // Merge all inputs, newest-first tie-breaking by the internal comparator.
  std::vector<std::unique_ptr<Iterator>> children;
  uint64_t bytes_read = 0;
  for (const std::vector<FileMetaData>* inputs : {&inputs0, &inputs1}) {
    for (const FileMetaData& f : *inputs) {
      Result<std::shared_ptr<TableReader>> table =
          table_cache_->GetTable(f.number, f.file_size);
      if (!table.ok()) return table.status();
      children.push_back((*table)->NewIterator());
      bytes_read += f.file_size;
    }
  }
  std::unique_ptr<Iterator> merged =
      NewMergingIterator(GetInternalKeyComparator(), std::move(children));

  VersionEdit edit;
  edit.has_log_number = true;
  edit.log_number = wal_number_;
  for (const FileMetaData& f : inputs0) {
    edit.deleted_files.emplace_back(level, f.number);
  }
  for (const FileMetaData& f : inputs1) {
    edit.deleted_files.emplace_back(output_level, f.number);
  }

  // Emit the newest entry per user key; drop shadowed duplicates, and drop
  // tombstones once no deeper level can hold the key.
  std::unique_ptr<ssd::WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  uint64_t out_number = 0;
  uint64_t bytes_written = 0;
  std::string last_user_key;
  bool has_last = false;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status s = builder->Finish();
    if (!s.ok()) return s;
    s = out_file->Close();
    if (!s.ok()) return s;
    FileMetaData meta;
    meta.number = out_number;
    meta.file_size = out_file->Size();
    meta.smallest = builder->smallest_key();
    meta.largest = builder->largest_key();
    bytes_written += meta.file_size;
    edit.new_files.emplace_back(output_level, std::move(meta));
    builder.reset();
    out_file.reset();
    return Status::OK();
  };

  Status s;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    const Slice internal_key = merged->key();
    const Slice user_key = ExtractUserKey(internal_key);
    if (has_last && user_key == Slice(last_user_key)) {
      continue;  // Shadowed by a newer entry already emitted/considered.
    }
    last_user_key.assign(user_key.data(), user_key.size());
    has_last = true;
    if (ExtractValueType(internal_key) == kTypeDeletion &&
        versions_->IsBaseLevelForKey(output_level, user_key)) {
      continue;  // The tombstone has nothing left to shadow.
    }
    if (builder == nullptr) {
      out_number = versions_->NewFileNumber();
      Result<std::unique_ptr<ssd::WritableFile>> file =
          env_->NewWritableFile(TableCache::TableFileName(out_number));
      if (!file.ok()) return file.status();
      out_file = std::move(file).value();
      builder = std::make_unique<TableBuilder>(options_, out_file.get());
    }
    s = builder->Add(internal_key, merged->value());
    if (!s.ok()) return s;
    if (builder->FileSize() >= options_.target_file_bytes) {
      s = finish_output();
      if (!s.ok()) return s;
    }
  }
  if (!merged->status().ok()) return merged->status();
  s = finish_output();
  if (!s.ok()) return s;

  // Advance the round-robin cursor for this level.
  if (level > 0) {
    versions_->set_compact_pointer(level, inputs0.back().largest);
  }

  s = versions_->LogAndApply(&edit);
  if (!s.ok()) return s;

  // Remove the input files from the device and the caches.
  for (const std::vector<FileMetaData>* inputs : {&inputs0, &inputs1}) {
    for (const FileMetaData& f : *inputs) {
      table_cache_->Evict(f.number);
      s = env_->DeleteFile(TableCache::TableFileName(f.number));
      if (!s.ok()) return s;
    }
  }
  ++stats_.compactions;
  stats_.compaction_bytes_read += bytes_read;
  stats_.compaction_bytes_written += bytes_written;
  return Status::OK();
}

Result<std::string> LsmDb::Get(const Slice& key) {
  ++stats_.gets;
  std::string value;
  Status s;
  if (mem_->Get(key, versions_->last_sequence(), &value, &s)) {
    if (!s.ok()) return s;  // Tombstone.
    return value;
  }
  bool found = false;
  s = SearchTables(key, &value, &found);
  if (!s.ok()) return s;
  if (!found) return Status::NotFound("no such key");
  return value;
}

Status LsmDb::SearchTables(const Slice& user_key, std::string* value,
                           bool* found) {
  *found = false;
  const std::string probe =
      MakeInternalKey(user_key, versions_->last_sequence(), kTypeValue);

  auto check_file = [&](const FileMetaData& f, bool* done) -> Status {
    Result<std::shared_ptr<TableReader>> table =
        table_cache_->GetTable(f.number, f.file_size);
    if (!table.ok()) return table.status();
    bool table_found = false, is_deletion = false, filter_skipped = false;
    Status s = (*table)->InternalGet(probe, value, &table_found, &is_deletion,
                                     &filter_skipped);
    if (!s.ok()) return s;
    if (filter_skipped) {
      ++stats_.bloom_useful;
    } else {
      ++stats_.seeks;
    }
    if (table_found) {
      *done = true;
      if (is_deletion) return Status::NotFound("tombstone");
      *found = true;
    }
    return Status::OK();
  };

  // L0: overlapping files, newest first.
  for (const FileMetaData& f : versions_->Level0FilesNewestFirst()) {
    if (user_key.compare(ExtractUserKey(f.smallest)) < 0 ||
        user_key.compare(ExtractUserKey(f.largest)) > 0) {
      continue;
    }
    bool done = false;
    Status s = check_file(f, &done);
    if (!s.ok()) return s.IsNotFound() ? Status::OK() : s;
    if (done) return Status::OK();
  }
  // Deeper levels: at most one candidate per level.
  for (int level = 1; level < versions_->num_levels(); ++level) {
    const FileMetaData* f = versions_->FindFileInLevel(level, user_key);
    if (f == nullptr) continue;
    bool done = false;
    Status s = check_file(*f, &done);
    if (!s.ok()) return s.IsNotFound() ? Status::OK() : s;
    if (done) return Status::OK();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Whole-DB iterator over live user keys
// ---------------------------------------------------------------------------

class LsmDb::DbIterator final : public Iterator {
 public:
  explicit DbIterator(std::unique_ptr<Iterator> internal)
      : internal_(std::move(internal)) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    internal_->SeekToFirst();
    FindNextLiveEntry();
  }

  void Seek(const Slice& user_target) override {
    internal_->Seek(MakeInternalKey(user_target, kMaxSequenceNumber,
                                    kTypeValue));
    FindNextLiveEntry();
  }

  void Next() override {
    SkipCurrentUserKey();
    FindNextLiveEntry();
  }

  Slice key() const override { return Slice(user_key_); }
  Slice value() const override { return Slice(value_); }
  Status status() const override { return internal_->status(); }

 private:
  /// Positions on the newest live entry at or after the cursor; skips
  /// tombstoned keys entirely.
  void FindNextLiveEntry() {
    valid_ = false;
    while (internal_->Valid()) {
      const Slice internal_key = internal_->key();
      const Slice user_key = ExtractUserKey(internal_key);
      user_key_.assign(user_key.data(), user_key.size());
      if (ExtractValueType(internal_key) == kTypeDeletion) {
        SkipCurrentUserKey();
        continue;
      }
      value_.assign(internal_->value().data(), internal_->value().size());
      valid_ = true;
      return;
    }
  }

  void SkipCurrentUserKey() {
    while (internal_->Valid() &&
           ExtractUserKey(internal_->key()) == Slice(user_key_)) {
      internal_->Next();
    }
  }

  std::unique_ptr<Iterator> internal_;
  bool valid_ = false;
  std::string user_key_;
  std::string value_;
};

std::unique_ptr<Iterator> LsmDb::NewIterator() {
  std::vector<std::unique_ptr<Iterator>> children;
  children.push_back(mem_->NewIterator());
  for (int level = 0; level < versions_->num_levels(); ++level) {
    for (const FileMetaData& f : versions_->files(level)) {
      Result<std::shared_ptr<TableReader>> table =
          table_cache_->GetTable(f.number, f.file_size);
      if (!table.ok()) return NewErrorIterator(table.status());
      children.push_back((*table)->NewIterator());
    }
  }
  return std::make_unique<DbIterator>(
      NewMergingIterator(GetInternalKeyComparator(), std::move(children)));
}

}  // namespace directload::lsm
