#ifndef DIRECTLOAD_LSM_TABLE_CACHE_H_
#define DIRECTLOAD_LSM_TABLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "lsm/cache.h"
#include "lsm/options.h"
#include "lsm/sstable.h"
#include "ssd/env.h"

namespace directload::lsm {

/// LRU cache of open TableReaders, keyed by file number. Opening a table
/// costs device reads (footer, index, filter), so the cache bounds that cost
/// for hot tables — and its misses are part of the LSM read path the paper's
/// Figure 8 measures ("LevelDB has to open multiple files").
class TableCache {
 public:
  TableCache(ssd::SsdEnv* env, const LsmOptions& options,
             BlockCache* block_cache);

  Result<std::shared_ptr<TableReader>> GetTable(uint64_t file_number,
                                                uint64_t file_size);

  void Evict(uint64_t file_number);

  static std::string TableFileName(uint64_t number);

 private:
  ssd::SsdEnv* env_;
  LsmOptions options_;
  BlockCache* block_cache_;
  LruCache<TableReader> cache_;
};

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_TABLE_CACHE_H_
