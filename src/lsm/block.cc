#include "lsm/block.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace directload::lsm {

// ---------------------------------------------------------------------------
// BlockBuilder
// ---------------------------------------------------------------------------

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval) {
  restarts_.push_back(0);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.assign(1, 0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  assert(buffer_.empty() || Slice(last_key_).compare(key) < 0);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    // Prefix-compress against the previous key.
    const size_t min_len = std::min(last_key_.size(), key.size());
    while (shared < min_len && last_key_[shared] == key[shared]) ++shared;
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;
  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.assign(key.data(), key.size());
  ++counter_;
}

Slice BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) PutFixed32(&buffer_, restart);
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return buffer_;
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * 4 + 4;
}

// ---------------------------------------------------------------------------
// Block
// ---------------------------------------------------------------------------

Block::Block(std::string contents) : contents_(std::move(contents)) {
  if (contents_.size() < 4) {
    malformed_ = true;
    return;
  }
  num_restarts_ = DecodeFixed32(contents_.data() + contents_.size() - 4);
  const uint64_t restart_bytes = 4ull * num_restarts_ + 4;
  if (num_restarts_ == 0 || restart_bytes > contents_.size()) {
    malformed_ = true;
    return;
  }
  restart_offset_ = static_cast<uint32_t>(contents_.size() - restart_bytes);
}

class Block::Iter final : public Iterator {
 public:
  Iter(const Block* block, const Comparator* comparator)
      : block_(block), comparator_(comparator) {
    MarkInvalid();  // Unpositioned until a Seek*.
    next_offset_ = current_;
  }

  bool Valid() const override { return current_ < block_->restart_offset_; }

  void SeekToFirst() override {
    SeekToRestartPoint(0);
    ParseNextEntry();
  }

  void Seek(const Slice& target) override {
    // Binary search over restart points for the last restart whose key is
    // < target, then scan forward.
    uint32_t left = 0;
    uint32_t right = block_->num_restarts_ - 1;
    while (left < right) {
      const uint32_t mid = (left + right + 1) / 2;
      SeekToRestartPoint(mid);
      if (!ParseNextEntry()) {
        MarkInvalid();
        return;
      }
      if (comparator_->Compare(key_, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestartPoint(left);
    while (ParseNextEntry()) {
      if (comparator_->Compare(key_, target) >= 0) return;
    }
  }

  void Next() override {
    assert(Valid());
    ParseNextEntry();
  }

  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    next_offset_ = DecodeFixed32(block_->contents_.data() +
                                 block_->restart_offset_ + index * 4);
    current_ = next_offset_;
  }

  void MarkInvalid() { current_ = block_->restart_offset_; }

  /// Parses the entry at next_offset_; returns false at block end or on
  /// corruption (status_ set).
  bool ParseNextEntry() {
    current_ = next_offset_;
    if (current_ >= block_->restart_offset_) {
      MarkInvalid();
      return false;
    }
    Slice in(block_->contents_.data() + current_,
             block_->restart_offset_ - current_);
    uint32_t shared = 0, non_shared = 0, value_len = 0;
    if (!GetVarint32(&in, &shared) || !GetVarint32(&in, &non_shared) ||
        !GetVarint32(&in, &value_len) || in.size() < non_shared + value_len ||
        shared > key_.size()) {
      status_ = Status::Corruption("malformed block entry");
      MarkInvalid();
      return false;
    }
    key_.resize(shared);
    key_.append(in.data(), non_shared);
    value_ = Slice(in.data() + non_shared, value_len);
    next_offset_ = static_cast<uint32_t>(
        (in.data() + non_shared + value_len) - block_->contents_.data());
    return true;
  }

  const Block* block_;
  const Comparator* comparator_;
  uint32_t current_ = 0;      // Offset of the current entry.
  uint32_t next_offset_ = 0;  // Offset just past the current entry.
  std::string key_;
  Slice value_;
  Status status_;
};

std::unique_ptr<Iterator> Block::NewIterator(
    const Comparator* comparator) const {
  if (malformed_) {
    return NewErrorIterator(Status::Corruption("malformed block"));
  }
  auto it = std::make_unique<Iter>(this, comparator);
  // Start unpositioned (callers Seek/SeekToFirst), but mark invalid.
  return it;
}

}  // namespace directload::lsm
