#ifndef DIRECTLOAD_LSM_WAL_H_
#define DIRECTLOAD_LSM_WAL_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "ssd/env.h"

namespace directload::lsm {

/// Write-ahead log in the LevelDB format: the file is a sequence of 32 KB
/// blocks; each physical record is crc(4) + length(2) + type(1) + payload,
/// with logical records fragmented across blocks as FULL / FIRST / MIDDLE /
/// LAST. The same format backs the MANIFEST.
class LogWriter {
 public:
  explicit LogWriter(ssd::WritableFile* file);

  /// Appends one logical record.
  Status AddRecord(const Slice& record);

  Status Sync() { return file_->Sync(); }

  static constexpr uint32_t kBlockSize = 32768;
  static constexpr uint32_t kHeaderSize = 7;

 private:
  ssd::WritableFile* file_;
  uint32_t block_offset_ = 0;
};

/// Reads logical records back, verifying checksums. A torn tail (partial
/// record at the end of the last block) terminates iteration cleanly, which
/// is how crash recovery discards the unsynced suffix.
class LogReader {
 public:
  explicit LogReader(ssd::RandomAccessFile* file);

  /// Reads the next record into `record` (backed by `scratch`). Returns
  /// false at end of log.
  bool ReadRecord(std::string* record);

  /// Non-OK when the log ended due to corruption rather than clean EOF.
  Status status() const { return status_; }

 private:
  enum RecordType : uint8_t {
    kZeroType = 0,  // Preallocated/trailer filler.
    kFullType = 1,
    kFirstType = 2,
    kMiddleType = 3,
    kLastType = 4,
  };

  /// Reads the next physical record; returns its type or kZeroType at EOF.
  uint8_t ReadPhysicalRecord(std::string* payload);

  ssd::RandomAccessFile* file_;
  uint64_t offset_ = 0;
  std::string buffer_;       // Current 32 KB block.
  uint64_t buffer_start_ = 0;
  size_t buffer_pos_ = 0;
  bool eof_ = false;
  Status status_;
};

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_WAL_H_
