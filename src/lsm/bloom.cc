#include "lsm/bloom.h"

#include <algorithm>

#include "common/hash.h"

namespace directload::lsm {

namespace {
uint32_t BloomHash(const Slice& key) { return Hash32(key, 0xbc9f1d34u); }
}  // namespace

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // k = ln(2) * bits/key rounded, clamped to [1, 30].
  num_probes_ = static_cast<int>(bits_per_key * 0.69);
  num_probes_ = std::max(1, std::min(30, num_probes_));
}

void BloomFilterBuilder::AddKey(const Slice& key) {
  key_hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() {
  size_t bits = key_hashes_.size() * static_cast<size_t>(bits_per_key_);
  bits = std::max<size_t>(bits, 64);
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  for (uint32_t h : key_hashes_) {
    uint32_t delta = (h >> 17) | (h << 15);  // Double hashing.
    for (int j = 0; j < num_probes_; ++j) {
      const auto bit = static_cast<uint32_t>(h % bits);
      filter[bit / 8] =
          static_cast<char>(filter[bit / 8] | (1 << (bit % 8)));
      h += delta;
    }
  }
  filter.push_back(static_cast<char>(num_probes_));
  key_hashes_.clear();
  return filter;
}

bool BloomFilterMayMatch(const Slice& filter, const Slice& key) {
  if (filter.size() < 2) return true;
  const size_t bits = (filter.size() - 1) * 8;
  const int num_probes = filter[filter.size() - 1];
  if (num_probes <= 0 || num_probes > 30) return true;

  uint32_t h = BloomHash(key);
  uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < num_probes; ++j) {
    const auto bit = static_cast<uint32_t>(h % bits);
    if ((filter[bit / 8] & (1 << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace directload::lsm
