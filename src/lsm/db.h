#ifndef DIRECTLOAD_LSM_DB_H_
#define DIRECTLOAD_LSM_DB_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/format.h"
#include "lsm/iterator.h"
#include "lsm/lsm_memtable.h"
#include "lsm/options.h"
#include "lsm/table_cache.h"
#include "lsm/version.h"
#include "ssd/env.h"

namespace directload::lsm {

/// The paper's baseline: a LevelDB-style LSM storage engine — WAL, skip-list
/// memtable, bloom-filtered SSTables, and leveled compaction with a 10x
/// level fan-out — running on the same simulated SSD as QinDB so the two
/// engines' device-level write amplification is directly comparable.
///
/// Compactions run inline at write boundaries (cooperative scheduling): a
/// write that pushes a level over budget performs the compaction before
/// returning, which is also how the compaction-induced throughput stalls of
/// the paper's Figure 6 materialize in the simulation.
class LsmDb {
 public:
  static Result<std::unique_ptr<LsmDb>> Open(ssd::SsdEnv* env,
                                             const LsmOptions& options);

  ~LsmDb();

  LsmDb(const LsmDb&) = delete;
  LsmDb& operator=(const LsmDb&) = delete;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Result<std::string> Get(const Slice& key);

  /// Iterator over live user keys (tombstones and shadowed versions
  /// resolved), in key order.
  std::unique_ptr<Iterator> NewIterator();

  /// Flushes the memtable to an L0 table regardless of its size.
  Status ForceFlush();

  /// Runs compactions until every level is within budget.
  Status CompactUntilQuiescent();

  const LsmStats& stats() const { return stats_; }
  const VersionSet& versions() const { return *versions_; }
  ssd::SsdEnv* env() { return env_; }

  /// On-device footprint: tables + WAL + manifest (Figure 7).
  uint64_t DiskBytes() const { return env_->TotalFileBytes(); }

 private:
  LsmDb(ssd::SsdEnv* env, const LsmOptions& options);

  class DbIterator;

  Status Recover();
  Status ReplayWal(const std::string& name);
  Status NewWal();
  static std::string WalFileName(uint64_t number);

  Status WriteInternal(const Slice& key, const Slice& value, ValueType type);
  Status FlushMemTable();
  Status MaybeScheduleCompaction();
  Status DoCompaction(int level);
  Status SearchTables(const Slice& user_key, std::string* value, bool* found);

  ssd::SsdEnv* env_;
  LsmOptions options_;
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<LsmMemTable> mem_;
  std::unique_ptr<ssd::WritableFile> wal_file_;
  std::unique_ptr<LogWriter> wal_;
  uint64_t wal_number_ = 0;
  LsmStats stats_;
};

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_DB_H_
