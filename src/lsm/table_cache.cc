#include "lsm/table_cache.h"

#include <cstdio>

namespace directload::lsm {

TableCache::TableCache(ssd::SsdEnv* env, const LsmOptions& options,
                       BlockCache* block_cache)
    : env_(env),
      options_(options),
      block_cache_(block_cache),
      cache_(options.table_cache_entries) {}

std::string TableCache::TableFileName(uint64_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%08llu.sst",
                static_cast<unsigned long long>(number));
  return buf;
}

Result<std::shared_ptr<TableReader>> TableCache::GetTable(
    uint64_t file_number, uint64_t file_size) {
  const std::string key = TableFileName(file_number);
  std::shared_ptr<TableReader> table = cache_.Lookup(key);
  if (table != nullptr) return table;

  Result<std::unique_ptr<ssd::RandomAccessFile>> file =
      env_->NewRandomAccessFile(key);
  if (!file.ok()) return file.status();
  Result<std::unique_ptr<TableReader>> reader = TableReader::Open(
      options_, std::move(file).value(), file_size, file_number, block_cache_);
  if (!reader.ok()) return reader.status();
  std::shared_ptr<TableReader> shared = std::move(reader).value();
  cache_.Insert(key, shared, 1);
  return shared;
}

void TableCache::Evict(uint64_t file_number) {
  cache_.Erase(TableFileName(file_number));
}

}  // namespace directload::lsm
