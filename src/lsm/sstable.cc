#include "lsm/sstable.h"

#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"
#include "lsm/bloom.h"
#include "lsm/format.h"

namespace directload::lsm {

namespace {

constexpr uint64_t kTableMagic = 0x6469726c73737462ull;  // "dirlsstb"
constexpr size_t kFooterSize = 48;  // 2 handles (<=40) padded + magic.

std::string BlockCacheKey(uint64_t file_number, uint64_t offset) {
  std::string key;
  PutFixed64(&key, file_number);
  PutFixed64(&key, offset);
  return key;
}

}  // namespace

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

bool BlockHandle::DecodeFrom(Slice* input, BlockHandle* out) {
  return GetVarint64(input, &out->offset) && GetVarint64(input, &out->size);
}

// ---------------------------------------------------------------------------
// TableBuilder
// ---------------------------------------------------------------------------

TableBuilder::TableBuilder(const LsmOptions& options, ssd::WritableFile* file)
    : options_(options),
      file_(file),
      data_block_(options.block_restart_interval),
      index_block_(1),
      filter_(options.bloom_bits_per_key) {}

Status TableBuilder::Add(const Slice& internal_key, const Slice& value) {
  if (pending_index_entry_) {
    // Emit the deferred index entry now that we know the separating key.
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(pending_index_key_, handle_encoding);
    pending_index_entry_ = false;
  }
  if (smallest_key_.empty()) {
    smallest_key_.assign(internal_key.data(), internal_key.size());
  }
  largest_key_.assign(internal_key.data(), internal_key.size());
  filter_.AddKey(ExtractUserKey(internal_key));
  data_block_.Add(internal_key, value);
  ++num_entries_;
  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    return FlushDataBlock();
  }
  return Status::OK();
}

Status TableBuilder::FlushDataBlock() {
  if (data_block_.empty()) return Status::OK();
  pending_index_key_ = data_block_.last_key();
  Status s = WriteBlock(data_block_.Finish(), &pending_handle_);
  if (!s.ok()) return s;
  data_block_.Reset();
  pending_index_entry_ = true;
  return Status::OK();
}

Status TableBuilder::WriteBlock(const Slice& contents, BlockHandle* handle) {
  handle->offset = offset_;
  handle->size = contents.size();
  Status s = file_->Append(contents);
  if (!s.ok()) return s;
  // Per-block checksum trailer.
  char trailer[4];
  EncodeFixed32(trailer,
                crc32c::Mask(crc32c::Value(contents.data(), contents.size())));
  s = file_->Append(Slice(trailer, 4));
  if (!s.ok()) return s;
  offset_ += contents.size() + 4;
  return Status::OK();
}

Status TableBuilder::Finish() {
  Status s = FlushDataBlock();
  if (!s.ok()) return s;

  // Filter block (raw bloom bytes).
  BlockHandle filter_handle;
  const std::string filter = filter_.Finish();
  s = WriteBlock(filter, &filter_handle);
  if (!s.ok()) return s;

  // Index block.
  if (pending_index_entry_) {
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(pending_index_key_, handle_encoding);
    pending_index_entry_ = false;
  }
  BlockHandle index_handle;
  s = WriteBlock(index_block_.Finish(), &index_handle);
  if (!s.ok()) return s;

  // Footer.
  std::string footer;
  filter_handle.EncodeTo(&footer);
  index_handle.EncodeTo(&footer);
  footer.resize(kFooterSize - 8);
  PutFixed64(&footer, kTableMagic);
  s = file_->Append(footer);
  if (!s.ok()) return s;
  offset_ += footer.size();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// TableReader
// ---------------------------------------------------------------------------

TableReader::TableReader(const LsmOptions& options,
                         std::unique_ptr<ssd::RandomAccessFile> file,
                         uint64_t file_number, BlockCache* block_cache)
    : options_(options),
      file_(std::move(file)),
      file_number_(file_number),
      block_cache_(block_cache) {}

Result<std::unique_ptr<TableReader>> TableReader::Open(
    const LsmOptions& options, std::unique_ptr<ssd::RandomAccessFile> file,
    uint64_t file_size, uint64_t file_number, BlockCache* block_cache) {
  if (file_size < kFooterSize) {
    return Status::Corruption("table too small for footer");
  }
  std::string footer;
  Status s = file->Read(file_size - kFooterSize, kFooterSize, &footer);
  if (!s.ok()) return s;
  if (DecodeFixed64(footer.data() + kFooterSize - 8) != kTableMagic) {
    return Status::Corruption("bad table magic");
  }
  Slice in(footer.data(), kFooterSize - 8);
  BlockHandle filter_handle, index_handle;
  if (!BlockHandle::DecodeFrom(&in, &filter_handle) ||
      !BlockHandle::DecodeFrom(&in, &index_handle)) {
    return Status::Corruption("bad footer handles");
  }

  std::unique_ptr<TableReader> reader(
      new TableReader(options, std::move(file), file_number, block_cache));
  s = reader->ReadRawBlock(filter_handle, &reader->filter_);
  if (!s.ok()) return s;
  std::string index_contents;
  s = reader->ReadRawBlock(index_handle, &index_contents);
  if (!s.ok()) return s;
  reader->index_block_ = std::make_unique<Block>(std::move(index_contents));
  return reader;
}

Status TableReader::ReadRawBlock(const BlockHandle& handle,
                                 std::string* contents) const {
  std::string raw;
  Status s = file_->Read(handle.offset, handle.size + 4, &raw);
  if (!s.ok()) return s;
  if (raw.size() != handle.size + 4) {
    return Status::Corruption("truncated block read");
  }
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(raw.data() + handle.size));
  if (crc32c::Value(raw.data(), handle.size) != expected) {
    return Status::Corruption("block checksum mismatch");
  }
  contents->assign(raw.data(), handle.size);
  return Status::OK();
}

Result<std::shared_ptr<Block>> TableReader::ReadDataBlock(
    const BlockHandle& handle) {
  const std::string cache_key = BlockCacheKey(file_number_, handle.offset);
  if (block_cache_ != nullptr) {
    std::shared_ptr<Block> cached = block_cache_->Lookup(cache_key);
    if (cached != nullptr) return cached;
  }
  std::string contents;
  Status s = ReadRawBlock(handle, &contents);
  if (!s.ok()) return s;
  auto block = std::make_shared<Block>(std::move(contents));
  if (block_cache_ != nullptr) {
    block_cache_->Insert(cache_key, block, block->size());
  }
  return block;
}

Status TableReader::InternalGet(const Slice& internal_probe,
                                std::string* value, bool* found,
                                bool* is_deletion, bool* filter_skipped) {
  *found = false;
  if (filter_skipped != nullptr) *filter_skipped = false;
  const Slice user_key = ExtractUserKey(internal_probe);
  if (!BloomFilterMayMatch(filter_, user_key)) {
    if (filter_skipped != nullptr) *filter_skipped = true;
    return Status::OK();
  }
  std::unique_ptr<Iterator> index_it =
      index_block_->NewIterator(GetInternalKeyComparator());
  index_it->Seek(internal_probe);
  if (!index_it->Valid()) return index_it->status();

  Slice handle_value = index_it->value();
  BlockHandle handle;
  if (!BlockHandle::DecodeFrom(&handle_value, &handle)) {
    return Status::Corruption("bad index entry");
  }
  Result<std::shared_ptr<Block>> block = ReadDataBlock(handle);
  if (!block.ok()) return block.status();
  std::unique_ptr<Iterator> data_it =
      (*block)->NewIterator(GetInternalKeyComparator());
  data_it->Seek(internal_probe);
  if (!data_it->Valid()) return data_it->status();
  if (ExtractUserKey(data_it->key()) != user_key) return Status::OK();
  *found = true;
  *is_deletion = ExtractValueType(data_it->key()) == kTypeDeletion;
  if (!*is_deletion) value->assign(data_it->value().data(),
                                   data_it->value().size());
  return Status::OK();
}

// Two-level iterator: walks the index block; materializes data blocks.
class TableReader::TwoLevelIterator final : public Iterator {
 public:
  explicit TwoLevelIterator(TableReader* table)
      : table_(table),
        index_it_(table->index_block_->NewIterator(GetInternalKeyComparator())) {}

  bool Valid() const override {
    return data_it_ != nullptr && data_it_->Valid();
  }

  void SeekToFirst() override {
    index_it_->SeekToFirst();
    InitDataBlock();
    if (data_it_ != nullptr) data_it_->SeekToFirst();
    SkipEmptyBlocksForward();
  }

  void Seek(const Slice& target) override {
    index_it_->Seek(target);
    InitDataBlock();
    if (data_it_ != nullptr) data_it_->Seek(target);
    SkipEmptyBlocksForward();
  }

  void Next() override {
    data_it_->Next();
    SkipEmptyBlocksForward();
  }

  Slice key() const override { return data_it_->key(); }
  Slice value() const override { return data_it_->value(); }
  Status status() const override {
    if (!status_.ok()) return status_;
    if (data_it_ != nullptr && !data_it_->status().ok()) {
      return data_it_->status();
    }
    return index_it_->status();
  }

 private:
  void InitDataBlock() {
    data_it_.reset();
    block_.reset();
    if (!index_it_->Valid()) return;
    Slice handle_value = index_it_->value();
    BlockHandle handle;
    if (!BlockHandle::DecodeFrom(&handle_value, &handle)) {
      status_ = Status::Corruption("bad index entry");
      return;
    }
    Result<std::shared_ptr<Block>> block = table_->ReadDataBlock(handle);
    if (!block.ok()) {
      status_ = block.status();
      return;
    }
    block_ = *block;
    data_it_ = block_->NewIterator(GetInternalKeyComparator());
  }

  void SkipEmptyBlocksForward() {
    while (data_it_ == nullptr || !data_it_->Valid()) {
      if (!index_it_->Valid()) {
        data_it_.reset();
        return;
      }
      index_it_->Next();
      InitDataBlock();
      if (data_it_ != nullptr) data_it_->SeekToFirst();
    }
  }

  TableReader* table_;
  std::unique_ptr<Iterator> index_it_;
  std::shared_ptr<Block> block_;  // Keeps the cached block alive.
  std::unique_ptr<Iterator> data_it_;
  Status status_;
};

std::unique_ptr<Iterator> TableReader::NewIterator() {
  return std::make_unique<TwoLevelIterator>(this);
}

const InternalKeyComparator* GetInternalKeyComparator() {
  static const InternalKeyComparator* comparator =
      new InternalKeyComparator();
  return comparator;
}

}  // namespace directload::lsm
