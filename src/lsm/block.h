#ifndef DIRECTLOAD_LSM_BLOCK_H_
#define DIRECTLOAD_LSM_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "lsm/iterator.h"

namespace directload::lsm {

/// Builds one SSTable data/index block: prefix-compressed entries with
/// restart points every `restart_interval` keys (the LevelDB block layout).
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval);

  /// Keys must be added in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  /// Appends the restart array and returns the finished block contents.
  Slice Finish();

  void Reset();

  /// Estimated size of the block being built.
  size_t CurrentSizeEstimate() const;
  bool empty() const { return counter_ == 0 && buffer_.empty(); }
  const std::string& last_key() const { return last_key_; }

 private:
  int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

/// An immutable, parsed data/index block; iterable and seekable. The block
/// contents are owned (copied from the file read / cache).
class Block {
 public:
  /// Takes ownership of `contents`. Malformed blocks yield iterators whose
  /// status() is Corruption.
  explicit Block(std::string contents);

  size_t size() const { return contents_.size(); }

  std::unique_ptr<Iterator> NewIterator(const Comparator* comparator) const;

 private:
  class Iter;

  std::string contents_;
  uint32_t restart_offset_ = 0;
  uint32_t num_restarts_ = 0;
  bool malformed_ = false;
};

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_BLOCK_H_
