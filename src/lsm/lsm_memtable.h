#ifndef DIRECTLOAD_LSM_LSM_MEMTABLE_H_
#define DIRECTLOAD_LSM_LSM_MEMTABLE_H_

#include <memory>
#include <string>

#include "common/arena.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/format.h"
#include "lsm/iterator.h"
#include "memtable/skiplist.h"

namespace directload::lsm {

/// The LSM baseline's write buffer: a skip list of length-prefixed
/// (internal key, value) entries, newest sequence first within a user key.
class LsmMemTable {
 public:
  LsmMemTable();

  LsmMemTable(const LsmMemTable&) = delete;
  LsmMemTable& operator=(const LsmMemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, const Slice& user_key,
           const Slice& value);

  /// Looks up `user_key` at sequence <= `seq`. Returns true with
  /// *status=OK and *value set for a live entry, true with
  /// *status=NotFound for a tombstone, false when the key is absent.
  bool Get(const Slice& user_key, SequenceNumber seq, std::string* value,
           Status* status) const;

  /// Iterator over internal keys in sorted order (for flushing).
  std::unique_ptr<Iterator> NewIterator() const;

  size_t ApproximateMemoryUsage() const { return arena_->MemoryUsage(); }
  size_t entry_count() const { return list_->size(); }
  bool empty() const { return list_->size() == 0; }

 private:
  struct KeyComparator {
    int operator()(const char* a, const char* b) const;
  };
  using Table = SkipList<const char*, KeyComparator>;

  class Iter;

  std::unique_ptr<Arena> arena_;
  std::unique_ptr<Table> list_;
};

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_LSM_MEMTABLE_H_
