#ifndef DIRECTLOAD_LSM_CACHE_H_
#define DIRECTLOAD_LSM_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

namespace directload::lsm {

/// A byte-capacity LRU cache mapping string keys to shared values. Backs
/// both the block cache (decoded data blocks) and the table cache (open
/// SSTable readers). Not internally synchronized: the LSM baseline confines
/// each database — caches included — to one thread, so unlike the QinDB
/// engine's annotated mutexes (common/thread_annotations.h) there is no
/// capability to hold here.
template <typename V>
class LruCache {
 public:
  explicit LruCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Inserts (replacing any existing entry) and returns the cached value.
  std::shared_ptr<V> Insert(const std::string& key, std::shared_ptr<V> value,
                            uint64_t charge) {
    Erase(key);
    order_.push_front(key);
    // The map keeps a copy rather than taking the move: the entry can be
    // evicted by EvictIfNeeded below (charge > capacity), and the caller
    // still gets the value back.
    map_[key] = Entry{value, charge, order_.begin()};
    usage_ += charge;
    EvictIfNeeded();
    return value;
  }

  /// Returns the cached value or nullptr, refreshing recency on hit.
  std::shared_ptr<V> Lookup(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.erase(it->second.lru_pos);
    order_.push_front(key);
    it->second.lru_pos = order_.begin();
    return it->second.value;
  }

  void Erase(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    usage_ -= it->second.charge;
    order_.erase(it->second.lru_pos);
    map_.erase(it);
  }

  void Clear() {
    map_.clear();
    order_.clear();
    usage_ = 0;
  }

  uint64_t usage() const { return usage_; }
  uint64_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::shared_ptr<V> value;
    uint64_t charge;
    typename std::list<std::string>::iterator lru_pos;
  };

  void EvictIfNeeded() {
    while (usage_ > capacity_ && !order_.empty()) {
      const std::string& victim = order_.back();
      auto it = map_.find(victim);
      usage_ -= it->second.charge;
      map_.erase(it);
      order_.pop_back();
    }
  }

  uint64_t capacity_;
  uint64_t usage_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<std::string> order_;
  std::unordered_map<std::string, Entry> map_;
};

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_CACHE_H_
