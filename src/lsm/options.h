#ifndef DIRECTLOAD_LSM_OPTIONS_H_
#define DIRECTLOAD_LSM_OPTIONS_H_

#include <cstdint>

namespace directload::lsm {

/// Tuning knobs of the LSM baseline, defaulted to LevelDB's stock
/// configuration (the paper runs "LevelDB 1.9.0 ... with the default
/// configurations").
struct LsmOptions {
  /// Memtable flushes to an L0 SSTable at this size.
  uint64_t write_buffer_bytes = 4ull << 20;

  /// Uncompressed data block target size.
  uint32_t block_size = 4096;

  /// Restart point interval inside a data block.
  int block_restart_interval = 16;

  int bloom_bits_per_key = 10;

  int num_levels = 7;

  /// L0 file count that triggers compaction, and the count at which writes
  /// stall until compaction catches up.
  int l0_compaction_trigger = 4;
  int l0_stall_trigger = 12;

  /// Max bytes for level 1; each deeper level is 10x larger.
  uint64_t max_bytes_for_level_base = 10ull << 20;
  double level_size_multiplier = 10.0;

  /// Target size of SSTables produced by compaction.
  uint64_t target_file_bytes = 2ull << 20;

  /// Block cache capacity (decoded data blocks).
  uint64_t block_cache_bytes = 8ull << 20;

  /// Open-table cache capacity (number of tables, charged 1 each).
  uint64_t table_cache_entries = 256;

  /// Sync the WAL after every write batch. Off matches LevelDB's default
  /// (sync=false), which the paper's baseline used.
  bool sync_writes = false;
};

struct LsmStats {
  uint64_t puts = 0;
  uint64_t dels = 0;
  uint64_t gets = 0;
  uint64_t user_bytes_ingested = 0;  // Keys + values of Put calls.
  uint64_t memtable_flushes = 0;
  uint64_t compactions = 0;
  uint64_t compaction_bytes_read = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t write_stall_events = 0;
  uint64_t bloom_useful = 0;  // Table probes skipped by the filter.
  uint64_t seeks = 0;         // Data-block loads during Gets.
};

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_OPTIONS_H_
