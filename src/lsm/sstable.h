#ifndef DIRECTLOAD_LSM_SSTABLE_H_
#define DIRECTLOAD_LSM_SSTABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/block.h"
#include "lsm/bloom.h"
#include "lsm/cache.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "ssd/env.h"

namespace directload::lsm {

/// Location of a block within an SSTable file.
struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, BlockHandle* out);
};

/// Builds one SSTable: prefix-compressed data blocks, a table-wide bloom
/// filter over user keys, an index block mapping each data block's last key
/// to its handle, and a fixed-size footer.
class TableBuilder {
 public:
  TableBuilder(const LsmOptions& options, ssd::WritableFile* file);

  /// Internal keys must arrive in strictly increasing internal order.
  Status Add(const Slice& internal_key, const Slice& value);

  /// Writes filter + index + footer. The file is not closed.
  Status Finish();

  uint64_t NumEntries() const { return num_entries_; }
  /// Bytes written so far (approximate until Finish).
  uint64_t FileSize() const { return offset_; }
  const std::string& smallest_key() const { return smallest_key_; }
  const std::string& largest_key() const { return largest_key_; }

 private:
  Status FlushDataBlock();
  Status WriteBlock(const Slice& contents, BlockHandle* handle);

  LsmOptions options_;
  ssd::WritableFile* file_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  BloomFilterBuilder filter_;
  std::string pending_index_key_;  // Last key of the block awaiting an index entry.
  BlockHandle pending_handle_;
  bool pending_index_entry_ = false;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  std::string smallest_key_;
  std::string largest_key_;
};

/// Shared cache of decoded data blocks, keyed by (file number, offset).
using BlockCache = LruCache<Block>;

/// Read-side handle on one SSTable. The index and filter blocks stay pinned
/// in the object (as LevelDB pins them per open table); data blocks go
/// through the shared block cache.
class TableReader {
 public:
  static Result<std::unique_ptr<TableReader>> Open(
      const LsmOptions& options, std::unique_ptr<ssd::RandomAccessFile> file,
      uint64_t file_size, uint64_t file_number, BlockCache* block_cache);

  /// Point lookup for the internal-key probe. Outcomes:
  ///   *found=false                      — user key not in this table;
  ///   *found=true,  *is_deletion=false — *value set;
  ///   *found=true,  *is_deletion=true  — tombstone.
  /// `filter_skipped` (optional) reports that the bloom filter short-
  /// circuited the lookup.
  Status InternalGet(const Slice& internal_probe, std::string* value,
                     bool* found, bool* is_deletion,
                     bool* filter_skipped = nullptr);

  /// Iterator over the whole table (internal keys).
  std::unique_ptr<Iterator> NewIterator();

 private:
  class TwoLevelIterator;

  TableReader(const LsmOptions& options,
              std::unique_ptr<ssd::RandomAccessFile> file,
              uint64_t file_number, BlockCache* block_cache);

  /// Loads (through the cache) the data block for `handle`.
  Result<std::shared_ptr<Block>> ReadDataBlock(const BlockHandle& handle);
  Status ReadRawBlock(const BlockHandle& handle, std::string* contents) const;

  LsmOptions options_;
  std::unique_ptr<ssd::RandomAccessFile> file_;
  uint64_t file_number_;
  BlockCache* block_cache_;
  std::unique_ptr<Block> index_block_;
  std::string filter_;
};

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_SSTABLE_H_
