#include "lsm/version.h"

#include <algorithm>
#include <cmath>

#include "common/coding.h"

namespace directload::lsm {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestTemp[] = "MANIFEST.tmp";

// VersionEdit field tags.
enum EditTag : uint32_t {
  kLogNumber = 1,
  kNextFileNumber = 2,
  kLastSequence = 3,
  kDeletedFile = 5,
  kNewFile = 6,
};

Slice UserKeyOfSmallest(const FileMetaData& f) {
  return ExtractUserKey(f.smallest);
}
Slice UserKeyOfLargest(const FileMetaData& f) {
  return ExtractUserKey(f.largest);
}

}  // namespace

// ---------------------------------------------------------------------------
// VersionEdit
// ---------------------------------------------------------------------------

void VersionEdit::EncodeTo(std::string* dst) const {
  if (has_log_number) {
    PutVarint32(dst, kLogNumber);
    PutVarint64(dst, log_number);
  }
  if (has_next_file_number) {
    PutVarint32(dst, kNextFileNumber);
    PutVarint64(dst, next_file_number);
  }
  if (has_last_sequence) {
    PutVarint32(dst, kLastSequence);
    PutVarint64(dst, last_sequence);
  }
  for (const auto& [level, number] : deleted_files) {
    PutVarint32(dst, kDeletedFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, number);
  }
  for (const auto& [level, meta] : new_files) {
    PutVarint32(dst, kNewFile);
    PutVarint32(dst, static_cast<uint32_t>(level));
    PutVarint64(dst, meta.number);
    PutVarint64(dst, meta.file_size);
    PutLengthPrefixedSlice(dst, meta.smallest);
    PutLengthPrefixedSlice(dst, meta.largest);
  }
}

Status VersionEdit::DecodeFrom(const Slice& src) {
  *this = VersionEdit();
  Slice in = src;
  while (!in.empty()) {
    uint32_t tag = 0;
    if (!GetVarint32(&in, &tag)) return Status::Corruption("edit tag");
    switch (tag) {
      case kLogNumber:
        if (!GetVarint64(&in, &log_number)) return Status::Corruption("log#");
        has_log_number = true;
        break;
      case kNextFileNumber:
        if (!GetVarint64(&in, &next_file_number)) {
          return Status::Corruption("next-file#");
        }
        has_next_file_number = true;
        break;
      case kLastSequence:
        if (!GetVarint64(&in, &last_sequence)) return Status::Corruption("seq");
        has_last_sequence = true;
        break;
      case kDeletedFile: {
        uint32_t level = 0;
        uint64_t number = 0;
        if (!GetVarint32(&in, &level) || !GetVarint64(&in, &number)) {
          return Status::Corruption("deleted file");
        }
        deleted_files.emplace_back(static_cast<int>(level), number);
        break;
      }
      case kNewFile: {
        uint32_t level = 0;
        FileMetaData meta;
        Slice smallest, largest;
        if (!GetVarint32(&in, &level) || !GetVarint64(&in, &meta.number) ||
            !GetVarint64(&in, &meta.file_size) ||
            !GetLengthPrefixedSlice(&in, &smallest) ||
            !GetLengthPrefixedSlice(&in, &largest)) {
          return Status::Corruption("new file");
        }
        meta.smallest = smallest.ToString();
        meta.largest = largest.ToString();
        new_files.emplace_back(static_cast<int>(level), std::move(meta));
        break;
      }
      default:
        return Status::Corruption("unknown edit tag");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// VersionSet
// ---------------------------------------------------------------------------

VersionSet::VersionSet(ssd::SsdEnv* env, const LsmOptions& options)
    : env_(env),
      options_(options),
      levels_(options.num_levels),
      compact_pointers_(options.num_levels) {}

void VersionSet::Apply(const VersionEdit& edit) {
  if (edit.has_log_number) log_number_ = edit.log_number;
  if (edit.has_next_file_number) next_file_number_ = edit.next_file_number;
  if (edit.has_last_sequence) last_sequence_ = edit.last_sequence;
  for (const auto& [level, number] : edit.deleted_files) {
    auto& files = levels_[level];
    files.erase(std::remove_if(files.begin(), files.end(),
                               [number = number](const FileMetaData& f) {
                                 return f.number == number;
                               }),
                files.end());
  }
  for (const auto& [level, meta] : edit.new_files) {
    levels_[level].push_back(meta);
  }
  // Keep deeper levels sorted by smallest key; keep L0 sorted by file
  // number (newest last) so Level0FilesNewestFirst can reverse it.
  std::sort(levels_[0].begin(), levels_[0].end(),
            [](const FileMetaData& a, const FileMetaData& b) {
              return a.number < b.number;
            });
  for (int level = 1; level < num_levels(); ++level) {
    std::sort(levels_[level].begin(), levels_[level].end(),
              [](const FileMetaData& a, const FileMetaData& b) {
                return Slice(a.smallest).compare(Slice(b.smallest)) < 0;
              });
  }
}

Status VersionSet::WriteSnapshot(LogWriter* writer) const {
  VersionEdit snapshot;
  snapshot.has_log_number = true;
  snapshot.log_number = log_number_;
  snapshot.has_next_file_number = true;
  snapshot.next_file_number = next_file_number_;
  snapshot.has_last_sequence = true;
  snapshot.last_sequence = last_sequence_;
  for (int level = 0; level < num_levels(); ++level) {
    for (const FileMetaData& meta : levels_[level]) {
      snapshot.new_files.emplace_back(level, meta);
    }
  }
  std::string record;
  snapshot.EncodeTo(&record);
  return writer->AddRecord(record);
}

Status VersionSet::Recover() {
  if (env_->FileExists(kManifestName)) {
    Result<std::unique_ptr<ssd::RandomAccessFile>> file =
        env_->NewRandomAccessFile(kManifestName);
    if (!file.ok()) return file.status();
    LogReader reader(file->get());
    std::string record;
    while (reader.ReadRecord(&record)) {
      VersionEdit edit;
      Status s = edit.DecodeFrom(record);
      if (!s.ok()) return s;
      Apply(edit);
    }
    if (!reader.status().ok()) return reader.status();
  }

  // Start a fresh MANIFEST holding a snapshot of the recovered state (a new
  // manifest per open, as LevelDB does).
  if (env_->FileExists(kManifestTemp)) {
    Status s = env_->DeleteFile(kManifestTemp);
    if (!s.ok()) return s;
  }
  Result<std::unique_ptr<ssd::WritableFile>> manifest =
      env_->NewWritableFile(kManifestTemp);
  if (!manifest.ok()) return manifest.status();
  manifest_file_ = std::move(manifest).value();
  manifest_log_ = std::make_unique<LogWriter>(manifest_file_.get());
  Status s = WriteSnapshot(manifest_log_.get());
  if (!s.ok()) return s;
  s = manifest_file_->Sync();
  if (!s.ok()) return s;
  // Renaming over the old manifest is the atomic install point. A writer
  // must not stay open across the rename, so the env requires closing
  // first; we keep appending to the same file object afterwards, which the
  // env supports because the meta handle survives the rename.
  return env_->RenameFile(kManifestTemp, kManifestName);
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  edit->has_next_file_number = true;
  edit->next_file_number = next_file_number_;
  edit->has_last_sequence = true;
  edit->last_sequence = last_sequence_;
  std::string record;
  edit->EncodeTo(&record);
  Status s = manifest_log_->AddRecord(record);
  if (!s.ok()) return s;
  s = manifest_file_->Sync();
  if (!s.ok()) return s;
  Apply(*edit);
  return Status::OK();
}

uint64_t VersionSet::NumLevelBytes(int level) const {
  uint64_t total = 0;
  for (const FileMetaData& f : levels_[level]) total += f.file_size;
  return total;
}

uint64_t VersionSet::TotalTableBytes() const {
  uint64_t total = 0;
  for (int level = 0; level < num_levels(); ++level) {
    total += NumLevelBytes(level);
  }
  return total;
}

std::vector<FileMetaData> VersionSet::GetOverlappingInputs(
    int level, const Slice& smallest_user, const Slice& largest_user) const {
  std::vector<FileMetaData> inputs;
  for (const FileMetaData& f : levels_[level]) {
    if (UserKeyOfLargest(f).compare(smallest_user) < 0) continue;
    if (UserKeyOfSmallest(f).compare(largest_user) > 0) continue;
    inputs.push_back(f);
  }
  return inputs;
}

std::vector<FileMetaData> VersionSet::Level0FilesNewestFirst() const {
  std::vector<FileMetaData> files = levels_[0];
  std::sort(files.begin(), files.end(),
            [](const FileMetaData& a, const FileMetaData& b) {
              return a.number > b.number;
            });
  return files;
}

const FileMetaData* VersionSet::FindFileInLevel(int level,
                                                const Slice& user_key) const {
  const auto& files = levels_[level];
  // Binary search: first file whose largest user key is >= user_key.
  size_t lo = 0, hi = files.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (UserKeyOfLargest(files[mid]).compare(user_key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == files.size()) return nullptr;
  if (UserKeyOfSmallest(files[lo]).compare(user_key) > 0) return nullptr;
  return &files[lo];
}

bool VersionSet::IsBaseLevelForKey(int level, const Slice& user_key) const {
  for (int l = level + 1; l < num_levels(); ++l) {
    if (l == 0) continue;
    if (FindFileInLevel(l, user_key) != nullptr) return false;
  }
  return true;
}

uint64_t VersionSet::MaxBytesForLevel(int level) const {
  double bytes = static_cast<double>(options_.max_bytes_for_level_base);
  for (int l = 1; l < level; ++l) bytes *= options_.level_size_multiplier;
  return static_cast<uint64_t>(bytes);
}

double VersionSet::CompactionScore(int level) const {
  if (level == 0) {
    return static_cast<double>(NumLevelFiles(0)) /
           static_cast<double>(options_.l0_compaction_trigger);
  }
  return static_cast<double>(NumLevelBytes(level)) /
         static_cast<double>(MaxBytesForLevel(level));
}

int VersionSet::PickCompactionLevel() const {
  int best_level = -1;
  double best_score = 1.0;
  for (int level = 0; level < num_levels() - 1; ++level) {
    const double score = CompactionScore(level);
    if (score >= best_score) {
      best_score = score;
      best_level = level;
    }
  }
  return best_level;
}

}  // namespace directload::lsm
