#include "lsm/lsm_memtable.h"

#include <cstring>

#include "common/coding.h"

namespace directload::lsm {

namespace {

/// Entry layout in the arena:
///   varint32 internal_key_len | internal_key | varint32 value_len | value
Slice GetLengthPrefixed(const char* p) {
  Slice in(p, 5);  // A varint32 occupies at most 5 bytes.
  uint32_t len = 0;
  GetVarint32(&in, &len);
  return Slice(in.data(), len);
}

}  // namespace

int LsmMemTable::KeyComparator::operator()(const char* a,
                                           const char* b) const {
  // Compare by internal key order.
  Slice ka = GetLengthPrefixed(a);
  Slice kb = GetLengthPrefixed(b);
  return GetInternalKeyComparator()->Compare(ka, kb);
}

LsmMemTable::LsmMemTable()
    : arena_(std::make_unique<Arena>()),
      list_(std::make_unique<Table>(KeyComparator(), arena_.get())) {}

void LsmMemTable::Add(SequenceNumber seq, ValueType type,
                      const Slice& user_key, const Slice& value) {
  const size_t internal_key_len = user_key.size() + 8;
  const size_t encoded_len = VarintLength(internal_key_len) +
                             internal_key_len + VarintLength(value.size()) +
                             value.size();
  char* buf = arena_->Allocate(encoded_len);
  std::string tmp;
  tmp.reserve(encoded_len);
  PutVarint32(&tmp, static_cast<uint32_t>(internal_key_len));
  AppendInternalKey(&tmp, user_key, seq, type);
  PutVarint32(&tmp, static_cast<uint32_t>(value.size()));
  tmp.append(value.data(), value.size());
  std::memcpy(buf, tmp.data(), tmp.size());
  list_->Insert(buf);
}

bool LsmMemTable::Get(const Slice& user_key, SequenceNumber seq,
                      std::string* value, Status* status) const {
  // Probe at (user_key, seq): the first entry >= probe is the newest entry
  // for user_key with sequence <= seq, if any.
  std::string probe_mem;
  PutVarint32(&probe_mem, static_cast<uint32_t>(user_key.size() + 8));
  AppendInternalKey(&probe_mem, user_key, seq, kTypeValue);
  Table::Iterator it(list_.get());
  it.Seek(probe_mem.data());
  if (!it.Valid()) return false;
  const Slice internal_key = GetLengthPrefixed(it.key());
  if (ExtractUserKey(internal_key) != user_key) return false;
  if (ExtractValueType(internal_key) == kTypeDeletion) {
    *status = Status::NotFound("tombstone");
    return true;
  }
  const char* value_ptr = internal_key.data() + internal_key.size();
  Slice in(value_ptr, 5);
  uint32_t value_len = 0;
  GetVarint32(&in, &value_len);
  value->assign(in.data(), value_len);
  *status = Status::OK();
  return true;
}

class LsmMemTable::Iter final : public Iterator {
 public:
  explicit Iter(const Table* table) : it_(table) {}

  bool Valid() const override { return it_.Valid(); }
  void SeekToFirst() override { it_.SeekToFirst(); }
  void Seek(const Slice& internal_key) override {
    probe_.clear();
    PutVarint32(&probe_, static_cast<uint32_t>(internal_key.size()));
    probe_.append(internal_key.data(), internal_key.size());
    it_.Seek(probe_.data());
  }
  void Next() override { it_.Next(); }
  Slice key() const override { return GetLengthPrefixed(it_.key()); }
  Slice value() const override {
    const Slice k = GetLengthPrefixed(it_.key());
    Slice in(k.data() + k.size(), 5);
    uint32_t value_len = 0;
    GetVarint32(&in, &value_len);
    return Slice(in.data(), value_len);
  }
  Status status() const override { return Status::OK(); }

 private:
  Table::Iterator it_;
  std::string probe_;
};

std::unique_ptr<Iterator> LsmMemTable::NewIterator() const {
  return std::make_unique<Iter>(list_.get());
}

}  // namespace directload::lsm
