#ifndef DIRECTLOAD_LSM_VERSION_H_
#define DIRECTLOAD_LSM_VERSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/format.h"
#include "lsm/options.h"
#include "lsm/wal.h"
#include "ssd/env.h"

namespace directload::lsm {

struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest;  // Internal keys.
  std::string largest;
};

/// A delta against the current LSM shape, logged to the MANIFEST (the
/// LevelDB version-edit idea, trimmed to what this engine needs).
struct VersionEdit {
  bool has_log_number = false;
  uint64_t log_number = 0;
  bool has_next_file_number = false;
  uint64_t next_file_number = 0;
  bool has_last_sequence = false;
  SequenceNumber last_sequence = 0;
  std::vector<std::pair<int, uint64_t>> deleted_files;     // (level, number)
  std::vector<std::pair<int, FileMetaData>> new_files;     // (level, meta)

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);
};

/// Owns the current arrangement of SSTables into levels, the MANIFEST, and
/// the file-number/sequence counters. Single current version (compactions
/// are inline, so no concurrent readers of old versions exist).
class VersionSet {
 public:
  VersionSet(ssd::SsdEnv* env, const LsmOptions& options);

  /// Loads the MANIFEST if present; otherwise starts empty and creates one.
  Status Recover();

  /// Applies `edit` to the in-memory state and appends it to the MANIFEST.
  Status LogAndApply(VersionEdit* edit);

  uint64_t NewFileNumber() { return next_file_number_++; }
  SequenceNumber last_sequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber seq) { last_sequence_ = seq; }
  uint64_t log_number() const { return log_number_; }

  const std::vector<FileMetaData>& files(int level) const {
    return levels_[level];
  }
  int num_levels() const { return static_cast<int>(levels_.size()); }
  uint64_t NumLevelBytes(int level) const;
  int NumLevelFiles(int level) const {
    return static_cast<int>(levels_[level].size());
  }
  uint64_t TotalTableBytes() const;

  /// Files in `level` whose user-key range intersects
  /// [smallest_user, largest_user].
  std::vector<FileMetaData> GetOverlappingInputs(
      int level, const Slice& smallest_user, const Slice& largest_user) const;

  /// Level0 files ordered newest first (higher file number = newer data).
  std::vector<FileMetaData> Level0FilesNewestFirst() const;

  /// Files of `level` (>=1) possibly containing `user_key` (0 or 1 files).
  const FileMetaData* FindFileInLevel(int level, const Slice& user_key) const;

  /// True when no level deeper than `level` overlaps `user_key` — the
  /// condition under which a compaction may drop tombstones.
  bool IsBaseLevelForKey(int level, const Slice& user_key) const;

  /// The level whose size/score most exceeds its budget; -1 when no
  /// compaction is needed. L0 is scored by file count, deeper levels by
  /// total bytes against 10x-per-level budgets.
  int PickCompactionLevel() const;
  double CompactionScore(int level) const;
  uint64_t MaxBytesForLevel(int level) const;

  /// Round-robin cursor per level choosing the next file to compact.
  std::string compact_pointer(int level) const {
    return compact_pointers_[level];
  }
  void set_compact_pointer(int level, const std::string& key) {
    compact_pointers_[level] = key;
  }

 private:
  Status WriteSnapshot(LogWriter* writer) const;
  void Apply(const VersionEdit& edit);

  ssd::SsdEnv* env_;
  LsmOptions options_;
  std::vector<std::vector<FileMetaData>> levels_;
  std::vector<std::string> compact_pointers_;
  std::unique_ptr<ssd::WritableFile> manifest_file_;
  std::unique_ptr<LogWriter> manifest_log_;
  uint64_t next_file_number_ = 1;
  uint64_t log_number_ = 0;
  SequenceNumber last_sequence_ = 0;
};

}  // namespace directload::lsm

#endif  // DIRECTLOAD_LSM_VERSION_H_
