#ifndef DIRECTLOAD_AOF_RECORD_H_
#define DIRECTLOAD_AOF_RECORD_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace directload::aof {

/// Address of a record inside the AOF space: which segment file and the byte
/// offset of the record header within it. Packs into the uint64 the memtable
/// stores as `MemEntry::address`.
struct RecordAddress {
  uint32_t segment_id = 0;
  uint32_t offset = 0;

  uint64_t Pack() const {
    return (static_cast<uint64_t>(segment_id) << 32) | offset;
  }
  static RecordAddress Unpack(uint64_t packed) {
    return RecordAddress{static_cast<uint32_t>(packed >> 32),
                         static_cast<uint32_t>(packed & 0xFFFFFFFFu)};
  }

  friend bool operator==(const RecordAddress& a, const RecordAddress& b) {
    return a.segment_id == b.segment_id && a.offset == b.offset;
  }
};

/// Record flags (the paper's Figure 2 datum: "a key carrying a value or
/// NULL", plus tombstones when delete logging is enabled).
enum RecordFlags : uint8_t {
  kFlagNone = 0,
  /// Value field removed by Bifrost's dedup; GETs traceback to resolve it.
  kFlagDedup = 1u << 0,
  /// Delete marker (written only when AofOptions::log_deletes is on).
  kFlagTombstone = 1u << 1,
  /// Copy re-appended by segment collection. Recovery must not let such a
  /// copy revive a pair an earlier tombstone deleted: relocation preserves
  /// a record's bytes but not its position in operation order.
  kFlagRelocated = 1u << 2,
  /// Staged by a bulk-ingest session (QinDb::IngestRun) and not yet
  /// committed. Recovery indexes such a record only if a matching
  /// kFlagIngestCommit marker for its version exists; otherwise the record
  /// is dead on arrival — an aborted or crashed load leaves no trace.
  kFlagIngestPending = 1u << 3,
  /// Commit marker for a bulk-ingest version (zero-length key and value;
  /// `version` names the committed ingest version). Written once per shard
  /// at IngestCommit, after every pending record of the session is durable.
  /// GC never collects markers: a relocated pending record may land after
  /// its marker in segment order, and the marker is what vouches for it.
  kFlagIngestCommit = 1u << 4,
};

/// Fixed-size record header. A fixed layout (vs varints) lets the engine
/// compute a record's extent purely from the memtable item (key size +
/// value size), which the GC and traceback paths rely on.
///
///   crc32c(4, masked; covers bytes 4..end) |
///   key_len(2) | flags(1) | reserved(1) | version(8) | value_len(4) |
///   key bytes | value bytes
struct RecordHeader {
  static constexpr size_t kSize = 20;

  uint32_t crc = 0;
  uint16_t key_len = 0;
  uint8_t flags = 0;
  uint64_t version = 0;
  uint32_t value_len = 0;
};

/// Total on-file extent of a record with the given key/value sizes.
inline uint64_t RecordExtent(size_t key_len, size_t value_len) {
  return RecordHeader::kSize + key_len + value_len;
}

/// A decoded record. `key` and `value` alias `backing`.
struct RecordView {
  RecordHeader header;
  Slice key;
  Slice value;
  std::string backing;

  bool is_dedup() const { return (header.flags & kFlagDedup) != 0; }
  bool is_tombstone() const { return (header.flags & kFlagTombstone) != 0; }
  bool is_relocated() const { return (header.flags & kFlagRelocated) != 0; }
  bool is_ingest_pending() const {
    return (header.flags & kFlagIngestPending) != 0;
  }
  bool is_ingest_commit() const {
    return (header.flags & kFlagIngestCommit) != 0;
  }
};

/// Serializes a record (header + key + value) into `dst` (appended).
void EncodeRecord(const Slice& key, uint64_t version, uint8_t flags,
                  const Slice& value, std::string* dst);

/// Decodes and checksum-verifies a record from `data` (which must start at a
/// record header and contain the full extent). On success fills `out`
/// (copying bytes into out->backing).
Status DecodeRecord(const Slice& data, RecordView* out);

/// Decodes only the header (no checksum verification possible without the
/// body). Used by sequential scans to learn the record extent.
Status DecodeHeader(const Slice& data, RecordHeader* out);

}  // namespace directload::aof

#endif  // DIRECTLOAD_AOF_RECORD_H_
