#include "aof/aof_manager.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"

namespace directload::aof {

namespace {
constexpr char kSegmentPrefix[] = "aof_";
constexpr uint64_t kScanChunkBytes = 64 << 10;

// Log-layer failpoints. The aof_seal_* and aof_gc_* points are the
// crash-point set: tests/chaos_test.cc sweeps every registered point with
// those prefixes, fail-stops at each, and verifies recovery from the
// resulting on-disk state (docs/fault_injection.md lists the guarantees).
DIRECTLOAD_FAILPOINT_DEFINE(fp_aof_append, "aof_append");
DIRECTLOAD_FAILPOINT_DEFINE(fp_aof_roll_segment, "aof_roll_segment");
DIRECTLOAD_FAILPOINT_DEFINE(fp_aof_seal_before_close, "aof_seal_before_close");
DIRECTLOAD_FAILPOINT_DEFINE(fp_aof_seal_after_close, "aof_seal_after_close");
DIRECTLOAD_FAILPOINT_DEFINE(fp_aof_gc_before_rewrite, "aof_gc_before_rewrite");
DIRECTLOAD_FAILPOINT_DEFINE(fp_aof_gc_rewrite_record, "aof_gc_rewrite_record");
DIRECTLOAD_FAILPOINT_DEFINE(fp_aof_gc_after_rewrite, "aof_gc_after_rewrite");
DIRECTLOAD_FAILPOINT_DEFINE(fp_aof_gc_before_erase, "aof_gc_before_erase");
DIRECTLOAD_FAILPOINT_DEFINE(fp_aof_gc_after_erase, "aof_gc_after_erase");
}  // namespace

AofManager::AofManager(ssd::SsdEnv* env, const AofOptions& options)
    : env_(env), options_(options) {}

AofManager::~AofManager() {
  if (active_writer_ != nullptr) {
    DL_LOG_IF_ERROR("aof active-segment close on shutdown",
                    active_writer_->Close());
  }
}

std::string AofManager::SegmentName(uint32_t id) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08u.dat", kSegmentPrefix, id);
  return options_.file_prefix + buf;
}

Result<std::unique_ptr<AofManager>> AofManager::Open(
    ssd::SsdEnv* env, const AofOptions& options,
    const std::map<uint32_t, SegmentMeta>* known) {
  if (options.segment_bytes < RecordHeader::kSize) {
    return Status::InvalidArgument("segment_bytes too small");
  }
  std::unique_ptr<AofManager> mgr(new AofManager(env, options));
  Status s = mgr->AdoptExistingSegments(known);
  if (!s.ok()) return s;
  return mgr;
}

Status AofManager::AdoptExistingSegments(
    const std::map<uint32_t, SegmentMeta>* known) {
  // Runs before the manager is published; take the lock anyway so the
  // *Locked helpers see their capability held.
  WriterLock lock(&mu_);
  uint32_t max_id = 0;
  bool any = false;
  const std::string full_prefix = options_.file_prefix + kSegmentPrefix;
  for (const std::string& name : env_->ListFiles()) {
    if (name.rfind(full_prefix, 0) != 0) continue;
    const uint32_t id = static_cast<uint32_t>(
        std::strtoul(name.c_str() + full_prefix.size(), nullptr, 10));
    any = true;
    max_id = std::max(max_id, id);
    SegmentInfo info;
    info.sealed = true;
    segments_[id] = std::move(info);
    if (known != nullptr) {
      auto it = known->find(id);
      if (it != known->end()) {
        // Checkpointed accounting: no scan needed.
        segments_[id].total_bytes = it->second.total_bytes;
        segments_[id].live_bytes = it->second.live_bytes;
        continue;
      }
    }
    // Determine the record extent of the segment by scanning headers; the
    // file itself may be longer due to block/page padding.
    uint64_t end = 0;
    Status s = ScanSegmentLocked(id, [&end](const RecordAddress& addr,
                                            const RecordView& rec) {
      end = addr.offset + RecordExtent(rec.header.key_len, rec.header.value_len);
      return true;
    });
    if (!s.ok()) return s;
    segments_[id].total_bytes = end;
    // Everything is presumed live until the engine's recovery pass marks
    // superseded records dead.
    segments_[id].live_bytes = end;
  }
  active_id_ = any ? max_id + 1 : 0;
  return Status::OK();
}

Status AofManager::OpenNewSegmentLocked() {
  DIRECTLOAD_FAILPOINT(fp_aof_roll_segment);
  const std::string name = SegmentName(active_id_);
  Result<std::unique_ptr<ssd::WritableFile>> file = env_->NewWritableFile(name);
  if (!file.ok()) return file.status();
  active_writer_ = std::move(file).value();
  segments_[active_id_] = SegmentInfo{};
  active_mirror_.clear();
  mirror_offset_ = 0;
  return Status::OK();
}

Result<RecordAddress> AofManager::AppendRecord(const Slice& key,
                                               uint64_t version, uint8_t flags,
                                               const Slice& value) {
  WriterLock lock(&mu_);
  return AppendRecordLocked(key, version, flags, value);
}

Result<RecordAddress> AofManager::AppendRecordLocked(const Slice& key,
                                                     uint64_t version,
                                                     uint8_t flags,
                                                     const Slice& value) {
  const AppendOp op{key, version, flags, value, Slice()};
  std::vector<RecordAddress> addresses;
  Status s = AppendManyLocked(&op, 1, &addresses);
  if (!s.ok()) return s;
  return addresses[0];
}

Status AofManager::AppendMany(const AppendOp* ops, size_t n,
                              std::vector<RecordAddress>* addresses) {
  WriterLock lock(&mu_);
  return AppendManyLocked(ops, n, addresses);
}

Status AofManager::AppendManyLocked(const AppendOp* ops, size_t n,
                                    std::vector<RecordAddress>* addresses) {
  // One evaluation of the append failpoint per vectored call: an injected
  // fault fails the whole batch up front, before any byte is written.
  DIRECTLOAD_FAILPOINT(fp_aof_append);
  addresses->clear();
  if (n == 0) return Status::OK();
  addresses->reserve(n);
  // Validate everything before touching the log, so a malformed record
  // cannot strand its batch-mates' bytes behind a mid-batch failure.
  for (size_t i = 0; i < n; ++i) {
    if (RecordExtent(ops[i].key.size(), ops[i].value.size()) >
        options_.segment_bytes) {
      return Status::InvalidArgument("record exceeds segment capacity");
    }
    if (ops[i].key.size() > UINT16_MAX) {
      return Status::InvalidArgument("key too long");
    }
  }

  // On a mid-batch failure, completed runs are durable on device but the
  // caller indexes nothing from a failed call: un-count their live bytes so
  // occupancy reflects only records the engine actually applied (otherwise
  // those extents stay "live" forever and skew occupancy/GC). `completed`
  // is how many leading addresses belong to fully accounted runs.
  auto roll_back_completed = [&](size_t completed) {
    for (size_t j = 0; j < completed; ++j) {
      MarkDeadLocked((*addresses)[j],
                     RecordExtent(ops[j].key.size(), ops[j].value.size()));
    }
    addresses->clear();
  };

  std::string& buf = append_buf_;
  size_t i = 0;
  while (i < n) {
    const uint64_t next_extent =
        RecordExtent(ops[i].key.size(), ops[i].value.size());
    if (active_writer_ != nullptr &&
        active_writer_->Size() + next_extent > options_.segment_bytes) {
      Status s = SealActiveLocked();
      if (!s.ok()) {
        roll_back_completed(addresses->size());
        return s;
      }
    }
    if (active_writer_ == nullptr) {
      Status s = OpenNewSegmentLocked();
      if (!s.ok()) {
        roll_back_completed(addresses->size());
        return s;
      }
    }

    // Encode the run of records that fits the active segment into one
    // contiguous buffer. Each record keeps its own header and checksum, so
    // the segment bytes are indistinguishable from per-record appends.
    buf.clear();
    const size_t run_first = addresses->size();
    const uint64_t run_start = active_writer_->Size();
    uint64_t off = run_start;
    while (i < n) {
      const uint64_t extent =
          RecordExtent(ops[i].key.size(), ops[i].value.size());
      if (off + extent > options_.segment_bytes) break;
      if (!ops[i].preencoded.empty()) {
        buf.append(ops[i].preencoded.data(), ops[i].preencoded.size());
      } else {
        EncodeRecord(ops[i].key, ops[i].version, ops[i].flags, ops[i].value,
                     &buf);
      }
      addresses->push_back(
          RecordAddress{active_id_, static_cast<uint32_t>(off)});
      off += extent;
      ++i;
    }

    Status s = active_writer_->Append(buf);
    if (!s.ok()) {
      // Earlier runs (and an undetectable prefix of this one) may be
      // durable; the addresses are meaningless to the caller on failure.
      // This run's records never reached the occupancy counters, so only
      // the completed runs before it are rolled back.
      roll_back_completed(run_first);
      return s;
    }

    // Maintain the unpersisted-tail mirror: [mirror_offset_, Size).
    active_mirror_.append(buf);
    const uint64_t persisted = active_writer_->PersistedSize();
    if (persisted > mirror_offset_) {
      active_mirror_.erase(0, persisted - mirror_offset_);
      mirror_offset_ = persisted;
    }

    SegmentInfo& seg = segments_[active_id_];
    seg.total_bytes += off - run_start;
    seg.live_bytes += off - run_start;
  }
  return Status::OK();
}

Status AofManager::SealActive() {
  WriterLock lock(&mu_);
  return SealActiveLocked();
}

Status AofManager::SealActiveLocked() {
  if (active_writer_ == nullptr) return Status::OK();
  // Crash point: nothing closed yet — the active segment keeps its writer
  // and its unpersisted tail.
  DIRECTLOAD_FAILPOINT(fp_aof_seal_before_close);
  Status s = active_writer_->Close();
  if (!s.ok()) return s;
  // Crash point: the file is closed (tail padded out and persisted) but the
  // manager's bookkeeping still names it active — recovery must adopt it as
  // sealed from the on-disk state alone.
  DIRECTLOAD_FAILPOINT(fp_aof_seal_after_close);
  active_writer_.reset();
  segments_[active_id_].sealed = true;
  active_mirror_.clear();
  mirror_offset_ = 0;
  ++active_id_;
  return Status::OK();
}

uint32_t AofManager::active_segment() const {
  ReaderLock lock(&mu_);
  return active_id_;
}

size_t AofManager::segment_count() const {
  ReaderLock lock(&mu_);
  return segments_.size();
}

ssd::RandomAccessFile* AofManager::ReaderFor(uint32_t segment_id) const {
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return nullptr;
  // mu_ (held at least shared) keeps the map node alive; readers_mu_ makes
  // the lazy creation single-shot when two readers fault in the same reader.
  MutexLock lock(&readers_mu_);
  if (it->second.reader == nullptr) {
    auto file = env_->NewRandomAccessFile(SegmentName(segment_id));
    if (!file.ok()) return nullptr;
    it->second.reader = std::move(file).value();
  }
  return it->second.reader.get();
}

Status AofManager::ReadBytesLocked(uint32_t segment_id, uint64_t offset,
                                   uint64_t n, std::string* out) const {
  out->clear();
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) {
    return Status::NotFound("unknown segment");
  }
  const uint64_t end = offset + n;
  const bool is_active =
      segment_id == active_id_ && active_writer_ != nullptr;
  const uint64_t persisted =
      is_active ? active_writer_->PersistedSize() : UINT64_MAX;

  if (offset < persisted) {
    ssd::RandomAccessFile* reader = ReaderFor(segment_id);
    if (reader == nullptr) return Status::IOError("cannot open segment");
    const uint64_t device_end = std::min(end, persisted);
    Status s = reader->Read(offset, device_end - offset, out);
    if (!s.ok()) return s;
  }
  if (is_active && end > persisted) {
    // Serve the rest from the in-memory tail mirror.
    const uint64_t lo = std::max(offset, mirror_offset_);
    if (lo < mirror_offset_ || lo - mirror_offset_ > active_mirror_.size()) {
      return Status::Internal("mirror does not cover requested range");
    }
    const uint64_t avail = mirror_offset_ + active_mirror_.size();
    const uint64_t hi = std::min(end, avail);
    if (hi > lo) {
      out->append(active_mirror_.data() + (lo - mirror_offset_), hi - lo);
    }
  }
  if (out->size() < n) {
    return Status::InvalidArgument("read past end of segment");
  }
  return Status::OK();
}

Status AofManager::ReadRecord(const RecordAddress& addr, uint64_t extent_hint,
                              RecordView* out) const {
  ReaderLock lock(&mu_);
  uint64_t extent = extent_hint;
  if (extent == 0) {
    std::string hdr;
    Status s = ReadBytesLocked(addr.segment_id, addr.offset,
                               RecordHeader::kSize, &hdr);
    if (!s.ok()) return s;
    RecordHeader header;
    s = DecodeHeader(hdr, &header);
    if (!s.ok()) return s;
    extent = RecordExtent(header.key_len, header.value_len);
  }
  std::string body;
  Status s = ReadBytesLocked(addr.segment_id, addr.offset, extent, &body);
  if (!s.ok()) return s;
  return DecodeRecord(body, out);
}

void AofManager::MarkDead(const RecordAddress& addr, uint64_t extent) {
  WriterLock lock(&mu_);
  MarkDeadLocked(addr, extent);
}

void AofManager::MarkDeadMany(
    const std::vector<std::pair<RecordAddress, uint64_t>>& dead) {
  if (dead.empty()) return;
  WriterLock lock(&mu_);
  for (const auto& [addr, extent] : dead) {
    MarkDeadLocked(addr, extent);
  }
}

void AofManager::MarkDeadLocked(const RecordAddress& addr, uint64_t extent) {
  auto it = segments_.find(addr.segment_id);
  if (it == segments_.end()) return;
  it->second.live_bytes =
      extent > it->second.live_bytes ? 0 : it->second.live_bytes - extent;
}

double AofManager::Occupancy(uint32_t segment_id) const {
  ReaderLock lock(&mu_);
  return OccupancyLocked(segment_id);
}

double AofManager::OccupancyLocked(uint32_t segment_id) const {
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return 1.0;
  return static_cast<double>(it->second.live_bytes) /
         static_cast<double>(options_.segment_bytes);
}

std::vector<uint32_t> AofManager::GcVictims() const {
  ReaderLock lock(&mu_);
  // Rank by occupancy up front: sorting on precomputed pairs keeps the
  // comparator trivial (no locked lookups inside the sort lambda).
  std::vector<std::pair<double, uint32_t>> ranked;
  for (const auto& [id, seg] : segments_) {
    if (!seg.sealed) continue;
    const double occupancy = OccupancyLocked(id);
    if (occupancy <= options_.gc_occupancy_threshold) {
      ranked.emplace_back(occupancy, id);
    }
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<uint32_t> victims;
  victims.reserve(ranked.size());
  for (const auto& [occupancy, id] : ranked) victims.push_back(id);
  return victims;
}

// ---------------------------------------------------------------------------
// SegmentCursor
// ---------------------------------------------------------------------------

Status AofManager::SegmentCursor::Init(const AofManager* mgr,
                                       uint32_t segment_id) {
  segment_id_ = segment_id;
  auto it = mgr->segments_.find(segment_id);
  if (it == mgr->segments_.end()) return Status::NotFound("unknown segment");
  const bool adopted = it->second.total_bytes == 0 && it->second.sealed;
  // For adopted (recovery) segments the logical extent is unknown; fall back
  // to the persisted file size and stop at the first undecodable record.
  limit_ = it->second.total_bytes;
  extent_known_ = !adopted && limit_ > 0;
  if (adopted || limit_ == 0) {
    Result<uint64_t> size = mgr->env_->GetFileSize(mgr->SegmentName(segment_id));
    if (!size.ok()) return size.status();
    limit_ = *size;
    extent_known_ = false;
    // A crashed writer may have lost its unflushed tail: only the persisted
    // prefix is readable (record checksums cover torn records inside it).
    ssd::RandomAccessFile* reader = mgr->ReaderFor(segment_id);
    if (reader != nullptr) limit_ = std::min(limit_, reader->Size());
  }
  if (segment_id == mgr->active_id_ && mgr->active_writer_ != nullptr) {
    // Every byte up to total_bytes was appended by this process: the extent
    // is exact, and the mirror backs whatever the device has not persisted.
    limit_ = it->second.total_bytes;
    extent_known_ = true;
  }
  offset_ = 0;
  buf_.clear();
  buf_start_ = 0;
  return Decode(mgr);
}

Status AofManager::SegmentCursor::Ensure(const AofManager* mgr,
                                         uint64_t need) {
  const uint64_t have = buf_start_ + buf_.size();
  if (offset_ + need <= have && offset_ >= buf_start_) return Status::OK();
  const uint64_t want =
      std::min(std::max(need, kScanChunkBytes), limit_ - offset_);
  buf_start_ = offset_;
  return mgr->ReadBytesLocked(segment_id_, offset_, want, &buf_);
}

Status AofManager::SegmentCursor::Decode(const AofManager* mgr) {
  valid_ = false;
  if (offset_ + RecordHeader::kSize > limit_) return Status::OK();
  Status s = Ensure(mgr, RecordHeader::kSize);
  if (!s.ok()) return s;
  RecordHeader header;
  s = DecodeHeader(Slice(buf_.data() + (offset_ - buf_start_),
                         buf_.size() - (offset_ - buf_start_)),
                   &header);
  if (!s.ok()) return Status::OK();  // End of decodable data.
  const uint64_t extent = RecordExtent(header.key_len, header.value_len);
  if (offset_ + extent > limit_) return Status::OK();  // Torn tail / padding.
  s = Ensure(mgr, extent);
  if (!s.ok()) return s;
  s = DecodeRecord(Slice(buf_.data() + (offset_ - buf_start_),
                         buf_.size() - (offset_ - buf_start_)),
                   &view_);
  if (!s.ok()) {
    // The header decoded and the full claimed extent is readable, so every
    // byte of this record was appended and persisted — a crash cannot have
    // torn it. A body checksum failure here is damaged media, and the
    // records behind it are unreachable; tolerating it would let a scan
    // (or worse, a GC rewrite) silently drop them.
    return Status::Corruption("segment " + std::to_string(segment_id_) +
                              ": record at offset " +
                              std::to_string(offset_) +
                              " inside the persisted extent fails its "
                              "checksum: " +
                              s.ToString());
  }
  address_ = RecordAddress{segment_id_, static_cast<uint32_t>(offset_)};
  valid_ = true;
  return Status::OK();
}

Status AofManager::SegmentCursor::Next(const AofManager* mgr) {
  offset_ += RecordExtent(view_.header.key_len, view_.header.value_len);
  return Decode(mgr);
}

Status AofManager::ScanSegmentLocked(uint32_t segment_id,
                                     const ScanFn& fn) const {
  SegmentCursor cur;
  for (Status s = cur.Init(this, segment_id);; s = cur.Next(this)) {
    if (!s.ok()) return s;
    if (!cur.Valid()) break;
    if (!fn(cur.address(), cur.record())) return Status::OK();
  }
  if (cur.StoppedShortOfExtent()) {
    // The accounting says records continue past the stop point. Surfacing
    // this (instead of treating it as a clean end) keeps a damaged header
    // from silently truncating recovery: the caller fails, the bytes stay
    // on the device, and a later repair can still reach them.
    return Status::Corruption(
        "segment " + std::to_string(segment_id) + ": decodable records end at "
        "offset " + std::to_string(cur.offset()) + " but the segment extent "
        "is " + std::to_string(cur.limit()) + " bytes");
  }
  return Status::OK();
}

Status AofManager::Scan(const ScanFn& fn, uint32_t min_segment) const {
  // Shared lock: scanning only reads; concurrent record reads stay possible.
  // Callbacks must not re-enter the manager (the engine's recovery pass
  // buffers its MarkDead updates and applies them after Scan returns).
  ReaderLock lock(&mu_);
  for (const auto& [id, seg] : segments_) {
    if (id < min_segment) continue;
    Status s = ScanSegmentLocked(id, fn);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status AofManager::CollectSegment(uint32_t segment_id,
                                  const Classifier& classify,
                                  const RelocateFn& relocate,
                                  const DropFn& drop) {
  WriterLock lock(&mu_);
  auto it = segments_.find(segment_id);
  if (it == segments_.end()) return Status::NotFound("unknown segment");
  if (!it->second.sealed) {
    return Status::InvalidArgument("cannot collect the active segment");
  }
  // Crash point: collection chosen but nothing moved yet.
  DIRECTLOAD_FAILPOINT(fp_aof_gc_before_rewrite);

  SegmentCursor cur;
  for (Status s = cur.Init(this, segment_id);; s = cur.Next(this)) {
    if (!s.ok()) return s;
    if (!cur.Valid()) break;
    const RecordAddress addr = cur.address();
    const RecordView& rec = cur.record();
    if (classify(addr, rec)) {
      // Crash point: mid-rewrite — some records already hold relocated
      // copies, the victim still exists, and recovery must reconcile the
      // duplicates via kFlagRelocated precedence.
      DIRECTLOAD_FAILPOINT(fp_aof_gc_rewrite_record);
      Result<RecordAddress> new_addr = AppendRecordLocked(
          rec.key, rec.header.version,
          static_cast<uint8_t>(rec.header.flags | kFlagRelocated), rec.value);
      if (!new_addr.ok()) return new_addr.status();
      if (rec.is_tombstone()) {
        // Tombstones never hold live data; keep the relocated copy's
        // occupancy accounting dead like the original's.
        segments_[new_addr->segment_id].live_bytes -=
            RecordExtent(rec.key.size(), rec.value.size());
      }
      ++gc().records_rewritten;
      gc().bytes_rewritten +=
          RecordExtent(rec.key.size(), rec.value.size());
      relocate(addr, *new_addr, rec);
    } else {
      ++gc().records_dropped;
      gc().bytes_dropped +=
          RecordExtent(rec.key.size(), rec.value.size());
      drop(addr, rec);
    }
  }
  if (cur.StoppedShortOfExtent()) {
    // The rewrite did not reach the end of the victim's records: whatever
    // sits beyond the undecodable gap may be live, and erasing the segment
    // now would destroy it. Abandon the collection — the survivors already
    // re-appended carry kFlagRelocated, so recovery reconciles the
    // duplicates — and let the caller fail the GC pass.
    return Status::Corruption(
        "GC of segment " + std::to_string(segment_id) + " stopped at offset " +
        std::to_string(cur.offset()) + " of " + std::to_string(cur.limit()) +
        " extent bytes; refusing to erase a partially-read victim");
  }

  // Crash point: every survivor rewritten, victim not yet erased.
  DIRECTLOAD_FAILPOINT(fp_aof_gc_after_rewrite);

  // Erasing the victim destroys information whose justification may still
  // be volatile: the re-appended copies themselves (native-mode Sync cannot
  // persist a sub-page tail), but also the newer records that made this
  // segment's dropped records dead — a superseding re-PUT or a tombstone
  // sitting in the active tail. Seal the active segment first so that a
  // crash after the erase recovers a state at least as new as the erase.
  if (active_writer_ != nullptr &&
      active_writer_->PersistedSize() < active_writer_->Size()) {
    Status s = SealActiveLocked();
    if (!s.ok()) return s;
  }

  // Crash point: the durability barrier (seal) is in place; the erase is
  // the next irreversible step.
  DIRECTLOAD_FAILPOINT(fp_aof_gc_before_erase);

  // Destroy the cached reader before the file disappears. Re-find the
  // segment: the re-appends above may have rebalanced the map (iterators
  // stay valid for std::map, but be explicit anyway).
  it = segments_.find(segment_id);
  if (it != segments_.end()) {
    {
      MutexLock rlock(&readers_mu_);
      it->second.reader.reset();
    }
    segments_.erase(it);
  }
  Status s = env_->DeleteFile(SegmentName(segment_id));
  if (!s.ok()) return s;
  ++gc().segments_reclaimed;
  // Crash point: victim gone; only in-memory accounting follows.
  DIRECTLOAD_FAILPOINT(fp_aof_gc_after_erase);
  return Status::OK();
}

std::map<uint32_t, SegmentMeta> AofManager::SegmentMetas() const {
  ReaderLock lock(&mu_);
  std::map<uint32_t, SegmentMeta> out;
  for (const auto& [id, seg] : segments_) {
    out[id] = SegmentMeta{seg.total_bytes, seg.live_bytes};
  }
  return out;
}

uint64_t AofManager::LiveBytes() const {
  ReaderLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [id, seg] : segments_) total += seg.live_bytes;
  return total;
}

}  // namespace directload::aof
