#include "aof/record.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace directload::aof {

void EncodeRecord(const Slice& key, uint64_t version, uint8_t flags,
                  const Slice& value, std::string* dst) {
  const size_t start = dst->size();
  dst->resize(start + RecordHeader::kSize);
  char* h = dst->data() + start;
  // crc filled below.
  EncodeFixed32(h + 0, 0);
  h[4] = static_cast<char>(key.size() & 0xFF);
  h[5] = static_cast<char>((key.size() >> 8) & 0xFF);
  h[6] = static_cast<char>(flags);
  h[7] = 0;  // reserved
  EncodeFixed64(h + 8, version);
  EncodeFixed32(h + 16, static_cast<uint32_t>(value.size()));
  dst->append(key.data(), key.size());
  dst->append(value.data(), value.size());
  // Checksum covers everything after the crc field.
  h = dst->data() + start;  // Re-fetch: append may have reallocated.
  const uint32_t crc = crc32c::Value(h + 4, RecordHeader::kSize - 4 +
                                                key.size() + value.size());
  EncodeFixed32(h, crc32c::Mask(crc));
}

Status DecodeHeader(const Slice& data, RecordHeader* out) {
  if (data.size() < RecordHeader::kSize) {
    return Status::Corruption("truncated record header");
  }
  const char* h = data.data();
  out->crc = DecodeFixed32(h);
  out->key_len = static_cast<uint16_t>(static_cast<unsigned char>(h[4]) |
                                       (static_cast<unsigned char>(h[5]) << 8));
  out->flags = static_cast<uint8_t>(h[6]);
  out->version = DecodeFixed64(h + 8);
  out->value_len = DecodeFixed32(h + 16);
  return Status::OK();
}

Status DecodeRecord(const Slice& data, RecordView* out) {
  Status s = DecodeHeader(data, &out->header);
  if (!s.ok()) return s;
  const uint64_t extent =
      RecordExtent(out->header.key_len, out->header.value_len);
  if (data.size() < extent) {
    return Status::Corruption("truncated record body");
  }
  const uint32_t expected = crc32c::Unmask(out->header.crc);
  const uint32_t actual =
      crc32c::Value(data.data() + 4, static_cast<size_t>(extent) - 4);
  if (expected != actual) {
    return Status::Corruption("record checksum mismatch");
  }
  out->backing.assign(data.data(), static_cast<size_t>(extent));
  out->key = Slice(out->backing.data() + RecordHeader::kSize,
                   out->header.key_len);
  out->value =
      Slice(out->backing.data() + RecordHeader::kSize + out->header.key_len,
            out->header.value_len);
  return Status::OK();
}

}  // namespace directload::aof
