#ifndef DIRECTLOAD_AOF_AOF_MANAGER_H_
#define DIRECTLOAD_AOF_AOF_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "aof/record.h"
#include "common/result.h"
#include "common/status.h"
#include "ssd/env.h"

namespace directload::aof {

struct AofOptions {
  /// Fixed segment capacity; the paper uses 64 MB AOFs (Section 2.3).
  uint64_t segment_bytes = 64ull << 20;

  /// A sealed segment becomes a GC victim once live bytes / capacity falls
  /// to this ratio (the paper recycles at 25 %, Section 4.1.2).
  double gc_occupancy_threshold = 0.25;

  /// When true, DELs append small tombstone records so deletions survive a
  /// crash without a checkpoint. Off by default, matching the paper's
  /// memory-only DEL.
  bool log_deletes = false;
};

/// Collection counters; atomics so the engine can read them from any thread
/// while a collection is in progress.
struct GcStats {
  std::atomic<uint64_t> segments_reclaimed{0};
  std::atomic<uint64_t> records_rewritten{0};
  std::atomic<uint64_t> bytes_rewritten{0};
  std::atomic<uint64_t> records_dropped{0};
  std::atomic<uint64_t> bytes_dropped{0};
};

/// Manages the append-only files of one QinDB instance: record appends with
/// automatic segment rollover, positional reads (including the unpersisted
/// tail of the active segment), per-segment occupancy accounting, victim
/// selection, and segment collection (the re-append + offset-patch + erase
/// cycle of Figure 2, steps 4-6).
///
/// Occupancy bookkeeping for one segment, as persisted by engine
/// checkpoints so recovery can skip re-scanning old segments.
struct SegmentMeta {
  uint64_t total_bytes = 0;
  uint64_t live_bytes = 0;
};

/// The manager is policy-free about liveness: the engine supplies a
/// classifier when collecting, because only the engine knows about delete
/// flags and referents.
///
/// Thread model: mutations (AppendRecord, SealActive, MarkDead,
/// CollectSegment) take the manager's lock exclusively and are therefore
/// serialized; reads (ReadRecord, Scan, Occupancy, GcVictims, the stats
/// accessors) take it shared and run concurrently with each other. Sealed
/// segments are immutable on device, so shared-mode readers only contend on
/// the lock word, never on data. Lazy per-segment reader creation is guarded
/// by a separate leaf mutex so two threads faulting in the same reader do
/// not race.
class AofManager {
 public:
  /// Opens over `env`, adopting any existing aof_*.dat segments (crash
  /// recovery). Newly appended records go to a fresh segment. Segments
  /// listed in `known` (from a checkpoint) adopt the recorded accounting
  /// without being re-scanned.
  static Result<std::unique_ptr<AofManager>> Open(
      ssd::SsdEnv* env, const AofOptions& options,
      const std::map<uint32_t, SegmentMeta>* known = nullptr);

  ~AofManager();

  AofManager(const AofManager&) = delete;
  AofManager& operator=(const AofManager&) = delete;

  /// Appends one record, rolling to a new segment when the active one is
  /// full. Returns the record's address.
  Result<RecordAddress> AppendRecord(const Slice& key, uint64_t version,
                                     uint8_t flags, const Slice& value);

  /// Reads and verifies the record at `addr`. `extent_hint`, when nonzero,
  /// is the record's full extent (saving a separate header read); the
  /// engine computes it from the memtable item.
  Status ReadRecord(const RecordAddress& addr, uint64_t extent_hint,
                    RecordView* out) const;

  /// Tells the occupancy accounting that the record at `addr` (with the
  /// given extent) no longer holds live data.
  void MarkDead(const RecordAddress& addr, uint64_t extent);

  /// Live-bytes / capacity of a segment. Returns 1.0 for unknown segments.
  double Occupancy(uint32_t segment_id) const;

  /// Sealed segments at or below the GC occupancy threshold, lowest
  /// occupancy first.
  std::vector<uint32_t> GcVictims() const;

  /// Decides a record's fate during collection: true keeps it (valid, or an
  /// invalid record still referenced by a later deduplicated version).
  using Classifier =
      std::function<bool(const RecordAddress&, const RecordView&)>;
  /// Invoked for each kept record after it is re-appended.
  using RelocateFn = std::function<void(const RecordAddress& old_addr,
                                        const RecordAddress& new_addr,
                                        const RecordView& record)>;
  /// Invoked for each dropped record.
  using DropFn =
      std::function<void(const RecordAddress& old_addr, const RecordView&)>;

  /// Collects one sealed segment: live records are re-appended to the
  /// current end of the AOFs, the caller patches memtable offsets in
  /// `relocate`, and the segment file is erased. Runs under the exclusive
  /// lock, so concurrent readers observe either the victim file intact or
  /// the fully patched state, never a half-erased segment.
  Status CollectSegment(uint32_t segment_id, const Classifier& classify,
                        const RelocateFn& relocate, const DropFn& drop);

  /// Sequentially scans every record in every segment with id >=
  /// `min_segment` (recovery path). Stops early if `fn` returns false.
  /// Takes no lock — callers must be quiescent (it runs before the engine
  /// goes multi-threaded) and callbacks may re-enter the manager, e.g. to
  /// MarkDead superseded records while rebuilding occupancy.
  using ScanFn =
      std::function<bool(const RecordAddress&, const RecordView&)>;
  Status Scan(const ScanFn& fn, uint32_t min_segment = 0) const;

  /// Flushes and seals the active segment (e.g., before checkpointing).
  Status SealActive();

  uint32_t active_segment() const;
  size_t segment_count() const;

  /// Current accounting of every segment (for checkpoints).
  std::map<uint32_t, SegmentMeta> SegmentMetas() const;
  const GcStats& gc_stats() const { return gc_stats_; }
  const AofOptions& options() const { return options_; }

  /// On-device footprint of all segments.
  uint64_t DiskBytes() const { return env_->TotalFileBytes(); }

  /// Sum of live bytes across segments.
  uint64_t LiveBytes() const;

 private:
  struct SegmentInfo {
    uint64_t total_bytes = 0;  // Record bytes appended.
    uint64_t live_bytes = 0;
    bool sealed = false;
    mutable std::unique_ptr<ssd::RandomAccessFile> reader;  // Lazy.
  };

  AofManager(ssd::SsdEnv* env, const AofOptions& options);

  static std::string SegmentName(uint32_t id);

  // *Locked methods require mu_ held by the caller: exclusively for the
  // mutating ones, at least shared for the reading ones.
  Status OpenNewSegmentLocked();
  Result<RecordAddress> AppendRecordLocked(const Slice& key, uint64_t version,
                                           uint8_t flags, const Slice& value);
  Status SealActiveLocked();
  double OccupancyLocked(uint32_t segment_id) const;
  Status AdoptExistingSegments(const std::map<uint32_t, SegmentMeta>* known);
  /// Raw byte read covering [offset, offset+n) of a segment, merging the
  /// device contents with the active segment's in-memory tail.
  Status ReadBytesLocked(uint32_t segment_id, uint64_t offset, uint64_t n,
                         std::string* out) const;
  Status ScanSegmentLocked(uint32_t segment_id, const ScanFn& fn) const;
  /// Requires mu_ held (shared suffices); takes readers_mu_ internally for
  /// the lazy creation.
  ssd::RandomAccessFile* ReaderFor(uint32_t segment_id) const;

  ssd::SsdEnv* env_;
  AofOptions options_;

  /// Exclusive: appends, seals, occupancy mutation, collection. Shared:
  /// record reads, scans, accounting queries.
  mutable std::shared_mutex mu_;
  /// Leaf lock for lazy SegmentInfo::reader creation under shared mu_.
  mutable std::mutex readers_mu_;

  std::map<uint32_t, SegmentInfo> segments_;
  uint32_t active_id_ = 0;
  std::unique_ptr<ssd::WritableFile> active_writer_;
  // Mirror of the active segment's bytes that the env has not yet persisted
  // (at most one page), so just-PUT values are immediately readable.
  std::string active_mirror_;
  uint64_t mirror_offset_ = 0;
  GcStats gc_stats_;
};

}  // namespace directload::aof

#endif  // DIRECTLOAD_AOF_AOF_MANAGER_H_
