#ifndef DIRECTLOAD_AOF_AOF_MANAGER_H_
#define DIRECTLOAD_AOF_AOF_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aof/record.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "ssd/env.h"

namespace directload::aof {

struct GcStats;

struct AofOptions {
  /// Fixed segment capacity; the paper uses 64 MB AOFs (Section 2.3).
  uint64_t segment_bytes = 64ull << 20;

  /// A sealed segment becomes a GC victim once live bytes / capacity falls
  /// to this ratio (the paper recycles at 25 %, Section 4.1.2).
  double gc_occupancy_threshold = 0.25;

  /// When true, DELs append small tombstone records so deletions survive a
  /// crash without a checkpoint. Off by default, matching the paper's
  /// memory-only DEL.
  bool log_deletes = false;

  /// Prepended to every file this manager creates ("s03_" gives segments
  /// named s03_aof_00000000.dat). A sharded engine gives each shard's
  /// manager a distinct prefix so N managers share one flat-namespace env
  /// without colliding; empty (the default) keeps the legacy names.
  std::string file_prefix;

  /// When set, collection counters are accumulated into this externally
  /// owned struct instead of the manager's own — the sharded engine points
  /// every shard's manager at one aggregate so gc_stats() stays a single
  /// cheap read. The target must outlive the manager.
  GcStats* shared_gc_stats = nullptr;
};

/// Collection counters; atomics so the engine can read them from any thread
/// while a collection is in progress.
struct GcStats {
  std::atomic<uint64_t> segments_reclaimed{0};
  std::atomic<uint64_t> records_rewritten{0};
  std::atomic<uint64_t> bytes_rewritten{0};
  std::atomic<uint64_t> records_dropped{0};
  std::atomic<uint64_t> bytes_dropped{0};
};

/// Manages the append-only files of one QinDB instance: record appends with
/// automatic segment rollover, positional reads (including the unpersisted
/// tail of the active segment), per-segment occupancy accounting, victim
/// selection, and segment collection (the re-append + offset-patch + erase
/// cycle of Figure 2, steps 4-6).
///
/// Occupancy bookkeeping for one segment, as persisted by engine
/// checkpoints so recovery can skip re-scanning old segments.
struct SegmentMeta {
  uint64_t total_bytes = 0;
  uint64_t live_bytes = 0;
};

/// The manager is policy-free about liveness: the engine supplies a
/// classifier when collecting, because only the engine knows about delete
/// flags and referents.
///
/// Thread model: mutations (AppendRecord, SealActive, MarkDead,
/// CollectSegment) take mu_ (rank LockRank::kAofManager) exclusively and are
/// therefore serialized; reads (ReadRecord, Scan, Occupancy, GcVictims, the
/// stats accessors) take it shared and run concurrently with each other.
/// Sealed segments are immutable on device, so shared-mode readers only
/// contend on the lock word, never on data. Lazy per-segment reader creation
/// is guarded by the leaf readers_mu_ (rank LockRank::kAofReaders) so two
/// threads faulting in the same reader do not race. The annotations below
/// make the split machine-checked under clang -Wthread-safety.
class AofManager {
 public:
  /// Opens over `env`, adopting any existing aof_*.dat segments (crash
  /// recovery). Newly appended records go to a fresh segment. Segments
  /// listed in `known` (from a checkpoint) adopt the recorded accounting
  /// without being re-scanned.
  static Result<std::unique_ptr<AofManager>> Open(
      ssd::SsdEnv* env, const AofOptions& options,
      const std::map<uint32_t, SegmentMeta>* known = nullptr);

  ~AofManager();

  AofManager(const AofManager&) = delete;
  AofManager& operator=(const AofManager&) = delete;

  /// Appends one record, rolling to a new segment when the active one is
  /// full. Returns the record's address.
  Result<RecordAddress> AppendRecord(const Slice& key, uint64_t version,
                                     uint8_t flags, const Slice& value)
      EXCLUDES(mu_);

  /// One entry of a vectored append. Slices must stay valid for the call.
  /// `preencoded`, when non-empty, is the op's complete record bytes
  /// (header + checksum + key + value, exactly what EncodeRecord(key,
  /// version, flags, value) produces) prepared by the caller off the write
  /// lock; the append uses those bytes verbatim instead of re-encoding.
  /// key/value stay authoritative for extent accounting, so they must
  /// describe the same record.
  struct AppendOp {
    Slice key;
    uint64_t version = 0;
    uint8_t flags = 0;
    Slice value;
    Slice preencoded;
  };

  /// Appends `n` records in order under one lock acquisition: records that
  /// fit the active segment are encoded into a single contiguous buffer
  /// (per-record headers and checksums preserved — the segment bytes are
  /// identical to n single appends) and written with one writer append and
  /// one occupancy update per segment run, rolling between runs exactly as
  /// AppendRecord would. `addresses` receives one address per record, in op
  /// order. On failure nothing is reported: a prefix of the records may
  /// nevertheless be durable (the same shapes a crash can produce), and the
  /// caller must treat the whole call as failed.
  Status AppendMany(const AppendOp* ops, size_t n,
                    std::vector<RecordAddress>* addresses) EXCLUDES(mu_);

  /// Marks a set of records dead with one lock acquisition (the group-commit
  /// analogue of N MarkDead calls). Pairs are (address, extent).
  void MarkDeadMany(
      const std::vector<std::pair<RecordAddress, uint64_t>>& dead)
      EXCLUDES(mu_);

  /// Reads and verifies the record at `addr`. `extent_hint`, when nonzero,
  /// is the record's full extent (saving a separate header read); the
  /// engine computes it from the memtable item.
  Status ReadRecord(const RecordAddress& addr, uint64_t extent_hint,
                    RecordView* out) const EXCLUDES(mu_);

  /// Tells the occupancy accounting that the record at `addr` (with the
  /// given extent) no longer holds live data.
  void MarkDead(const RecordAddress& addr, uint64_t extent) EXCLUDES(mu_);

  /// Live-bytes / capacity of a segment. Returns 1.0 for unknown segments.
  double Occupancy(uint32_t segment_id) const EXCLUDES(mu_);

  /// Sealed segments at or below the GC occupancy threshold, lowest
  /// occupancy first.
  std::vector<uint32_t> GcVictims() const EXCLUDES(mu_);

  /// Decides a record's fate during collection: true keeps it (valid, or an
  /// invalid record still referenced by a later deduplicated version).
  using Classifier =
      std::function<bool(const RecordAddress&, const RecordView&)>;
  /// Invoked for each kept record after it is re-appended.
  using RelocateFn = std::function<void(const RecordAddress& old_addr,
                                        const RecordAddress& new_addr,
                                        const RecordView& record)>;
  /// Invoked for each dropped record.
  using DropFn =
      std::function<void(const RecordAddress& old_addr, const RecordView&)>;

  /// Collects one sealed segment: live records are re-appended to the
  /// current end of the AOFs, the caller patches memtable offsets in
  /// `relocate`, and the segment file is erased. Runs under the exclusive
  /// lock, so concurrent readers observe either the victim file intact or
  /// the fully patched state, never a half-erased segment. The callbacks run
  /// with mu_ held exclusively and must not re-enter the manager.
  Status CollectSegment(uint32_t segment_id, const Classifier& classify,
                        const RelocateFn& relocate, const DropFn& drop)
      EXCLUDES(mu_);

  /// Sequentially scans every record in every segment with id >=
  /// `min_segment` (recovery path). Stops early if `fn` returns false.
  /// Holds mu_ shared for the duration, so callbacks must not re-enter the
  /// manager — recovery buffers its occupancy updates and applies them
  /// after the scan returns.
  using ScanFn =
      std::function<bool(const RecordAddress&, const RecordView&)>;
  Status Scan(const ScanFn& fn, uint32_t min_segment = 0) const EXCLUDES(mu_);

  /// Flushes and seals the active segment (e.g., before checkpointing).
  Status SealActive() EXCLUDES(mu_);

  uint32_t active_segment() const EXCLUDES(mu_);
  size_t segment_count() const EXCLUDES(mu_);

  /// Current accounting of every segment (for checkpoints).
  std::map<uint32_t, SegmentMeta> SegmentMetas() const EXCLUDES(mu_);
  const GcStats& gc_stats() const {
    return options_.shared_gc_stats != nullptr ? *options_.shared_gc_stats
                                               : gc_stats_;
  }
  const AofOptions& options() const { return options_; }

  /// On-device footprint of all segments.
  uint64_t DiskBytes() const { return env_->TotalFileBytes(); }

  /// Sum of live bytes across segments.
  uint64_t LiveBytes() const EXCLUDES(mu_);

 private:
  struct SegmentInfo {
    uint64_t total_bytes = 0;  // Record bytes appended.
    uint64_t live_bytes = 0;
    bool sealed = false;
    mutable std::unique_ptr<ssd::RandomAccessFile> reader;  // Lazy; see
                                                            // ReaderFor.
  };

  /// Positional cursor over one segment's records. The manager's lock is
  /// passed to every call (rather than captured) so the thread-safety
  /// analysis can tie the capability to the caller's: `cur.Next(this)`
  /// requires this->mu_ at the call site.
  ///
  /// Decode failures are classified, not uniformly tolerated. Appends are
  /// prefix-persistent: the readable limit never ends inside bytes that were
  /// not appended, so a record whose full claimed extent lies within the
  /// limit yet fails its checksum is damaged media — Decode surfaces it as
  /// kCorruption. Only the shapes a crash can legitimately produce end the
  /// iteration cleanly (Valid() goes false): a header that no longer fits,
  /// a header that fails to decode (torn header or page padding), or a
  /// claimed extent running past the limit (torn body). When the segment's
  /// logical extent is known (recorded at seal/adoption time rather than
  /// inferred from file size), a clean stop before that extent is also
  /// damage; callers check StoppedShortOfExtent() after the loop.
  struct SegmentCursor {
    Status Init(const AofManager* mgr, uint32_t segment_id)
        REQUIRES_SHARED(mgr->mu_);
    Status Next(const AofManager* mgr) REQUIRES_SHARED(mgr->mu_);
    bool Valid() const { return valid_; }
    const RecordAddress& address() const { return address_; }
    const RecordView& record() const { return view_; }
    uint64_t offset() const { return offset_; }
    uint64_t limit() const { return limit_; }
    /// True when iteration ended before the segment's known record extent:
    /// decodable data ran out where the accounting says records exist. The
    /// undecodable gap may hold live records, so treating it as a clean end
    /// (and, in GC, erasing the segment) would destroy data.
    bool StoppedShortOfExtent() const {
      return !valid_ && extent_known_ && offset_ < limit_;
    }

   private:
    Status Ensure(const AofManager* mgr, uint64_t need)
        REQUIRES_SHARED(mgr->mu_);
    Status Decode(const AofManager* mgr) REQUIRES_SHARED(mgr->mu_);

    uint32_t segment_id_ = 0;
    uint64_t limit_ = 0;
    uint64_t offset_ = 0;
    bool extent_known_ = false;
    std::string buf_;
    uint64_t buf_start_ = 0;
    RecordAddress address_;
    RecordView view_;
    bool valid_ = false;
  };

  AofManager(ssd::SsdEnv* env, const AofOptions& options);

  std::string SegmentName(uint32_t id) const;

  /// The mutable counter sink for collections (shared or owned).
  GcStats& gc() {
    return options_.shared_gc_stats != nullptr ? *options_.shared_gc_stats
                                               : gc_stats_;
  }

  // *Locked methods require mu_ held by the caller: exclusively for the
  // mutating ones, at least shared for the reading ones.
  Status OpenNewSegmentLocked() REQUIRES(mu_);
  Result<RecordAddress> AppendRecordLocked(const Slice& key, uint64_t version,
                                           uint8_t flags, const Slice& value)
      REQUIRES(mu_);
  Status AppendManyLocked(const AppendOp* ops, size_t n,
                          std::vector<RecordAddress>* addresses)
      REQUIRES(mu_);
  void MarkDeadLocked(const RecordAddress& addr, uint64_t extent)
      REQUIRES(mu_);
  Status SealActiveLocked() REQUIRES(mu_);
  double OccupancyLocked(uint32_t segment_id) const REQUIRES_SHARED(mu_);
  Status AdoptExistingSegments(const std::map<uint32_t, SegmentMeta>* known)
      EXCLUDES(mu_);
  /// Raw byte read covering [offset, offset+n) of a segment, merging the
  /// device contents with the active segment's in-memory tail.
  Status ReadBytesLocked(uint32_t segment_id, uint64_t offset, uint64_t n,
                         std::string* out) const REQUIRES_SHARED(mu_);
  Status ScanSegmentLocked(uint32_t segment_id, const ScanFn& fn) const
      REQUIRES_SHARED(mu_);
  /// Takes readers_mu_ internally for the lazy creation.
  ssd::RandomAccessFile* ReaderFor(uint32_t segment_id) const
      REQUIRES_SHARED(mu_) EXCLUDES(readers_mu_);

  ssd::SsdEnv* env_;
  AofOptions options_;

  /// Exclusive: appends, seals, occupancy mutation, collection. Shared:
  /// record reads, scans, accounting queries.
  mutable SharedMutex mu_{LockRank::kAofManager, "aof-mu"};
  /// Leaf lock for lazy SegmentInfo::reader creation under shared mu_.
  mutable Mutex readers_mu_{LockRank::kAofReaders, "aof-readers"};

  std::map<uint32_t, SegmentInfo> segments_ GUARDED_BY(mu_);
  uint32_t active_id_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<ssd::WritableFile> active_writer_ GUARDED_BY(mu_);
  // Mirror of the active segment's bytes that the env has not yet persisted
  // (at most one page), so just-PUT values are immediately readable.
  std::string active_mirror_ GUARDED_BY(mu_);

  /// Scratch buffer for AppendManyLocked's per-run record encoding. A member
  /// so a large batch's buffer (hundreds of KB crosses the allocator's mmap
  /// threshold) is allocated once and reused, not malloc'd/freed per append.
  std::string append_buf_ GUARDED_BY(mu_);
  uint64_t mirror_offset_ GUARDED_BY(mu_) = 0;
  GcStats gc_stats_;
};

}  // namespace directload::aof

#endif  // DIRECTLOAD_AOF_AOF_MANAGER_H_
