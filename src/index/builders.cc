#include "index/builders.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/coding.h"

namespace directload::webindex {

std::string_view IndexTypeName(IndexType type) {
  switch (type) {
    case IndexType::kForward:
      return "forward";
    case IndexType::kInverted:
      return "inverted";
    case IndexType::kSummary:
      return "summary";
  }
  return "unknown";
}

uint64_t IndexDataset::TotalBytes() const {
  uint64_t total = 0;
  for (const KvPair& kv : pairs) total += kv.key.size() + kv.value.size();
  return total;
}

std::string EncodeTermList(const std::vector<uint32_t>& terms) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(terms.size()));
  uint32_t prev = 0;
  for (uint32_t term : terms) {  // Delta-encoded (terms are sorted).
    PutVarint32(&out, term - prev);
    prev = term;
  }
  return out;
}

Status DecodeTermList(const Slice& value, std::vector<uint32_t>* terms) {
  terms->clear();
  Slice in = value;
  uint32_t count = 0;
  if (!GetVarint32(&in, &count)) return Status::Corruption("term count");
  terms->reserve(count);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint32(&in, &delta)) return Status::Corruption("term delta");
    prev += delta;
    terms->push_back(prev);
  }
  return Status::OK();
}

std::string EncodeUrlList(const std::vector<std::string>& urls) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(urls.size()));
  for (const std::string& url : urls) PutLengthPrefixedSlice(&out, url);
  return out;
}

Status DecodeUrlList(const Slice& value, std::vector<std::string>* urls) {
  urls->clear();
  Slice in = value;
  uint32_t count = 0;
  if (!GetVarint32(&in, &count)) return Status::Corruption("url count");
  urls->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Slice url;
    if (!GetLengthPrefixedSlice(&in, &url)) return Status::Corruption("url");
    urls->push_back(url.ToString());
  }
  return Status::OK();
}

std::string TermKey(uint32_t term) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "term:%08u", term);
  return buf;
}

IndexDataset BuildForwardIndex(const Corpus& corpus) {
  IndexDataset dataset;
  dataset.type = IndexType::kForward;
  dataset.version = corpus.version();
  dataset.pairs.reserve(corpus.documents().size());
  for (const Document& doc : corpus.documents()) {
    dataset.pairs.push_back(
        KvPair{doc.url, EncodeTermList(corpus.TermsOf(doc))});
  }
  return dataset;
}

IndexDataset BuildSummaryIndex(const Corpus& corpus) {
  IndexDataset dataset;
  dataset.type = IndexType::kSummary;
  dataset.version = corpus.version();
  dataset.pairs.reserve(corpus.documents().size());
  for (const Document& doc : corpus.documents()) {
    dataset.pairs.push_back(KvPair{doc.url, corpus.AbstractOf(doc)});
  }
  return dataset;
}

IndexDataset BuildInvertedIndex(const Corpus& corpus,
                                const IndexDataset& forward) {
  std::map<uint32_t, std::vector<std::string>> postings;
  std::vector<uint32_t> terms;
  for (const KvPair& kv : forward.pairs) {
    if (!DecodeTermList(kv.value, &terms).ok()) continue;
    for (uint32_t term : terms) postings[term].push_back(kv.key);
  }
  IndexDataset dataset;
  dataset.type = IndexType::kInverted;
  dataset.version = corpus.version();
  dataset.pairs.reserve(postings.size());
  for (auto& [term, urls] : postings) {
    std::sort(urls.begin(), urls.end());
    dataset.pairs.push_back(KvPair{TermKey(term), EncodeUrlList(urls)});
  }
  return dataset;
}

}  // namespace directload::webindex
