#ifndef DIRECTLOAD_INDEX_BUILDERS_H_
#define DIRECTLOAD_INDEX_BUILDERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "index/corpus.h"

namespace directload::webindex {

/// The three index datasets of the paper's Section 1.1.1:
///   forward  — <URL, terms>      (input to inverted-index construction)
///   inverted — <term, URLs>      (stored in all six data centers)
///   summary  — <URL, abstract>   (stored in three data centers)
enum class IndexType { kForward, kInverted, kSummary };

std::string_view IndexTypeName(IndexType type);

struct KvPair {
  std::string key;
  std::string value;
};

/// One version's worth of one index dataset.
struct IndexDataset {
  IndexType type = IndexType::kForward;
  uint64_t version = 0;
  std::vector<KvPair> pairs;

  uint64_t TotalBytes() const;
};

/// Builds the forward index <URL, terms> for the corpus's current version.
IndexDataset BuildForwardIndex(const Corpus& corpus);

/// Builds the summary index <URL, abstract>.
IndexDataset BuildSummaryIndex(const Corpus& corpus);

/// Builds the inverted index <term, URLs> from a forward index.
IndexDataset BuildInvertedIndex(const Corpus& corpus,
                                const IndexDataset& forward);

/// Serialization helpers for index values.
std::string EncodeTermList(const std::vector<uint32_t>& terms);
Status DecodeTermList(const Slice& value, std::vector<uint32_t>* terms);
std::string EncodeUrlList(const std::vector<std::string>& urls);
Status DecodeUrlList(const Slice& value, std::vector<std::string>* urls);

/// Key of a term in the inverted index ("term:%08u").
std::string TermKey(uint32_t term);

}  // namespace directload::webindex

#endif  // DIRECTLOAD_INDEX_BUILDERS_H_
