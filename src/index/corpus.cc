#include "index/corpus.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace directload::webindex {

Corpus::Corpus(const CorpusOptions& options)
    : options_(options), rng_(options.seed) {
  docs_.reserve(options_.num_docs);
  for (uint64_t i = 0; i < options_.num_docs; ++i) {
    Document doc;
    doc.doc_id = i;
    char url[32];
    // 20-byte keys, as in the paper's Section 4.1 workload.
    std::snprintf(url, sizeof(url), "url:%016llu",
                  static_cast<unsigned long long>(i));
    doc.url.assign(url, 20);
    doc.vip = rng_.Bernoulli(options_.vip_fraction);
    doc.content_seed = rng_.Next();
    doc.last_modified_version = 1;
    docs_.push_back(std::move(doc));
  }
  version_ = 1;
  changed_last_round_ = options_.num_docs;
}

uint64_t Corpus::AdvanceVersion() {
  return AdvanceVersionWithChangeRate(options_.change_rate);
}

uint64_t Corpus::AdvanceVersionWithChangeRate(double change_rate) {
  return AdvanceVersionTiered(change_rate, change_rate);
}

uint64_t Corpus::AdvanceVersionTiered(double vip_change_rate,
                                      double nonvip_change_rate) {
  ++version_;
  changed_last_round_ = 0;
  for (Document& doc : docs_) {
    const double rate = doc.vip ? vip_change_rate : nonvip_change_rate;
    if (rng_.Bernoulli(rate)) {
      doc.content_seed = rng_.Next();
      doc.last_modified_version = version_;
      ++changed_last_round_;
    }
  }
  return version_;
}

std::vector<uint32_t> Corpus::TermsOf(const Document& doc) const {
  // Deterministic per content seed: popular terms via a Zipfian draw.
  ZipfianGenerator zipf(options_.vocab_size, options_.zipf_theta,
                        doc.content_seed);
  std::set<uint32_t> terms;
  // Draw until we have the target count (duplicates collapse).
  Random extra(doc.content_seed ^ 0x7e57);
  while (terms.size() < options_.terms_per_doc) {
    if (extra.Bernoulli(0.8)) {
      terms.insert(static_cast<uint32_t>(zipf.Next()));
    } else {
      terms.insert(static_cast<uint32_t>(extra.Uniform(options_.vocab_size)));
    }
  }
  return std::vector<uint32_t>(terms.begin(), terms.end());
}

std::string Corpus::AbstractOf(const Document& doc) const {
  Random content(doc.content_seed);
  // Mildly variable sizes around the configured mean.
  const uint32_t size = options_.abstract_bytes / 2 +
                        static_cast<uint32_t>(
                            content.Uniform(options_.abstract_bytes));
  return content.NextString(size);
}

}  // namespace directload::webindex
