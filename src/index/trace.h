#ifndef DIRECTLOAD_INDEX_TRACE_H_
#define DIRECTLOAD_INDEX_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "qindb/qindb.h"

namespace directload::webindex {

/// A serializable operation trace. The paper's evaluation replays
/// production workloads against the storage engines; this format lets a
/// user capture their own stream (or a synthetic one) and replay it
/// deterministically — the substitute for Baidu's internal traces.
enum class TraceOp : uint8_t {
  kPut = 1,       // Complete pair.
  kDedupPut = 2,  // Value removed upstream (the 'r' flag).
  kDel = 3,
  kGet = 4,
  kDropVersion = 5,  // key unused.
};

struct TraceRecord {
  TraceOp op = TraceOp::kPut;
  std::string key;
  uint64_t version = 0;
  std::string value;  // kPut only.
};

/// Appends one checksum-framed record to `buffer`.
void AppendTraceRecord(std::string* buffer, const TraceRecord& record);

/// Parses the next record from the front of `input`, advancing it.
/// Corruption (bad checksum / truncation) fails without consuming.
Status ReadTraceRecord(Slice* input, TraceRecord* record);

/// Parses a whole trace buffer.
Result<std::vector<TraceRecord>> ParseTrace(const Slice& buffer);

/// Replays a trace against a QinDB engine. GETs tolerate NotFound (the
/// trace may reference pruned versions); any other error aborts the replay.
struct TraceReplayStats {
  uint64_t puts = 0;
  uint64_t dedup_puts = 0;
  uint64_t dels = 0;
  uint64_t gets = 0;
  uint64_t get_misses = 0;
  uint64_t versions_dropped = 0;
};
Result<TraceReplayStats> ReplayTrace(const Slice& buffer, qindb::QinDb* db);

/// Host-filesystem persistence (traces are operator artifacts, not
/// simulated-device contents).
Status SaveTraceFile(const std::string& path, const Slice& buffer);
Result<std::string> LoadTraceFile(const std::string& path);

}  // namespace directload::webindex

#endif  // DIRECTLOAD_INDEX_TRACE_H_
