#ifndef DIRECTLOAD_INDEX_CORPUS_H_
#define DIRECTLOAD_INDEX_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"

namespace directload::webindex {

/// Parameters of the synthetic web corpus. Defaults follow the paper's
/// workload description scaled to laptop size: 20-byte URL keys, ~20 KB
/// summary values (Section 4.1), and ≈70 % of documents unchanged between
/// consecutive crawl rounds (Section 2.2), i.e. change_rate ≈ 0.3.
struct CorpusOptions {
  uint64_t num_docs = 2000;
  uint32_t vocab_size = 20000;
  uint32_t terms_per_doc = 50;
  double zipf_theta = 0.8;      // Term-popularity skew.
  double change_rate = 0.3;     // Fraction of docs modified per crawl round.
  double vip_fraction = 0.2;    // High-quality tier (serves most queries).
  uint32_t abstract_bytes = 20 << 10;
  uint64_t seed = 42;
};

/// One crawled document. Content (terms and abstract) is a deterministic
/// function of `content_seed`, so two documents with equal seeds have
/// byte-identical index values — which is exactly what Bifrost's signature
/// dedup detects.
struct Document {
  uint64_t doc_id = 0;
  std::string url;  // 20 bytes.
  bool vip = false;
  uint64_t content_seed = 0;
  uint64_t last_modified_version = 0;
};

/// A synthetic evolving web: each AdvanceVersion() simulates one crawl
/// round, re-seeding the content of a `change_rate` fraction of documents.
class Corpus {
 public:
  explicit Corpus(const CorpusOptions& options);

  /// Simulates a crawl round; returns the new version number. The first
  /// version is 1 (set by the constructor).
  uint64_t AdvanceVersion();

  /// Like AdvanceVersion but with an explicit change rate for this round
  /// (drives the dedup-ratio sweeps of Figure 9).
  uint64_t AdvanceVersionWithChangeRate(double change_rate);

  /// Tiered crawl round: VIP documents (high-quality pages serving >80% of
  /// queries, Section 1.1.1) and non-VIP documents mutate at different
  /// rates — "the VIP index data are updated more frequently" (Section 3).
  /// A VIP-only round passes nonvip_change_rate = 0.
  uint64_t AdvanceVersionTiered(double vip_change_rate,
                                double nonvip_change_rate);

  uint64_t version() const { return version_; }
  const CorpusOptions& options() const { return options_; }
  const std::vector<Document>& documents() const { return docs_; }
  uint64_t docs_changed_last_round() const { return changed_last_round_; }

  /// Sorted unique term ids of the document's current content.
  std::vector<uint32_t> TermsOf(const Document& doc) const;

  /// The document's summary abstract (value of the summary index).
  std::string AbstractOf(const Document& doc) const;

 private:
  CorpusOptions options_;
  std::vector<Document> docs_;
  Random rng_;
  uint64_t version_ = 0;
  uint64_t changed_last_round_ = 0;
};

}  // namespace directload::webindex

#endif  // DIRECTLOAD_INDEX_CORPUS_H_
