#include "index/trace.h"

#include <fstream>

#include "common/coding.h"
#include "common/crc32c.h"

namespace directload::webindex {

namespace {
// Frame: fixed32 masked CRC (over everything after) | op byte |
//        varint64 version | lp key | lp value.
}  // namespace

void AppendTraceRecord(std::string* buffer, const TraceRecord& record) {
  std::string body;
  body.push_back(static_cast<char>(record.op));
  PutVarint64(&body, record.version);
  PutLengthPrefixedSlice(&body, record.key);
  PutLengthPrefixedSlice(&body, record.value);
  PutFixed32(buffer, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  PutVarint32(buffer, static_cast<uint32_t>(body.size()));
  buffer->append(body);
}

Status ReadTraceRecord(Slice* input, TraceRecord* record) {
  Slice in = *input;
  if (in.size() < 5) return Status::Corruption("truncated trace frame");
  const uint32_t expected = crc32c::Unmask(DecodeFixed32(in.data()));
  in.remove_prefix(4);
  uint32_t body_len = 0;
  if (!GetVarint32(&in, &body_len) || in.size() < body_len) {
    return Status::Corruption("truncated trace body");
  }
  const Slice body(in.data(), body_len);
  if (crc32c::Value(body.data(), body.size()) != expected) {
    return Status::Corruption("trace record checksum mismatch");
  }
  Slice cursor = body;
  if (cursor.empty()) return Status::Corruption("empty trace body");
  const auto op = static_cast<TraceOp>(cursor[0]);
  cursor.remove_prefix(1);
  uint64_t version = 0;
  Slice key, value;
  if (!GetVarint64(&cursor, &version) ||
      !GetLengthPrefixedSlice(&cursor, &key) ||
      !GetLengthPrefixedSlice(&cursor, &value)) {
    return Status::Corruption("bad trace fields");
  }
  switch (op) {
    case TraceOp::kPut:
    case TraceOp::kDedupPut:
    case TraceOp::kDel:
    case TraceOp::kGet:
    case TraceOp::kDropVersion:
      break;
    default:
      return Status::Corruption("unknown trace op");
  }
  record->op = op;
  record->version = version;
  record->key = key.ToString();
  record->value = value.ToString();
  input->remove_prefix((body.data() + body_len) - input->data());
  return Status::OK();
}

Result<std::vector<TraceRecord>> ParseTrace(const Slice& buffer) {
  std::vector<TraceRecord> records;
  Slice in = buffer;
  while (!in.empty()) {
    TraceRecord record;
    Status s = ReadTraceRecord(&in, &record);
    if (!s.ok()) return s;
    records.push_back(std::move(record));
  }
  return records;
}

Result<TraceReplayStats> ReplayTrace(const Slice& buffer, qindb::QinDb* db) {
  TraceReplayStats stats;
  Slice in = buffer;
  while (!in.empty()) {
    TraceRecord record;
    Status s = ReadTraceRecord(&in, &record);
    if (!s.ok()) return s;
    switch (record.op) {
      case TraceOp::kPut:
        s = db->Put(record.key, record.version, record.value);
        if (!s.ok()) return s;
        ++stats.puts;
        break;
      case TraceOp::kDedupPut:
        s = db->Put(record.key, record.version, Slice(), /*dedup=*/true);
        if (!s.ok()) return s;
        ++stats.dedup_puts;
        break;
      case TraceOp::kDel: {
        Status del = db->Del(record.key, record.version);
        if (!del.ok() && !del.IsNotFound()) return del;
        ++stats.dels;
        break;
      }
      case TraceOp::kGet: {
        Result<std::string> got = db->Get(record.key, record.version);
        ++stats.gets;
        if (!got.ok()) {
          if (!got.status().IsNotFound()) return got.status();
          ++stats.get_misses;
        }
        break;
      }
      case TraceOp::kDropVersion: {
        Result<uint64_t> n = db->DropVersion(record.version);
        if (!n.ok()) return n.status();
        ++stats.versions_dropped;
        break;
      }
    }
  }
  return stats;
}

Status SaveTraceFile(const std::string& path, const Slice& buffer) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path);
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::string> LoadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed for " + path);
  return contents;
}

}  // namespace directload::webindex
