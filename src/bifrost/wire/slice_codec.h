#ifndef DIRECTLOAD_BIFROST_WIRE_SLICE_CODEC_H_
#define DIRECTLOAD_BIFROST_WIRE_SLICE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "index/builders.h"

namespace directload::bifrost::wire {

/// On-the-wire encoding of a Bifrost slice, carried in the value field of a
/// kBulkSlice RPC frame. The slice has its own checksum — independent of
/// the RPC frame trailer — so every hop (sender, relay, ingest server) can
/// re-verify the payload end to end (the paper's "Failures in
/// Transmission"):
///
///   offset  size  field
///   0       8     slice id (fixed64; dense, 0-based within the session)
///   8       8     index version (fixed64; must match the session version)
///   16      1     index type (webindex::IndexType)
///   17      4     pair count (fixed32)
///   21      N     pair payload
///   21+N    4     masked CRC32C of bytes [0, 21+N) (crc32c::Mask)
///
///   one pair:
///   0       1     flags (kPairFlagDedup | kPairFlagTombstone)
///   1       ...   varint64 pair version
///   ...     ...   varint32 key length, key bytes
///   ...     ...   varint32 value length, value bytes (empty when the pair
///                 is deduplicated or a tombstone)
///
/// Decoders never trust a declared count or length enough to allocate for
/// bytes that are not actually present — the same discipline as
/// rpc::DecodeBatchOps.

inline constexpr size_t kSliceHeaderBytes = 21;
inline constexpr size_t kSliceTrailerBytes = 4;

/// Smallest possible encoded pair: flags + 1-byte version varint + empty-key
/// length prefix + empty-value length prefix. Used to bound a declared pair
/// count against the payload actually on hand.
inline constexpr size_t kMinPairWireBytes = 4;

/// Pair flag bits (wire values; independent of aof::RecordFlags).
inline constexpr uint8_t kPairFlagDedup = 1u << 0;
inline constexpr uint8_t kPairFlagTombstone = 1u << 1;

/// Parsed slice header fields.
struct SliceHeader {
  uint64_t slice_id = 0;
  uint64_t version = 0;
  webindex::IndexType type = webindex::IndexType::kInverted;
  uint32_t pair_count = 0;
};

/// One decoded pair. `key` and `value` alias the frame bytes handed to
/// DecodeSlicePacket — the caller keeps that buffer alive while using them.
struct PairView {
  Slice key;
  Slice value;
  uint64_t version = 0;
  bool dedup = false;
  bool tombstone = false;
};

/// Appends one encoded pair to `payload`. Deduplicated pairs and tombstones
/// ship value-less regardless of `value`.
void AppendWirePair(std::string* payload, const Slice& key, uint64_t version,
                    const Slice& value, bool dedup, bool tombstone);

/// Wraps a pair payload into a complete slice frame (header + payload +
/// checksum trailer), appended to `dst`.
void EncodeSlicePacket(const SliceHeader& header, const Slice& payload,
                       std::string* dst);

/// Verifies framing and the checksum trailer and fills `header`, WITHOUT
/// decoding pairs — the cheap per-hop integrity check. kCorruption means
/// damaged in flight (re-send the slice); kProtocol means the frame could
/// never have been well-formed.
Status CheckSliceFrame(const Slice& frame, SliceHeader* header);

/// Full decode: CheckSliceFrame plus pair extraction. Pair views alias
/// `frame`'s bytes. The payload must parse to exactly `pair_count` pairs
/// with no trailing bytes.
Status DecodeSlicePacket(const Slice& frame, SliceHeader* header,
                         std::vector<PairView>* pairs);

// -- kBulkBegin payload -----------------------------------------------------

/// What the sender declares when opening a session. Byte totals feed the
/// server's bandwidth accounting; `total_slices` is advisory at begin time
/// (the commit frame carries the authoritative count).
struct BulkBeginInfo {
  uint64_t version = 0;
  uint64_t total_slices = 0;
  uint64_t summary_bytes = 0;
  uint64_t inverted_bytes = 0;
};

void EncodeBulkBegin(const BulkBeginInfo& info, std::string* dst);
Status DecodeBulkBegin(const Slice& data, BulkBeginInfo* out);

// -- kBulkCommit payload ----------------------------------------------------

/// The commit request's value field: the total number of slices the session
/// must have landed (ids 0 .. expected_slices-1).
void EncodeBulkCommit(uint64_t expected_slices, std::string* dst);
Status DecodeBulkCommit(const Slice& data, uint64_t* expected_slices);

// -- Missing-slice list (kBulkCommit kUnavailable response) -----------------

/// varint64 count, then one fixed64 slice id each.
void EncodeMissingSlices(const std::vector<uint64_t>& slice_ids,
                         std::string* dst);
Status DecodeMissingSlices(const Slice& data,
                           std::vector<uint64_t>* slice_ids);

}  // namespace directload::bifrost::wire

#endif  // DIRECTLOAD_BIFROST_WIRE_SLICE_CODEC_H_
