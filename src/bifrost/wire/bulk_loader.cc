#include "bifrost/wire/bulk_loader.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"

namespace directload::bifrost::wire {

/// Flips one bit in an outgoing slice frame (corrupt action) — models
/// damage in transit between the sender and the ingest server. The server's
/// per-hop slice checksum catches it and answers kCorruption; the loader
/// repairs by re-sending pristine bytes.
DIRECTLOAD_FAILPOINT_DEFINE(fp_bulk_slice_corrupt, "bulk_slice_corrupt");

BulkLoader::BulkLoader(rpc::RpcClient* client, BulkLoadOptions options)
    : client_(client), options_(std::move(options)) {}

void BulkLoader::PackStream(uint64_t version,
                            const std::vector<ShippedPair>& pairs,
                            const std::vector<BulkDelete>& deletes,
                            webindex::IndexType type) {
  std::string payload;
  uint32_t count = 0;
  auto seal = [&]() {
    if (count == 0) return;
    SliceHeader header;
    header.slice_id = slices_.size();
    header.version = version;
    header.type = type;
    header.pair_count = count;
    PendingSlice slice;
    slice.type = type;
    EncodeSlicePacket(header, payload, &slice.frame_value);
    slices_.push_back(std::move(slice));
    payload.clear();
    count = 0;
  };
  for (const ShippedPair& pair : pairs) {
    AppendWirePair(&payload, pair.key, version, pair.value, pair.dedup,
                   /*tombstone=*/false);
    ++count;
    ++report_.pairs_total;
    if (payload.size() >= options_.slice_bytes) seal();
  }
  for (const BulkDelete& del : deletes) {
    AppendWirePair(&payload, del.key, del.version, Slice(), /*dedup=*/false,
                   /*tombstone=*/true);
    ++count;
    ++report_.pairs_total;
    if (payload.size() >= options_.slice_bytes) seal();
  }
  seal();
}

Result<uint64_t> BulkLoader::SendSlice(uint64_t version, uint64_t id) {
  PendingSlice& slice = slices_[id];
  WallRateLimiter* limiter = slice.type == webindex::IndexType::kSummary
                                 ? summary_limiter_.get()
                                 : inverted_limiter_.get();
  if (limiter != nullptr) {
    limiter->Throttle(static_cast<double>(slice.frame_value.size()));
  }
  rpc::Frame frame;
  frame.op = rpc::Opcode::kBulkSlice;
  frame.request_id = client_->NextRequestId();
  frame.version = version;
  frame.value = slice.frame_value;
#if DIRECTLOAD_FAILPOINTS_COMPILED
  if (fp_bulk_slice_corrupt->armed()) {
    DL_DISCARD_STATUS(
        "corrupt-only site; damage surfaces as the server's checksum NACK",
        fp_bulk_slice_corrupt->MaybeFailIo(&frame.value, nullptr));
  }
#endif
  ++slice.sends;
  if (slice.sends > 1) ++report_.slices_resent;
  report_.bytes_shipped += frame.value.size();
  if (Status s = client_->Send(frame); !s.ok()) return s;
  return frame.request_id;
}

Status BulkLoader::ReceiveOne(
    uint64_t version, std::vector<std::pair<uint64_t, uint64_t>>* outstanding) {
  Result<rpc::Frame> resp = client_->Receive();
  if (!resp.ok()) return resp.status();
  const rpc::Frame& frame = resp.value();
  auto it = std::find_if(
      outstanding->begin(), outstanding->end(),
      [&](const auto& entry) { return entry.first == frame.request_id; });
  if (it == outstanding->end()) {
    return Status::Protocol("bulk ack for an unknown request id");
  }
  const uint64_t id = it->second;
  outstanding->erase(it);
  if (frame.status == StatusCode::kOk) {
    slices_[id].acked = true;
    return Status::OK();
  }
  const bool checksum_nack = frame.status == StatusCode::kCorruption;
  // Transient rejections — admission control, a momentarily unreachable
  // replica, an injected ingest-append failure — are repaired exactly like
  // wire damage: re-send the slice, bounded by the same budget. Anything
  // else (protocol, version mismatch, lost session) is systematic and
  // fails the load.
  const bool transient = frame.status == StatusCode::kBusy ||
                         frame.status == StatusCode::kUnavailable ||
                         frame.status == StatusCode::kTimedOut ||
                         frame.status == StatusCode::kIOError;
  if (checksum_nack || transient) {
    if (checksum_nack) ++report_.checksum_nacks;
    if (slices_[id].sends > options_.max_resends_per_slice) {
      return rpc::StatusFromWire(frame.status, frame.value);
    }
    Result<uint64_t> rid = SendSlice(version, id);
    if (!rid.ok()) return rid.status();
    outstanding->emplace_back(rid.value(), id);
    return Status::OK();
  }
  return rpc::StatusFromWire(frame.status, frame.value);
}

Status BulkLoader::ShipAll(uint64_t version, const std::vector<uint64_t>& ids) {
  std::vector<std::pair<uint64_t, uint64_t>> outstanding;
  for (uint64_t id : ids) {
    while (outstanding.size() >= options_.send_window) {
      if (Status s = ReceiveOne(version, &outstanding); !s.ok()) return s;
    }
    Result<uint64_t> rid = SendSlice(version, id);
    if (!rid.ok()) return rid.status();
    outstanding.emplace_back(rid.value(), id);
  }
  while (!outstanding.empty()) {
    if (Status s = ReceiveOne(version, &outstanding); !s.ok()) return s;
  }
  return Status::OK();
}

Result<rpc::Frame> BulkLoader::Exchange(rpc::Frame request) {
  // A kBusy answer is admission control shedding load, not a verdict on
  // the session — back off briefly and re-ask, bounded.
  for (int attempt = 0;; ++attempt) {
    request.request_id = client_->NextRequestId();
    if (Status s = client_->Send(request); !s.ok()) return s;
    Result<rpc::Frame> resp = client_->Receive();
    if (!resp.ok()) return resp;
    if (resp.value().request_id != request.request_id) {
      return Status::Protocol("bulk response out of order");
    }
    if (resp.value().status != StatusCode::kBusy || attempt >= 16) {
      return resp;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void BulkLoader::Abort(uint64_t version) {
  rpc::Frame abort;
  abort.op = rpc::Opcode::kBulkAbort;
  abort.version = version;
  DL_DISCARD_STATUS("best-effort session abort; the load already failed",
                    Exchange(std::move(abort)).status());
}

Status BulkLoader::Load(uint64_t version,
                        const std::vector<ShippedPair>& summary,
                        const std::vector<ShippedPair>& inverted,
                        const std::vector<BulkDelete>& deletes,
                        BulkLoadReport* report) {
  slices_.clear();
  report_ = BulkLoadReport();
  // A sealed slice holds at most slice_bytes plus one pair; leave generous
  // headroom under the negotiated frame bound for the header/trailer and
  // that final pair.
  if (options_.slice_bytes == 0 ||
      options_.slice_bytes > rpc::kMaxBulkBodyBytes / 2) {
    return Status::InvalidArgument(
        "slice_bytes must fit the negotiated bulk frame bound");
  }

  PackStream(version, summary, {}, webindex::IndexType::kSummary);
  const size_t summary_slices = slices_.size();
  PackStream(version, inverted, deletes, webindex::IndexType::kInverted);
  report_.slices_total = slices_.size();

  uint64_t summary_bytes = 0;
  uint64_t inverted_bytes = 0;
  for (size_t i = 0; i < slices_.size(); ++i) {
    (i < summary_slices ? summary_bytes : inverted_bytes) +=
        slices_[i].frame_value.size();
  }

  // The empirical 40/60 reservation: one bucket per stream, split from the
  // total budget.
  summary_limiter_.reset();
  inverted_limiter_.reset();
  if (options_.bandwidth_bytes_per_sec > 0) {
    const double burst = static_cast<double>(options_.slice_bytes) * 2;
    summary_limiter_ = std::make_unique<WallRateLimiter>(
        options_.bandwidth_bytes_per_sec * options_.summary_share, burst);
    inverted_limiter_ = std::make_unique<WallRateLimiter>(
        options_.bandwidth_bytes_per_sec * (1.0 - options_.summary_share),
        burst);
  }

  // Open the session; a successful ack also negotiates the frame bound up
  // to kMaxBulkBodyBytes on the server side.
  BulkBeginInfo info;
  info.version = version;
  info.total_slices = slices_.size();
  info.summary_bytes = summary_bytes;
  info.inverted_bytes = inverted_bytes;
  rpc::Frame begin;
  begin.op = rpc::Opcode::kBulkBegin;
  begin.version = version;
  EncodeBulkBegin(info, &begin.value);
  Result<rpc::Frame> begin_resp = Exchange(std::move(begin));
  if (!begin_resp.ok()) return begin_resp.status();
  if (begin_resp.value().status != StatusCode::kOk) {
    return rpc::StatusFromWire(begin_resp.value().status,
                               begin_resp.value().value);
  }

  std::vector<uint64_t> ids(slices_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  if (Status s = ShipAll(version, ids); !s.ok()) {
    Abort(version);
    return s;
  }

  // Commit; each extra round repairs the slices the server reports missing.
  for (int round = 0; round < options_.max_commit_rounds; ++round) {
    rpc::Frame commit;
    commit.op = rpc::Opcode::kBulkCommit;
    commit.version = version;
    EncodeBulkCommit(slices_.size(), &commit.value);
    Result<rpc::Frame> resp = Exchange(std::move(commit));
    if (!resp.ok()) {
      Abort(version);
      return resp.status();
    }
    if (resp.value().status == StatusCode::kOk) {
      if (report != nullptr) *report = report_;
      return Status::OK();
    }
    if (resp.value().status != StatusCode::kUnavailable) {
      Abort(version);
      return rpc::StatusFromWire(resp.value().status, resp.value().value);
    }
    std::vector<uint64_t> missing;
    if (Status s = DecodeMissingSlices(resp.value().value, &missing);
        !s.ok()) {
      Abort(version);
      return s;
    }
    for (uint64_t id : missing) {
      if (id >= slices_.size()) {
        Abort(version);
        return Status::Protocol("server reported a slice id never sent");
      }
    }
    ++report_.repair_rounds;
    if (Status s = ShipAll(version, missing); !s.ok()) {
      Abort(version);
      return s;
    }
  }
  Abort(version);
  return Status::Unavailable(
      "bulk commit still missing slices after repair rounds");
}

}  // namespace directload::bifrost::wire
