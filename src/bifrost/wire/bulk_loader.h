#ifndef DIRECTLOAD_BIFROST_WIRE_BULK_LOADER_H_
#define DIRECTLOAD_BIFROST_WIRE_BULK_LOADER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bifrost/dedup.h"
#include "bifrost/wire/slice_codec.h"
#include "common/rate_limiter.h"
#include "common/result.h"
#include "common/status.h"
#include "index/builders.h"
#include "rpc/client.h"

namespace directload::bifrost::wire {

/// An explicit delete shipped with a bulk load (the paper's `d`-flagged
/// pairs): at commit the named key's newest live version is marked deleted.
struct BulkDelete {
  std::string key;
  uint64_t version = 0;  // The version being deleted (informational).
};

struct BulkLoadOptions {
  /// Target pair-payload bytes per slice. Encoded slices must fit the
  /// negotiated frame bound — the loader refuses values that could not.
  uint64_t slice_bytes = 1u << 20;
  /// Maximum unacknowledged slices in flight (pipelined over one
  /// connection).
  size_t send_window = 8;
  /// Total shipping budget in bytes/sec across both streams; <= 0 means
  /// unpaced. Split summary_share : (1 - summary_share) between summary
  /// and inverted slices — the paper's empirical 40/60 reservation.
  double bandwidth_bytes_per_sec = 0;
  double summary_share = 0.4;
  /// A slice answered kCorruption (damaged in flight) is re-sent up to this
  /// many times before the load fails.
  int max_resends_per_slice = 8;
  /// Commit attempts: each round re-sends the slices the server reports
  /// missing and tries again.
  int max_commit_rounds = 4;
};

struct BulkLoadReport {
  uint64_t slices_total = 0;
  uint64_t pairs_total = 0;
  uint64_t bytes_shipped = 0;  // Encoded slice bytes, including re-sends.
  uint64_t slices_resent = 0;
  uint64_t checksum_nacks = 0;  // kCorruption answers (repaired by re-send).
  uint64_t repair_rounds = 0;   // Commit rounds that found missing slices.
};

/// Streams one index version into a serving node as a bulk-ingest session:
/// kBulkBegin, pipelined kBulkSlice frames under a send window, then
/// kBulkCommit — repairing checksum-failed or missing slices by re-sending.
/// On any unrecoverable error the loader best-effort aborts the session so
/// the server rolls the staged records back.
///
/// Not thread-safe; one loader drives one client connection.
class BulkLoader {
 public:
  BulkLoader(rpc::RpcClient* client, BulkLoadOptions options);

  /// Ships `summary` and `inverted` pairs (Deduplicator output — `dedup`
  /// pairs travel value-less) plus explicit `deletes` as version `version`,
  /// commits, and returns once the version is live on the server. `report`
  /// (optional) receives shipping counters.
  Status Load(uint64_t version, const std::vector<ShippedPair>& summary,
              const std::vector<ShippedPair>& inverted,
              const std::vector<BulkDelete>& deletes,
              BulkLoadReport* report = nullptr);

 private:
  struct PendingSlice {
    std::string frame_value;  // Pristine encoded slice (header..trailer).
    webindex::IndexType type = webindex::IndexType::kInverted;
    bool acked = false;
    int sends = 0;
  };

  /// Packs one stream of pairs into wire slices appended to `slices_`.
  void PackStream(uint64_t version, const std::vector<ShippedPair>& pairs,
                  const std::vector<BulkDelete>& deletes,
                  webindex::IndexType type);

  /// Ships slice `id` and returns the request id used (fresh each send),
  /// pacing against the stream's rate limiter. The failpoint
  /// "bulk_slice_corrupt" flips a bit in the outgoing copy — never in the
  /// pristine bytes — so the server's per-hop checksum catches it and the
  /// re-send repairs it.
  Result<uint64_t> SendSlice(uint64_t version, uint64_t id);

  /// Receives one response and applies it: ack, bounded re-send on
  /// kCorruption, or hard failure. `outstanding` tracks in-flight ids by
  /// request id.
  Status ReceiveOne(uint64_t version,
                    std::vector<std::pair<uint64_t, uint64_t>>* outstanding);

  /// Sends the ids in `ids` under the send window and drains every ack.
  Status ShipAll(uint64_t version, const std::vector<uint64_t>& ids);

  /// One blocking request/response exchange (no other frames in flight).
  /// kBusy answers (admission shedding) are retried a bounded number of
  /// times with a short backoff.
  Result<rpc::Frame> Exchange(rpc::Frame request);

  void Abort(uint64_t version);

  rpc::RpcClient* const client_;
  const BulkLoadOptions options_;
  std::vector<PendingSlice> slices_;
  BulkLoadReport report_;
  std::unique_ptr<WallRateLimiter> summary_limiter_;
  std::unique_ptr<WallRateLimiter> inverted_limiter_;
};

}  // namespace directload::bifrost::wire

#endif  // DIRECTLOAD_BIFROST_WIRE_BULK_LOADER_H_
