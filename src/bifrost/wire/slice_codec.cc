#include "bifrost/wire/slice_codec.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace directload::bifrost::wire {

void AppendWirePair(std::string* payload, const Slice& key, uint64_t version,
                    const Slice& value, bool dedup, bool tombstone) {
  uint8_t flags = 0;
  if (dedup) flags |= kPairFlagDedup;
  if (tombstone) flags |= kPairFlagTombstone;
  payload->push_back(static_cast<char>(flags));
  PutVarint64(payload, version);
  PutLengthPrefixedSlice(payload, key);
  PutLengthPrefixedSlice(payload, (dedup || tombstone) ? Slice() : value);
}

void EncodeSlicePacket(const SliceHeader& header, const Slice& payload,
                       std::string* dst) {
  const size_t start = dst->size();
  PutFixed64(dst, header.slice_id);
  PutFixed64(dst, header.version);
  dst->push_back(static_cast<char>(header.type));
  PutFixed32(dst, header.pair_count);
  dst->append(payload.data(), payload.size());
  const uint32_t crc =
      crc32c::Value(dst->data() + start, dst->size() - start);
  PutFixed32(dst, crc32c::Mask(crc));
}

Status CheckSliceFrame(const Slice& frame, SliceHeader* header) {
  if (frame.size() < kSliceHeaderBytes + kSliceTrailerBytes) {
    return Status::Protocol("short slice frame");
  }
  const size_t body_len = frame.size() - kSliceTrailerBytes;
  const uint32_t expected =
      crc32c::Unmask(DecodeFixed32(frame.data() + body_len));
  const uint32_t actual = crc32c::Value(frame.data(), body_len);
  if (expected != actual) {
    return Status::Corruption("slice checksum mismatch");
  }
  header->slice_id = DecodeFixed64(frame.data());
  header->version = DecodeFixed64(frame.data() + 8);
  const uint8_t type = static_cast<uint8_t>(frame[16]);
  if (type > static_cast<uint8_t>(webindex::IndexType::kSummary)) {
    return Status::Protocol("bad slice index type");
  }
  header->type = static_cast<webindex::IndexType>(type);
  header->pair_count = DecodeFixed32(frame.data() + 17);
  return Status::OK();
}

Status DecodeSlicePacket(const Slice& frame, SliceHeader* header,
                         std::vector<PairView>* pairs) {
  pairs->clear();
  if (Status s = CheckSliceFrame(frame, header); !s.ok()) return s;
  Slice rest(frame.data() + kSliceHeaderBytes,
             frame.size() - kSliceHeaderBytes - kSliceTrailerBytes);
  if (header->pair_count > rest.size() / kMinPairWireBytes) {
    return Status::Protocol("slice pair count exceeds payload");
  }
  pairs->reserve(header->pair_count);
  for (uint32_t i = 0; i < header->pair_count; ++i) {
    if (rest.empty()) {
      return Status::Protocol("slice payload short of pair count");
    }
    PairView pair;
    const uint8_t flags = static_cast<uint8_t>(rest[0]);
    if ((flags & ~(kPairFlagDedup | kPairFlagTombstone)) != 0) {
      return Status::Protocol("bad slice pair flags");
    }
    pair.dedup = (flags & kPairFlagDedup) != 0;
    pair.tombstone = (flags & kPairFlagTombstone) != 0;
    rest.remove_prefix(1);
    if (!GetVarint64(&rest, &pair.version)) {
      return Status::Protocol("bad slice pair version");
    }
    if (!GetLengthPrefixedSlice(&rest, &pair.key)) {
      return Status::Protocol("bad slice pair key");
    }
    if (!GetLengthPrefixedSlice(&rest, &pair.value)) {
      return Status::Protocol("bad slice pair value");
    }
    if ((pair.dedup || pair.tombstone) && !pair.value.empty()) {
      return Status::Protocol("value on a value-less slice pair");
    }
    pairs->push_back(pair);
  }
  if (!rest.empty()) {
    return Status::Protocol("trailing bytes after slice pairs");
  }
  return Status::OK();
}

void EncodeBulkBegin(const BulkBeginInfo& info, std::string* dst) {
  PutFixed64(dst, info.version);
  PutFixed64(dst, info.total_slices);
  PutFixed64(dst, info.summary_bytes);
  PutFixed64(dst, info.inverted_bytes);
}

Status DecodeBulkBegin(const Slice& data, BulkBeginInfo* out) {
  if (data.size() != 32) {
    return Status::Protocol("bad bulk-begin payload size");
  }
  out->version = DecodeFixed64(data.data());
  out->total_slices = DecodeFixed64(data.data() + 8);
  out->summary_bytes = DecodeFixed64(data.data() + 16);
  out->inverted_bytes = DecodeFixed64(data.data() + 24);
  return Status::OK();
}

void EncodeBulkCommit(uint64_t expected_slices, std::string* dst) {
  PutFixed64(dst, expected_slices);
}

Status DecodeBulkCommit(const Slice& data, uint64_t* expected_slices) {
  if (data.size() != 8) {
    return Status::Protocol("bad bulk-commit payload size");
  }
  *expected_slices = DecodeFixed64(data.data());
  return Status::OK();
}

void EncodeMissingSlices(const std::vector<uint64_t>& slice_ids,
                         std::string* dst) {
  PutVarint64(dst, slice_ids.size());
  for (uint64_t id : slice_ids) PutFixed64(dst, id);
}

Status DecodeMissingSlices(const Slice& data,
                           std::vector<uint64_t>* slice_ids) {
  slice_ids->clear();
  Slice rest = data;
  uint64_t count = 0;
  if (!GetVarint64(&rest, &count)) {
    return Status::Protocol("bad missing-slice count");
  }
  if (count > rest.size() / 8) {
    return Status::Protocol("missing-slice count exceeds payload");
  }
  slice_ids->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    slice_ids->push_back(DecodeFixed64(rest.data()));
    rest.remove_prefix(8);
  }
  if (!rest.empty()) {
    return Status::Protocol("trailing bytes after missing-slice ids");
  }
  return Status::OK();
}

}  // namespace directload::bifrost::wire
