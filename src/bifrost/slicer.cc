#include "bifrost/slicer.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace directload::bifrost {

namespace {

void AppendPair(std::string* payload, const ShippedPair& pair) {
  PutLengthPrefixedSlice(payload, pair.key);
  payload->push_back(pair.dedup ? 1 : 0);
  PutLengthPrefixedSlice(payload, pair.value);
}

}  // namespace

std::vector<SlicePacket> PackSlices(const std::vector<ShippedPair>& pairs,
                                    webindex::IndexType type, uint64_t version,
                                    uint64_t slice_bytes,
                                    uint64_t first_slice_id) {
  std::vector<SlicePacket> slices;
  SlicePacket current;
  current.slice_id = first_slice_id;
  current.type = type;
  current.version = version;
  auto seal = [&]() {
    if (current.payload.empty()) return;
    current.checksum =
        crc32c::Mask(crc32c::Value(current.payload.data(), current.payload.size()));
    slices.push_back(std::move(current));
    current = SlicePacket();
    current.slice_id = first_slice_id + slices.size();
    current.type = type;
    current.version = version;
  };
  for (const ShippedPair& pair : pairs) {
    AppendPair(&current.payload, pair);
    if (current.payload.size() >= slice_bytes) seal();
  }
  seal();
  return slices;
}

bool VerifySlice(const SlicePacket& slice) {
  return crc32c::Mask(crc32c::Value(slice.payload.data(),
                                    slice.payload.size())) == slice.checksum;
}

Status UnpackSlice(const SlicePacket& slice, std::vector<ShippedPair>* pairs) {
  pairs->clear();
  if (!VerifySlice(slice)) {
    return Status::Corruption("slice checksum mismatch");
  }
  Slice in(slice.payload);
  while (!in.empty()) {
    ShippedPair pair;
    Slice key, value;
    if (!GetLengthPrefixedSlice(&in, &key) || in.empty()) {
      return Status::Corruption("bad slice pair key");
    }
    pair.dedup = in[0] != 0;
    in.remove_prefix(1);
    if (!GetLengthPrefixedSlice(&in, &value)) {
      return Status::Corruption("bad slice pair value");
    }
    pair.key = key.ToString();
    pair.value = value.ToString();
    pairs->push_back(std::move(pair));
  }
  return Status::OK();
}

void CorruptSlice(SlicePacket* slice, Random* rng) {
  if (slice->payload.empty()) return;
  const size_t pos = rng->Uniform(slice->payload.size());
  slice->payload[pos] = static_cast<char>(slice->payload[pos] ^ 0x20);
}

}  // namespace directload::bifrost
