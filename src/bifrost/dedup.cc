#include "bifrost/dedup.h"

#include "common/hash.h"

namespace directload::bifrost {

std::vector<ShippedPair> Deduplicator::Process(
    const webindex::IndexDataset& dataset, DedupStats* stats) {
  std::vector<ShippedPair> out;
  out.reserve(dataset.pairs.size());
  for (const webindex::KvPair& kv : dataset.pairs) {
    const uint64_t signature = ValueSignature(kv.value);
    ShippedPair shipped;
    shipped.key = kv.key;
    if (enabled_) {
      auto it = signatures_.find(kv.key);
      if (it != signatures_.end() && it->second == signature) {
        shipped.dedup = true;  // Value field removed before delivery.
      } else {
        shipped.value = kv.value;
      }
      signatures_[kv.key] = signature;
    } else {
      shipped.value = kv.value;
    }
    if (stats != nullptr) {
      ++stats->pairs_total;
      stats->pairs_deduped += shipped.dedup ? 1 : 0;
      stats->bytes_total += kv.key.size() + kv.value.size();
      stats->bytes_shipped += shipped.key.size() + shipped.value.size();
    }
    out.push_back(std::move(shipped));
  }
  return out;
}

}  // namespace directload::bifrost
