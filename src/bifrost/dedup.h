#ifndef DIRECTLOAD_BIFROST_DEDUP_H_
#define DIRECTLOAD_BIFROST_DEDUP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/builders.h"

namespace directload::bifrost {

/// A key-value pair as shipped by Bifrost: either complete, or with the
/// value removed because its signature matched the previous version
/// (Section 2.2). Deduplicated pairs become QinDB PUTs with the `r` flag.
struct ShippedPair {
  std::string key;
  std::string value;  // Empty when deduplicated.
  bool dedup = false;
};

struct DedupStats {
  uint64_t pairs_total = 0;
  uint64_t pairs_deduped = 0;
  uint64_t bytes_total = 0;    // Key+value bytes before dedup.
  uint64_t bytes_shipped = 0;  // After removing deduplicated values.

  /// "The proportion of data removed by the deduplication module before
  /// network transmission" (Section 4.2.1).
  double dedup_ratio() const {
    return bytes_total == 0
               ? 0.0
               : 1.0 - static_cast<double>(bytes_shipped) /
                           static_cast<double>(bytes_total);
  }

  void Merge(const DedupStats& other) {
    pairs_total += other.pairs_total;
    pairs_deduped += other.pairs_deduped;
    bytes_total += other.bytes_total;
    bytes_shipped += other.bytes_shipped;
  }
};

/// Removes redundancy across consecutive index versions by comparing value
/// signatures. One deduplicator instance tracks one index dataset's
/// signature history (keyed per index type by the caller).
class Deduplicator {
 public:
  /// `enabled=false` passes everything through (the paper's "without
  /// DirectLoad" baseline in Figure 10).
  explicit Deduplicator(bool enabled = true) : enabled_(enabled) {}

  /// Processes one version of a dataset: pairs whose value signature equals
  /// the previous version's are shipped value-less. Updates the signature
  /// store to this version.
  std::vector<ShippedPair> Process(const webindex::IndexDataset& dataset,
                                   DedupStats* stats);

  size_t tracked_keys() const { return signatures_.size(); }
  bool enabled() const { return enabled_; }

 private:
  bool enabled_;
  std::unordered_map<std::string, uint64_t> signatures_;
};

}  // namespace directload::bifrost

#endif  // DIRECTLOAD_BIFROST_DEDUP_H_
