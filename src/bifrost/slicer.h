#ifndef DIRECTLOAD_BIFROST_SLICER_H_
#define DIRECTLOAD_BIFROST_SLICER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bifrost/dedup.h"
#include "common/random.h"
#include "common/status.h"
#include "index/builders.h"

namespace directload::bifrost {

/// A transmission unit: a checksummed bundle of shipped pairs. Every
/// intermediate relay recomputes and verifies the checksum (Section 3,
/// "Failures in Transmission").
struct SlicePacket {
  uint64_t slice_id = 0;
  webindex::IndexType type = webindex::IndexType::kInverted;
  uint64_t version = 0;
  std::string payload;    // Serialized pairs.
  uint32_t checksum = 0;  // Masked CRC32C of payload.

  uint64_t bytes() const { return payload.size() + 64; }  // + header estimate.
};

/// Packs shipped pairs into slices of roughly `slice_bytes` payload.
std::vector<SlicePacket> PackSlices(const std::vector<ShippedPair>& pairs,
                                    webindex::IndexType type, uint64_t version,
                                    uint64_t slice_bytes,
                                    uint64_t first_slice_id = 0);

/// Recomputes the payload checksum; false means corruption in transit.
bool VerifySlice(const SlicePacket& slice);

/// Decodes a verified slice back into pairs.
Status UnpackSlice(const SlicePacket& slice, std::vector<ShippedPair>* pairs);

/// Fault injection: flips one payload byte.
void CorruptSlice(SlicePacket* slice, Random* rng);

}  // namespace directload::bifrost

#endif  // DIRECTLOAD_BIFROST_SLICER_H_
