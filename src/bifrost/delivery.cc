#include "bifrost/delivery.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

namespace directload::bifrost {

std::vector<int> DestinationsFor(webindex::IndexType type) {
  std::vector<int> dests;
  for (int region = 0; region < kNumRegions; ++region) {
    for (int i = 0; i < kDcsPerRegion; ++i) {
      if (type == webindex::IndexType::kSummary && i != 0) continue;
      dests.push_back(region * kDcsPerRegion + i);
    }
  }
  return dests;
}

DeliveryService::DeliveryService(SimClock* clock,
                                 const DeliveryOptions& options)
    : clock_(clock),
      options_(options),
      net_(std::make_unique<net::FluidNetwork>(clock)),
      rng_(options.seed) {
  const int source = net_->AddNode("build-center");
  int relay[kNumRegions];
  for (int r = 0; r < kNumRegions; ++r) {
    relay[r] = net_->AddNode("relay-group-" + std::to_string(r));
  }
  for (int r = 0; r < kNumRegions; ++r) {
    backbone_link_[r] =
        net_->AddLink(source, relay[r], options.backbone_bytes_per_sec);
    for (int i = 0; i < kDcsPerRegion; ++i) {
      const int dc = net_->AddNode("dc-" + std::to_string(r) + "." +
                                   std::to_string(i));
      regional_link_[r][i] =
          net_->AddLink(relay[r], dc, options.regional_bytes_per_sec);
    }
  }
  for (int a = 0; a < kNumRegions; ++a) {
    for (int b = 0; b < kNumRegions; ++b) {
      if (a == b) continue;
      interregion_link_[a][b] =
          net_->AddLink(relay[a], relay[b], options.interregion_bytes_per_sec);
    }
  }
  class_summary_ = net_->AddTrafficClass("summary", options.summary_share);
  class_inverted_ = net_->AddTrafficClass("inverted", options.inverted_share);
  monitor_ = std::make_unique<net::BandwidthMonitor>(net_.get());
  for (int r = 0; r < kNumRegions; ++r) {
    relay_up_[r] = options_.relay_nodes_per_group;
  }
  user_background_.assign(net_->num_links(), 0.0);
}

void DeliveryService::SetBackboneBackground(int region, double fraction) {
  user_background_[backbone_link_[region]] = fraction;
  ReapplyBackgrounds();
}

void DeliveryService::SetInterRegionBackground(int from_region, int to_region,
                                               double fraction) {
  user_background_[interregion_link_[from_region][to_region]] = fraction;
  ReapplyBackgrounds();
}

Status DeliveryService::FailRelayNodes(int region, int count) {
  if (region < 0 || region >= kNumRegions || count < 0) {
    return Status::InvalidArgument("bad region/count");
  }
  if (count >= relay_up_[region]) {
    return Status::InvalidArgument("cannot fail the whole relay group");
  }
  relay_up_[region] -= count;
  ReapplyBackgrounds();
  return Status::OK();
}

Status DeliveryService::RestoreRelayNodes(int region, int count) {
  if (region < 0 || region >= kNumRegions || count < 0 ||
      relay_up_[region] + count > options_.relay_nodes_per_group) {
    return Status::InvalidArgument("bad region/count");
  }
  relay_up_[region] += count;
  ReapplyBackgrounds();
  return Status::OK();
}

double DeliveryService::UpFraction(int region) const {
  return static_cast<double>(relay_up_[region]) /
         static_cast<double>(options_.relay_nodes_per_group);
}

void DeliveryService::ReapplyBackgrounds() {
  auto apply = [&](int link, double up_fraction) {
    const double effective =
        1.0 - (1.0 - user_background_[link]) * up_fraction;
    net_->SetBackground(link, effective);
  };
  for (int r = 0; r < kNumRegions; ++r) {
    apply(backbone_link_[r], UpFraction(r));
    for (int i = 0; i < kDcsPerRegion; ++i) {
      apply(regional_link_[r][i], UpFraction(r));
    }
    for (int q = 0; q < kNumRegions; ++q) {
      if (q == r) continue;
      apply(interregion_link_[r][q], std::min(UpFraction(r), UpFraction(q)));
    }
  }
}

std::vector<int> DeliveryService::PickPath(int dest, bool* detoured,
                                           bool avoid_direct) const {
  const int region = dest / kDcsPerRegion;
  const int dc_slot = dest % kDcsPerRegion;
  const int last_hop = regional_link_[region][dc_slot];

  auto bottleneck = [&](const std::vector<int>& path) {
    double spare = std::numeric_limits<double>::max();
    for (int link : path) spare = std::min(spare, monitor_->PredictSpare(link));
    return spare;
  };

  std::vector<int> best;
  double best_spare = -1.0;
  bool best_is_detour = false;
  if (!avoid_direct) {
    best = {backbone_link_[region], last_hop};
    best_spare = bottleneck(best);
  }
  for (int via = 0; via < kNumRegions; ++via) {
    if (via == region) continue;
    std::vector<int> candidate = {backbone_link_[via],
                                  interregion_link_[via][region], last_hop};
    const double spare = bottleneck(candidate);
    // A detour must be clearly better to beat the direct path (hysteresis
    // avoids detour flapping on noise); among detours, best spare wins.
    const double threshold = best_is_detour || best.empty()
                                 ? best_spare
                                 : best_spare * 1.25;
    if (spare > threshold) {
      best = candidate;
      best_spare = spare;
      best_is_detour = true;
    }
  }
  if (detoured != nullptr) *detoured = best_is_detour;
  return best;
}

DeliveryReport DeliveryService::DeliverVersion(
    const std::vector<SlicePacket>& summary,
    const std::vector<SlicePacket>& inverted, const SinkFn& sink) {
  DeliveryReport report;
  const uint64_t start_micros = clock_->NowMicros();

  // Build the work list: one Pending per (slice, destination).
  std::vector<Pending> pendings;
  auto enqueue_dataset = [&](const std::vector<SlicePacket>& slices) {
    for (const SlicePacket& slice : slices) {
      for (int dest : DestinationsFor(slice.type)) {
        pendings.push_back(Pending{&slice, dest, 0});
      }
    }
  };
  enqueue_dataset(summary);
  enqueue_dataset(inverted);
  report.deliveries_total = pendings.size();
  if (pendings.empty()) {
    report.completed = true;
    return report;
  }

  // Slices are generated across the window in slice-id order, all copies of
  // a slice at once.
  if (options_.generation_window_seconds > 0) {
    uint64_t min_slice = UINT64_MAX, max_slice = 0;
    for (const Pending& p : pendings) {
      min_slice = std::min(min_slice, p.slice->slice_id);
      max_slice = std::max(max_slice, p.slice->slice_id);
    }
    const double span = static_cast<double>(
        max_slice > min_slice ? max_slice - min_slice : 1);
    for (Pending& p : pendings) {
      p.release_seconds =
          static_cast<double>(p.slice->slice_id - min_slice) / span *
          options_.generation_window_seconds;
    }
  }

  std::vector<std::deque<size_t>> queues(kNumDataCenters);
  for (size_t i = 0; i < pendings.size(); ++i) {
    queues[pendings[i].dest].push_back(i);
  }
  std::vector<int> inflight(kNumDataCenters, 0);
  struct Inflight {
    size_t pending_idx;
    uint64_t start_micros;
  };
  std::map<uint64_t, Inflight> flow_to_pending;
  size_t outstanding = pendings.size();
  double last_arrival_s = 0;
  uint64_t misses = 0;
  double since_monitor = options_.monitor_interval_seconds;  // Sample at t0.

  auto refill = [&]() {
    const double now_s =
        static_cast<double>(clock_->NowMicros() - start_micros) * 1e-6;
    for (int dest = 0; dest < kNumDataCenters; ++dest) {
      while (inflight[dest] < options_.window_per_destination &&
             !queues[dest].empty()) {
        const size_t idx = queues[dest].front();
        if (pendings[idx].release_seconds > now_s) break;  // Not built yet.
        queues[dest].pop_front();
        Pending& p = pendings[idx];
        bool detoured = false;
        // A repaired (previously stuck) transfer avoids the direct channel.
        const bool avoid_direct =
            options_.repair_timeout_seconds > 0 && p.attempts > 0;
        const std::vector<int> path = PickPath(dest, &detoured, avoid_direct);
        if (detoured) ++detours_;
        const int klass = p.slice->type == webindex::IndexType::kSummary
                              ? class_summary_
                              : class_inverted_;
        const uint64_t flow =
            net_->StartFlow(path, static_cast<double>(p.slice->bytes()), klass,
                            idx);
        flow_to_pending[flow] = Inflight{idx, clock_->NowMicros()};
        ++inflight[dest];
        ++p.attempts;
        report.bytes_transmitted += p.slice->bytes() * path.size();
      }
    }
  };

  double elapsed = 0;
  while (outstanding > 0 && elapsed < options_.max_seconds) {
    if (since_monitor >= options_.monitor_interval_seconds) {
      monitor_->Sample();
      since_monitor = 0;
    }
    refill();
    std::vector<uint64_t> completed;
    net_->Advance(options_.tick_seconds, [&](const net::Flow& flow) {
      completed.push_back(flow.id);
    });
    elapsed += options_.tick_seconds;
    since_monitor += options_.tick_seconds;

    // Repair: abort transfers that have been stuck beyond the timeout and
    // re-request them (a fresh path is picked from current predictions).
    if (options_.repair_timeout_seconds > 0) {
      std::vector<uint64_t> stuck;
      for (const auto& [flow_id, info] : flow_to_pending) {
        const double age =
            static_cast<double>(clock_->NowMicros() - info.start_micros) *
            1e-6;
        if (age > options_.repair_timeout_seconds &&
            net_->FlowBytesLeft(flow_id) > 0) {
          stuck.push_back(flow_id);
        }
      }
      for (uint64_t flow_id : stuck) {
        const Inflight info = flow_to_pending[flow_id];
        if (!net_->CancelFlow(flow_id)) continue;
        flow_to_pending.erase(flow_id);
        Pending& p = pendings[info.pending_idx];
        --inflight[p.dest];
        queues[p.dest].push_front(info.pending_idx);
        ++report.repairs;
      }
    }

    for (uint64_t flow_id : completed) {
      auto it = flow_to_pending.find(flow_id);
      if (it == flow_to_pending.end()) continue;
      const size_t idx = it->second.pending_idx;
      flow_to_pending.erase(it);
      Pending& p = pendings[idx];
      --inflight[p.dest];

      // Per-hop corruption check: every relay verifies the checksum, so a
      // corrupted slice is re-requested from the source.
      const size_t hops = p.dest >= 0 ? 2 : 2;  // Direct=2 hops, detour=3.
      bool corrupted = false;
      for (size_t h = 0; h < hops && !corrupted; ++h) {
        corrupted = rng_.Bernoulli(options_.corruption_prob);
      }
      if (corrupted) {
        ++report.retransmissions;
        queues[p.dest].push_front(idx);
        continue;
      }

      const double arrival_s =
          static_cast<double>(clock_->NowMicros() - start_micros) * 1e-6;
      last_arrival_s = std::max(last_arrival_s, arrival_s);
      if (arrival_s - p.release_seconds > options_.miss_deadline_seconds) {
        ++misses;
      }
      if (sink != nullptr) sink(p.dest, *p.slice);
      --outstanding;
    }
  }

  report.completed = outstanding == 0;
  report.update_time_seconds = last_arrival_s;
  report.miss_ratio = report.deliveries_total == 0
                          ? 0.0
                          : static_cast<double>(misses) /
                                static_cast<double>(report.deliveries_total);
  return report;
}

}  // namespace directload::bifrost
