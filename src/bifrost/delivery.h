#ifndef DIRECTLOAD_BIFROST_DELIVERY_H_
#define DIRECTLOAD_BIFROST_DELIVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bifrost/slicer.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "net/fluid_network.h"

namespace directload::bifrost {

/// Shape of the paper's deployment (Section 1.1.2): one index-building
/// center, three regional relay groups (North/East/South China), two data
/// centers per region. Inverted indices go to all six data centers; summary
/// indices to one data center per region (three total), reflecting their
/// higher storage cost.
constexpr int kNumRegions = 3;
constexpr int kDcsPerRegion = 2;
constexpr int kNumDataCenters = kNumRegions * kDcsPerRegion;

struct DeliveryOptions {
  /// Aggregate capacities in bytes/sec (a relay group is modeled as one
  /// aggregate node; the paper's 20-30 relay nodes pool their bandwidth).
  double backbone_bytes_per_sec = 12e6;     // Build center -> relay group.
  double interregion_bytes_per_sec = 8e6;   // Relay group <-> relay group.
  double regional_bytes_per_sec = 30e6;     // Relay group -> data center.

  /// Relay nodes pooled per group ("20~30 relay nodes caching and relaying
  /// the data", Section 2.2). Failing nodes shrinks the group's pooled
  /// bandwidth proportionally.
  int relay_nodes_per_group = 24;

  /// Bifrost's empirical bandwidth reservation (Section 2.2).
  double summary_share = 0.4;
  double inverted_share = 0.6;

  /// Concurrent slices in flight per destination; completions trigger
  /// rescheduling with fresh bandwidth predictions.
  int window_per_destination = 4;

  /// Probability that a slice is corrupted on one hop (checksum catches it;
  /// the slice is retransmitted from the source).
  double corruption_prob = 0.0;

  double tick_seconds = 0.25;
  double monitor_interval_seconds = 1.0;

  /// Index data are generated continuously and sent "in GBs every hour"
  /// (Section 1.1.2): slices become available spread evenly over this
  /// window rather than all at once. Zero releases everything immediately.
  double generation_window_seconds = 0.0;

  /// A slice arriving later than this after its generation counts as a miss
  /// ("takes more than one hour to arrive", Section 4.2.2).
  double miss_deadline_seconds = 3600.0;

  /// Repair process (Section 3: an out-of-date slice "may lead to a repair
  /// process"): a transfer still in flight after this long is aborted and
  /// re-requested, with a fresh path chosen from current predictions.
  /// Zero disables repair.
  double repair_timeout_seconds = 0.0;

  /// Give up after this much simulated time.
  double max_seconds = 24 * 3600.0;

  uint64_t seed = 7;
};

struct DeliveryReport {
  double update_time_seconds = 0;  // All slices ready at all destinations.
  double miss_ratio = 0;           // Late (slice,dest) arrivals / total.
  uint64_t deliveries_total = 0;   // (slice, destination) pairs.
  uint64_t retransmissions = 0;
  uint64_t repairs = 0;            // Stuck transfers aborted + re-requested.
  uint64_t bytes_transmitted = 0;  // Across all hops' ingress (post-dedup).
  bool completed = false;          // False if max_seconds elapsed first.
};

/// Simulates Bifrost's cross-region transmission: slices flow from the
/// build center through relay groups to the data centers, sharing channel
/// bandwidth 40/60 between summary and inverted traffic, optionally
/// detouring through another region's relay group when the monitor predicts
/// more spare capacity there (Section 2.2), and retransmitting slices whose
/// per-hop checksum verification fails (Section 3).
class DeliveryService {
 public:
  DeliveryService(SimClock* clock, const DeliveryOptions& options);

  /// Invoked for every verified slice arrival: (data_center, slice).
  using SinkFn = std::function<void(int, const SlicePacket&)>;

  /// Delivers one version's slices to their destinations and returns when
  /// everything has arrived (or max_seconds passed).
  DeliveryReport DeliverVersion(const std::vector<SlicePacket>& summary,
                                const std::vector<SlicePacket>& inverted,
                                const SinkFn& sink = nullptr);

  /// Fault injection: background load on the build-center -> relay backbone
  /// of `region`, and between relay groups.
  void SetBackboneBackground(int region, double fraction);
  void SetInterRegionBackground(int from_region, int to_region,
                                double fraction);

  /// Fails `count` additional relay nodes of a region's group; every
  /// channel touching the group loses a proportional share of its pooled
  /// capacity. The monitor sees the loss and may detour around the group.
  Status FailRelayNodes(int region, int count);
  Status RestoreRelayNodes(int region, int count);
  int relay_nodes_up(int region) const { return relay_up_[region]; }

  net::FluidNetwork& network() { return *net_; }
  const DeliveryOptions& options() const { return options_; }

  /// Number of deliveries that took a detour path (monitor-driven routing).
  uint64_t detours() const { return detours_; }

 private:
  struct Pending {
    const SlicePacket* slice = nullptr;
    int dest = 0;  // Data center index [0, 6).
    int attempts = 0;
    double release_seconds = 0;  // Generation time within the cycle.
  };

  /// Best path (link ids) from the source to data center `dest`, by
  /// predicted bottleneck spare bandwidth. `avoid_direct` excludes the
  /// direct path — used when re-requesting a slice whose direct transfer
  /// stalled (the repair process assumes that channel is sick regardless of
  /// what the possibly-stale predictions say).
  std::vector<int> PickPath(int dest, bool* detoured,
                            bool avoid_direct = false) const;

  double UpFraction(int region) const;
  /// Recomputes every link's effective background from the user-set load
  /// and the relay-node derating.
  void ReapplyBackgrounds();

  SimClock* clock_;
  DeliveryOptions options_;
  std::unique_ptr<net::FluidNetwork> net_;
  std::unique_ptr<net::BandwidthMonitor> monitor_;
  Random rng_;

  int class_summary_ = 0;
  int class_inverted_ = 0;
  // Topology handles.
  int backbone_link_[kNumRegions] = {};
  int interregion_link_[kNumRegions][kNumRegions] = {};
  int regional_link_[kNumRegions][kDcsPerRegion] = {};
  int relay_up_[kNumRegions] = {};
  std::vector<double> user_background_;  // Per link, explicit load.
  uint64_t detours_ = 0;
};

/// The data centers that store an index type: all six for inverted/forward,
/// the first data center of each region for summary.
std::vector<int> DestinationsFor(webindex::IndexType type);

}  // namespace directload::bifrost

#endif  // DIRECTLOAD_BIFROST_DELIVERY_H_
