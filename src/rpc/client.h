#ifndef DIRECTLOAD_RPC_CLIENT_H_
#define DIRECTLOAD_RPC_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "rpc/protocol.h"
#include "rpc/socket.h"

namespace directload::rpc {

/// A blocking client for the DirectLoad serving protocol. Each call carries
/// a per-request deadline; connection failures are retried with a bounded
/// number of reconnects (safe here because every operation is idempotent —
/// a PUT names its exact key/version, so replaying it converges). Wire
/// errors come back as the ordinary Status codes: the server's own result
/// for the operation, kTimedOut for an expired deadline, kUnavailable when
/// the server is unreachable, kProtocol / kCorruption when the byte stream
/// itself is broken (those tear the connection down; the next call
/// reconnects).
///
/// Thread-safe: calls are serialized on an internal lock (rank
/// LockRank::kRpcClient). For parallel load, use one client per thread —
/// that is what the closed-loop load generator does.
class RpcClient {
 public:
  struct Options {
    int connect_timeout_ms = 2000;
    /// Per-request deadline covering send + receive of one attempt.
    int request_timeout_ms = 5000;
    /// Reconnect-and-resend attempts after a connection-level failure.
    int max_reconnects = 2;
    size_t max_frame_bytes = kMaxBodyBytes;
    /// Capped exponential backoff before retry k (1-based): the cap-clamped
    /// base is backoff_initial_ms << (k-1), and the slept delay is drawn
    /// uniformly from [base/2, base] — jittered so a fleet of clients
    /// retrying against one recovering server does not stampede in phase.
    int backoff_initial_ms = 5;
    int backoff_max_ms = 200;
    /// Per-call retry budget: once the elapsed time plus the next backoff
    /// delay would exceed this, the call stops retrying and returns the
    /// last connection error. Covers sleeps and attempts together.
    int retry_budget_ms = 10000;
    /// Seed for the jitter stream. Deterministic per client, so a chaos
    /// schedule that fixes its seeds replays the same delays every run.
    uint64_t backoff_seed = 1;
  };

  RpcClient(std::string host, uint16_t port)
      : RpcClient(std::move(host), port, Options()) {}
  RpcClient(std::string host, uint16_t port, Options options);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Eagerly connects (calls also connect lazily).
  Status Connect() EXCLUDES(mu_);
  void Close() EXCLUDES(mu_);

  Result<std::string> Get(const Slice& key, uint64_t version) EXCLUDES(mu_);
  Result<std::string> GetLatest(const Slice& key) EXCLUDES(mu_);
  Status Put(const Slice& key, uint64_t version, const Slice& value,
             bool dedup = false) EXCLUDES(mu_);
  Status Del(const Slice& key, uint64_t version) EXCLUDES(mu_);

  /// Ships `ops` as one kWriteBatch frame — the whole batch costs a single
  /// round trip and the server commits it through the engines' group-commit
  /// path. `statuses` (optional) receives one status per op, in op order.
  /// Returns the first non-OK per-op status; transport-level failures come
  /// back as the usual connection statuses with `statuses` left empty
  /// (nothing is known about individual ops).
  Status WriteBatch(const std::vector<BatchOp>& ops,
                    std::vector<Status>* statuses = nullptr) EXCLUDES(mu_);

  Result<std::string> Stats() EXCLUDES(mu_);
  Status Ping() EXCLUDES(mu_);

  /// Failure-detector probe: asks the node for its serving state and live
  /// entry count. Detector callers typically run this client with
  /// `max_reconnects = 0` and a short deadline — a probe that needs a retry
  /// *is* the signal.
  Result<HeartbeatInfo> Heartbeat() EXCLUDES(mu_);

  /// One page of the node's repair scan (see Opcode::kRepairScan).
  Result<RepairPage> RepairScan(const RepairScanRequest& req) EXCLUDES(mu_);

  /// The capped-exponential reconnect delay for attempt `attempt`
  /// (1-based), jitter included — exposed so tests can pin the schedule
  /// (base doubling, cap clamp, [base/2, base] jitter bounds) without
  /// standing up a failing server and timing real sleeps.
  int BackoffDelayMsForTest(int attempt) { return BackoffDelayMs(attempt); }

  // -- Pipelined surface (the load generator drives this directly) --------

  /// Fresh request id for a caller-built frame.
  uint64_t NextRequestId() { return next_id_.fetch_add(1); }

  /// Ships one request without waiting for its response.
  Status Send(const Frame& request) EXCLUDES(mu_);

  /// Blocks for the next response frame (any request id — pipelined
  /// responses may complete out of order; the caller matches ids).
  Result<Frame> Receive() EXCLUDES(mu_);

 private:
  /// One request/response exchange with reconnect-and-resend.
  Result<Frame> Call(Frame request) EXCLUDES(mu_);

  /// The jittered delay before reconnect attempt `attempt` (1-based). Takes
  /// mu_ briefly for the jitter draw; the caller sleeps unlocked.
  int BackoffDelayMs(int attempt) EXCLUDES(mu_);

  Status EnsureConnectedLocked() REQUIRES(mu_);
  Status SendLocked(const Frame& frame, int timeout_ms) REQUIRES(mu_);
  Result<Frame> ReceiveLocked(int timeout_ms) REQUIRES(mu_);
  void CloseLocked() REQUIRES(mu_);

  const std::string host_;
  const uint16_t port_;
  const Options options_;
  std::atomic<uint64_t> next_id_{1};

  Mutex mu_{LockRank::kRpcClient, "RpcClient::mu_"};
  Socket socket_ GUARDED_BY(mu_);
  FrameDecoder decoder_ GUARDED_BY(mu_);
  Random backoff_rng_ GUARDED_BY(mu_);
};

}  // namespace directload::rpc

#endif  // DIRECTLOAD_RPC_CLIENT_H_
