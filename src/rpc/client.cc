#include "rpc/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace directload::rpc {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() <= 0 ? 0 : static_cast<int>(left.count());
}

/// A connection-level failure worth a reconnect-and-resend; distinct from
/// the server *answering* with an error, and from a broken byte stream.
bool Reconnectable(const Status& s) {
  return s.IsUnavailable() || s.IsIOError();
}

}  // namespace

RpcClient::RpcClient(std::string host, uint16_t port, Options options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      decoder_(options.max_frame_bytes),
      backoff_rng_(options.backoff_seed) {}

RpcClient::~RpcClient() { Close(); }

Status RpcClient::Connect() {
  MutexLock lock(&mu_);
  return EnsureConnectedLocked();
}

void RpcClient::Close() {
  MutexLock lock(&mu_);
  CloseLocked();
}

void RpcClient::CloseLocked() {
  socket_.Close();
  decoder_ = FrameDecoder(options_.max_frame_bytes);
}

Status RpcClient::EnsureConnectedLocked() {
  if (socket_.valid()) return Status::OK();
  Result<Socket> connected =
      ConnectTo(host_, port_, options_.connect_timeout_ms);
  if (!connected.ok()) return connected.status();
  socket_ = std::move(connected).value();
  decoder_ = FrameDecoder(options_.max_frame_bytes);
  return Status::OK();
}

Status RpcClient::SendLocked(const Frame& frame, int timeout_ms) {
  std::string wire;
  EncodeFrame(frame, &wire);
  return socket_.SendAll(wire, timeout_ms);
}

Result<Frame> RpcClient::ReceiveLocked(int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  Frame frame;
  while (true) {
    Result<bool> got = decoder_.Next(&frame);
    if (!got.ok()) {
      // Framing lost: the stream is useless from here on.
      CloseLocked();
      return got.status();
    }
    if (*got) {
      if (!frame.response) {
        CloseLocked();
        return Status::Protocol("server sent a request frame");
      }
      return frame;
    }
    const int left = RemainingMs(deadline);
    if (left == 0) return Status::TimedOut("request deadline expired");
    char buf[16 * 1024];
    Result<size_t> n = socket_.RecvSome(buf, sizeof(buf), left);
    if (!n.ok()) return n.status();
    if (*n == 0) {
      CloseLocked();
      return Status::Unavailable("server closed the connection");
    }
    decoder_.Append(buf, *n);
  }
}

Status RpcClient::Send(const Frame& request) {
  MutexLock lock(&mu_);
  Status s = EnsureConnectedLocked();
  if (!s.ok()) return s;
  return SendLocked(request, options_.request_timeout_ms);
}

Result<Frame> RpcClient::Receive() {
  MutexLock lock(&mu_);
  if (!socket_.valid()) return Status::Unavailable("not connected");
  return ReceiveLocked(options_.request_timeout_ms);
}

int RpcClient::BackoffDelayMs(int attempt) {
  int64_t base = options_.backoff_initial_ms;
  for (int i = 1; i < attempt && base < options_.backoff_max_ms; ++i) {
    base *= 2;
  }
  base = std::min<int64_t>(base, options_.backoff_max_ms);
  if (base <= 0) return 0;
  uint64_t jitter;
  {
    MutexLock lock(&mu_);
    jitter = backoff_rng_.Uniform(static_cast<uint64_t>(base / 2 + 1));
  }
  return static_cast<int>(base - base / 2 + static_cast<int64_t>(jitter));
}

Result<Frame> RpcClient::Call(Frame request) {
  request.request_id = NextRequestId();
  const Clock::time_point budget =
      Clock::now() + std::chrono::milliseconds(options_.retry_budget_ms);
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt <= options_.max_reconnects; ++attempt) {
    if (attempt > 0) {
      // A previous attempt failed at the connection level: back off before
      // hammering the server again, unless the call's retry budget cannot
      // cover the delay — then surface the last error rather than sleep
      // past the caller's patience.
      const int delay = BackoffDelayMs(attempt);
      if (RemainingMs(budget) <= delay) return last;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    MutexLock lock(&mu_);
    last = EnsureConnectedLocked();
    if (!last.ok()) continue;  // Reconnect on the next attempt.
    last = SendLocked(request, options_.request_timeout_ms);
    if (!last.ok()) {
      if (Reconnectable(last)) {
        CloseLocked();
        continue;
      }
      return last;
    }
    // Drain responses until ours: a reconnect may leave stale responses to
    // abandoned requests ahead of it in the stream.
    while (true) {
      Result<Frame> response = ReceiveLocked(options_.request_timeout_ms);
      if (!response.ok()) {
        last = response.status();
        break;
      }
      if (response->request_id == request.request_id) return response;
    }
    if (last.IsTimedOut()) return last;  // The deadline is spent; stop.
    if (Reconnectable(last)) {
      CloseLocked();
      continue;
    }
    return last;
  }
  return last;
}

Result<std::string> RpcClient::Get(const Slice& key, uint64_t version) {
  Frame request;
  request.op = Opcode::kGet;
  request.version = version;
  request.key = key.ToString();
  Result<Frame> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  Status s = StatusFromWire(response->status, response->value);
  if (!s.ok()) return s;
  return std::move(response->value);
}

Result<std::string> RpcClient::GetLatest(const Slice& key) {
  Frame request;
  request.op = Opcode::kGet;
  request.latest = true;
  request.key = key.ToString();
  Result<Frame> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  Status s = StatusFromWire(response->status, response->value);
  if (!s.ok()) return s;
  return std::move(response->value);
}

Status RpcClient::Put(const Slice& key, uint64_t version, const Slice& value,
                      bool dedup) {
  Frame request;
  request.op = Opcode::kPut;
  request.dedup = dedup;
  request.version = version;
  request.key = key.ToString();
  request.value = value.ToString();
  Result<Frame> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  return StatusFromWire(response->status, response->value);
}

Status RpcClient::Del(const Slice& key, uint64_t version) {
  Frame request;
  request.op = Opcode::kDel;
  request.version = version;
  request.key = key.ToString();
  Result<Frame> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  return StatusFromWire(response->status, response->value);
}

Status RpcClient::WriteBatch(const std::vector<BatchOp>& ops,
                             std::vector<Status>* statuses) {
  if (statuses != nullptr) statuses->clear();
  if (ops.empty()) return Status::OK();
  Frame request;
  request.op = Opcode::kWriteBatch;
  EncodeBatchOps(ops, &request.value);
  Result<Frame> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  std::vector<Status> decoded;
  Status parse = DecodeBatchStatuses(response->value, &decoded);
  if (!parse.ok()) {
    // The server rejected the frame before executing any op (for example a
    // malformed batch payload): the value field carries the error message,
    // not per-op statuses.
    if (response->status == StatusCode::kOk) return parse;
    return StatusFromWire(response->status, response->value);
  }
  if (decoded.size() != ops.size()) {
    return Status::Protocol("batch response op count mismatch");
  }
  Status overall;
  for (const Status& s : decoded) {
    if (overall.ok() && !s.ok()) overall = s;
  }
  if (statuses != nullptr) *statuses = std::move(decoded);
  return overall;
}

Result<std::string> RpcClient::Stats() {
  Frame request;
  request.op = Opcode::kStats;
  Result<Frame> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  Status s = StatusFromWire(response->status, response->value);
  if (!s.ok()) return s;
  return std::move(response->value);
}

Status RpcClient::Ping() {
  Frame request;
  request.op = Opcode::kPing;
  request.value = "ping";
  Result<Frame> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  return StatusFromWire(response->status, response->value);
}

Result<HeartbeatInfo> RpcClient::Heartbeat() {
  Frame request;
  request.op = Opcode::kHeartbeat;
  Result<Frame> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  Status s = StatusFromWire(response->status, response->value);
  if (!s.ok()) return s;
  HeartbeatInfo info;
  Status parse = DecodeHeartbeatInfo(response->value, &info);
  if (!parse.ok()) return parse;
  return info;
}

Result<RepairPage> RpcClient::RepairScan(const RepairScanRequest& req) {
  Frame request;
  request.op = Opcode::kRepairScan;
  EncodeRepairScanRequest(req, &request.value);
  Result<Frame> response = Call(std::move(request));
  if (!response.ok()) return response.status();
  Status s = StatusFromWire(response->status, response->value);
  if (!s.ok()) return s;
  RepairPage page;
  Status parse = DecodeRepairPage(response->value, &page);
  if (!parse.ok()) return parse;
  return page;
}

}  // namespace directload::rpc
