#ifndef DIRECTLOAD_RPC_PROTOCOL_H_
#define DIRECTLOAD_RPC_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace directload::rpc {

/// The DirectLoad serving wire protocol: length-prefixed binary frames with
/// a CRC32C trailer, carried over a plain byte stream (TCP). One frame is
/// one request or one response; requests carry a caller-chosen id that the
/// matching response echoes, so responses to pipelined requests may complete
/// out of order.
///
///   offset  size  field
///   0       4     magic "DLP1" (kFrameMagic, little-endian fixed32)
///   4       4     body length N (fixed32; excludes magic/length/trailer)
///   8       N     body
///   8+N     4     masked CRC32C of the body (crc32c::Mask, as the AOF does)
///
///   body:
///   0       1     opcode (Opcode)
///   1       1     flags (kFlagResponse | kFlagDedup | kFlagLatest)
///   2       1     status code (StatusCode; meaningful in responses, 0 in
///                 requests)
///   3       1     reserved, must be 0
///   4       8     request id (fixed64)
///   12      8     version (fixed64)
///   20      ...   varint32 key length, key bytes
///   ...     ...   varint32 value length, value bytes (GET/STATS responses
///                 carry the value or stats text here; error responses carry
///                 the error message)
///
/// The body must parse to exactly its declared length. Decode errors are
/// split by cause: kProtocol for frames the peer should never have sent
/// (bad magic, oversized or short body, trailing garbage, unknown opcode or
/// status) and kCorruption for frames damaged in flight (CRC mismatch).
/// Either way the stream is unrecoverable — framing is lost — and the
/// connection must be torn down.

enum class Opcode : uint8_t {
  kGet = 1,    // key + version (or kFlagLatest) -> value.
  kPut = 2,    // key + version + value (kFlagDedup for value-less pairs).
  kDel = 3,    // key + version.
  kStats = 4,  // server + cluster counters as text.
  kPing = 5,   // liveness probe; echoes the value payload.
  /// Multiple write ops (PUT/DEL) in one round trip. The frame's value
  /// field carries the ops (EncodeBatchOps); key/version are unused. The
  /// response's value field carries one status per op, in op order
  /// (EncodeBatchStatuses), and the frame-level status is the first
  /// non-OK per-op status (kOk when every op succeeded).
  kWriteBatch = 6,
  /// Bulk-load session open (Bifrost-over-the-wire). The frame's version
  /// field names the index version being streamed; the value field carries
  /// the begin payload (bifrost::wire::EncodeBulkBegin: expected slice
  /// count + per-type byte totals). A successful response *negotiates* the
  /// connection's frame limit up to kMaxBulkBodyBytes — the client must not
  /// send a kBulkSlice larger than kMaxBodyBytes before the begin ack.
  kBulkBegin = 7,
  /// One slice of a bulk session. The value field carries an encoded
  /// SlicePacket (bifrost::wire::EncodeSlicePacket) whose payload checksum
  /// is re-verified on this hop; version echoes the session version. A
  /// checksum failure answers kCorruption for that slice only — the
  /// session (and the connection) survives, and the client re-sends.
  kBulkSlice = 8,
  /// Commits the session's version: every landed record becomes readable
  /// atomically, per shard. The value field carries the expected total
  /// slice count; if slices are missing the response lists their ids
  /// (bifrost::wire::EncodeMissingSlices) with status kUnavailable so the
  /// client can repair by re-sending, then commit again.
  kBulkCommit = 9,
  /// Abandons the session: staged records are rolled back (occupancy
  /// accounting reversed) and the version is never visible.
  kBulkAbort = 10,
  /// Failure-detector probe (distributed Mint). No request payload; the
  /// response's value field carries an encoded HeartbeatInfo — whether the
  /// node is serving, whether it is degraded, and its live entry count, so
  /// the coordinator's detector doubles as a cheap progress gauge during
  /// repair. Unlike kPing this consults the node's engine state, not just
  /// the TCP stack.
  kHeartbeat = 11,
  /// One page of a repair scan (distributed Mint re-replication). The
  /// request's value field carries an encoded RepairScanRequest (resume
  /// cursor + page limits); the response's value field carries a RepairPage
  /// — resolved pairs plus the cursor to resume from. The coordinator
  /// drives the whole scan over RPC: nodes know nothing about placement,
  /// so the coordinator filters the page by rendezvous ownership and
  /// re-ingests the target's share via ordinary kPut/kWriteBatch frames.
  kRepairScan = 12,
};

inline constexpr uint32_t kFrameMagic = 0x31504C44u;  // "DLP1" on the wire.
inline constexpr uint8_t kFlagResponse = 1u << 0;
inline constexpr uint8_t kFlagDedup = 1u << 1;   // PUT of a value-less pair.
inline constexpr uint8_t kFlagLatest = 1u << 2;  // GET newest live version.

/// Frames above this body size are rejected as kProtocol before any
/// allocation happens — the decoder never trusts the length field enough to
/// reserve memory for a frame it would not accept.
inline constexpr size_t kMaxBodyBytes = 4u << 20;

/// The negotiated ceiling for bulk-load connections. A connection starts at
/// kMaxBodyBytes; only after the server acks a kBulkBegin does either side
/// raise its decoder to this bound (FrameDecoder::set_max_body_bytes), so a
/// peer that never opens a bulk session keeps the tight remote-OOM bound.
inline constexpr size_t kMaxBulkBodyBytes = 8u << 20;

/// Bytes of fixed header (magic + length) and trailer (masked CRC).
inline constexpr size_t kHeaderBytes = 8;
inline constexpr size_t kTrailerBytes = 4;
inline constexpr size_t kBodyFixedBytes = 20;  // Through the version field.

/// One decoded request or response.
struct Frame {
  Opcode op = Opcode::kPing;
  bool response = false;
  bool dedup = false;
  bool latest = false;
  StatusCode status = StatusCode::kOk;  // Responses only.
  uint64_t request_id = 0;
  uint64_t version = 0;
  std::string key;
  std::string value;
};

/// Appends the encoded frame to `*out` (which may already hold bytes — the
/// writer batches pipelined frames into one buffer).
void EncodeFrame(const Frame& frame, std::string* out);

// -- kWriteBatch payloads ---------------------------------------------------
//
// A batch frame packs its ops into the frame's value field:
//
//   varint32 op count, then per op:
//     1 byte   kind (0 = put, 1 = del)
//     1 byte   flags (kFlagDedup only; must otherwise be 0)
//     8 bytes  version (fixed64)
//     varint32 key length, key bytes
//     varint32 value length, value bytes (empty for del)
//
// The response's value field answers with per-op statuses:
//
//   varint32 status count, then per status:
//     1 byte   status code (StatusCode)
//     varint32 message length, message bytes (empty on success)
//
// Both decoders demand the payload parse to exactly its declared length and
// return kProtocol otherwise, mirroring the frame decoder's strictness.

/// One op of a kWriteBatch frame.
struct BatchOp {
  bool is_del = false;
  bool dedup = false;  // Put only.
  uint64_t version = 0;
  std::string key;
  std::string value;  // Put only.
};

/// Serializes `ops` into a kWriteBatch payload, appended to `*out`.
void EncodeBatchOps(const std::vector<BatchOp>& ops, std::string* out);

/// Parses a kWriteBatch payload. kProtocol on malformed input.
Status DecodeBatchOps(const Slice& payload, std::vector<BatchOp>* ops);

/// Serializes per-op statuses into a kWriteBatch response payload.
void EncodeBatchStatuses(const std::vector<Status>& statuses,
                         std::string* out);

/// Parses a kWriteBatch response payload into per-op statuses.
Status DecodeBatchStatuses(const Slice& payload,
                           std::vector<Status>* statuses);

// -- kHeartbeat payloads ------------------------------------------------------
//
// A heartbeat response packs its info into the frame's value field:
//
//   1 byte   flags (bit 0: serving, bit 1: degraded; others must be 0)
//   8 bytes  live entry count (fixed64)
//
// The payload must be exactly 9 bytes; kProtocol otherwise.

/// What a node reports to the failure detector.
struct HeartbeatInfo {
  bool serving = false;   // The engine is up and answering operations.
  bool degraded = false;  // Read-only / degraded mode.
  uint64_t live_entries = 0;
};

/// Serializes `info` into a kHeartbeat response payload, appended to `*out`.
void EncodeHeartbeatInfo(const HeartbeatInfo& info, std::string* out);

/// Parses a kHeartbeat response payload. kProtocol on malformed input.
Status DecodeHeartbeatInfo(const Slice& payload, HeartbeatInfo* out);

// -- kRepairScan payloads -----------------------------------------------------
//
// The request's value field carries the scan parameters:
//
//   1 byte   flags (bit 0: keys_only, bit 1: resume — cursor names the last
//            pair already returned; others must be 0)
//   varint32 cursor shard
//   8 bytes  cursor version (fixed64)
//   varint32 cursor key length, key bytes
//   varint32 max pairs for this page
//
// The response's value field carries one page:
//
//   1 byte   flags (bit 0: done — no further pages; others must be 0)
//   varint32 pair count, then per pair:
//     8 bytes  version (fixed64)
//     varint32 key length, key bytes
//     varint32 value length, value bytes (empty under keys_only)
//   when not done: varint32 next shard, fixed64 next version,
//                  varint32 next key length, key bytes
//
// Both decoders demand the payload parse to exactly its declared length and
// return kProtocol otherwise, and the page decoder bounds the pair count
// against the remaining payload before reserving (see DecodeBatchOps).

/// Resume position of a repair scan: the last pair the previous page
/// returned, scoped to the engine shard it came from (keys are
/// hash-partitioned across shards, so a key alone does not locate the
/// cursor). `resume` false means "start from the beginning".
struct RepairCursor {
  uint32_t shard = 0;
  uint64_t version = 0;
  std::string key;
  bool resume = false;
};

/// One kRepairScan request.
struct RepairScanRequest {
  RepairCursor cursor;
  uint32_t max_pairs = 512;
  /// Values omitted — used to inventory what a node holds (the coordinator
  /// diffs inventories to verify replication factor) without moving data.
  bool keys_only = false;
};

/// One scanned pair, value resolved by the serving node (traceback included,
/// so the receiver need not share the sender's dedup chain).
struct RepairPair {
  std::string key;
  uint64_t version = 0;
  std::string value;
};

/// One kRepairScan response page.
struct RepairPage {
  std::vector<RepairPair> pairs;
  bool done = false;
  RepairCursor next;  // Meaningful only when !done (next.resume is set).
};

/// Soft cap on the encoded bytes of one repair page: the server stops
/// filling a page past this even under max_pairs, keeping every page
/// comfortably inside kMaxBodyBytes.
inline constexpr size_t kRepairPageBudgetBytes = 1u << 20;

/// Serializes `req` into a kRepairScan request payload, appended to `*out`.
void EncodeRepairScanRequest(const RepairScanRequest& req, std::string* out);

/// Parses a kRepairScan request payload. kProtocol on malformed input.
Status DecodeRepairScanRequest(const Slice& payload, RepairScanRequest* out);

/// Serializes `page` into a kRepairScan response payload, appended to
/// `*out`.
void EncodeRepairPage(const RepairPage& page, std::string* out);

/// Parses a kRepairScan response payload. kProtocol on malformed input.
Status DecodeRepairPage(const Slice& payload, RepairPage* out);

/// Rebuilds a Status from a wire status code plus the response's message
/// payload. Unknown codes (a newer peer) map to kProtocol.
Status StatusFromWire(StatusCode code, std::string_view message);

/// Builds the conventional response to `request`: same opcode and request
/// id, kFlagResponse set, `status` recorded, and `value` as the payload
/// (result value on success, error message otherwise).
Frame MakeResponse(const Frame& request, const Status& status,
                   std::string value = {});

/// Incremental frame decoder. Feed it whatever the socket produced —
/// fragments, multiple frames, a frame split anywhere — and poll Next():
///
///   Frame frame;
///   decoder.Append(buf, n);
///   while (true) {
///     Result<bool> got = decoder.Next(&frame);
///     if (!got.ok()) { /* kProtocol or kCorruption: close the stream */ }
///     if (!*got) break;  // Need more bytes.
///     Handle(frame);
///   }
///
/// Decode errors are sticky: once the stream is unframeable every later
/// Next() reports the same error.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_body_bytes = kMaxBodyBytes)
      : max_body_bytes_(max_body_bytes) {}

  void Append(const char* data, size_t n) { buffer_.append(data, n); }
  void Append(const Slice& data) { buffer_.append(data.data(), data.size()); }

  /// Extracts the next complete frame into `*out`. Returns true on a frame,
  /// false when the buffer holds only a prefix (feed more bytes), or a
  /// kProtocol / kCorruption status when the stream is broken.
  Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by a decoded frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  /// Renegotiates the body-size bound mid-stream (bulk sessions raise it to
  /// kMaxBulkBodyBytes after the server acks kBulkBegin). Applies from the
  /// next frame; bytes already buffered are unaffected.
  void set_max_body_bytes(size_t n) { max_body_bytes_ = n; }
  size_t max_body_bytes() const { return max_body_bytes_; }

 private:
  Status DecodeBody(const char* body, size_t n, Frame* out) const;

  size_t max_body_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already handed out as frames.
  Status error_;         // Sticky decode error.
};

}  // namespace directload::rpc

#endif  // DIRECTLOAD_RPC_PROTOCOL_H_
