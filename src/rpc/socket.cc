#include "rpc/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/failpoint.h"

namespace directload::rpc {

namespace {

// Wire-level failpoints. `rpc_send`/`rpc_recv` fire before the syscall —
// an injected kUnavailable looks exactly like a peer reset, an injected
// delay like network latency. `rpc_connect` makes dial attempts flaky,
// which is what exercises the client's backoff loop.
DIRECTLOAD_FAILPOINT_DEFINE(fp_rpc_send, "rpc_send");
DIRECTLOAD_FAILPOINT_DEFINE(fp_rpc_recv, "rpc_recv");
DIRECTLOAD_FAILPOINT_DEFINE(fp_rpc_connect, "rpc_connect");

Status Errno(const char* what) {
  std::string msg = what;
  msg += ": ";
  msg += std::strerror(errno);
  if (errno == ECONNREFUSED || errno == ECONNRESET || errno == EPIPE ||
      errno == ENOTCONN) {
    return Status::Unavailable(msg);
  }
  return Status::IOError(msg);
}

/// Polls `fd` for `events` within `timeout_ms` (<0 = forever). Returns OK
/// when ready, kTimedOut otherwise.
Status PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  while (true) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r > 0) return Status::OK();
    if (r == 0) return Status::TimedOut("poll deadline expired");
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

/// One timeout budget shared across repeated polls: retries after EINTR,
/// spurious wakeups, or short transfers consume the remaining time instead
/// of restarting the clock, so a call can never outlive its `timeout_ms`.
class Deadline {
 public:
  explicit Deadline(int timeout_ms) : forever_(timeout_ms < 0) {
    if (!forever_) {
      end_ = std::chrono::steady_clock::now() +
             std::chrono::milliseconds(timeout_ms);
    }
  }

  /// Remaining budget in poll() terms: -1 = no deadline, 0 = expired.
  int remaining_ms() const {
    if (forever_) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          end_ - std::chrono::steady_clock::now())
                          .count();
    return left > 0 ? static_cast<int>(left) : 0;
  }

 private:
  bool forever_;
  std::chrono::steady_clock::time_point end_{};
};

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

Status Socket::SendAll(const Slice& data, int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("socket is closed");
  DIRECTLOAD_FAILPOINT(fp_rpc_send);
  const Deadline deadline(timeout_ms);
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      left -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // A full send buffer (tiny SO_SNDBUF, slow reader, nonblocking fd):
      // wait for writability against the one shared deadline, then retry.
      Status ready = PollFor(fd_, POLLOUT, deadline.remaining_ms());
      if (!ready.ok()) return ready;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<size_t> Socket::RecvSome(char* buf, size_t cap, int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("socket is closed");
  DIRECTLOAD_FAILPOINT(fp_rpc_recv);
  const Deadline deadline(timeout_ms);
  while (true) {
    Status ready = PollFor(fd_, POLLIN, deadline.remaining_ms());
    if (!ready.ok()) return ready;
    const ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // POLLIN with nothing readable — a spurious wakeup or a racing
      // reader, not EOF. Re-poll on the same budget, mirroring how the
      // send path treats EAGAIN; returning 0 here would forge a clean
      // end-of-stream.
      continue;
    }
    return Errno("recv");
  }
}

Result<Socket> ConnectTo(const std::string& host, uint16_t port,
                         int timeout_ms) {
  DIRECTLOAD_FAILPOINT(fp_rpc_connect);
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::Unavailable("cannot resolve " + host);
  }

  Socket socket(::socket(res->ai_family, res->ai_socktype, res->ai_protocol));
  if (!socket.valid()) {
    ::freeaddrinfo(res);
    return Errno("socket");
  }
  // Connect with a deadline: non-blocking connect + poll for writability.
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  ::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(socket.fd(), res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0 && errno != EINPROGRESS) return Errno("connect");
  if (rc != 0) {
    Status ready = PollFor(socket.fd(), POLLOUT, timeout_ms);
    if (!ready.ok()) {
      return ready.IsTimedOut() ? Status::TimedOut("connect timed out")
                                : ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      errno = err != 0 ? err : errno;
      return Errno("connect");
    }
  }
  ::fcntl(socket.fd(), F_SETFL, flags);  // Back to blocking.
  int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return socket;
}

Result<Socket> Listen(const std::string& host, uint16_t port, int backlog) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) return Errno("socket");
  int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("listen host must be a numeric IPv4 "
                                   "address: " + host);
  }
  if (::bind(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(socket.fd(), backlog) != 0) return Errno("listen");
  return socket;
}

Result<uint16_t> LocalPort(const Socket& socket) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return Errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Result<Socket> AcceptOne(const Socket& listener, int timeout_ms) {
  Status ready = PollFor(listener.fd(), POLLIN, timeout_ms);
  if (!ready.ok()) return ready;
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

}  // namespace directload::rpc
