#include "rpc/protocol.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace directload::rpc {

namespace {

bool ValidOpcode(uint8_t op) {
  return op >= static_cast<uint8_t>(Opcode::kGet) &&
         op <= static_cast<uint8_t>(Opcode::kRepairScan);
}

constexpr uint8_t kHeartbeatServing = 1u << 0;
constexpr uint8_t kHeartbeatDegraded = 1u << 1;
constexpr uint8_t kRepairReqKeysOnly = 1u << 0;
constexpr uint8_t kRepairReqResume = 1u << 1;
constexpr uint8_t kRepairPageDone = 1u << 0;

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kProtocol);
}

}  // namespace

Status StatusFromWire(StatusCode code, std::string_view message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kCorruption:
      return Status::Corruption(message);
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kIOError:
      return Status::IOError(message);
    case StatusCode::kNoSpace:
      return Status::NoSpace(message);
    case StatusCode::kBusy:
      return Status::Busy(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
    case StatusCode::kTimedOut:
      return Status::TimedOut(message);
    case StatusCode::kAborted:
      return Status::Aborted(message);
    case StatusCode::kDeduplicated:
      return Status::Deduplicated(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kProtocol:
      return Status::Protocol(message);
  }
  return Status::Protocol("unknown wire status code");
}

void EncodeBatchOps(const std::vector<BatchOp>& ops, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(ops.size()));
  for (const BatchOp& op : ops) {
    out->push_back(op.is_del ? '\1' : '\0');
    out->push_back(static_cast<char>(op.dedup ? kFlagDedup : 0));
    PutFixed64(out, op.version);
    PutLengthPrefixedSlice(out, op.key);
    PutLengthPrefixedSlice(out, op.is_del ? Slice() : Slice(op.value));
  }
}

Status DecodeBatchOps(const Slice& payload, std::vector<BatchOp>* ops) {
  ops->clear();
  Slice rest = payload;
  uint32_t count = 0;
  if (!GetVarint32(&rest, &count)) {
    return Status::Protocol("truncated batch op count");
  }
  // Each op occupies >= 12 payload bytes (kind + flags + version + two
  // length prefixes), so a larger count cannot be satisfied; reject it
  // before reserve() turns an attacker-chosen count into a huge allocation.
  if (count > rest.size() / 12) {
    return Status::Protocol("batch op count exceeds payload");
  }
  ops->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (rest.size() < 10) return Status::Protocol("truncated batch op");
    const uint8_t kind = static_cast<uint8_t>(rest[0]);
    const uint8_t flags = static_cast<uint8_t>(rest[1]);
    if (kind > 1) return Status::Protocol("unknown batch op kind");
    if ((flags & ~kFlagDedup) != 0) {
      return Status::Protocol("unknown batch op flag bits");
    }
    const uint64_t version = DecodeFixed64(rest.data() + 2);
    rest.remove_prefix(10);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&rest, &key) ||
        !GetLengthPrefixedSlice(&rest, &value)) {
      return Status::Protocol("truncated batch op key/value");
    }
    BatchOp op;
    op.is_del = kind == 1;
    op.dedup = (flags & kFlagDedup) != 0;
    op.version = version;
    op.key.assign(key.data(), key.size());
    op.value.assign(value.data(), value.size());
    ops->push_back(std::move(op));
  }
  if (!rest.empty()) {
    return Status::Protocol("trailing bytes in batch payload");
  }
  return Status::OK();
}

void EncodeBatchStatuses(const std::vector<Status>& statuses,
                         std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(statuses.size()));
  for (const Status& s : statuses) {
    out->push_back(static_cast<char>(s.code()));
    PutLengthPrefixedSlice(out, s.ok() ? Slice() : Slice(s.message()));
  }
}

Status DecodeBatchStatuses(const Slice& payload,
                           std::vector<Status>* statuses) {
  statuses->clear();
  Slice rest = payload;
  uint32_t count = 0;
  if (!GetVarint32(&rest, &count)) {
    return Status::Protocol("truncated batch status count");
  }
  // Each status occupies >= 2 payload bytes (code + message length prefix);
  // bound the count before reserving (see DecodeBatchOps).
  if (count > rest.size() / 2) {
    return Status::Protocol("batch status count exceeds payload");
  }
  statuses->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (rest.empty()) return Status::Protocol("truncated batch status");
    const uint8_t code = static_cast<uint8_t>(rest[0]);
    if (!ValidStatusCode(code)) {
      return Status::Protocol("unknown batch status code");
    }
    rest.remove_prefix(1);
    Slice message;
    if (!GetLengthPrefixedSlice(&rest, &message)) {
      return Status::Protocol("truncated batch status message");
    }
    statuses->push_back(
        StatusFromWire(static_cast<StatusCode>(code),
                       std::string_view(message.data(), message.size())));
  }
  if (!rest.empty()) {
    return Status::Protocol("trailing bytes in batch status payload");
  }
  return Status::OK();
}

void EncodeHeartbeatInfo(const HeartbeatInfo& info, std::string* out) {
  uint8_t flags = 0;
  if (info.serving) flags |= kHeartbeatServing;
  if (info.degraded) flags |= kHeartbeatDegraded;
  out->push_back(static_cast<char>(flags));
  PutFixed64(out, info.live_entries);
}

Status DecodeHeartbeatInfo(const Slice& payload, HeartbeatInfo* out) {
  if (payload.size() != 9) {
    return Status::Protocol("heartbeat payload is not 9 bytes");
  }
  const uint8_t flags = static_cast<uint8_t>(payload[0]);
  if ((flags & ~(kHeartbeatServing | kHeartbeatDegraded)) != 0) {
    return Status::Protocol("unknown heartbeat flag bits");
  }
  out->serving = (flags & kHeartbeatServing) != 0;
  out->degraded = (flags & kHeartbeatDegraded) != 0;
  out->live_entries = DecodeFixed64(payload.data() + 1);
  return Status::OK();
}

void EncodeRepairScanRequest(const RepairScanRequest& req, std::string* out) {
  uint8_t flags = 0;
  if (req.keys_only) flags |= kRepairReqKeysOnly;
  if (req.cursor.resume) flags |= kRepairReqResume;
  out->push_back(static_cast<char>(flags));
  PutVarint32(out, req.cursor.shard);
  PutFixed64(out, req.cursor.version);
  PutLengthPrefixedSlice(out, req.cursor.key);
  PutVarint32(out, req.max_pairs);
}

Status DecodeRepairScanRequest(const Slice& payload, RepairScanRequest* out) {
  Slice rest = payload;
  if (rest.empty()) return Status::Protocol("empty repair scan request");
  const uint8_t flags = static_cast<uint8_t>(rest[0]);
  if ((flags & ~(kRepairReqKeysOnly | kRepairReqResume)) != 0) {
    return Status::Protocol("unknown repair scan flag bits");
  }
  rest.remove_prefix(1);
  out->keys_only = (flags & kRepairReqKeysOnly) != 0;
  out->cursor.resume = (flags & kRepairReqResume) != 0;
  if (!GetVarint32(&rest, &out->cursor.shard)) {
    return Status::Protocol("truncated repair scan cursor shard");
  }
  if (rest.size() < 8) {
    return Status::Protocol("truncated repair scan cursor version");
  }
  out->cursor.version = DecodeFixed64(rest.data());
  rest.remove_prefix(8);
  Slice key;
  if (!GetLengthPrefixedSlice(&rest, &key)) {
    return Status::Protocol("truncated repair scan cursor key");
  }
  out->cursor.key.assign(key.data(), key.size());
  if (!GetVarint32(&rest, &out->max_pairs)) {
    return Status::Protocol("truncated repair scan max pairs");
  }
  if (!rest.empty()) {
    return Status::Protocol("trailing bytes in repair scan request");
  }
  return Status::OK();
}

void EncodeRepairPage(const RepairPage& page, std::string* out) {
  out->push_back(static_cast<char>(page.done ? kRepairPageDone : 0));
  PutVarint32(out, static_cast<uint32_t>(page.pairs.size()));
  for (const RepairPair& pair : page.pairs) {
    PutFixed64(out, pair.version);
    PutLengthPrefixedSlice(out, pair.key);
    PutLengthPrefixedSlice(out, pair.value);
  }
  if (!page.done) {
    PutVarint32(out, page.next.shard);
    PutFixed64(out, page.next.version);
    PutLengthPrefixedSlice(out, page.next.key);
  }
}

Status DecodeRepairPage(const Slice& payload, RepairPage* out) {
  out->pairs.clear();
  Slice rest = payload;
  if (rest.empty()) return Status::Protocol("empty repair page");
  const uint8_t flags = static_cast<uint8_t>(rest[0]);
  if ((flags & ~kRepairPageDone) != 0) {
    return Status::Protocol("unknown repair page flag bits");
  }
  rest.remove_prefix(1);
  out->done = (flags & kRepairPageDone) != 0;
  uint32_t count = 0;
  if (!GetVarint32(&rest, &count)) {
    return Status::Protocol("truncated repair page pair count");
  }
  // Each pair occupies >= 10 payload bytes (version + two length prefixes),
  // so a larger count cannot be satisfied; reject it before reserve() turns
  // an attacker-chosen count into a huge allocation.
  if (count > rest.size() / 10) {
    return Status::Protocol("repair page pair count exceeds payload");
  }
  out->pairs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (rest.size() < 8) return Status::Protocol("truncated repair pair");
    RepairPair pair;
    pair.version = DecodeFixed64(rest.data());
    rest.remove_prefix(8);
    Slice key, value;
    if (!GetLengthPrefixedSlice(&rest, &key) ||
        !GetLengthPrefixedSlice(&rest, &value)) {
      return Status::Protocol("truncated repair pair key/value");
    }
    pair.key.assign(key.data(), key.size());
    pair.value.assign(value.data(), value.size());
    out->pairs.push_back(std::move(pair));
  }
  out->next = RepairCursor{};
  if (!out->done) {
    if (!GetVarint32(&rest, &out->next.shard)) {
      return Status::Protocol("truncated repair page next shard");
    }
    if (rest.size() < 8) {
      return Status::Protocol("truncated repair page next version");
    }
    out->next.version = DecodeFixed64(rest.data());
    rest.remove_prefix(8);
    Slice key;
    if (!GetLengthPrefixedSlice(&rest, &key)) {
      return Status::Protocol("truncated repair page next key");
    }
    out->next.key.assign(key.data(), key.size());
    out->next.resume = true;
  }
  if (!rest.empty()) {
    return Status::Protocol("trailing bytes in repair page");
  }
  return Status::OK();
}

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string body;
  body.reserve(kBodyFixedBytes + frame.key.size() + frame.value.size() + 10);
  body.push_back(static_cast<char>(frame.op));
  uint8_t flags = 0;
  if (frame.response) flags |= kFlagResponse;
  if (frame.dedup) flags |= kFlagDedup;
  if (frame.latest) flags |= kFlagLatest;
  body.push_back(static_cast<char>(flags));
  body.push_back(static_cast<char>(frame.status));
  body.push_back('\0');  // Reserved.
  PutFixed64(&body, frame.request_id);
  PutFixed64(&body, frame.version);
  PutLengthPrefixedSlice(&body, frame.key);
  PutLengthPrefixedSlice(&body, frame.value);

  PutFixed32(out, kFrameMagic);
  PutFixed32(out, static_cast<uint32_t>(body.size()));
  out->append(body);
  PutFixed32(out, crc32c::Mask(crc32c::Value(body.data(), body.size())));
}

Frame MakeResponse(const Frame& request, const Status& status,
                   std::string value) {
  Frame response;
  response.op = request.op;
  response.response = true;
  response.status = status.code();
  response.request_id = request.request_id;
  response.version = request.version;
  if (status.ok()) {
    response.value = std::move(value);
  } else {
    response.value = status.message();
  }
  return response;
}

Status FrameDecoder::DecodeBody(const char* body, size_t n, Frame* out) const {
  if (n < kBodyFixedBytes) {
    return Status::Protocol("frame body shorter than fixed fields");
  }
  const uint8_t op = static_cast<uint8_t>(body[0]);
  const uint8_t flags = static_cast<uint8_t>(body[1]);
  const uint8_t status = static_cast<uint8_t>(body[2]);
  const uint8_t reserved = static_cast<uint8_t>(body[3]);
  if (!ValidOpcode(op)) return Status::Protocol("unknown opcode");
  if ((flags & ~(kFlagResponse | kFlagDedup | kFlagLatest)) != 0) {
    return Status::Protocol("unknown flag bits");
  }
  if (!ValidStatusCode(status)) return Status::Protocol("unknown status code");
  if (reserved != 0) return Status::Protocol("reserved byte not zero");

  out->op = static_cast<Opcode>(op);
  out->response = (flags & kFlagResponse) != 0;
  out->dedup = (flags & kFlagDedup) != 0;
  out->latest = (flags & kFlagLatest) != 0;
  out->status = static_cast<StatusCode>(status);
  out->request_id = DecodeFixed64(body + 4);
  out->version = DecodeFixed64(body + 12);

  Slice rest(body + kBodyFixedBytes, n - kBodyFixedBytes);
  Slice key, value;
  if (!GetLengthPrefixedSlice(&rest, &key) ||
      !GetLengthPrefixedSlice(&rest, &value)) {
    return Status::Protocol("truncated key/value field");
  }
  if (!rest.empty()) return Status::Protocol("trailing bytes in frame body");
  out->key.assign(key.data(), key.size());
  out->value.assign(value.data(), value.size());
  return Status::OK();
}

Result<bool> FrameDecoder::Next(Frame* out) {
  if (!error_.ok()) return error_;
  // Drop consumed bytes lazily, once they dominate the buffer, so a burst of
  // pipelined frames does not memmove the tail after every frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const char* base = buffer_.data() + consumed_;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kHeaderBytes) return false;

  const uint32_t magic = DecodeFixed32(base);
  if (magic != kFrameMagic) {
    error_ = Status::Protocol("bad frame magic");
    return error_;
  }
  const uint32_t body_len = DecodeFixed32(base + 4);
  if (body_len > max_body_bytes_) {
    error_ = Status::Protocol("frame body exceeds maximum size");
    return error_;
  }
  const size_t total = kHeaderBytes + body_len + kTrailerBytes;
  if (avail < total) return false;

  const char* body = base + kHeaderBytes;
  const uint32_t expected =
      crc32c::Unmask(DecodeFixed32(body + body_len));
  const uint32_t actual = crc32c::Value(body, body_len);
  if (expected != actual) {
    error_ = Status::Corruption("frame checksum mismatch");
    return error_;
  }
  Status s = DecodeBody(body, body_len, out);
  if (!s.ok()) {
    error_ = s;
    return error_;
  }
  consumed_ += total;
  return true;
}

}  // namespace directload::rpc
