#ifndef DIRECTLOAD_RPC_SOCKET_H_
#define DIRECTLOAD_RPC_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace directload::rpc {

/// Thin POSIX TCP helpers shared by the RPC client, the KV server, and the
/// socket-level tests. All calls are blocking with explicit timeouts (poll
/// under the hood); none raise SIGPIPE. Errors map onto the project Status
/// taxonomy: kUnavailable for connection-level failures (refused, reset,
/// EOF), kTimedOut for expired deadlines, kIOError for everything else.

/// An owning socket fd. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

  /// Half-closes the write side (the reader still drains in-flight data).
  void ShutdownWrite();

  /// Writes all of `data`, looping over short writes. `timeout_ms < 0`
  /// blocks indefinitely.
  Status SendAll(const Slice& data, int timeout_ms);

  /// Reads up to `cap` bytes into `buf`. Returns the byte count — 0 means
  /// the peer cleanly closed, never a spurious wakeup (those re-poll within
  /// the deadline) — kTimedOut when nothing arrived within `timeout_ms`,
  /// kUnavailable on reset.
  Result<size_t> RecvSome(char* buf, size_t cap, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Connects to host:port within `timeout_ms`. Numeric IPv4 or names
/// resolvable by getaddrinfo.
Result<Socket> ConnectTo(const std::string& host, uint16_t port,
                         int timeout_ms);

/// Binds and listens on `host:port` (port 0 = kernel-assigned ephemeral
/// port). Returns the listening socket; query the bound port with
/// ListenPort().
Result<Socket> Listen(const std::string& host, uint16_t port, int backlog);

/// The locally bound port of a listening (or connected) socket.
Result<uint16_t> LocalPort(const Socket& socket);

/// Accepts one connection within `timeout_ms`. Returns kTimedOut when none
/// arrived — callers poll so they can observe shutdown flags.
Result<Socket> AcceptOne(const Socket& listener, int timeout_ms);

}  // namespace directload::rpc

#endif  // DIRECTLOAD_RPC_SOCKET_H_
