#ifndef DIRECTLOAD_SERVER_BULK_INGEST_H_
#define DIRECTLOAD_SERVER_BULK_INGEST_H_

#include <cstdint>
#include <set>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "mint/cluster.h"

namespace directload::server {

/// Server-side state of one bulk-ingest session (one streamed index
/// version on one connection). Slice frames may be executed by several
/// workers concurrently and out of order; the session tracks which slice
/// ids have landed so duplicates are acknowledged without re-ingesting and
/// commit can name exactly what is missing.
///
/// Locking (rank kServerBulk): slice ingest releases mu_ across its
/// cluster call so slices land in parallel; Commit and Abort hold it
/// across theirs, so a commit racing a teardown abort resolves to one
/// winner — never a torn half-commit.
class BulkIngestSession {
 public:
  BulkIngestSession(mint::MintCluster* cluster, uint64_t version)
      : cluster_(cluster), version_(version) {}

  BulkIngestSession(const BulkIngestSession&) = delete;
  BulkIngestSession& operator=(const BulkIngestSession&) = delete;

  uint64_t version() const { return version_; }

  /// Decodes, re-verifies (the per-hop checksum), and stages one slice
  /// frame. Returns kCorruption when the checksum fails — the slice is
  /// dropped, the session survives, and the client repairs by re-sending.
  /// kBusy means the same slice id is mid-ingest on another worker; a
  /// slice that already landed is acknowledged OK without re-ingesting.
  Status HandleSlice(uint64_t frame_version, const Slice& frame_value)
      EXCLUDES(mu_);

  /// Commits the session once slice ids 0 .. expected_slices-1 have all
  /// landed. Otherwise returns kUnavailable and fills `missing_payload`
  /// (EncodeMissingSlices) so the client can re-send and commit again.
  /// Idempotent after success.
  Status Commit(uint64_t expected_slices, std::string* missing_payload)
      EXCLUDES(mu_);

  /// Rolls staged records back across the cluster. Idempotent; a no-op
  /// after a successful Commit.
  void Abort() EXCLUDES(mu_);

 private:
  mint::MintCluster* const cluster_;
  const uint64_t version_;

  Mutex mu_{LockRank::kServerBulk, "BulkIngestSession::mu_"};
  std::set<uint64_t> landed_ GUARDED_BY(mu_);
  std::set<uint64_t> inflight_ GUARDED_BY(mu_);
  bool committed_ GUARDED_BY(mu_) = false;
  bool aborted_ GUARDED_BY(mu_) = false;
};

}  // namespace directload::server

#endif  // DIRECTLOAD_SERVER_BULK_INGEST_H_
