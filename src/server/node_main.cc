// dmint_node: one distributed-Mint storage node as its own process — a
// KvServer over a single-node MintCluster (1 group x 1 node, replication
// factor 1; the *coordinator* replicates across node processes, each node
// stores exactly what it is sent). The multi-process cluster harnesses
// (tests/dmint_test.cc, bench/server_loadgen --cluster) fork a fleet of
// these and drive them over DLP1.
//
//   dmint_node [--port N] [--shards S] [--workers W]
//
// Binds --port (0 = kernel-assigned) and prints one machine-readable ready
// line on stdout once serving:
//
//   dmint_node: ready port=<port> pid=<pid>
//
// The parent reads that line to learn the ephemeral port. SIGTERM (or
// SIGINT) drains gracefully — every acknowledged write is applied before
// exit. SIGKILL is the crash arm: the node's simulated SSD lives in process
// memory, so a killed node restarts empty and must be healed by the
// coordinator's RepairNode.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/status.h"
#include "mint/cluster.h"
#include "server/kv_server.h"

using namespace directload;

namespace {

std::sig_atomic_t volatile g_stop = 0;

void HandleStop(int /*signum*/) { g_stop = 1; }

struct NodeConfig {
  uint16_t port = 0;
  int shards = 1;
  int workers = 2;
};

bool ParseArgs(int argc, char** argv, NodeConfig* config) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    if (arg == "--port") {
      int port = 0;
      if (!next_int(&port) || port < 0 || port > 65535) return false;
      config->port = static_cast<uint16_t>(port);
    } else if (arg == "--shards") {
      if (!next_int(&config->shards)) return false;
    } else if (arg == "--workers") {
      if (!next_int(&config->workers)) return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return config->shards >= 0 && config->workers > 0;
}

}  // namespace

int main(int argc, char** argv) {
  NodeConfig config;
  if (!ParseArgs(argc, argv, &config)) {
    std::fprintf(stderr,
                 "usage: dmint_node [--port N] [--shards S] [--workers W]\n");
    return 1;
  }

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleStop;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  // A coordinator or loadgen parent that dies mid-run closes our stdout
  // pipe; ignore SIGPIPE so the node keeps serving its other clients.
  signal(SIGPIPE, SIG_IGN);

  mint::MintOptions mint_options;
  mint_options.num_groups = 1;
  mint_options.nodes_per_group = 1;
  mint_options.replicas = 1;
  mint_options.parallel_reads = false;
  mint_options.engine.aof.segment_bytes = 8 << 20;
  mint_options.engine.num_shards = static_cast<uint32_t>(config.shards);
  mint::MintCluster cluster(mint_options);
  if (Status s = cluster.Start(); !s.ok()) {
    std::fprintf(stderr, "dmint_node: cluster start failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  server::KvServerOptions server_options;
  server_options.port = config.port;
  server_options.num_workers = config.workers;
  server::KvServer server(&cluster, server_options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "dmint_node: server start failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }

  // The handshake line the parent process blocks on.
  std::printf("dmint_node: ready port=%u pid=%d\n", server.port(),
              static_cast<int>(getpid()));
  std::fflush(stdout);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.Shutdown();
  return 0;
}
