#include "server/bulk_ingest.h"

#include <vector>

#include "bifrost/wire/slice_codec.h"
#include "common/logging.h"
#include "qindb/qindb.h"

namespace directload::server {

namespace {

/// Cap on the ids a commit response enumerates: 64Ki ids encode to 512 KiB,
/// comfortably inside the non-bulk frame bound, and one repair round later
/// the next commit names whatever is still missing.
constexpr size_t kMaxMissingReported = 64 * 1024;

}  // namespace

Status BulkIngestSession::HandleSlice(uint64_t frame_version,
                                      const Slice& frame_value) {
  if (frame_version != version_) {
    return Status::InvalidArgument(
        "slice version differs from the session version");
  }
  bifrost::wire::SliceHeader header;
  std::vector<bifrost::wire::PairView> pairs;
  if (Status s = bifrost::wire::DecodeSlicePacket(frame_value, &header, &pairs);
      !s.ok()) {
    return s;
  }
  if (header.version != version_) {
    return Status::InvalidArgument(
        "slice header version differs from the session version");
  }
  {
    MutexLock lock(&mu_);
    if (committed_ || aborted_) {
      return Status::InvalidArgument("bulk session is closed");
    }
    if (landed_.count(header.slice_id) != 0) {
      return Status::OK();  // Duplicate of a landed slice: cheap ack.
    }
    if (!inflight_.insert(header.slice_id).second) {
      return Status::Busy("slice is already being ingested");
    }
  }
  // Engine call off the session lock: slices from different workers land in
  // parallel. The pair views alias the request frame, which outlives this
  // call.
  std::vector<qindb::IngestOp> ops;
  ops.reserve(pairs.size());
  for (const bifrost::wire::PairView& pair : pairs) {
    qindb::IngestOp op;
    op.key = pair.key;
    op.version = pair.version;
    op.value = pair.value;
    op.dedup = pair.dedup;
    op.tombstone = pair.tombstone;
    ops.push_back(op);
  }
  Status landed = cluster_->BulkIngest(version_, ops.data(), ops.size());
  MutexLock lock(&mu_);
  inflight_.erase(header.slice_id);
  if (landed.ok()) landed_.insert(header.slice_id);
  return landed;
}

Status BulkIngestSession::Commit(uint64_t expected_slices,
                                 std::string* missing_payload) {
  MutexLock lock(&mu_);
  if (aborted_) return Status::InvalidArgument("bulk session was aborted");
  if (committed_) return Status::OK();  // Repair-round re-commit.
  if (!inflight_.empty()) {
    return Status::Busy("slices are still being ingested");
  }
  std::vector<uint64_t> missing;
  for (uint64_t id = 0; id < expected_slices; ++id) {
    if (landed_.count(id) == 0) {
      missing.push_back(id);
      if (missing.size() >= kMaxMissingReported) break;
    }
  }
  if (!missing.empty()) {
    bifrost::wire::EncodeMissingSlices(missing, missing_payload);
    return Status::Unavailable("bulk session is missing slices");
  }
  Status s = cluster_->BulkCommit(version_);
  if (s.ok()) committed_ = true;
  return s;
}

void BulkIngestSession::Abort() {
  MutexLock lock(&mu_);
  if (committed_ || aborted_) return;
  aborted_ = true;
  DL_DISCARD_STATUS("best-effort rollback; the session is closed either way",
                    cluster_->BulkAbort(version_));
}

}  // namespace directload::server
