#include "server/node_process.h"

#include <cerrno>
#include <cstdlib>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace directload::server {

namespace {

/// Reads the child's stdout through `fd` until the ready line's "port=" token
/// arrives, a deadline passes, or the pipe closes (child died before
/// serving). The pipe stays open after this returns — the child keeps a
/// writable stdout for its lifetime — but nothing reads it further; node
/// output beyond the handshake is not part of the protocol.
Status ReadReadyPort(int fd, int timeout_ms, uint16_t* port) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string line;
  char c;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return Status::TimedOut("node ready line");
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int ready = ::poll(&pfd, 1, remaining);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll on node stdout: ") +
                              std::strerror(errno));
    }
    if (ready == 0) return Status::TimedOut("node ready line");
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("read node stdout: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable("node exited before its ready line");
    }
    if (c != '\n') {
      line.push_back(c);
      continue;
    }
    const size_t at = line.find("port=");
    if (at != std::string::npos) {
      const long parsed = std::strtol(line.c_str() + at + 5, nullptr, 10);
      if (parsed <= 0 || parsed > 65535) {
        return Status::Protocol("malformed node ready line: " + line);
      }
      *port = static_cast<uint16_t>(parsed);
      return Status::OK();
    }
    line.clear();  // Not the handshake; keep scanning.
  }
}

}  // namespace

NodeProcess::~NodeProcess() { Kill(); }

NodeProcess::NodeProcess(NodeProcess&& other) noexcept
    : binary_(std::move(other.binary_)),
      shards_(other.shards_),
      pid_(other.pid_),
      port_(other.port_) {
  other.pid_ = -1;
}

NodeProcess& NodeProcess::operator=(NodeProcess&& other) noexcept {
  if (this != &other) {
    Kill();
    binary_ = std::move(other.binary_);
    shards_ = other.shards_;
    pid_ = other.pid_;
    port_ = other.port_;
    other.pid_ = -1;
  }
  return *this;
}

Status NodeProcess::Start(const std::string& binary, uint16_t port,
                          int shards, int ready_timeout_ms) {
  if (running()) return Status::InvalidArgument("node is already running");
  binary_ = binary;
  shards_ = shards;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  const int pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::IOError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: stdout becomes the handshake pipe; stdin is detached.
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    const std::string port_arg = std::to_string(port);
    const std::string shards_arg = std::to_string(shards);
    ::execl(binary_.c_str(), binary_.c_str(), "--port", port_arg.c_str(),
            "--shards", shards_arg.c_str(), static_cast<char*>(nullptr));
    // exec failed; nothing sensible to do but die loudly (the parent sees
    // the closed pipe).
    std::fprintf(stderr, "exec %s: %s\n", binary_.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  pid_ = pid;
  Status ready = ReadReadyPort(pipe_fds[0], ready_timeout_ms, &port_);
  ::close(pipe_fds[0]);
  if (!ready.ok()) {
    Kill();
    return ready;
  }
  return Status::OK();
}

void NodeProcess::Reap() {
  if (pid_ <= 0) return;
  int wstatus = 0;
  while (::waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
  }
  pid_ = -1;
}

void NodeProcess::Kill() {
  if (pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  Reap();
}

Status NodeProcess::Terminate() {
  if (pid_ <= 0) return Status::InvalidArgument("node is not running");
  ::kill(pid_, SIGTERM);
  int wstatus = 0;
  while (::waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
  }
  pid_ = -1;
  if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) return Status::OK();
  return Status::IOError("node exited abnormally on SIGTERM");
}

Status NodeProcess::Suspend() {
  if (pid_ <= 0) return Status::InvalidArgument("node is not running");
  if (::kill(pid_, SIGSTOP) != 0) {
    return Status::IOError(std::string("SIGSTOP: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status NodeProcess::Resume() {
  if (pid_ <= 0) return Status::InvalidArgument("node is not running");
  if (::kill(pid_, SIGCONT) != 0) {
    return Status::IOError(std::string("SIGCONT: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status NodeProcess::Restart(int ready_timeout_ms) {
  if (running()) return Status::InvalidArgument("node is still running");
  if (binary_.empty() || port_ == 0) {
    return Status::InvalidArgument("node was never started");
  }
  return Start(binary_, port_, shards_, ready_timeout_ms);
}

}  // namespace directload::server
