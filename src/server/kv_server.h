#ifndef DIRECTLOAD_SERVER_KV_SERVER_H_
#define DIRECTLOAD_SERVER_KV_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "mint/cluster.h"
#include "rpc/protocol.h"
#include "rpc/socket.h"

namespace directload::server {

struct KvServerOptions {
  /// Numeric IPv4 listen address. Loopback by default: the simulated
  /// cluster behind the server is a research artifact, not a hardened
  /// network service.
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port; read it back via port().
  uint16_t port = 0;
  /// Worker threads executing requests against the cluster. <= 0 sizes the
  /// pool to the hardware concurrency (minimum 2).
  int num_workers = 0;
  /// Admission bound: requests decoded but not yet picked up by a worker.
  /// A full queue rejects the request with kBusy instead of queueing
  /// unboundedly — the client sees back-pressure, the server keeps a
  /// bounded memory footprint.
  size_t max_queued_requests = 1024;
  /// Workers opportunistically drain up to this many consecutive single-op
  /// write requests (PUT/DEL) from the queue front and execute them as one
  /// cluster write batch — the serving-layer half of group commit: one
  /// engine Write per involved node instead of one per request, each
  /// request still answered individually. <= 1 disables the drain.
  size_t max_write_batch = 32;
  /// Connections with no complete request for this long are closed.
  int idle_timeout_ms = 60'000;
  size_t max_frame_bytes = rpc::kMaxBodyBytes;
  /// Frame bound a connection is raised to after the server acks its
  /// kBulkBegin — the negotiated ceiling for slice frames. Connections that
  /// never open a bulk session keep the tight max_frame_bytes bound, so the
  /// remote-OOM posture of normal traffic is unchanged. The raise persists
  /// for the rest of the connection (a loader typically streams several
  /// versions back to back).
  size_t max_bulk_frame_bytes = rpc::kMaxBulkBodyBytes;
  /// Optional per-connection ingress byte throttle (wall-clock token
  /// bucket). 0 disables it.
  double conn_bytes_per_sec = 0;
  double conn_burst_bytes = 256 * 1024;
};

/// A multi-threaded TCP front end over a mint::MintCluster — the serving
/// path of the paper's regional store: web-search reads and streaming index
/// writes arrive over the same wire protocol (src/rpc/protocol.h) while the
/// engines behind it keep their own concurrency story.
///
/// Threading model (see docs/serving.md):
///   * one acceptor thread polls the listening socket and spawns
///   * one reader thread per connection, which decodes pipelined request
///     frames and enqueues them onto
///   * a bounded request queue drained by a worker pool sized to the
///     hardware, whose threads execute against the cluster and write the
///     response onto the originating connection (a per-connection write
///     lock keeps pipelined responses from interleaving bytes).
///
/// Responses may complete out of order; the request id ties them back.
/// Admission control: a full queue answers kBusy immediately. Shutdown()
/// drains gracefully — stop accepting, stop reading, finish every queued
/// and executing request, flush its acknowledgement, then close. An
/// acknowledged write is therefore always applied to the cluster, which
/// the smoke test checks across a server restart.
///
/// Locks (all ranked above the engine ranks — a worker may take engine
/// locks while holding nothing of the server's):
///   kServerState      mu_        lifecycle + connection registry
///   kServerQueue      queue_mu_  request queue, drain accounting
///   kServerConnWrite  write_mu   per-connection response serialization
class KvServer {
 public:
  /// The cluster must outlive the server and must already be Start()ed.
  KvServer(mint::MintCluster* cluster, KvServerOptions options);
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// Binds, listens, and spawns the acceptor and worker threads.
  Status Start() EXCLUDES(mu_);

  /// Graceful drain; idempotent. Blocks until every in-flight request is
  /// answered and every thread joined.
  void Shutdown() EXCLUDES(mu_);

  /// The bound port (valid after Start(); the interesting case is an
  /// ephemeral bind with options.port == 0).
  uint16_t port() const { return port_; }

  struct Counters {
    std::atomic<uint64_t> connections_accepted{0};
    std::atomic<uint64_t> connections_idle_closed{0};
    std::atomic<uint64_t> requests_served{0};
    std::atomic<uint64_t> requests_rejected_busy{0};
    /// Single-op write requests that rode a multi-request batched run.
    std::atomic<uint64_t> writes_batched{0};
    /// Connections torn down for kProtocol / kCorruption streams.
    std::atomic<uint64_t> stream_errors{0};
    /// Response frames that failed to send (peer gone mid-reply). The
    /// response is dropped — the reader side notices the dead socket — but
    /// the drop is counted, never silent.
    std::atomic<uint64_t> response_send_failures{0};
    /// Bulk-ingest sessions opened (kBulkBegin acked).
    std::atomic<uint64_t> bulk_sessions_opened{0};
    /// Slice frames staged into the cluster (first landing only).
    std::atomic<uint64_t> bulk_slices_landed{0};
    /// Slice frames rejected kCorruption by the per-hop checksum (each one
    /// repaired by a client re-send, never a torn-down connection).
    std::atomic<uint64_t> bulk_checksum_rejects{0};
  };
  const Counters& counters() const { return counters_; }

 private:
  struct Connection;
  struct Request {
    std::shared_ptr<Connection> conn;
    rpc::Frame frame;
  };

  void AcceptorLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();

  /// Executes one request against the cluster and returns its response.
  /// Takes the whole Request because bulk-ingest opcodes read and mutate
  /// the originating connection's session state.
  rpc::Frame Execute(const Request& request);

  /// Executes a drained run of single-op write requests as one cluster
  /// write batch and answers each request with its own status.
  void ExecuteWriteRun(std::vector<Request>& run);

  std::string StatsText();

  /// False when the queue is full (caller answers kBusy).
  bool Enqueue(Request request) EXCLUDES(queue_mu_);

  mint::MintCluster* const cluster_;
  const KvServerOptions options_;
  uint16_t port_ = 0;
  Counters counters_;

  /// Accept/read stop signal; set by Shutdown before the drain wait.
  std::atomic<bool> draining_{false};

  Mutex mu_{LockRank::kServerState, "KvServer::mu_"};
  bool running_ GUARDED_BY(mu_) = false;
  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>>
      connections_ GUARDED_BY(mu_);

  // Lifecycle members, written by Start()/Shutdown() only (which external
  // callers serialize) and stable for the whole time the threads run, so
  // the acceptor reads listener_ without a lock.
  rpc::Socket listener_;
  std::thread acceptor_;
  std::vector<std::thread> workers_;

  Mutex queue_mu_{LockRank::kServerQueue, "KvServer::queue_mu_"};
  CondVar queue_cv_{&queue_mu_};  // Signaled on push and on stop.
  CondVar drain_cv_{&queue_mu_};  // Signaled when the queue runs dry.
  std::deque<Request> queue_ GUARDED_BY(queue_mu_);
  int executing_ GUARDED_BY(queue_mu_) = 0;
  bool stopping_ GUARDED_BY(queue_mu_) = false;  // Workers exit.
};

}  // namespace directload::server

#endif  // DIRECTLOAD_SERVER_KV_SERVER_H_
