#include "server/kv_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bifrost/wire/slice_codec.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rate_limiter.h"
#include "server/bulk_ingest.h"

namespace directload::server {

namespace {

// Server-side failpoints. Both sit before the request is acknowledged in
// any way, so firing them can never lose an acked write: a dropped accept
// looks like a dial race, a failed enqueue is answered kBusy and the
// client retries.
DIRECTLOAD_FAILPOINT_DEFINE(fp_server_accept, "server_accept");
DIRECTLOAD_FAILPOINT_DEFINE(fp_server_enqueue, "server_enqueue");

// Node-role failpoints. A failed heartbeat makes a healthy node look dead
// to the coordinator's detector (false-suspect drills); a failed repair
// scan interrupts re-replication mid-stream, which the coordinator must
// survive by resuming from its cursor. Neither touches stored data.
DIRECTLOAD_FAILPOINT_DEFINE(fp_server_heartbeat, "server_heartbeat");
DIRECTLOAD_FAILPOINT_DEFINE(fp_server_repair_scan, "server_repair_scan");

using SteadyClock = std::chrono::steady_clock;

/// How often blocked accept/recv/wait calls wake up to check the shutdown
/// and idle flags. Bounds drain latency without burning CPU.
constexpr int kPollSliceMs = 50;

/// Deadline for writing one response onto a connection. A peer that stops
/// reading for this long forfeits the response (the socket send buffer plus
/// this budget is far more slack than a live client ever needs).
constexpr int kWriteTimeoutMs = 5000;

}  // namespace

/// Per-connection state. The reader thread owns `decoder` and `limiter`
/// exclusively; the socket is shared between the reader (recv) and the
/// workers (send) — opposite directions of one fd, which the kernel allows
/// concurrently — and `write_mu` serializes the senders so pipelined
/// responses cannot interleave bytes.
struct KvServer::Connection {
  Connection(rpc::Socket s, const KvServerOptions& options,
             std::atomic<uint64_t>* send_failures)
      : socket(std::move(s)),
        decoder(options.max_frame_bytes),
        limiter(options.conn_bytes_per_sec, options.conn_burst_bytes),
        send_failures(send_failures),
        frame_limit(options.max_frame_bytes) {}

  /// Encodes and writes one frame. A send failure means the peer is gone
  /// mid-reply; the reader thread will notice the dead socket and tear the
  /// connection down, so the response is dropped here — counted, not silent.
  void Write(const rpc::Frame& frame) {
    std::string wire;
    rpc::EncodeFrame(frame, &wire);
    MutexLock lock(&write_mu);
    if (!socket.SendAll(wire, kWriteTimeoutMs).ok()) {
      send_failures->fetch_add(1, std::memory_order_relaxed);
    }
  }

  rpc::Socket socket;
  rpc::FrameDecoder decoder;  // Reader thread only.
  WallRateLimiter limiter;    // Reader thread only.
  Mutex write_mu{LockRank::kServerConnWrite, "Connection::write_mu"};
  std::atomic<uint64_t>* send_failures;  // Server-owned counter.
  std::atomic<bool> done{false};  // Reader thread exited.

  /// Decoder frame bound, re-applied by the reader before each decode pass.
  /// Raised by the kBulkBegin handler *before* its ack goes out, so by the
  /// time the client can legally send an oversized slice the reader already
  /// observes the new bound.
  std::atomic<size_t> frame_limit;
  /// The connection's bulk-ingest session, if one is open. Workers copy the
  /// pointer out under bulk_mu and call the session unlocked; reader
  /// teardown swaps it out and aborts whatever was never committed.
  Mutex bulk_mu{LockRank::kServerBulk, "Connection::bulk_mu"};
  std::shared_ptr<BulkIngestSession> bulk GUARDED_BY(bulk_mu);
};

KvServer::KvServer(mint::MintCluster* cluster, KvServerOptions options)
    : cluster_(cluster), options_(std::move(options)) {}

KvServer::~KvServer() { Shutdown(); }

Status KvServer::Start() {
  MutexLock lock(&mu_);
  if (running_) return Status::InvalidArgument("server is already running");

  Result<rpc::Socket> listener =
      rpc::Listen(options_.host, options_.port, /*backlog=*/128);
  if (!listener.ok()) return listener.status();
  Result<uint16_t> port = rpc::LocalPort(*listener);
  if (!port.ok()) return port.status();
  listener_ = std::move(listener).value();
  port_ = *port;

  draining_.store(false);
  {
    MutexLock queue_lock(&queue_mu_);
    stopping_ = false;
  }
  int num_workers = options_.num_workers;
  if (num_workers <= 0) {
    num_workers = std::max(2u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back(&KvServer::WorkerLoop, this);
  }
  acceptor_ = std::thread(&KvServer::AcceptorLoop, this);
  running_ = true;
  return Status::OK();
}

void KvServer::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (!running_) return;
    running_ = false;
  }
  // Stop accepting and stop decoding new requests. Frames already queued
  // (or executing) still complete and flush their acknowledgements —
  // that is the drain guarantee: every acknowledged write reached the
  // cluster.
  draining_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  {
    MutexLock lock(&queue_mu_);
    while (!queue_.empty() || executing_ > 0) {
      drain_cv_.WaitFor(std::chrono::milliseconds(kPollSliceMs));
    }
    stopping_ = true;
    queue_cv_.SignalAll();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  std::vector<std::pair<std::shared_ptr<Connection>, std::thread>> connections;
  {
    MutexLock lock(&mu_);
    connections.swap(connections_);
  }
  for (auto& [conn, reader] : connections) {
    if (reader.joinable()) reader.join();
  }
  connections.clear();  // Closes the sockets.
  listener_.Close();
}

void KvServer::AcceptorLoop() {
  while (!draining_.load()) {
    Result<rpc::Socket> accepted = rpc::AcceptOne(listener_, kPollSliceMs);
    if (!accepted.ok()) {
      if (accepted.status().IsTimedOut()) {
        // Idle moment: reap finished connections so a long-lived server
        // does not accumulate dead registry entries.
        MutexLock lock(&mu_);
        for (auto it = connections_.begin(); it != connections_.end();) {
          if (it->first->done.load()) {
            if (it->second.joinable()) it->second.join();
            it = connections_.erase(it);
          } else {
            ++it;
          }
        }
        continue;
      }
      return;  // Listener broken; Shutdown will clean up.
    }
#if DIRECTLOAD_FAILPOINTS_COMPILED
    if (fp_server_accept->armed() && !fp_server_accept->MaybeFail().ok()) {
      // Drop the fresh connection on the floor — to the client this is a
      // peer that accepted and immediately reset, the classic overloaded
      // front-end symptom.
      continue;
    }
#endif
    counters_.connections_accepted.fetch_add(1);
    auto conn = std::make_shared<Connection>(
        std::move(accepted).value(), options_,
        &counters_.response_send_failures);
    MutexLock lock(&mu_);
    connections_.emplace_back(conn,
                              std::thread(&KvServer::ReaderLoop, this, conn));
  }
}

void KvServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  const bool throttled = options_.conn_bytes_per_sec > 0;
  SteadyClock::time_point idle_deadline =
      SteadyClock::now() + std::chrono::milliseconds(options_.idle_timeout_ms);
  char buf[32 * 1024];
  bool alive = true;
  while (alive && !draining_.load()) {
    Result<size_t> n = conn->socket.RecvSome(buf, sizeof(buf), kPollSliceMs);
    if (!n.ok()) {
      if (n.status().IsTimedOut()) {
        if (SteadyClock::now() >= idle_deadline) {
          counters_.connections_idle_closed.fetch_add(1);
          break;
        }
        continue;
      }
      break;  // Reset / hard error.
    }
    if (*n == 0) break;  // Clean EOF.
    if (throttled) conn->limiter.Throttle(static_cast<double>(*n));
    // The bulk-begin handler may have negotiated the frame bound up since
    // the last pass; the decoder applies the new bound from the next frame.
    conn->decoder.set_max_body_bytes(
        conn->frame_limit.load(std::memory_order_acquire));
    conn->decoder.Append(buf, *n);

    while (alive) {
      rpc::Frame frame;
      Result<bool> got = conn->decoder.Next(&frame);
      if (!got.ok()) {
        // Framing is lost: report the reason on a best-effort error frame
        // (request id 0 — the broken stream no longer names one) and tear
        // the connection down.
        counters_.stream_errors.fetch_add(1);
        rpc::Frame error;
        error.op = rpc::Opcode::kPing;
        error.response = true;
        error.status = got.status().code();
        error.value = got.status().ToString();
        conn->Write(error);
        alive = false;
        break;
      }
      if (!*got) break;  // Need more bytes.
      idle_deadline = SteadyClock::now() +
                      std::chrono::milliseconds(options_.idle_timeout_ms);
      if (frame.response) {
        counters_.stream_errors.fetch_add(1);
        conn->Write(rpc::MakeResponse(
            frame, Status::Protocol("client sent a response frame")));
        alive = false;
        break;
      }
      if (draining_.load()) {
        // Not yet queued, so not acknowledged — the client will retry
        // against whatever replaces this server.
        alive = false;
        break;
      }
      rpc::Frame stub;  // Scalar fields survive for the rejection path.
      stub.op = frame.op;
      stub.request_id = frame.request_id;
      stub.version = frame.version;
      if (!Enqueue(Request{conn, std::move(frame)})) {
        counters_.requests_rejected_busy.fetch_add(1);
        conn->Write(
            rpc::MakeResponse(stub, Status::Busy("request queue is full")));
      }
    }
  }
  // Connection teardown: an open bulk session dies with its connection —
  // whatever was staged but never committed is rolled back, so a loader
  // that crashed mid-stream leaves no trace. (Abort waits out a commit
  // already executing on a worker and then no-ops if it won.)
  std::shared_ptr<BulkIngestSession> orphan;
  {
    MutexLock lock(&conn->bulk_mu);
    orphan = std::move(conn->bulk);
  }
  if (orphan != nullptr) orphan->Abort();
  conn->done.store(true);
}

bool KvServer::Enqueue(Request request) {
#if DIRECTLOAD_FAILPOINTS_COMPILED
  if (fp_server_enqueue->armed() && !fp_server_enqueue->MaybeFail().ok()) {
    return false;  // Reported as kBusy; the request was never acked.
  }
#endif
  MutexLock lock(&queue_mu_);
  if (queue_.size() >= options_.max_queued_requests) return false;
  queue_.push_back(std::move(request));
  queue_cv_.Signal();
  return true;
}

namespace {

/// A single-op write request a worker may fold into a batched run.
bool IsWriteOp(const rpc::Frame& frame) {
  return frame.op == rpc::Opcode::kPut || frame.op == rpc::Opcode::kDel;
}

}  // namespace

void KvServer::WorkerLoop() {
  const size_t max_batch = std::max<size_t>(1, options_.max_write_batch);
  std::vector<Request> run;
  while (true) {
    run.clear();
    {
      MutexLock lock(&queue_mu_);
      while (queue_.empty() && !stopping_) {
        queue_cv_.WaitFor(std::chrono::milliseconds(kPollSliceMs));
      }
      if (queue_.empty()) return;  // stopping_ && drained.
      run.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Opportunistic group commit: when the head of the queue continues a
      // run of single-op writes, drain them in the same pass and execute
      // the run as one cluster batch. Only the contiguous front is taken,
      // so requests are still served strictly in arrival order.
      if (max_batch > 1 && IsWriteOp(run.front().frame)) {
        while (run.size() < max_batch && !queue_.empty() &&
               IsWriteOp(queue_.front().frame)) {
          run.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
      executing_ += static_cast<int>(run.size());
    }
    if (run.size() == 1) {
      rpc::Frame response = Execute(run.front());
      run.front().conn->Write(response);
      counters_.requests_served.fetch_add(1);
    } else {
      ExecuteWriteRun(run);
    }
    {
      MutexLock lock(&queue_mu_);
      executing_ -= static_cast<int>(run.size());
      if (queue_.empty() && executing_ == 0) drain_cv_.SignalAll();
    }
    run.clear();  // Drops the connection references.
  }
}

void KvServer::ExecuteWriteRun(std::vector<Request>& run) {
  std::vector<mint::MintCluster::BatchOp> ops;
  ops.reserve(run.size());
  for (Request& request : run) {
    rpc::Frame& frame = request.frame;
    mint::MintCluster::BatchOp op;
    op.is_del = frame.op == rpc::Opcode::kDel;
    op.version = frame.version;
    op.dedup = frame.dedup;
    // MakeResponse only reads the scalar fields, so the payload can move.
    op.key = std::move(frame.key);
    op.value = std::move(frame.value);
    ops.push_back(std::move(op));
  }
  std::vector<Status> statuses;
  DL_DISCARD_STATUS("first failing per-op status; each response frame below "
                    "carries its own op's status",
                    cluster_->WriteMany(ops, &statuses));
  for (size_t i = 0; i < run.size(); ++i) {
    run[i].conn->Write(rpc::MakeResponse(run[i].frame, statuses[i]));
  }
  counters_.requests_served.fetch_add(run.size());
  counters_.writes_batched.fetch_add(run.size());
}

rpc::Frame KvServer::Execute(const Request& full_request) {
  const rpc::Frame& request = full_request.frame;
  switch (request.op) {
    case rpc::Opcode::kGet: {
      Result<mint::MintCluster::ReadResult> read =
          request.latest ? cluster_->GetLatest(request.key)
                         : cluster_->Get(request.key, request.version);
      if (!read.ok()) return rpc::MakeResponse(request, read.status());
      return rpc::MakeResponse(request, Status::OK(),
                               std::move(read->value));
    }
    case rpc::Opcode::kPut:
      return rpc::MakeResponse(
          request, cluster_->Put(request.key, request.version, request.value,
                                 request.dedup));
    case rpc::Opcode::kDel:
      return rpc::MakeResponse(request,
                               cluster_->Del(request.key, request.version));
    case rpc::Opcode::kStats:
      return rpc::MakeResponse(request, Status::OK(), StatsText());
    case rpc::Opcode::kPing:
      return rpc::MakeResponse(request, Status::OK(), request.value);
    case rpc::Opcode::kWriteBatch: {
      std::vector<rpc::BatchOp> wire_ops;
      Status decoded = rpc::DecodeBatchOps(request.value, &wire_ops);
      if (!decoded.ok()) return rpc::MakeResponse(request, decoded);
      std::vector<mint::MintCluster::BatchOp> ops;
      ops.reserve(wire_ops.size());
      for (rpc::BatchOp& op : wire_ops) {
        mint::MintCluster::BatchOp out;
        out.is_del = op.is_del;
        out.version = op.version;
        out.dedup = op.dedup;
        out.key = std::move(op.key);
        out.value = std::move(op.value);
        ops.push_back(std::move(out));
      }
      std::vector<Status> statuses;
      Status overall = cluster_->WriteMany(ops, &statuses);
      // The response value always carries the per-op statuses; the frame
      // status summarizes them (first non-OK), so a client that only looks
      // at the frame level still sees the batch outcome.
      std::string payload;
      rpc::EncodeBatchStatuses(statuses, &payload);
      rpc::Frame response =
          rpc::MakeResponse(request, Status::OK(), std::move(payload));
      response.status = overall.code();
      return response;
    }
    case rpc::Opcode::kBulkBegin: {
      bifrost::wire::BulkBeginInfo info;
      if (Status s = bifrost::wire::DecodeBulkBegin(request.value, &info);
          !s.ok()) {
        return rpc::MakeResponse(request, s);
      }
      if (info.version != request.version) {
        return rpc::MakeResponse(
            request, Status::InvalidArgument(
                         "begin payload version differs from the frame"));
      }
      auto session =
          std::make_shared<BulkIngestSession>(cluster_, request.version);
      {
        MutexLock lock(&full_request.conn->bulk_mu);
        if (full_request.conn->bulk != nullptr) {
          return rpc::MakeResponse(
              request,
              Status::Busy("a bulk session is already open on this "
                           "connection"));
        }
        full_request.conn->bulk = session;
      }
      if (Status s = cluster_->BulkBegin(request.version); !s.ok()) {
        MutexLock lock(&full_request.conn->bulk_mu);
        full_request.conn->bulk.reset();
        return rpc::MakeResponse(request, s);
      }
      // Negotiate the frame bound up before the ack is on the wire: once
      // the client sees OK it may send slices up to the bulk bound, and by
      // then the reader observes the raised limit.
      full_request.conn->frame_limit.store(
          std::max(options_.max_frame_bytes, options_.max_bulk_frame_bytes),
          std::memory_order_release);
      counters_.bulk_sessions_opened.fetch_add(1);
      return rpc::MakeResponse(request, Status::OK());
    }
    case rpc::Opcode::kBulkSlice: {
      std::shared_ptr<BulkIngestSession> session;
      {
        MutexLock lock(&full_request.conn->bulk_mu);
        session = full_request.conn->bulk;
      }
      if (session == nullptr) {
        return rpc::MakeResponse(
            request,
            Status::InvalidArgument("no bulk session on this connection"));
      }
      Status s = session->HandleSlice(request.version, request.value);
      if (s.ok()) {
        counters_.bulk_slices_landed.fetch_add(1);
      } else if (s.IsCorruption()) {
        counters_.bulk_checksum_rejects.fetch_add(1);
      }
      return rpc::MakeResponse(request, s);
    }
    case rpc::Opcode::kBulkCommit: {
      std::shared_ptr<BulkIngestSession> session;
      {
        MutexLock lock(&full_request.conn->bulk_mu);
        session = full_request.conn->bulk;
      }
      if (session == nullptr) {
        return rpc::MakeResponse(
            request,
            Status::InvalidArgument("no bulk session on this connection"));
      }
      uint64_t expected = 0;
      if (Status s = bifrost::wire::DecodeBulkCommit(request.value, &expected);
          !s.ok()) {
        return rpc::MakeResponse(request, s);
      }
      std::string missing;
      Status s = session->Commit(expected, &missing);
      if (s.IsUnavailable() && !missing.empty()) {
        // The repair contract: the ids still outstanding ride the response
        // so the client re-sends exactly those and commits again.
        rpc::Frame response =
            rpc::MakeResponse(request, Status::OK(), std::move(missing));
        response.status = StatusCode::kUnavailable;
        return response;
      }
      if (s.ok()) {
        MutexLock lock(&full_request.conn->bulk_mu);
        full_request.conn->bulk.reset();
      }
      return rpc::MakeResponse(request, s);
    }
    case rpc::Opcode::kHeartbeat: {
#if DIRECTLOAD_FAILPOINTS_COMPILED
      if (fp_server_heartbeat->armed()) {
        if (Status s = fp_server_heartbeat->MaybeFail(); !s.ok()) {
          return rpc::MakeResponse(request, s);
        }
      }
#endif
      // The probe speaks for this process's node role: node 0 is THE node
      // in a dmint_node process (its cluster is 1 group x 1 node), and the
      // front node of an in-process simulation cluster otherwise.
      rpc::HeartbeatInfo info;
      if (cluster_->num_nodes() > 0) {
        mint::StorageNode* node = cluster_->node(0);
        ReaderLock engine_guard(node->lifecycle_mu());
        if (node->up() && node->db() != nullptr) {
          const bool draining = draining_.load();
          info.serving = !draining;
          info.degraded = draining;
          info.live_entries = node->db()->LiveEntryCount();
        }
      }
      std::string payload;
      rpc::EncodeHeartbeatInfo(info, &payload);
      return rpc::MakeResponse(request, Status::OK(), std::move(payload));
    }
    case rpc::Opcode::kRepairScan: {
#if DIRECTLOAD_FAILPOINTS_COMPILED
      if (fp_server_repair_scan->armed()) {
        if (Status s = fp_server_repair_scan->MaybeFail(); !s.ok()) {
          return rpc::MakeResponse(request, s);
        }
      }
#endif
      rpc::RepairScanRequest scan;
      if (Status s = rpc::DecodeRepairScanRequest(request.value, &scan);
          !s.ok()) {
        return rpc::MakeResponse(request, s);
      }
      if (cluster_->num_nodes() == 0) {
        return rpc::MakeResponse(request,
                                 Status::Unavailable("no node to scan"));
      }
      mint::StorageNode* node = cluster_->node(0);
      ReaderLock engine_guard(node->lifecycle_mu());
      if (!node->up() || node->db() == nullptr) {
        return rpc::MakeResponse(request,
                                 Status::Unavailable("node engine is down"));
      }
      qindb::QinDb* db = node->db();
      const uint32_t max_pairs = std::max<uint32_t>(1, scan.max_pairs);
      rpc::RepairPage page;
      bool full = false;
      size_t budget = 0;
      const uint32_t start_shard = scan.cursor.resume ? scan.cursor.shard : 0;
      for (uint32_t shard = start_shard; shard < db->num_shards() && !full;
           ++shard) {
        MemIndex::Iterator it(&db->memtable(shard));
        if (scan.cursor.resume && shard == scan.cursor.shard) {
          // The cursor names the last pair already returned; skip past it.
          // The index orders versions descending within a key, so "past"
          // is every entry of the cursor key at or above its version.
          const Slice cursor_key(scan.cursor.key);
          it.Seek(cursor_key);
          while (it.Valid() && it.entry()->user_key() == cursor_key &&
                 it.entry()->version >= scan.cursor.version) {
            it.Next();
          }
        }
        for (; it.Valid(); it.Next()) {
          MemEntry* entry = it.entry();
          // Deleted pairs are not copied: a repaired node that never hears
          // of the pair equals one that heard of it and its deletion.
          if (entry->deleted.load(std::memory_order_acquire)) continue;
          rpc::RepairPair pair;
          pair.key = entry->user_key().ToString();
          pair.version = entry->version;
          if (!scan.keys_only) {
            // Resolves the dedup traceback too, so the page carries full
            // values the receiver can store without this node's chain.
            Result<std::string> value = db->Get(pair.key, pair.version);
            if (!value.ok()) continue;  // Collected mid-scan; skip.
            pair.value = std::move(value).value();
          }
          budget += pair.key.size() + pair.value.size() + 16;
          page.pairs.push_back(std::move(pair));
          if (page.pairs.size() >= max_pairs ||
              budget >= rpc::kRepairPageBudgetBytes) {
            page.next.shard = shard;
            page.next.version = page.pairs.back().version;
            page.next.key = page.pairs.back().key;
            page.next.resume = true;
            full = true;
            break;
          }
        }
      }
      page.done = !full;
      std::string payload;
      rpc::EncodeRepairPage(page, &payload);
      return rpc::MakeResponse(request, Status::OK(), std::move(payload));
    }
    case rpc::Opcode::kBulkAbort: {
      std::shared_ptr<BulkIngestSession> session;
      {
        MutexLock lock(&full_request.conn->bulk_mu);
        session = std::move(full_request.conn->bulk);
      }
      if (session != nullptr) session->Abort();
      return rpc::MakeResponse(request, Status::OK());  // Idempotent.
    }
  }
  return rpc::MakeResponse(request, Status::Protocol("unknown opcode"));
}

std::string KvServer::StatsText() {
  char line[512];
  std::string out;
  std::snprintf(line, sizeof(line),
                "server: accepted=%llu idle_closed=%llu served=%llu "
                "busy_rejected=%llu stream_errors=%llu writes_batched=%llu "
                "send_failures=%llu\n",
                (unsigned long long)counters_.connections_accepted.load(),
                (unsigned long long)counters_.connections_idle_closed.load(),
                (unsigned long long)counters_.requests_served.load(),
                (unsigned long long)counters_.requests_rejected_busy.load(),
                (unsigned long long)counters_.stream_errors.load(),
                (unsigned long long)counters_.writes_batched.load(),
                (unsigned long long)counters_.response_send_failures.load());
  out += line;
  std::snprintf(line, sizeof(line),
                "bulk: sessions=%llu slices_landed=%llu checksum_rejects=%llu\n",
                (unsigned long long)counters_.bulk_sessions_opened.load(),
                (unsigned long long)counters_.bulk_slices_landed.load(),
                (unsigned long long)counters_.bulk_checksum_rejects.load());
  out += line;
  // Every node opens its engine with the same options, so node 0's resolved
  // shard count speaks for the cluster (0 = no node has an open engine).
  unsigned engine_shards = 0;
  if (cluster_->num_nodes() > 0 && cluster_->node(0)->db() != nullptr) {
    engine_shards = cluster_->node(0)->db()->num_shards();
  }
  std::snprintf(line, sizeof(line),
                "cluster: nodes=%d engine_shards=%u user_bytes=%llu "
                "disk_bytes=%llu\n",
                cluster_->num_nodes(), engine_shards,
                (unsigned long long)cluster_->TotalUserBytesIngested(),
                (unsigned long long)cluster_->TotalDiskBytes());
  out += line;
  // Read-path memory governors, summed across every local node's engine.
  qindb::EngineCacheTotals cache;
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    if (cluster_->node(n)->db() == nullptr) continue;
    const qindb::EngineCacheTotals t = cluster_->node(n)->db()->CacheTotals();
    cache.cache_hits += t.cache_hits;
    cache.cache_misses += t.cache_misses;
    cache.cache_inserts += t.cache_inserts;
    cache.cache_admission_rejects += t.cache_admission_rejects;
    cache.cache_evicted_bytes += t.cache_evicted_bytes;
    cache.cache_charged_bytes += t.cache_charged_bytes;
    cache.index_loads += t.index_loads;
    cache.index_unloads += t.index_unloads;
    cache.resident_versions += t.resident_versions;
    cache.cold_versions += t.cold_versions;
  }
  std::snprintf(line, sizeof(line),
                "cache: hits=%llu misses=%llu inserts=%llu "
                "admission_rejects=%llu evicted_bytes=%llu "
                "charged_bytes=%llu index_loads=%llu index_unloads=%llu "
                "resident_versions=%llu cold_versions=%llu\n",
                (unsigned long long)cache.cache_hits,
                (unsigned long long)cache.cache_misses,
                (unsigned long long)cache.cache_inserts,
                (unsigned long long)cache.cache_admission_rejects,
                (unsigned long long)cache.cache_evicted_bytes,
                (unsigned long long)cache.cache_charged_bytes,
                (unsigned long long)cache.index_loads,
                (unsigned long long)cache.index_unloads,
                (unsigned long long)cache.resident_versions,
                (unsigned long long)cache.cold_versions);
  out += line;
  return out;
}

}  // namespace directload::server
