#ifndef DIRECTLOAD_SERVER_NODE_PROCESS_H_
#define DIRECTLOAD_SERVER_NODE_PROCESS_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace directload::server {

/// Owns one dmint_node child process: fork/exec, the ready-line handshake
/// (the child prints "dmint_node: ready port=<port> ..." on stdout once its
/// server is bound), and teardown. The chaos harnesses drive the lifecycle:
/// Terminate() is the graceful drain, Kill() is the crash arm (SIGKILL, the
/// node's in-memory SSD is lost), Suspend()/Resume() freeze a live node so
/// its kernel still accepts TCP but nothing answers — the stimulus that
/// forces timer-based hedging. Restart() re-launches on the recorded port
/// so a coordinator's fixed endpoint table keeps pointing at the node.
///
/// Not thread-safe; one owner drives each process.
class NodeProcess {
 public:
  NodeProcess() = default;
  ~NodeProcess();  // Kills the child if still running.

  NodeProcess(const NodeProcess&) = delete;
  NodeProcess& operator=(const NodeProcess&) = delete;
  NodeProcess(NodeProcess&& other) noexcept;
  NodeProcess& operator=(NodeProcess&& other) noexcept;

  /// Launches `binary --port <port> --shards <shards>` and blocks until the
  /// ready line arrives (or `ready_timeout_ms` passes — kUnavailable, child
  /// reaped). port 0 asks the node for an ephemeral port; the bound port is
  /// read back from the handshake either way.
  Status Start(const std::string& binary, uint16_t port, int shards,
               int ready_timeout_ms = 10'000);

  /// SIGKILL + reap: the crash. Idempotent.
  void Kill();

  /// SIGTERM + reap: the graceful drain. Fails if the child exited non-zero.
  Status Terminate();

  /// SIGSTOP / SIGCONT: freeze and thaw without losing state.
  Status Suspend();
  Status Resume();

  /// Re-launches the same binary/shards on the same port after Kill() or
  /// Terminate().
  Status Restart(int ready_timeout_ms = 10'000);

  bool running() const { return pid_ > 0; }
  int pid() const { return pid_; }
  uint16_t port() const { return port_; }

 private:
  void Reap();

  std::string binary_;
  int shards_ = 1;
  int pid_ = -1;
  uint16_t port_ = 0;
};

}  // namespace directload::server

#endif  // DIRECTLOAD_SERVER_NODE_PROCESS_H_
