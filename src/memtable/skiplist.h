#ifndef DIRECTLOAD_MEMTABLE_SKIPLIST_H_
#define DIRECTLOAD_MEMTABLE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdint>

#include "common/arena.h"
#include "common/random.h"

namespace directload {

/// An arena-backed skip list (Pugh [8] in the paper), the sorted in-memory
/// structure behind both QinDB's memtable and the LSM baseline's memtable.
///
/// Template parameters:
///   Key        — copyable, trivially destructible key type (typically a
///                pointer to an arena-allocated entry).
///   Comparator — functor with `int operator()(const Key&, const Key&)`
///                returning <0 / 0 / >0.
///
/// The list never removes nodes; deletion is expressed by the layers above
/// (flags in QinDB, tombstones in the LSM engine), which matches both
/// engines' semantics.
///
/// Thread model (the LevelDB discipline): writes require external
/// synchronization — one Insert at a time — but reads need none. Next
/// pointers are atomics; an insert initializes the new node and links it
/// bottom-up with release stores, so a reader that observes a node via an
/// acquire load also observes the node's contents. Readers may therefore
/// traverse concurrently with one writer, and nodes are never unlinked or
/// freed while the owning arena lives.
template <typename Key, class Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena, uint64_t seed = 0xdecaf)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(Key(), kMaxHeight)),
        max_height_(1),
        rnd_(seed) {
    for (int i = 0; i < kMaxHeight; ++i) head_->NoBarrier_SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts `key`. Requires that an equal key has not already been
  /// inserted (equality under the comparator), and that no other thread is
  /// inserting concurrently.
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || compare_(key, x->key) != 0);
    const int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; ++i) prev[i] = head_;
      // A relaxed store suffices: a reader seeing the new height before the
      // new node simply starts from head_'s null pointers at those levels.
      max_height_.store(height, std::memory_order_relaxed);
    }
    x = NewNode(key, height);
    for (int i = 0; i < height; ++i) {
      // The new node's forward pointers need no barrier yet: the node is
      // unpublished. The prev->SetNext release store publishes it (and the
      // key contents written before this loop).
      x->NoBarrier_SetNext(i, prev[i]->NoBarrier_Next(i));
      prev[i]->SetNext(i, x);
    }
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && compare_(key, x->key) == 0;
  }

  size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Forward/backward iteration over the list contents.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }

    /// Retreats to the previous entry (O(log n): re-searches from the head).
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }

    /// Positions at the first entry >= target.
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

    void SeekToFirst() { node_ = list_->head_->Next(0); }

    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    Key key;

    Node* Next(int level) const {
      return next_[level].load(std::memory_order_acquire);
    }
    void SetNext(int level, Node* n) {
      next_[level].store(n, std::memory_order_release);
    }
    Node* NoBarrier_Next(int level) const {
      return next_[level].load(std::memory_order_relaxed);
    }
    void NoBarrier_SetNext(int level, Node* n) {
      next_[level].store(n, std::memory_order_relaxed);
    }

   private:
    // Over-allocated to the node's height by NewNode.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.Uniform(kBranching) == 0) ++height;
    return height;
  }

  /// First node >= key; fills prev[] with the rightmost node before it at
  /// each level when prev != nullptr.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  /// Last node < key, or head_.
  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (level == 0) return x;
        --level;
      }
    }
  }

  /// Last node in the list, or head_.
  Node* FindLast() const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr) {
        x = next;
      } else {
        if (level == 0) return x;
        --level;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;  // Writer-only (guarded by the external insert lock).
  std::atomic<size_t> size_{0};
};

}  // namespace directload

#endif  // DIRECTLOAD_MEMTABLE_SKIPLIST_H_
