#ifndef DIRECTLOAD_MEMTABLE_SKIPLIST_H_
#define DIRECTLOAD_MEMTABLE_SKIPLIST_H_

#include <cassert>
#include <cstdint>

#include "common/arena.h"
#include "common/random.h"

namespace directload {

/// An arena-backed skip list (Pugh [8] in the paper), the sorted in-memory
/// structure behind both QinDB's memtable and the LSM baseline's memtable.
///
/// Template parameters:
///   Key        — copyable, trivially destructible key type (typically a
///                pointer to an arena-allocated entry).
///   Comparator — functor with `int operator()(const Key&, const Key&)`
///                returning <0 / 0 / >0.
///
/// The list never removes nodes; deletion is expressed by the layers above
/// (flags in QinDB, tombstones in the LSM engine), which matches both
/// engines' semantics. Single-writer, as all concurrency in the project is
/// simulated.
template <typename Key, class Comparator>
class SkipList {
 public:
  SkipList(Comparator cmp, Arena* arena, uint64_t seed = 0xdecaf)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(Key(), kMaxHeight)),
        max_height_(1),
        rnd_(seed) {
    for (int i = 0; i < kMaxHeight; ++i) head_->SetNext(i, nullptr);
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts `key`. Requires that an equal key has not already been
  /// inserted (equality under the comparator).
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || compare_(key, x->key) != 0);
    const int height = RandomHeight();
    if (height > max_height_) {
      for (int i = max_height_; i < height; ++i) prev[i] = head_;
      max_height_ = height;
    }
    x = NewNode(key, height);
    for (int i = 0; i < height; ++i) {
      x->SetNext(i, prev[i]->Next(i));
      prev[i]->SetNext(i, x);
    }
    ++size_;
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && compare_(key, x->key) == 0;
  }

  size_t size() const { return size_; }

  /// Forward/backward iteration over the list contents.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }

    /// Retreats to the previous entry (O(log n): re-searches from the head).
    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }

    /// Positions at the first entry >= target.
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

    void SeekToFirst() { node_ = list_->head_->Next(0); }

    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    typename SkipList::Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    Key key;

    Node* Next(int level) const { return next_[level]; }
    void SetNext(int level, Node* n) { next_[level] = n; }

   private:
    // Over-allocated to the node's height by NewNode.
    Node* next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(sizeof(Node) +
                                        sizeof(Node*) * (height - 1));
    return new (mem) Node(key);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.Uniform(kBranching) == 0) ++height;
    return height;
  }

  /// First node >= key; fills prev[] with the rightmost node before it at
  /// each level when prev != nullptr.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = max_height_ - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  /// Last node < key, or head_.
  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = max_height_ - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr && compare_(next->key, key) < 0) {
        x = next;
      } else {
        if (level == 0) return x;
        --level;
      }
    }
  }

  /// Last node in the list, or head_.
  Node* FindLast() const {
    Node* x = head_;
    int level = max_height_ - 1;
    while (true) {
      Node* next = x->Next(level);
      if (next != nullptr) {
        x = next;
      } else {
        if (level == 0) return x;
        --level;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  int max_height_;
  Random rnd_;
  size_t size_ = 0;
};

}  // namespace directload

#endif  // DIRECTLOAD_MEMTABLE_SKIPLIST_H_
