#include "memtable/mem_index.h"

#include <cstring>

namespace directload {

namespace {

/// Builds a stack probe entry for seeks. The probe never outlives the call.
MemEntry MakeProbe(const Slice& key, uint64_t version) {
  MemEntry probe{};
  probe.key_data = key.data();
  probe.key_size = static_cast<uint32_t>(key.size());
  probe.version = version;
  return probe;
}

}  // namespace

int MemIndex::EntryComparator::operator()(const MemEntry* a,
                                          const MemEntry* b) const {
  const int r = a->user_key().compare(b->user_key());
  if (r != 0) return r;
  // Versions descend within a key: the newest version is encountered first.
  if (a->version > b->version) return -1;
  if (a->version < b->version) return 1;
  return 0;
}

MemIndex::MemIndex(uint64_t seed)
    : arena_(std::make_unique<Arena>()),
      list_(std::make_unique<List>(EntryComparator(), arena_.get(), seed)) {}

MemEntry* MemIndex::Insert(const Slice& key, uint64_t version,
                           uint64_t address, uint32_t value_size, bool dedup) {
  // Re-transmitted pairs update the existing item in place (including
  // reviving a purged ghost) rather than duplicating it.
  MemEntry probe = MakeProbe(key, version);
  List::Iterator it(list_.get());
  MemEntry* probe_ptr = &probe;
  it.Seek(probe_ptr);
  if (it.Valid() && EntryComparator()(it.key(), probe_ptr) == 0) {
    MemEntry* existing = it.key();
    if (existing->purged) {
      existing->purged = false;
      ++live_count_;
    }
    existing->address = address;
    existing->value_size = value_size;
    existing->dedup = dedup;
    existing->deleted = false;
    return existing;
  }

  char* key_copy = arena_->Allocate(key.size());
  std::memcpy(key_copy, key.data(), key.size());
  auto* entry =
      reinterpret_cast<MemEntry*>(arena_->AllocateAligned(sizeof(MemEntry)));
  entry->key_data = key_copy;
  entry->key_size = static_cast<uint32_t>(key.size());
  entry->version = version;
  entry->address = address;
  entry->value_size = value_size;
  entry->dedup = dedup;
  entry->deleted = false;
  entry->purged = false;
  list_->Insert(entry);
  ++live_count_;
  return entry;
}

MemEntry* MemIndex::FindExact(const Slice& key, uint64_t version) const {
  MemEntry probe = MakeProbe(key, version);
  MemEntry* probe_ptr = &probe;
  List::Iterator it(list_.get());
  it.Seek(probe_ptr);
  if (!it.Valid()) return nullptr;
  MemEntry* found = it.key();
  if (EntryComparator()(found, probe_ptr) != 0 || found->purged) {
    return nullptr;
  }
  return found;
}

MemEntry* MemIndex::FindLatest(const Slice& key) const {
  MemEntry probe = MakeProbe(key, UINT64_MAX);
  MemEntry* probe_ptr = &probe;
  List::Iterator it(list_.get());
  for (it.Seek(probe_ptr); it.Valid(); it.Next()) {
    MemEntry* entry = it.key();
    if (entry->user_key() != key) return nullptr;
    if (!entry->purged) return entry;
  }
  return nullptr;
}

MemEntry* MemIndex::TracebackValue(const Slice& key, uint64_t version) const {
  if (version == 0) return nullptr;
  MemEntry probe = MakeProbe(key, version - 1);
  MemEntry* probe_ptr = &probe;
  List::Iterator it(list_.get());
  for (it.Seek(probe_ptr); it.Valid(); it.Next()) {
    MemEntry* entry = it.key();
    if (entry->user_key() != key) return nullptr;
    if (entry->purged || entry->dedup) continue;  // No value bytes here.
    return entry;
  }
  return nullptr;
}

std::vector<MemEntry*> MemIndex::EntriesForKey(const Slice& key) const {
  std::vector<MemEntry*> out;
  MemEntry probe = MakeProbe(key, UINT64_MAX);
  MemEntry* probe_ptr = &probe;
  List::Iterator it(list_.get());
  for (it.Seek(probe_ptr); it.Valid(); it.Next()) {
    MemEntry* entry = it.key();
    if (entry->user_key() != key) break;
    if (!entry->purged) out.push_back(entry);
  }
  return out;
}

void MemIndex::Purge(MemEntry* entry) {
  if (!entry->purged) {
    entry->purged = true;
    --live_count_;
  }
}

void MemIndex::CompactInto(MemIndex* fresh) const {
  for (Iterator it = NewIterator(); it.Valid(); it.Next()) {
    const MemEntry* e = it.entry();
    MemEntry* copy = fresh->Insert(e->user_key(), e->version, e->address,
                                   e->value_size, e->dedup);
    copy->deleted = e->deleted;
  }
}

// --------------------------------------------------------------------------
// Iterator
// --------------------------------------------------------------------------

struct MemIndex::Iterator::Impl {
  explicit Impl(const List* list) : it(list) {}
  List::Iterator it;
};

MemIndex::Iterator::Iterator(const MemIndex* index)
    : impl_(std::make_shared<Impl>(index->list_.get())) {
  SeekToFirst();
}

bool MemIndex::Iterator::Valid() const { return impl_->it.Valid(); }

MemEntry* MemIndex::Iterator::entry() const { return impl_->it.key(); }

void MemIndex::Iterator::Next() {
  impl_->it.Next();
  SkipPurged();
}

void MemIndex::Iterator::SeekToFirst() {
  impl_->it.SeekToFirst();
  SkipPurged();
}

void MemIndex::Iterator::Seek(const Slice& key) {
  MemEntry probe = MakeProbe(key, UINT64_MAX);
  MemEntry* probe_ptr = &probe;
  impl_->it.Seek(probe_ptr);
  SkipPurged();
}

void MemIndex::Iterator::SkipPurged() {
  while (impl_->it.Valid() && impl_->it.key()->purged) impl_->it.Next();
}

}  // namespace directload
