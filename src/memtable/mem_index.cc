#include "memtable/mem_index.h"

#include <cstring>
#include <new>

namespace directload {

namespace {

/// Fills a stack probe entry for seeks in place (MemEntry holds atomics and
/// is therefore not copyable). The probe never outlives the call.
void FillProbe(MemEntry* probe, const Slice& key, uint64_t version) {
  probe->key_data = key.data();
  probe->key_size = static_cast<uint32_t>(key.size());
  probe->version = version;
}

}  // namespace

int MemIndex::EntryComparator::operator()(const MemEntry* a,
                                          const MemEntry* b) const {
  const int r = a->user_key().compare(b->user_key());
  if (r != 0) return r;
  // Versions descend within a key: the newest version is encountered first.
  if (a->version > b->version) return -1;
  if (a->version < b->version) return 1;
  return 0;
}

MemIndex::MemIndex(uint64_t seed)
    : arena_(std::make_unique<Arena>()),
      list_(std::make_unique<List>(EntryComparator(), arena_.get(), seed)) {}

MemEntry* MemIndex::Insert(const Slice& key, uint64_t version,
                           uint64_t address, uint32_t value_size, bool dedup) {
  // Re-transmitted pairs update the existing item in place (including
  // reviving a purged ghost) rather than duplicating it.
  MemEntry probe{};
  FillProbe(&probe, key, version);
  List::Iterator it(list_.get());
  MemEntry* probe_ptr = &probe;
  it.Seek(probe_ptr);
  if (it.Valid() && EntryComparator()(it.key(), probe_ptr) == 0) {
    MemEntry* existing = it.key();
    if (existing->purged.load(std::memory_order_relaxed)) {
      existing->purged.store(false, std::memory_order_relaxed);
      live_count_.fetch_add(1, std::memory_order_relaxed);
    }
    existing->address.store(address, std::memory_order_relaxed);
    existing->value_size.store(value_size, std::memory_order_relaxed);
    existing->dedup.store(dedup, std::memory_order_relaxed);
    existing->deleted.store(false, std::memory_order_release);
    return existing;
  }

  char* key_copy = arena_->Allocate(key.size());
  std::memcpy(key_copy, key.data(), key.size());
  auto* entry =
      new (arena_->AllocateAligned(sizeof(MemEntry))) MemEntry{};
  entry->key_data = key_copy;
  entry->key_size = static_cast<uint32_t>(key.size());
  entry->version = version;
  entry->address.store(address, std::memory_order_relaxed);
  entry->value_size.store(value_size, std::memory_order_relaxed);
  entry->dedup.store(dedup, std::memory_order_relaxed);
  entry->deleted.store(false, std::memory_order_relaxed);
  entry->purged.store(false, std::memory_order_relaxed);
  // The skip-list insert publishes the fully built entry with a release
  // store, so lock-free readers always observe initialized fields.
  list_->Insert(entry);
  live_count_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

MemEntry* MemIndex::FindExact(const Slice& key, uint64_t version) const {
  MemEntry probe{};
  FillProbe(&probe, key, version);
  MemEntry* probe_ptr = &probe;
  List::Iterator it(list_.get());
  it.Seek(probe_ptr);
  if (!it.Valid()) return nullptr;
  MemEntry* found = it.key();
  if (EntryComparator()(found, probe_ptr) != 0 ||
      found->purged.load(std::memory_order_acquire)) {
    return nullptr;
  }
  return found;
}

MemEntry* MemIndex::FindLatest(const Slice& key) const {
  MemEntry probe{};
  FillProbe(&probe, key, UINT64_MAX);
  MemEntry* probe_ptr = &probe;
  List::Iterator it(list_.get());
  for (it.Seek(probe_ptr); it.Valid(); it.Next()) {
    MemEntry* entry = it.key();
    if (entry->user_key() != key) return nullptr;
    if (!entry->purged.load(std::memory_order_acquire)) return entry;
  }
  return nullptr;
}

MemEntry* MemIndex::TracebackValue(const Slice& key, uint64_t version) const {
  if (version == 0) return nullptr;
  MemEntry probe{};
  FillProbe(&probe, key, version - 1);
  MemEntry* probe_ptr = &probe;
  List::Iterator it(list_.get());
  for (it.Seek(probe_ptr); it.Valid(); it.Next()) {
    MemEntry* entry = it.key();
    if (entry->user_key() != key) return nullptr;
    if (entry->purged.load(std::memory_order_acquire) ||
        entry->dedup.load(std::memory_order_acquire)) {
      continue;  // No value bytes here.
    }
    return entry;
  }
  return nullptr;
}

std::vector<MemEntry*> MemIndex::EntriesForKey(const Slice& key) const {
  std::vector<MemEntry*> out;
  MemEntry probe{};
  FillProbe(&probe, key, UINT64_MAX);
  MemEntry* probe_ptr = &probe;
  List::Iterator it(list_.get());
  for (it.Seek(probe_ptr); it.Valid(); it.Next()) {
    MemEntry* entry = it.key();
    if (entry->user_key() != key) break;
    if (!entry->purged.load(std::memory_order_acquire)) out.push_back(entry);
  }
  return out;
}

void MemIndex::Purge(MemEntry* entry) {
  if (!entry->purged.exchange(true, std::memory_order_acq_rel)) {
    live_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void MemIndex::CompactInto(MemIndex* fresh) const {
  for (Iterator it = NewIterator(); it.Valid(); it.Next()) {
    const MemEntry* e = it.entry();
    MemEntry* copy =
        fresh->Insert(e->user_key(), e->version,
                      e->address.load(std::memory_order_relaxed),
                      e->value_size.load(std::memory_order_relaxed),
                      e->dedup.load(std::memory_order_relaxed));
    copy->deleted.store(e->deleted.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------------------
// Iterator
// --------------------------------------------------------------------------

struct MemIndex::Iterator::Impl {
  explicit Impl(const List* list) : it(list) {}
  List::Iterator it;
};

MemIndex::Iterator::Iterator(const MemIndex* index)
    : impl_(std::make_shared<Impl>(index->list_.get())) {
  SeekToFirst();
}

bool MemIndex::Iterator::Valid() const { return impl_->it.Valid(); }

MemEntry* MemIndex::Iterator::entry() const { return impl_->it.key(); }

void MemIndex::Iterator::Next() {
  impl_->it.Next();
  SkipPurged();
}

void MemIndex::Iterator::SeekToFirst() {
  impl_->it.SeekToFirst();
  SkipPurged();
}

void MemIndex::Iterator::Seek(const Slice& key) {
  MemEntry probe{};
  FillProbe(&probe, key, UINT64_MAX);
  MemEntry* probe_ptr = &probe;
  impl_->it.Seek(probe_ptr);
  SkipPurged();
}

void MemIndex::Iterator::SkipPurged() {
  while (impl_->it.Valid() &&
         impl_->it.key()->purged.load(std::memory_order_acquire)) {
    impl_->it.Next();
  }
}

}  // namespace directload
