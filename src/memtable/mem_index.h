#ifndef DIRECTLOAD_MEMTABLE_MEM_INDEX_H_
#define DIRECTLOAD_MEMTABLE_MEM_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/slice.h"
#include "memtable/skiplist.h"

namespace directload {

/// One item of QinDB's memory-resident table (paper Section 2.3): the
/// versioned key, the offset of the record in the AOFs, and the two flags
/// the mutated operations rely on — `r` (the value field was removed by
/// Bifrost's deduplication) and `d` (the pair was deleted; space reclaimed
/// lazily by AOF GC).
///
/// The identity fields (key, version) are immutable once the entry is
/// published through the skip list. The state fields are atomics because
/// they are mutated in place by writers and the GC while reader threads
/// traverse the index lock-free; each field is individually coherent and
/// readers tolerate (and retry on) cross-field races such as an address
/// observed next to a stale value_size.
struct MemEntry {
  const char* key_data;
  uint32_t key_size;
  uint64_t version;

  // Opaque AOF record address (owned by the AOF layer). Patched by re-PUTs
  // and by GC relocation while reads are in flight.
  std::atomic<uint64_t> address;
  // Stored value length; 0 when the value is NULL.
  std::atomic<uint32_t> value_size;
  std::atomic<bool> dedup;    // 'r' flag: value removed, resolve by traceback.
  std::atomic<bool> deleted;  // 'd' flag: logically deleted, awaiting GC.
  std::atomic<bool> purged;   // Physically dropped from the index (post-GC).

  Slice user_key() const { return Slice(key_data, key_size); }
};

/// QinDB's memtable: a skip list of MemEntry ordered by user key ascending
/// and version *descending*, so that all versions of a key are adjacent and
/// a traceback (find the newest older version that still carries a value) is
/// a forward scan. The paper orders versions ascending; descending is the
/// standard equivalent that makes newest-first reads O(1) after the seek.
///
/// The skip list never physically unlinks nodes; `Purge` marks an entry
/// invisible and `CompactInto` rebuilds a dense index (used after version
/// pruning and during checkpoint load).
///
/// Thread model: one mutator at a time — Insert/Purge/CompactInto require
/// the caller's write lock (the engine's LockRank::kQinDbWrite mutex; the
/// index itself is deliberately lock-free and carries no capability of its
/// own, which is why the contract lives in this comment rather than in a
/// REQUIRES annotation). Lookups and iteration are lock-free and may run
/// concurrently with the mutator. Entries and their keys are arena-backed,
/// so pointers handed to readers stay valid for the index's lifetime.
class MemIndex {
 public:
  explicit MemIndex(uint64_t seed = 0xdecaf);

  MemIndex(const MemIndex&) = delete;
  MemIndex& operator=(const MemIndex&) = delete;

  /// Inserts or updates the item for (key, version). Returns the entry.
  MemEntry* Insert(const Slice& key, uint64_t version, uint64_t address,
                   uint32_t value_size, bool dedup);

  /// Exact lookup; returns nullptr if absent or purged.
  MemEntry* FindExact(const Slice& key, uint64_t version) const;

  /// Newest non-purged version of `key`, or nullptr.
  MemEntry* FindLatest(const Slice& key) const;

  /// Newest non-purged entry with version strictly below `version` whose
  /// value field exists (not deduplicated). This is the GET traceback of
  /// Figure 2. Returns nullptr when no value-bearing older version exists.
  MemEntry* TracebackValue(const Slice& key, uint64_t version) const;

  /// All non-purged entries for `key`, newest first. Version counts are
  /// small (at most four versions persist per the paper), so a vector is
  /// appropriate.
  std::vector<MemEntry*> EntriesForKey(const Slice& key) const;

  /// Marks an entry physically removed from the index.
  void Purge(MemEntry* entry);

  /// Number of visible (non-purged) entries.
  size_t live_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }
  /// Number of entries ever inserted (including purged).
  size_t total_count() const { return list_->size(); }
  size_t ApproximateMemoryUsage() const { return arena_->MemoryUsage(); }

  /// Ordered iteration over non-purged entries (checkpointing, scans).
  /// Freshly constructed iterators are positioned at the first entry.
  class Iterator {
   public:
    explicit Iterator(const MemIndex* index);

    bool Valid() const;
    /// Entry under the cursor. Never a purged entry.
    MemEntry* entry() const;
    void Next();
    void SeekToFirst();
    /// First entry with user key >= `key` (any version).
    void Seek(const Slice& key);

   private:
    void SkipPurged();

    struct Impl;
    std::shared_ptr<Impl> impl_;
  };

  Iterator NewIterator() const { return Iterator(this); }

  /// Copies all live entries into `fresh` (which must be empty), dropping
  /// purged ghosts. Used to re-densify the index after heavy GC.
  void CompactInto(MemIndex* fresh) const;

 private:
  struct EntryComparator {
    int operator()(const MemEntry* a, const MemEntry* b) const;
  };
  using List = SkipList<MemEntry*, EntryComparator>;

  friend class Iterator;

  std::unique_ptr<Arena> arena_;
  std::unique_ptr<List> list_;
  std::atomic<size_t> live_count_{0};
};

}  // namespace directload

#endif  // DIRECTLOAD_MEMTABLE_MEM_INDEX_H_
