#include "common/failpoint.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace directload::failpoint {

namespace {

// FNV-1a, used to derive a per-point PRNG seed from the registry base seed
// so two points armed with the same spec do not fire in lockstep.
uint64_t HashName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t v = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseCodeName(std::string_view name, StatusCode* out) {
  struct Entry {
    std::string_view name;
    StatusCode code;
  };
  static constexpr Entry kCodes[] = {
      {"notfound", StatusCode::kNotFound},
      {"corruption", StatusCode::kCorruption},
      {"invalid", StatusCode::kInvalidArgument},
      {"io", StatusCode::kIOError},
      {"nospace", StatusCode::kNoSpace},
      {"busy", StatusCode::kBusy},
      {"unavailable", StatusCode::kUnavailable},
      {"timedout", StatusCode::kTimedOut},
      {"aborted", StatusCode::kAborted},
      {"dedup", StatusCode::kDeduplicated},
      {"internal", StatusCode::kInternal},
      {"protocol", StatusCode::kProtocol},
  };
  for (const Entry& e : kCodes) {
    if (e.name == name) {
      *out = e.code;
      return true;
    }
  }
  return false;
}

// Status has no public (code, message) constructor; route through the
// per-code factories.
Status MakeStatus(StatusCode code, const std::string& msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kNotFound:
      return Status::NotFound(msg);
    case StatusCode::kCorruption:
      return Status::Corruption(msg);
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case StatusCode::kIOError:
      return Status::IOError(msg);
    case StatusCode::kNoSpace:
      return Status::NoSpace(msg);
    case StatusCode::kBusy:
      return Status::Busy(msg);
    case StatusCode::kUnavailable:
      return Status::Unavailable(msg);
    case StatusCode::kTimedOut:
      return Status::TimedOut(msg);
    case StatusCode::kAborted:
      return Status::Aborted(msg);
    case StatusCode::kDeduplicated:
      return Status::Deduplicated(msg);
    case StatusCode::kInternal:
      return Status::Internal(msg);
    case StatusCode::kProtocol:
      return Status::Protocol(msg);
  }
  return Status::IOError(msg);
}

}  // namespace

Status ParseSpec(std::string_view text, Spec* out) {
  Spec spec;
  std::string_view rest = text;

  // [<P>%] — a decimal percentage.
  if (const size_t pct = rest.find('%'); pct != std::string_view::npos) {
    const std::string number(rest.substr(0, pct));
    char* end = nullptr;
    const double p = std::strtod(number.c_str(), &end);
    if (end != number.c_str() + number.size() || p < 0.0 || p > 100.0) {
      return Status::InvalidArgument("failpoint spec: bad probability in \"" +
                                     std::string(text) + "\"");
    }
    spec.probability = p / 100.0;
    rest.remove_prefix(pct + 1);
  }

  // [every<N>:]
  if (constexpr std::string_view kEvery = "every";
      rest.substr(0, kEvery.size()) == kEvery) {
    const size_t colon = rest.find(':');
    if (colon == std::string_view::npos ||
        !ParseUint(rest.substr(kEvery.size(), colon - kEvery.size()),
                   &spec.every) ||
        spec.every == 0) {
      return Status::InvalidArgument("failpoint spec: bad every<N>: in \"" +
                                     std::string(text) + "\"");
    }
    rest.remove_prefix(colon + 1);
  }

  // [<C>*]
  if (const size_t star = rest.find('*'); star != std::string_view::npos) {
    uint64_t count = 0;
    if (!ParseUint(rest.substr(0, star), &count) || count == 0) {
      return Status::InvalidArgument("failpoint spec: bad <C>* count in \"" +
                                     std::string(text) + "\"");
    }
    spec.max_hits = static_cast<int64_t>(count);
    rest.remove_prefix(star + 1);
  }

  // <action>[(<arg>)]
  std::string_view action = rest;
  std::string_view arg;
  if (const size_t paren = rest.find('('); paren != std::string_view::npos) {
    if (rest.back() != ')') {
      return Status::InvalidArgument("failpoint spec: unbalanced '(' in \"" +
                                     std::string(text) + "\"");
    }
    action = rest.substr(0, paren);
    arg = rest.substr(paren + 1, rest.size() - paren - 2);
  }

  if (action == "return") {
    spec.action = Action::kReturnError;
    if (!arg.empty() && !ParseCodeName(arg, &spec.error_code)) {
      return Status::InvalidArgument(
          "failpoint spec: unknown status code \"" + std::string(arg) + "\"");
    }
  } else if (action == "delay") {
    spec.action = Action::kDelay;
    uint64_t ms = 0;
    if (!ParseUint(arg, &ms)) {
      return Status::InvalidArgument("failpoint spec: delay needs (ms) in \"" +
                                     std::string(text) + "\"");
    }
    spec.delay_ms = static_cast<int64_t>(ms);
  } else if (action == "abort") {
    spec.action = Action::kAbort;
    if (!arg.empty()) {
      return Status::InvalidArgument("failpoint spec: abort takes no arg");
    }
  } else if (action == "short") {
    spec.action = Action::kShortIo;
    if (!ParseUint(arg, &spec.short_io_bytes)) {
      return Status::InvalidArgument(
          "failpoint spec: short needs (bytes) in \"" + std::string(text) +
          "\"");
    }
  } else if (action == "corrupt") {
    spec.action = Action::kCorrupt;
    if (!arg.empty()) {
      return Status::InvalidArgument("failpoint spec: corrupt takes no arg");
    }
  } else {
    return Status::InvalidArgument("failpoint spec: unknown action in \"" +
                                   std::string(text) + "\"");
  }

  *out = spec;
  return Status::OK();
}

FailPoint::FailPoint(std::string name) : name_(std::move(name)) {}

void FailPoint::Activate(const Spec& spec) {
  MutexLock lock(&mu_);
  spec_ = spec;
  armed_evals_ = 0;
  armed_hits_ = 0;
  const uint64_t seed = spec.seed != 0 ? spec.seed : HashName(name_);
  rng_ = Random(seed);
  armed_.store(spec.action != Action::kOff, std::memory_order_release);
}

void FailPoint::Deactivate() {
  MutexLock lock(&mu_);
  spec_ = Spec{};
  armed_.store(false, std::memory_order_release);
}

void FailPoint::ResetCountersForTesting() {
  MutexLock lock(&mu_);
  evaluations_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  armed_evals_ = 0;
  armed_hits_ = 0;
}

Status FailPoint::Fire(std::string* buf, uint64_t* io_bytes) {
  evaluations_.fetch_add(1, std::memory_order_relaxed);

  // Decide under the lock; act (sleep/abort) after releasing it so a delay
  // on one thread never serializes other threads evaluating this point.
  Action action = Action::kOff;
  StatusCode error_code = StatusCode::kIOError;
  int64_t delay_ms = 0;
  uint64_t short_io_bytes = 0;
  uint64_t corrupt_draw = 0;
  {
    MutexLock lock(&mu_);
    if (spec_.action == Action::kOff) return Status::OK();  // Raced disarm.
    ++armed_evals_;
    if (spec_.every > 0 && armed_evals_ % spec_.every != 0) {
      return Status::OK();
    }
    if (spec_.probability < 1.0 && !rng_.Bernoulli(spec_.probability)) {
      return Status::OK();
    }
    if (spec_.max_hits >= 0) {
      // The budget is per ARMING, counted separately from the cumulative
      // hits_ observability counter — otherwise re-activating a point that
      // fired before would start with its fresh budget already spent.
      if (armed_hits_ >= static_cast<uint64_t>(spec_.max_hits)) {
        // A racing evaluation got past armed() before the disarm below
        // landed; the budget is spent, so stand down.
        return Status::OK();
      }
      ++armed_hits_;
      if (armed_hits_ >= static_cast<uint64_t>(spec_.max_hits)) {
        // Budget exhausted after this hit: disarm so the hot path goes
        // back to a single atomic load.
        armed_.store(false, std::memory_order_release);
      }
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    action = spec_.action;
    error_code = spec_.error_code;
    delay_ms = spec_.delay_ms;
    short_io_bytes = spec_.short_io_bytes;
    corrupt_draw = rng_.Next();
  }

  switch (action) {
    case Action::kOff:
      return Status::OK();
    case Action::kReturnError:
      return MakeStatus(error_code, "failpoint " + name_ + ": injected error");
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return Status::OK();
    case Action::kAbort:
      std::fprintf(stderr, "failpoint \"%s\": injected abort\n",
                   name_.c_str());
      std::abort();
    case Action::kShortIo:
      if (io_bytes != nullptr && *io_bytes > short_io_bytes) {
        *io_bytes = short_io_bytes;
      }
      return Status::IOError("failpoint " + name_ + ": injected short io");
    case Action::kCorrupt:
      if (buf != nullptr && !buf->empty()) {
        const uint64_t bit = corrupt_draw % (buf->size() * 8);
        (*buf)[bit / 8] = static_cast<char>(
            static_cast<unsigned char>((*buf)[bit / 8]) ^ (1u << (bit % 8)));
      }
      return Status::OK();  // Silent corruption: checksums catch it later.
  }
  return Status::OK();
}

Registry& Registry::Instance() {
  static Registry* const registry = new Registry();
  return *registry;
}

Registry::Registry() {
  if (const char* env = std::getenv("DIRECTLOAD_FAILPOINTS");
      env != nullptr && env[0] != '\0') {
    if (Status s = ActivateFromString(env); !s.ok()) {
      std::fprintf(stderr, "DIRECTLOAD_FAILPOINTS ignored entry: %s\n",
                   s.ToString().c_str());
    }
  }
}

FailPoint* Registry::Register(const std::string& name) {
  MutexLock lock(&mu_);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), name,
      [](const std::unique_ptr<FailPoint>& p, const std::string& n) {
        return p->name() < n;
      });
  if (it != points_.end() && (*it)->name() == name) return it->get();
  return points_.insert(it, std::make_unique<FailPoint>(name))->get();
}

FailPoint* Registry::Find(const std::string& name) {
  MutexLock lock(&mu_);
  for (const auto& p : points_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

std::vector<FailPoint*> Registry::List() {
  MutexLock lock(&mu_);
  std::vector<FailPoint*> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.get());
  return out;
}

Status Registry::Activate(const std::string& name, std::string_view spec_text) {
  Spec spec;
  if (Status s = ParseSpec(spec_text, &spec); !s.ok()) return s;
  Activate(name, spec);
  return Status::OK();
}

void Registry::Activate(const std::string& name, const Spec& spec) {
  Spec seeded = spec;
  if (seeded.seed == 0) {
    seeded.seed = base_seed_.load(std::memory_order_relaxed) ^ HashName(name);
    if (seeded.seed == 0) seeded.seed = 1;
  }
  Register(name)->Activate(seeded);
}

void Registry::Deactivate(const std::string& name) {
  if (FailPoint* p = Find(name); p != nullptr) p->Deactivate();
}

void Registry::DeactivateAll() {
  for (FailPoint* p : List()) p->Deactivate();
}

Status Registry::ActivateFromString(std::string_view all) {
  while (!all.empty()) {
    const size_t semi = all.find(';');
    std::string_view entry =
        semi == std::string_view::npos ? all : all.substr(0, semi);
    all = semi == std::string_view::npos ? std::string_view()
                                         : all.substr(semi + 1);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec: expected name=spec, got \"" +
                                     std::string(entry) + "\"");
    }
    if (Status s = Activate(std::string(entry.substr(0, eq)),
                            entry.substr(eq + 1));
        !s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

void Registry::SetSeed(uint64_t seed) {
  base_seed_.store(seed != 0 ? seed : 1, std::memory_order_relaxed);
}

int Registry::DistinctFired() {
  int n = 0;
  for (FailPoint* p : List()) {
    if (p->hits() > 0) ++n;
  }
  return n;
}

uint64_t Registry::TotalHits() {
  uint64_t n = 0;
  for (FailPoint* p : List()) n += p->hits();
  return n;
}

void Registry::ResetCountersForTesting() {
  for (FailPoint* p : List()) p->ResetCountersForTesting();
}

}  // namespace directload::failpoint
