#ifndef DIRECTLOAD_COMMON_ARENA_H_
#define DIRECTLOAD_COMMON_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace directload {

/// Bump allocator backing the skip-list memtable: allocations live until the
/// arena is destroyed, which matches the memtable lifetime and removes
/// per-node heap overhead.
///
/// Thread model: at most one thread allocates at a time (the engine's write
/// lock — rank LockRank::kQinDbWrite — enforces this); any number of threads
/// may concurrently *read* memory previously handed out — published to them
/// by the skip list's release stores — and may call MemoryUsage().
class Arena {
 public:
  Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of uninitialized storage (never nullptr; bytes may be 0).
  char* Allocate(size_t bytes);

  /// Like Allocate but aligned for pointer-sized objects.
  char* AllocateAligned(size_t bytes);

  /// Total bytes reserved from the heap (capacity, not just handed out).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  static constexpr size_t kBlockSize = 4096;

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_ARENA_H_
