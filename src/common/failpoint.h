#ifndef DIRECTLOAD_COMMON_FAILPOINT_H_
#define DIRECTLOAD_COMMON_FAILPOINT_H_

// Unified fault-injection framework. Every layer of the stack declares named
// failpoints at the sites where the real world can hurt it (device I/O, AOF
// seals, GC rewrite, RPC send/recv, server admission); tests and operators
// arm them at runtime, either programmatically or through the
// DIRECTLOAD_FAILPOINTS environment variable.
//
// Compile-time gating: the registry, the spec parser, and the FailPoint
// class below are always built (so the grammar and trigger semantics are
// unit-testable in every configuration), but the *call sites* are only
// compiled in when the build sets -DDIRECTLOAD_FAILPOINTS=ON (which defines
// DIRECTLOAD_FAILPOINTS_ENABLED). A default build therefore carries zero
// overhead — not even a branch — on any hot path.
//
// Env-spec grammar (also docs/fault_injection.md):
//
//   DIRECTLOAD_FAILPOINTS="<name>=<spec>[;<name>=<spec>]..."
//   <spec>   := [<P>%] [every<N>:] [<C>*] <action> [(<arg>)]
//   <action> := return | delay | abort | short | corrupt
//
// Triggers compose left to right: "<P>%" fires with probability P (percent),
// "every<N>:" fires only on every Nth armed evaluation, "<C>*" fires at most
// C times total and then disarms (C=1 is a one-shot). Actions:
//
//   return(code)  fail the operation with the named StatusCode
//                 (io, corruption, notfound, invalid, nospace, busy,
//                 unavailable, timedout, aborted, dedup, internal,
//                 protocol; default io)
//   delay(ms)     sleep the calling thread for ms wall milliseconds, then
//                 let the operation proceed
//   abort         crash-point: print the failpoint name and abort()
//   short(n)      I/O sites only: clamp the transfer to the first n bytes
//                 (a torn append / short write) and fail with kIOError
//   corrupt       buffer-carrying sites only: flip one random bit in the
//                 payload and let the operation "succeed" (silent media
//                 corruption; checksums must catch it downstream)
//
// Examples: "ssd_file_append=25%return(io)", "aof_seal_before_close=1*abort",
// "rpc_send=every3:delay(5)", "ssd_file_append=50%short(7)".
//
// Thread safety: arming state is an atomic flag read with acquire ordering
// on evaluation; trigger bookkeeping runs under a per-failpoint mutex ranked
// kFailPoint — above every other rank in the system, because failpoints fire
// while arbitrary engine locks are held. Delay/abort actions execute after
// that mutex is released.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

#if defined(DIRECTLOAD_FAILPOINTS_ENABLED)
#define DIRECTLOAD_FAILPOINTS_COMPILED 1
#else
#define DIRECTLOAD_FAILPOINTS_COMPILED 0
#endif

namespace directload::failpoint {

/// True when failpoint call sites are compiled into this binary. Tests gate
/// injection-dependent assertions on this (GTEST_SKIP otherwise).
inline constexpr bool kCompiledIn = DIRECTLOAD_FAILPOINTS_COMPILED != 0;

enum class Action {
  kOff = 0,
  kReturnError,
  kDelay,
  kAbort,
  kShortIo,
  kCorrupt,
};

/// A parsed activation spec: triggers plus one action.
struct Spec {
  Action action = Action::kOff;
  /// "<P>%" trigger: fire with this probability (default always).
  double probability = 1.0;
  /// "every<N>:" trigger: fire only when the armed-evaluation count is a
  /// multiple of N (0 = every evaluation).
  uint64_t every = 0;
  /// "<C>*" trigger: fire at most C times, then disarm (-1 = unlimited).
  int64_t max_hits = -1;
  /// return(code) argument.
  StatusCode error_code = StatusCode::kIOError;
  /// delay(ms) argument, wall milliseconds.
  int64_t delay_ms = 0;
  /// short(n) argument: clamp the transfer to this many bytes.
  uint64_t short_io_bytes = 0;
  /// PRNG seed for the probabilistic trigger and corrupt-bit choice; 0 means
  /// derive deterministically from the registry seed and the point's name.
  uint64_t seed = 0;
};

/// Parses the `<spec>` grammar above into `*out`. Returns InvalidArgument
/// with context on malformed input.
Status ParseSpec(std::string_view text, Spec* out);

/// One named injection site. Instances live forever in the Registry; sites
/// hold a stable pointer obtained once (at static initialization via
/// DIRECTLOAD_FAILPOINT_DEFINE).
class FailPoint {
 public:
  explicit FailPoint(std::string name);

  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  const std::string& name() const { return name_; }

  /// Hot-path gate: a single relaxed atomic load when disarmed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluates the failpoint at a site with no payload. Returns non-OK when
  /// an armed return-error (or short-io, which degenerates to kIOError)
  /// fires; delay and abort act from inside. OK otherwise.
  Status MaybeFail() { return armed() ? Fire(nullptr, nullptr) : Status::OK(); }

  /// Evaluates at an I/O site carrying a payload. `buf` (may be null) is the
  /// in-flight data: a corrupt action flips one bit in it. `io_bytes` (may
  /// be null) is the transfer length: a short action clamps it and returns
  /// kIOError — the caller must apply exactly the first *io_bytes bytes and
  /// then surface the error (a torn append).
  Status MaybeFailIo(std::string* buf, uint64_t* io_bytes) {
    return armed() ? Fire(buf, io_bytes) : Status::OK();
  }

  void Activate(const Spec& spec);
  void Deactivate();

  /// Number of evaluations that found the point armed.
  uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Number of times an action actually fired.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  void ResetCountersForTesting();

 private:
  Status Fire(std::string* buf, uint64_t* io_bytes);

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> evaluations_{0};
  std::atomic<uint64_t> hits_{0};

  mutable Mutex mu_{LockRank::kFailPoint, "failpoint"};
  Spec spec_ GUARDED_BY(mu_);
  Random rng_ GUARDED_BY(mu_){1};
  uint64_t armed_evals_ GUARDED_BY(mu_) = 0;
  /// Hits charged against the current arming's `max_hits` budget. Separate
  /// from hits_, which accumulates across armings for observability.
  uint64_t armed_hits_ GUARDED_BY(mu_) = 0;
};

/// Process-wide name → FailPoint map. Creation-on-first-use from both the
/// registration side (DIRECTLOAD_FAILPOINT_DEFINE at static init) and the
/// activation side (specs may name points in code paths not yet linked in),
/// so ordering between the two never matters.
class Registry {
 public:
  /// The singleton. On first use, parses the DIRECTLOAD_FAILPOINTS
  /// environment variable if set (malformed specs are reported to stderr
  /// and skipped, never fatal).
  static Registry& Instance();

  /// Returns the failpoint named `name`, creating it if needed. The pointer
  /// is stable for the life of the process.
  FailPoint* Register(const std::string& name);

  /// Returns the failpoint named `name`, or nullptr if it was never
  /// registered or activated.
  FailPoint* Find(const std::string& name);

  /// All registered failpoints, sorted by name.
  std::vector<FailPoint*> List();

  /// Parses `spec_text` and arms the named failpoint.
  Status Activate(const std::string& name, std::string_view spec_text);
  /// Arms the named failpoint with an already-parsed spec.
  void Activate(const std::string& name, const Spec& spec);
  void Deactivate(const std::string& name);
  void DeactivateAll();

  /// Parses a full "name=spec;name=spec" string and arms every entry.
  /// Stops at the first malformed entry and returns InvalidArgument.
  Status ActivateFromString(std::string_view all);

  /// Base seed mixed with each point's name to seed its PRNG (unless the
  /// spec carries an explicit seed). Affects subsequent Activate calls only.
  void SetSeed(uint64_t seed);

  /// Number of registered failpoints whose action fired at least once.
  int DistinctFired();
  /// Sum of hit counters across all failpoints.
  uint64_t TotalHits();
  void ResetCountersForTesting();

 private:
  Registry();

  mutable Mutex mu_{LockRank::kFailPointRegistry, "failpoint-registry"};
  // Sorted by name; values are stable heap pointers.
  std::vector<std::unique_ptr<FailPoint>> points_ GUARDED_BY(mu_);
  std::atomic<uint64_t> base_seed_{1};
};

}  // namespace directload::failpoint

// Site macros. DIRECTLOAD_FAILPOINT_DEFINE declares a file-scope pointer to
// a registered failpoint; DIRECTLOAD_FAILPOINT evaluates it and early-returns
// the injected Status (which also converts into any Result<T>) when it fires.
// Sites needing payload-aware handling (torn appends, corruption) call
// MaybeFailIo directly inside a #if DIRECTLOAD_FAILPOINTS_COMPILED block.
#if DIRECTLOAD_FAILPOINTS_COMPILED

#define DIRECTLOAD_FAILPOINT_DEFINE(var, name)            \
  static ::directload::failpoint::FailPoint* const var =  \
      ::directload::failpoint::Registry::Instance().Register(name)

#define DIRECTLOAD_FAILPOINT(var)                            \
  do {                                                       \
    if ((var)->armed()) {                                    \
      ::directload::Status dl_fp_status = (var)->MaybeFail(); \
      if (!dl_fp_status.ok()) return dl_fp_status;           \
    }                                                        \
  } while (0)

#else  // !DIRECTLOAD_FAILPOINTS_COMPILED

#define DIRECTLOAD_FAILPOINT_DEFINE(var, name) \
  static_assert(true, "failpoints compiled out")
#define DIRECTLOAD_FAILPOINT(var) \
  do {                            \
  } while (0)

#endif  // DIRECTLOAD_FAILPOINTS_COMPILED

#endif  // DIRECTLOAD_COMMON_FAILPOINT_H_
