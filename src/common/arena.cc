#include "common/arena.h"

#include <cassert>

namespace directload {

Arena::Arena() = default;

char* Arena::Allocate(size_t bytes) {
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  constexpr size_t kAlign = alignof(void*);
  static_assert((kAlign & (kAlign - 1)) == 0, "alignment must be power of 2");
  const size_t current_mod =
      reinterpret_cast<uintptr_t>(alloc_ptr_) & (kAlign - 1);
  const size_t slop = current_mod == 0 ? 0 : kAlign - current_mod;
  const size_t needed = bytes + slop;
  if (needed <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
    return result;
  }
  // Fallback blocks are max_align-aligned by operator new[].
  return AllocateFallback(bytes);
}

char* Arena::AllocateFallback(size_t bytes) {
  if (bytes > kBlockSize / 4) {
    // Large allocations get their own block so the current block's remaining
    // space is not wasted.
    return AllocateNewBlock(bytes);
  }
  alloc_ptr_ = AllocateNewBlock(kBlockSize);
  alloc_bytes_remaining_ = kBlockSize;
  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  blocks_.push_back(std::make_unique<char[]>(block_bytes));
  memory_usage_.fetch_add(block_bytes + sizeof(char*),
                          std::memory_order_relaxed);
  return blocks_.back().get();
}

}  // namespace directload
