#include "common/hash.h"

namespace directload {

namespace {

// Final avalanche from MurmurHash3's fmix64; spreads FNV's weak low bits.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

uint64_t Hash64(const char* data, size_t n, uint64_t seed) {
  constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  constexpr uint64_t kPrime = 0x100000001b3ull;
  uint64_t h = kOffsetBasis ^ seed;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return Mix64(h);
}

uint32_t Hash32(const char* data, size_t n, uint32_t seed) {
  const uint64_t h = Hash64(data, n, seed);
  return static_cast<uint32_t>(h ^ (h >> 32));
}

}  // namespace directload
