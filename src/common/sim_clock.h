#ifndef DIRECTLOAD_COMMON_SIM_CLOCK_H_
#define DIRECTLOAD_COMMON_SIM_CLOCK_H_

#include <cassert>
#include <cstdint>

namespace directload {

/// A discrete simulated clock, shared by the SSD simulator and the network
/// simulator so that all reported throughputs and latencies are in the same
/// (deterministic, machine-independent) time base. Time only moves when a
/// simulated device or channel performs work.
class SimClock {
 public:
  SimClock() = default;

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  uint64_t NowMicros() const { return now_micros_; }
  double NowSeconds() const { return static_cast<double>(now_micros_) * 1e-6; }

  /// Advances the clock by `micros`. Simulated work always moves time
  /// forward.
  void AdvanceMicros(uint64_t micros) { now_micros_ += micros; }

  /// Jumps the clock to an absolute time point; used by the discrete-event
  /// scheduler when dequeuing the next event. Never moves backwards.
  void AdvanceTo(uint64_t abs_micros) {
    assert(abs_micros >= now_micros_);
    now_micros_ = abs_micros;
  }

  void Reset() { now_micros_ = 0; }

 private:
  uint64_t now_micros_ = 0;
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_SIM_CLOCK_H_
