#ifndef DIRECTLOAD_COMMON_SIM_CLOCK_H_
#define DIRECTLOAD_COMMON_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace directload {

/// A discrete simulated clock, shared by the SSD simulator and the network
/// simulator so that all reported throughputs and latencies are in the same
/// (deterministic, machine-independent) time base. Time only moves when a
/// simulated device or channel performs work.
///
/// The counter is atomic (relaxed) because observers may sample the clock
/// from other threads — mint's latency accounting reads a node's clock
/// around an engine call while writers on that node advance it under the
/// env lock. Mutation itself stays serialized per device by that lock, so
/// relaxed ordering is enough; cross-thread samples are bookkeeping, not
/// synchronization.
class SimClock {
 public:
  SimClock() = default;

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  uint64_t NowMicros() const {
    return now_micros_.load(std::memory_order_relaxed);
  }
  double NowSeconds() const {
    return static_cast<double>(NowMicros()) * 1e-6;
  }

  /// Advances the clock by `micros`. Simulated work always moves time
  /// forward.
  void AdvanceMicros(uint64_t micros) {
    now_micros_.fetch_add(micros, std::memory_order_relaxed);
  }

  /// Jumps the clock to an absolute time point; used by the discrete-event
  /// scheduler when dequeuing the next event. Never moves backwards: a
  /// target already in the past is a no-op (CAS-max).
  void AdvanceTo(uint64_t abs_micros) {
    uint64_t now = now_micros_.load(std::memory_order_relaxed);
    while (now < abs_micros &&
           !now_micros_.compare_exchange_weak(now, abs_micros,
                                              std::memory_order_relaxed)) {
    }
  }

  void Reset() { now_micros_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_micros_{0};
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_SIM_CLOCK_H_
