#include "common/crc32c.h"

#include <array>
#include <cstring>

namespace directload::crc32c {

namespace {

// CRC-32C uses the Castagnoli polynomial 0x1EDC6F41 (reflected: 0x82F63B78).
constexpr uint32_t kPolyReflected = 0x82F63B78u;

// Slicing-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[k][b] is the CRC of byte b followed by k zero bytes. Eight table
// lookups retire eight input bytes per iteration with no loop-carried
// dependency on the byte loads, which is worth ~8x over the one-byte loop.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = t[0][i];
    for (size_t k = 1; k < 8; ++k) {
      crc = t[0][crc & 0xFF] ^ (crc >> 8);
      t[k][i] = crc;
    }
  }
  return t;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

uint32_t ExtendSoftware(uint32_t crc, const char* data, size_t n) {
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  // Align to 8 bytes so the word loads below are aligned.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = kTables[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    // Little-endian layout assumed (x86/aarch64); the first input byte is
    // the low byte of `word`, which table index 7 advances past the most
    // zero bytes.
    word ^= crc;
    crc = kTables[7][word & 0xFF] ^ kTables[6][(word >> 8) & 0xFF] ^
          kTables[5][(word >> 16) & 0xFF] ^ kTables[4][(word >> 24) & 0xFF] ^
          kTables[3][(word >> 32) & 0xFF] ^ kTables[2][(word >> 40) & 0xFF] ^
          kTables[1][(word >> 48) & 0xFF] ^ kTables[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = kTables[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  return crc;
}

#if defined(__x86_64__) || defined(__i386__)
#define DIRECTLOAD_CRC32C_HW 1

// The SSE4.2 crc32 instruction implements exactly this polynomial. The
// target attribute scopes the ISA extension to this one function, so the
// rest of the build keeps the project's baseline -march and the binary
// stays runnable on pre-Nehalem hardware (dispatch below checks CPUID).
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const char* data,
                                                          size_t n) {
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
#if defined(__x86_64__)
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
#endif
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return crc;
}
#endif  // x86

using ExtendFn = uint32_t (*)(uint32_t, const char*, size_t);

ExtendFn ResolveExtend() {
#if defined(DIRECTLOAD_CRC32C_HW)
  if (__builtin_cpu_supports("sse4.2")) return &ExtendHardware;
#endif
  return &ExtendSoftware;
}

// Resolved lazily behind a magic static so callers running from other
// translation units' static initializers (before this file's dynamic
// initializers would have run) never observe an unresolved pointer.
ExtendFn GetExtend() {
  static const ExtendFn fn = ResolveExtend();
  return fn;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  return GetExtend()(init_crc ^ 0xFFFFFFFFu, data, n) ^ 0xFFFFFFFFu;
}

uint32_t ExtendPortableForTesting(uint32_t init_crc, const char* data,
                                  size_t n) {
  return ExtendSoftware(init_crc ^ 0xFFFFFFFFu, data, n) ^ 0xFFFFFFFFu;
}

bool IsHardwareAccelerated() {
#if defined(DIRECTLOAD_CRC32C_HW)
  return GetExtend() == &ExtendHardware;
#else
  return false;
#endif
}

}  // namespace directload::crc32c
