#include "common/crc32c.h"

#include <array>

namespace directload::crc32c {

namespace {

// CRC-32C uses the Castagnoli polynomial 0x1EDC6F41 (reflected: 0x82F63B78).
constexpr uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  uint32_t crc = init_crc ^ 0xFFFFFFFFu;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace directload::crc32c
