#ifndef DIRECTLOAD_COMMON_CRC32C_H_
#define DIRECTLOAD_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace directload::crc32c {

/// Returns the CRC-32C (Castagnoli) of data[0, n), continuing from `init_crc`
/// (pass 0 to start a fresh checksum). Dispatches once, at startup, to the
/// SSE4.2 crc32 instruction when the CPU has it, else to a slicing-by-8
/// table implementation.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// The portable table-driven implementation, bypassing hardware dispatch —
/// exposed so tests can prove the accelerated path computes the same
/// function.
uint32_t ExtendPortableForTesting(uint32_t init_crc, const char* data,
                                  size_t n);

/// True when Extend() resolved to a hardware-accelerated implementation.
bool IsHardwareAccelerated();

/// CRC-32C of data[0, n).
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masks a CRC so that a checksum of bytes that themselves embed a checksum
/// does not degenerate (the LevelDB trick: rotate + offset).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace directload::crc32c

#endif  // DIRECTLOAD_COMMON_CRC32C_H_
