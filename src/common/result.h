#ifndef DIRECTLOAD_COMMON_RESULT_H_
#define DIRECTLOAD_COMMON_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace directload {

/// A value-or-error return type: either holds a `T` (and an OK status) or a
/// non-OK `Status`. Mirrors the absl::StatusOr idiom at the size this project
/// needs.
///
/// Usage:
///   Result<int> r = ParsePort(text);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicitly constructible from a value (success) or a Status (failure),
  /// so `return value;` and `return Status::NotFound();` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) Die("Result(Status) requires a non-OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Accessing the value of an error Result aborts (loudly, in every build
  // mode): continuing would be undefined behavior.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value or `fallback` when this result is an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) Die(status_.ToString().c_str());
  }

  [[noreturn]] static void Die(const char* msg) {
    std::fprintf(stderr, "Result misuse: %s\n", msg);
    std::abort();
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_RESULT_H_
