#ifndef DIRECTLOAD_COMMON_LOCK_RANK_H_
#define DIRECTLOAD_COMMON_LOCK_RANK_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace directload {

/// The engine-wide lock acquisition order, one rank per lock. A thread may
/// only acquire a lock whose rank is strictly greater than every rank it
/// already holds, so any cycle in the would-be waits-for graph is caught at
/// the first out-of-order acquisition — deterministically, on every code
/// path, not just the interleavings a stress test happens to hit.
///
/// The numbering mirrors docs/qindb_internals.md ("Lock ranks"): ranks grow
/// downward through the storage stack, and gaps leave room for new layers.
///
/// Each enumerator's doc comment is structured — tools/dl_lint parses it
/// and generates the docs table from it, so the two can never drift:
///
///   /// Lock: `<lock expression>` — <what it protects, one sentence>.
///   /// Sibling instances: <why several locks share this rank>.   (opt.)
///   ///
///   /// <free prose, separated from the tags by a blank /// line>
///
/// The `Sibling instances:` tag is mandatory (dl-lint enforces it) when a
/// rank has more than one static construction site or runtime-named
/// instances: equal-rank nesting aborts at runtime, so sharing a rank is a
/// design statement that must be visibly intentional.
enum class LockRank : int {
  /// Lock: `MintCoordinator::mu_` — the coordinator's node table: health
  /// states, miss counters and the per-node RPC client pools.
  ///
  /// The distributed coordinator sits above everything: it is pure client
  /// code, and the lock is only taken standalone (never across an RPC or
  /// any other ranked lock), so it ranks below the serving layer.
  kMintCoord = 1,
  /// Lock: `KvServer::mu_` — server lifecycle flag and the connection
  /// registry.
  ///
  /// The serving layer sits above the engine, so its ranks are smaller
  /// than every engine rank: a worker may take an engine lock while the
  /// server is mid-drain, never the reverse.
  kServerState = 2,
  /// Lock: `HedgeState::mu` — one hedged read's completion state (winner
  /// value, attempt counts), shared by the issuing thread and its attempt
  /// threads.
  /// Sibling instances: one per in-flight hedged read, all leaves; an
  /// attempt thread takes its own read's lock only, strictly after any
  /// kMintCoord acquisition has been released.
  kMintHedge = 3,
  /// Lock: `KvServer::queue_mu_` — bounded request queue, in-flight count,
  /// drain/stop flags.
  ///
  /// Admission control and drain accounting. Never held across an engine
  /// call.
  kServerQueue = 4,
  /// Lock: `RpcClient::mu_` — the client-side socket, frame decoder and
  /// reconnect backoff state.
  ///
  /// Taken standalone (no other ranked lock is ever held across a client
  /// call), so its exact position is free; it sits with the other
  /// client-side ranks, below the per-connection server locks.
  kRpcClient = 5,
  /// Lock: `Connection::write_mu` — response frame serialization on one
  /// client socket, so pipelined replies cannot interleave bytes.
  kServerConnWrite = 6,
  /// Lock: `Connection::bulk_mu` / `BulkIngestSession::mu_` — a
  /// connection's bulk-ingest session pointer, and the session's slice
  /// bookkeeping (landed / in-flight ids, commit/abort state).
  /// Sibling instances: the per-connection pointer lock and the per-session
  /// bookkeeping lock share the rank because a thread never nests them —
  /// the pointer lock is released before any session method runs.
  ///
  /// Slice ingest releases the session lock across its engine call so
  /// slices land in parallel; commit and abort hold it across theirs
  /// (legal — the rank sits above the engine ranks), which is what makes a
  /// commit racing a connection-teardown abort resolve to exactly one
  /// winner instead of a torn half-commit.
  kServerBulk = 7,
  /// Lock: `MintCluster::cluster_mu_` — the cluster's node/group
  /// membership tables: shared across every serving operation, exclusive
  /// for `AddNode`, so membership growth cannot race traffic undetected.
  ///
  /// Sits between the server locks (a bulk commit holds kServerBulk across
  /// its cluster call) and the per-node lifecycle rank it acquires next.
  kMintCluster = 8,
  /// Lock: `StorageNode::lifecycle_mu_` — per-node engine lifetime: shared
  /// across every request's engine call, exclusive for Fail/Recover.
  ///
  /// Sits just above the engine ranks: a request holds it (shared) across
  /// its engine call, so a concurrent crash cannot destroy the engine
  /// mid-operation.
  kMintNode = 9,
  /// Lock: `Shard::write_mutex_` — serializes the shard's mutators:
  /// Put/Del/DropVersion/GC/Checkpoint.
  /// Sibling instances: one per shard, named `qindb-write/sNN`.
  ///
  /// Always the first engine lock a mutator takes. Since the checker
  /// rejects equal-rank nesting, a thread can hold at most ONE shard's
  /// write lock — the cross-shard batch splitter must visit shards one at
  /// a time, and the rank checker enforces that mechanically.
  kQinDbWrite = 10,
  /// Lock: `Shard::batch_mu_` — the shard's group-commit pending-write
  /// queue.
  /// Sibling instances: one per shard, named `qindb-batch-queue/sNN`.
  ///
  /// Writers take it standalone to enqueue a batch (before contending on
  /// kQinDbWrite); the leader takes it under kQinDbWrite to drain the
  /// queue and publish results. Nothing is ever acquired while holding it.
  kQinDbBatchQueue = 12,
  /// Lock: `AofManager::mu_` — segment map, active writer, occupancy
  /// (shared for record reads).
  ///
  /// Exclusive for appends/seals/collection. Taken under kQinDbWrite by
  /// mutators or standalone by readers.
  kAofManager = 20,
  /// Lock: `AofManager::readers_mu_` — the lazy per-segment reader cache,
  /// taken with kAofManager held (at least shared).
  kAofReaders = 30,
  /// Lock: `SsdEnv` command-queue mutex — the simulated device's single
  /// command queue.
  /// Sibling instances: one per env, named `ssd-env(ftl)` /
  /// `ssd-env(native)`.
  kSsdEnv = 40,
  /// Lock: `VersionIndexRegistry::mu_` — the shard's cold-version map,
  /// per-version access ticks and scan-pin count.
  /// Sibling instances: one per shard, named `qindb-registry/sNN`.
  ///
  /// Taken briefly from read paths (cold check, access touch) and from
  /// mutators under kQinDbWrite/kAofManager; nothing is ever acquired
  /// while holding it.
  kQinDbVersionRegistry = 42,
  /// Lock: per-stripe `BlockCache` mutex — one stripe's LRU lists, hash
  /// map, admission sketch and byte accounting.
  /// Sibling instances: one per cache stripe per shard, named
  /// `qindb-cache/sNN/K`; a thread touches exactly one stripe per cache
  /// operation (the stripe is chosen by the record address), so two stripe
  /// locks are never nested.
  ///
  /// Ranked above kAofManager and kSsdEnv because GC relocation callbacks
  /// re-key cache entries while holding the AOF lock, and read-path inserts
  /// run right after a device read.
  kQinDbBlockCache = 44,
  /// Lock: `Shard::pin_mu_` — the shard's `mem_` pointer swap and
  /// `retired_` list (leaf).
  /// Sibling instances: one per shard, named `qindb-pin/sNN`.
  ///
  /// Nothing is ever acquired while holding it: it is taken either
  /// standalone (readers pinning the index) or as the innermost lock of a
  /// mutator.
  kQinDbPin = 50,
  /// Lock: `LatencyEstimator::mu_` — one estimator's rolling sample window
  /// and its cached quantile.
  /// Sibling instances: one per estimator (per storage node / per remote
  /// replica), all leaves; recording a sample acquires nothing further.
  ///
  /// High rank so a sample can be recorded while serving-path locks (and
  /// the cluster membership lock) are held.
  kLatencyEstimator = 55,
  /// Lock: `failpoint::Registry::mu_` — the name → failpoint map.
  ///
  /// Only taken from registration/activation paths (static init, test
  /// drivers), never while an engine lock is held; ranked below kFailPoint
  /// because activating a point locks the registry and then the point.
  kFailPointRegistry = 58,
  /// Lock: per-`FailPoint` mutex — trigger bookkeeping; ranks above
  /// everything because failpoints fire while arbitrary engine locks are
  /// held, and acquire nothing.
  /// Sibling instances: one per registered failpoint, all leaves.
  kFailPoint = 60,
};

/// The checker is active in debug builds and whenever a build force-enables
/// it (the ThreadSanitizer CI job does, via -DDIRECTLOAD_LOCK_RANK=ON →
/// DIRECTLOAD_LOCK_RANK_FORCE). In plain NDEBUG builds everything below
/// compiles away and the mutex wrappers in thread_annotations.h carry no
/// extra state. The macro must be consistent across a whole binary: it
/// changes the layout of those wrappers.
#if !defined(NDEBUG) || defined(DIRECTLOAD_LOCK_RANK_FORCE)
#define DIRECTLOAD_LOCK_RANK_CHECKS 1
#else
#define DIRECTLOAD_LOCK_RANK_CHECKS 0
#endif

#if DIRECTLOAD_LOCK_RANK_CHECKS

namespace lock_rank_internal {

/// Per-thread stack of held locks. Fixed capacity: the deepest legal chain
/// is one lock per LockRank value, and overflow means the discipline is
/// already broken.
struct HeldStack {
  static constexpr int kCapacity = 16;
  struct Entry {
    int rank;
    const char* name;
  };
  Entry entries[kCapacity];
  int depth = 0;
};

inline thread_local HeldStack tls_held;

[[noreturn]] inline void DieOnRankViolation(int acquiring_rank,
                                            const char* acquiring_name,
                                            int held_rank,
                                            const char* held_name) {
  if (acquiring_rank == held_rank && acquiring_name == held_name) {
    std::fprintf(stderr,
                 "lock-rank violation: recursive acquisition of \"%s\" "
                 "(rank %d) — this thread already holds \"%s\" and would "
                 "self-deadlock\n",
                 acquiring_name, acquiring_rank, held_name);
  } else {
    std::fprintf(stderr,
                 "lock-rank violation: acquiring \"%s\" (rank %d) while "
                 "holding \"%s\" (rank %d) inverts the documented order\n",
                 acquiring_name, acquiring_rank, held_name, held_rank);
  }
  std::abort();
}

/// Validates `rank` against every lock the thread holds, then records it.
/// Equal ranks are rejected too: a same-rank pair is either the same lock
/// (self-deadlock) or two sibling instances — two shards' write locks, two
/// engines' locks — which the architecture forbids a thread to nest
/// precisely so that sibling acquisition order can never form a cycle.
inline void NoteAcquire(LockRank rank, const char* name) {
  HeldStack& held = tls_held;
  const int r = static_cast<int>(rank);
  for (int i = 0; i < held.depth; ++i) {
    if (held.entries[i].rank >= r) {
      DieOnRankViolation(r, name, held.entries[i].rank,
                         held.entries[i].name);
    }
  }
  if (held.depth >= HeldStack::kCapacity) {
    std::fprintf(stderr,
                 "lock-rank violation: thread holds %d locks acquiring "
                 "\"%s\" — stack overflow\n",
                 held.depth, name);
    std::abort();
  }
  held.entries[held.depth].rank = r;
  held.entries[held.depth].name = name;
  ++held.depth;
}

/// Removes the most recent record of `rank`. Searching from the top keeps
/// release order free (guards are LIFO but manual unlock need not be).
inline void NoteRelease(LockRank rank, const char* name) {
  HeldStack& held = tls_held;
  const int r = static_cast<int>(rank);
  for (int i = held.depth; i-- > 0;) {
    if (held.entries[i].rank == r) {
      for (int j = i; j + 1 < held.depth; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.depth;
      return;
    }
  }
  std::fprintf(stderr,
               "lock-rank violation: releasing \"%s\" (rank %d) which this "
               "thread does not hold\n",
               name, r);
  std::abort();
}

}  // namespace lock_rank_internal

#endif  // DIRECTLOAD_LOCK_RANK_CHECKS

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_LOCK_RANK_H_
