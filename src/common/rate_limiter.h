#ifndef DIRECTLOAD_COMMON_RATE_LIMITER_H_
#define DIRECTLOAD_COMMON_RATE_LIMITER_H_

#include <algorithm>
#include <cstdint>

#include "common/sim_clock.h"

namespace directload {

/// A token-bucket rate limiter over simulated time. Consumers ask when the
/// next `n` units may proceed; the limiter never blocks (nothing in the
/// simulation does) — it returns the simulated time at which the request is
/// admissible and accounts for it.
///
/// Used to pace ingest streams against a byte budget (e.g., Bifrost's
/// empirical bandwidth reservations are enforced per-channel by the fluid
/// network; host-side pacing of replay streams uses this class).
class RateLimiter {
 public:
  /// `rate_per_sec` units per second sustained; up to `burst` units may be
  /// consumed instantaneously.
  RateLimiter(SimClock* clock, double rate_per_sec, double burst)
      : clock_(clock),
        rate_per_sec_(rate_per_sec),
        burst_(burst),
        tokens_(burst),
        last_refill_micros_(clock->NowMicros()) {}

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Accounts for `n` units and returns the earliest simulated time (µs) at
  /// which they are within the budget. The caller decides whether to
  /// advance the clock (pacing) or to record the debt (measuring backlog).
  uint64_t Acquire(double n) {
    Refill();
    tokens_ -= n;
    if (tokens_ >= 0) return clock_->NowMicros();
    // Deficit: admissible once the bucket refills past zero.
    const double wait_seconds = -tokens_ / rate_per_sec_;
    return clock_->NowMicros() + static_cast<uint64_t>(wait_seconds * 1e6);
  }

  /// Tokens currently available (may be negative while in deficit).
  double available() {
    Refill();
    return tokens_;
  }

  double rate_per_sec() const { return rate_per_sec_; }

 private:
  void Refill() {
    const uint64_t now = clock_->NowMicros();
    if (now <= last_refill_micros_) return;
    const double elapsed = static_cast<double>(now - last_refill_micros_) * 1e-6;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_sec_);
    last_refill_micros_ = now;
  }

  SimClock* clock_;
  double rate_per_sec_;
  double burst_;
  double tokens_;
  uint64_t last_refill_micros_;
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_RATE_LIMITER_H_
