#ifndef DIRECTLOAD_COMMON_RATE_LIMITER_H_
#define DIRECTLOAD_COMMON_RATE_LIMITER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/sim_clock.h"

namespace directload {

/// A token-bucket rate limiter over simulated time. Consumers ask when the
/// next `n` units may proceed; the limiter never blocks (nothing in the
/// simulation does) — it returns the simulated time at which the request is
/// admissible and accounts for it.
///
/// Used to pace ingest streams against a byte budget (e.g., Bifrost's
/// empirical bandwidth reservations are enforced per-channel by the fluid
/// network; host-side pacing of replay streams uses this class).
class RateLimiter {
 public:
  /// `rate_per_sec` units per second sustained; up to `burst` units may be
  /// consumed instantaneously.
  RateLimiter(SimClock* clock, double rate_per_sec, double burst)
      : clock_(clock),
        rate_per_sec_(rate_per_sec),
        burst_(burst),
        tokens_(burst),
        last_refill_micros_(clock->NowMicros()) {}

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Accounts for `n` units and returns the earliest simulated time (µs) at
  /// which they are within the budget. The caller decides whether to
  /// advance the clock (pacing) or to record the debt (measuring backlog).
  uint64_t Acquire(double n) {
    Refill();
    tokens_ -= n;
    if (tokens_ >= 0) return clock_->NowMicros();
    // Deficit: admissible once the bucket refills past zero.
    const double wait_seconds = -tokens_ / rate_per_sec_;
    return clock_->NowMicros() + static_cast<uint64_t>(wait_seconds * 1e6);
  }

  /// Tokens currently available (may be negative while in deficit).
  double available() {
    Refill();
    return tokens_;
  }

  double rate_per_sec() const { return rate_per_sec_; }

 private:
  void Refill() {
    const uint64_t now = clock_->NowMicros();
    if (now <= last_refill_micros_) return;
    const double elapsed = static_cast<double>(now - last_refill_micros_) * 1e-6;
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_sec_);
    last_refill_micros_ = now;
  }

  SimClock* clock_;
  double rate_per_sec_;
  double burst_;
  double tokens_;
  uint64_t last_refill_micros_;
};

/// The wall-clock twin of RateLimiter: the same token-bucket accounting over
/// std::chrono::steady_clock, for real components (the KV server's optional
/// per-connection byte throttling) rather than the simulation. Like its
/// simulated sibling, Acquire never blocks — it returns the earliest wall
/// time at which the request is admissible; Throttle is the convenience that
/// sleeps until then. A rate of zero (or below) disables throttling: every
/// request is admissible immediately and no debt accumulates.
///
/// Not internally synchronized — confine one instance to one thread (the
/// server gives each connection its own limiter on its reader thread).
class WallRateLimiter {
 public:
  using Clock = std::chrono::steady_clock;

  /// `rate_per_sec` units per second sustained; up to `burst` units may be
  /// consumed instantaneously. `rate_per_sec <= 0` means unlimited.
  WallRateLimiter(double rate_per_sec, double burst)
      : rate_per_sec_(rate_per_sec),
        burst_(burst),
        tokens_(burst),
        last_refill_(Clock::now()) {}

  WallRateLimiter(const WallRateLimiter&) = delete;
  WallRateLimiter& operator=(const WallRateLimiter&) = delete;

  /// Accounts for `n` units and returns the earliest wall time at which they
  /// are within the budget (Clock::now() when the bucket covers them).
  Clock::time_point Acquire(double n) {
    if (rate_per_sec_ <= 0) return Clock::now();
    Refill();
    tokens_ -= n;
    if (tokens_ >= 0) return last_refill_;
    // Deficit: admissible once the bucket refills past zero.
    const auto wait = std::chrono::duration<double>(-tokens_ / rate_per_sec_);
    return last_refill_ +
           std::chrono::duration_cast<Clock::duration>(wait);
  }

  /// Accounts for `n` units and sleeps until they are admissible.
  void Throttle(double n) {
    const Clock::time_point when = Acquire(n);
    if (when > Clock::now()) std::this_thread::sleep_until(when);
  }

  /// Tokens currently available (may be negative while in deficit).
  double available() {
    if (rate_per_sec_ <= 0) return burst_;
    Refill();
    return tokens_;
  }

  double rate_per_sec() const { return rate_per_sec_; }

 private:
  void Refill() {
    const Clock::time_point now = Clock::now();
    if (now <= last_refill_) return;
    const double elapsed =
        std::chrono::duration<double>(now - last_refill_).count();
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_sec_);
    last_refill_ = now;
  }

  double rate_per_sec_;
  double burst_;
  double tokens_;
  Clock::time_point last_refill_;
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_RATE_LIMITER_H_
