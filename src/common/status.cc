#include "common/status.h"

namespace directload {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNoSpace:
      return "NoSpace";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeduplicated:
      return "Deduplicated";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kProtocol:
      return "Protocol";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace directload
