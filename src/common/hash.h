#ifndef DIRECTLOAD_COMMON_HASH_H_
#define DIRECTLOAD_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace directload {

/// 64-bit FNV-1a over arbitrary bytes. Used for value signatures in Bifrost's
/// deduplicator and as the H(k) dispatch hash in Mint. The paper only
/// requires a collision-resistant-in-practice content signature; 64-bit
/// FNV-1a with an avalanche finalizer is sufficient for the simulated corpus
/// sizes and is dependency-free.
uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0);

inline uint64_t Hash64(const Slice& s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// 32-bit hash for bloom filters and in-memory tables.
uint32_t Hash32(const char* data, size_t n, uint32_t seed = 0xbc9f1d34u);

inline uint32_t Hash32(const Slice& s, uint32_t seed = 0xbc9f1d34u) {
  return Hash32(s.data(), s.size(), seed);
}

/// Content signature of a value field, as compared across consecutive index
/// versions by Bifrost (Section 2.2 of the paper).
inline uint64_t ValueSignature(const Slice& value) {
  return Hash64(value, /*seed=*/0x9e3779b97f4a7c15ull);
}

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_HASH_H_
