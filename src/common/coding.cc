#include "common/coding.h"

namespace directload {

namespace {

char* EncodeVarint64To(char* dst, uint64_t v) {
  auto* ptr = reinterpret_cast<unsigned char*>(dst);
  while (v >= 0x80) {
    *(ptr++) = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  *(ptr++) = static_cast<unsigned char>(v);
  return reinterpret_cast<char*>(ptr);
}

}  // namespace

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  char buf[10];
  char* end = EncodeVarint64To(buf, value);
  dst->append(buf, static_cast<size_t>(end - buf));
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  const char* p = input->data();
  const char* limit = p + input->size();
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    const auto byte = static_cast<unsigned char>(*p);
    ++p;
    if ((byte & 0x80) != 0) {
      result |= (static_cast<uint64_t>(byte & 0x7f) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      *value = result;
      input->remove_prefix(static_cast<size_t>(p - input->data()));
      return true;
    }
  }
  return false;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v64 = 0;
  Slice copy = *input;
  if (!GetVarint64(&copy, &v64) || v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  *input = copy;
  return true;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len = 0;
  if (!GetVarint32(input, &len) || input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace directload
