#ifndef DIRECTLOAD_COMMON_CODING_H_
#define DIRECTLOAD_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace directload {

// Little-endian fixed-width and varint encodings used by every on-"disk"
// record format in the project (AOF records, WAL records, SSTable blocks).

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));  // Little-endian hosts only.
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

/// Appends `value` as a base-128 varint (1-5 bytes).
void PutVarint32(std::string* dst, uint32_t value);

/// Appends `value` as a base-128 varint (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t value);

/// Appends varint32(len) followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parses a varint32 from the front of `input`, advancing it past the
/// encoding. Returns false on truncated/overlong input.
bool GetVarint32(Slice* input, uint32_t* value);

/// Parses a varint64 from the front of `input`, advancing it.
bool GetVarint64(Slice* input, uint64_t* value);

/// Parses a length-prefixed slice from the front of `input`, advancing it.
/// `result` aliases `input`'s underlying bytes.
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// Number of bytes PutVarint32/64 would append for `value`.
int VarintLength(uint64_t value);

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_CODING_H_
