#ifndef DIRECTLOAD_COMMON_THREAD_ANNOTATIONS_H_
#define DIRECTLOAD_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"

/// Clang Thread Safety Analysis macros (-Wthread-safety) plus the annotated
/// mutex wrappers the concurrent core is written against.
///
/// Under clang the macros expand to the `capability` attribute family and
/// the locking discipline becomes a compile error: a `GUARDED_BY` member
/// touched without its lock, a `REQUIRES` method called without the caller
/// holding it, an `EXCLUDES` method re-entered with the lock held — all fail
/// `-Werror=thread-safety` in CI. Under GCC (the default local toolchain)
/// they expand to nothing and the wrappers are plain std mutexes; the
/// runtime lock-rank checker in lock_rank.h covers the ordering half of the
/// contract there.

#if defined(__clang__) && defined(__has_attribute)
#define DIRECTLOAD_TSA_HAS(x) __has_attribute(x)
#else
#define DIRECTLOAD_TSA_HAS(x) 0
#endif

#if DIRECTLOAD_TSA_HAS(capability)
#define DIRECTLOAD_TSA(x) __attribute__((x))
#else
#define DIRECTLOAD_TSA(x)
#endif

#define CAPABILITY(x) DIRECTLOAD_TSA(capability(x))
#define SCOPED_CAPABILITY DIRECTLOAD_TSA(scoped_lockable)
#define GUARDED_BY(x) DIRECTLOAD_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) DIRECTLOAD_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) DIRECTLOAD_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DIRECTLOAD_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) DIRECTLOAD_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DIRECTLOAD_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) DIRECTLOAD_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DIRECTLOAD_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DIRECTLOAD_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DIRECTLOAD_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  DIRECTLOAD_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) DIRECTLOAD_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) DIRECTLOAD_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) DIRECTLOAD_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) DIRECTLOAD_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS DIRECTLOAD_TSA(no_thread_safety_analysis)

namespace directload {

/// std::mutex with a capability annotation and a construction-time rank.
/// Debug builds (and DIRECTLOAD_LOCK_RANK_FORCE builds) validate every
/// acquisition against the thread's held ranks; NDEBUG builds carry no
/// extra state and add no instructions around lock/unlock.
class CAPABILITY("mutex") Mutex {
 public:
#if DIRECTLOAD_LOCK_RANK_CHECKS
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
#else
  Mutex(LockRank /*rank*/, const char* /*name*/) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if DIRECTLOAD_LOCK_RANK_CHECKS
    lock_rank_internal::NoteAcquire(rank_, name_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if DIRECTLOAD_LOCK_RANK_CHECKS
    lock_rank_internal::NoteRelease(rank_, name_);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if DIRECTLOAD_LOCK_RANK_CHECKS
    lock_rank_internal::NoteAcquire(rank_, name_);
#endif
    return true;
  }

  /// Tells the analysis (not the runtime) that the lock is held.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;

  std::mutex mu_;
#if DIRECTLOAD_LOCK_RANK_CHECKS
  LockRank rank_;
  const char* name_;
#endif
};

/// Condition variable paired with the annotated Mutex. Wait/WaitFor require
/// the mutex held and return with it held again, exactly like
/// std::condition_variable — the wait atomically releases and reacquires the
/// same lock, so the thread's held-rank stack is unchanged across the call
/// and the rank checker keeps the entry in place.
class CondVar {
 public:
  explicit CondVar(Mutex* mu) : mu_(mu) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait() REQUIRES(mu_) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The annotated Mutex still owns the lock.
  }

  /// Returns false when the timeout elapsed without a notification.
  bool WaitFor(std::chrono::nanoseconds timeout) REQUIRES(mu_) {
    std::unique_lock<std::mutex> lock(mu_->mu_, std::adopt_lock);
    const std::cv_status r = cv_.wait_for(lock, timeout);
    lock.release();
    return r == std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  Mutex* const mu_;
  std::condition_variable cv_;
};

/// std::shared_mutex counterpart. Shared acquisitions participate in rank
/// checking exactly like exclusive ones: the ranks a thread holds form one
/// stack regardless of mode, and acquiring the same rank twice — even
/// shared-after-shared — is flagged, because a shared re-acquisition can
/// deadlock behind a writer queued between the two.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
#if DIRECTLOAD_LOCK_RANK_CHECKS
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
#else
  SharedMutex(LockRank /*rank*/, const char* /*name*/) {}
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if DIRECTLOAD_LOCK_RANK_CHECKS
    lock_rank_internal::NoteAcquire(rank_, name_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if DIRECTLOAD_LOCK_RANK_CHECKS
    lock_rank_internal::NoteRelease(rank_, name_);
#endif
  }

  void LockShared() ACQUIRE_SHARED() {
#if DIRECTLOAD_LOCK_RANK_CHECKS
    lock_rank_internal::NoteAcquire(rank_, name_);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
#if DIRECTLOAD_LOCK_RANK_CHECKS
    lock_rank_internal::NoteRelease(rank_, name_);
#endif
  }

  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
#if DIRECTLOAD_LOCK_RANK_CHECKS
  LockRank rank_;
  const char* name_;
#endif
};

/// Scoped exclusive lock over Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Scoped exclusive lock over SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterLock() RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Scoped shared lock over SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_THREAD_ANNOTATIONS_H_
