#ifndef DIRECTLOAD_COMMON_RANDOM_H_
#define DIRECTLOAD_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace directload {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+). Every
/// stochastic component in the project takes an explicit seed so that tests
/// and benchmarks are bit-reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // splitmix64 to expand the seed into two non-zero state words.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    auto next = [&z]() {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) {
    return NextDouble() < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Exponentially distributed with the given mean (> 0).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

  /// Normally distributed (Box-Muller).
  double Gaussian(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 1e-12;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
  }

  /// Random printable-byte string of exactly n bytes.
  std::string NextString(size_t n) {
    std::string out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(26)));
    }
    return out;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipfian sampler over [0, n) with parameter theta (0 < theta < 1 typical),
/// following the Gray et al. / YCSB formulation. Models term popularity in
/// the synthetic web corpus: a few terms occur in very many documents.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
      : n_(n), theta_(theta), rng_(seed) {
    assert(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  /// Returns a rank in [0, n); rank 0 is the most popular item.
  uint64_t Next() {
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Random rng_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_RANDOM_H_
