#ifndef DIRECTLOAD_COMMON_HISTOGRAM_H_
#define DIRECTLOAD_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace directload {

/// A log-bucketed histogram for latency measurements. Records values (in any
/// unit, conventionally microseconds) and reports mean and percentiles —
/// the avg/p99/p99.9 statistics the paper's Figure 8 uses.
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }
  double Mean() const;
  double StdDev() const;
  /// Linear-interpolated percentile; p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// One-line summary: "count=N mean=X p50=... p99=... p999=... max=...".
  std::string ToString() const;

 private:
  double min_;
  double max_;
  uint64_t count_;
  double sum_;
  double sum_squares_;
  std::vector<uint64_t> buckets_;  // Per-bucket observation counts.
};

/// Streaming mean / standard deviation (Welford), used for the Figure 6
/// throughput-jitter statistic.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  uint64_t count() const { return n_; }
  double Mean() const { return mean_; }
  double Variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double StdDev() const;

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_HISTOGRAM_H_
