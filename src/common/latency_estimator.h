#ifndef DIRECTLOAD_COMMON_LATENCY_ESTIMATOR_H_
#define DIRECTLOAD_COMMON_LATENCY_ESTIMATOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace directload {

/// A rolling window of latency samples with on-demand quantiles — the
/// shared estimator behind both the coordinator's hedged-read delay ("fire
/// the backup once the primary has been silent for its recent p95") and
/// MintCluster's derived read timeout. A fixed-size ring keeps the estimate
/// tracking the *recent* regime: a replica that was slow during recovery
/// but has caught up stops dominating the estimate after one window's worth
/// of fresh samples, which is exactly the adaptivity the tail-tolerant
/// hedging policy assumes.
///
/// Thread-safe; the internal lock is a leaf (LockRank::kLatencyEstimator)
/// so samples can be recorded while serving-path locks are held.
class LatencyEstimator {
 public:
  explicit LatencyEstimator(size_t window = 256)
      : window_(window == 0 ? 1 : window) {}

  LatencyEstimator(const LatencyEstimator&) = delete;
  LatencyEstimator& operator=(const LatencyEstimator&) = delete;

  void Record(double sample) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (samples_.size() < window_) {
      samples_.push_back(sample);
    } else {
      samples_[next_] = sample;
    }
    next_ = (next_ + 1) % window_;
    ++count_;
  }

  /// The `q`-quantile (q in [0, 1]) over the samples currently in the
  /// window, or `fallback` when fewer than `min_samples` have ever been
  /// recorded — callers treat that as "no estimate yet" and fall back to a
  /// configured default instead of hedging off noise.
  double Quantile(double q, size_t min_samples = 1,
                  double fallback = -1.0) const EXCLUDES(mu_) {
    std::vector<double> window_copy;
    {
      MutexLock lock(&mu_);
      if (count_ < min_samples || samples_.empty()) return fallback;
      window_copy = samples_;
    }
    q = std::min(std::max(q, 0.0), 1.0);
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(window_copy.size() - 1) + 0.5);
    std::nth_element(window_copy.begin(), window_copy.begin() + idx,
                     window_copy.end());
    return window_copy[idx];
  }

  /// Total samples ever recorded (not capped by the window).
  uint64_t count() const EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return count_;
  }

 private:
  const size_t window_;
  mutable Mutex mu_{LockRank::kLatencyEstimator, "latency-estimator"};
  std::vector<double> samples_ GUARDED_BY(mu_);
  size_t next_ GUARDED_BY(mu_) = 0;
  uint64_t count_ GUARDED_BY(mu_) = 0;
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_LATENCY_ESTIMATOR_H_
