#include "common/histogram.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace directload {

namespace {

// Geometric bucket limits: 1, 2, 3, ..., 10, 12, 14, ... doubling decade
// pattern out to ~1e12 (LevelDB's histogram layout, enough for microsecond
// latencies up to days).
std::vector<double> MakeLimits() {
  std::vector<double> limits;
  double v = 1.0;
  while (limits.size() < 153) {
    limits.push_back(v);
    double step = std::pow(10.0, std::floor(std::log10(v))) / 1.0;
    if (v < 10) {
      step = 1;
    } else {
      step = v / 5.0;
    }
    v += step;
  }
  limits.push_back(std::numeric_limits<double>::infinity());
  return limits;
}

const std::vector<double>& Limits() {
  static const auto& limits = *new std::vector<double>(MakeLimits());
  return limits;
}

}  // namespace

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  min_ = std::numeric_limits<double>::max();
  max_ = 0.0;
  count_ = 0;
  sum_ = 0.0;
  sum_squares_ = 0.0;
  buckets_.assign(Limits().size(), 0);
}

void Histogram::Add(double value) {
  const auto& limits = Limits();
  size_t b = 0;
  while (b < limits.size() - 1 && limits[b] <= value) ++b;
  ++buckets_[b];
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += value;
  sum_squares_ += value * value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  sum_squares_ += other.sum_squares_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ == 0) return 0.0;
  const double n = static_cast<double>(count_);
  const double variance = (sum_squares_ * n - sum_ * sum_) / (n * n);
  return variance <= 0.0 ? 0.0 : std::sqrt(variance);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const auto& limits = Limits();
  const double threshold = static_cast<double>(count_) * (p / 100.0);
  double cumulative = 0.0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const auto in_bucket = static_cast<double>(buckets_[b]);
    cumulative += in_bucket;
    if (cumulative >= threshold) {
      // Interpolate within the bucket.
      const double left_point = b == 0 ? 0.0 : limits[b - 1];
      const double right_point = limits[b];
      if (!std::isfinite(right_point)) return max_;
      const double left_sum = cumulative - in_bucket;
      double pos =
          buckets_[b] == 0 ? 0.0 : (threshold - left_sum) / in_bucket;
      double r = left_point + (right_point - left_point) * pos;
      if (r < min_) r = min_;
      if (r > max_) r = max_;
      return r;
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.2f p99=%.2f p999=%.2f max=%.2f",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(50), Percentile(99), Percentile(99.9), max());
  return buf;
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

}  // namespace directload
