#ifndef DIRECTLOAD_COMMON_LOGGING_H_
#define DIRECTLOAD_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace directload {

/// Aborts with a message when an internal invariant is violated. Used for
/// conditions that indicate bugs (never for recoverable, data-dependent
/// failures, which return Status).
#define DL_CHECK(cond)                                                        \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "DL_CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define DL_CHECK_OK(status_expr)                                              \
  do {                                                                        \
    const ::directload::Status _dl_s = (status_expr);                         \
    if (!_dl_s.ok()) {                                                        \
      std::fprintf(stderr, "DL_CHECK_OK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, _dl_s.ToString().c_str());                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// Documents a deliberately discarded Status whose information provably
/// reaches the caller through another channel — the per-op statuses of a
/// WriteBatch, an out-parameter the call also fills, an error the test is
/// intentionally driving into an armed failpoint. `why` is mandatory and
/// must name that channel (or scenario); it is what distinguishes this from
/// the banned bare `(void)` cast, which records nothing. Silent at runtime:
/// unlike DL_LOG_IF_ERROR the error is not lost, it is delivered elsewhere.
#define DL_DISCARD_STATUS(why, status_expr)                                   \
  do {                                                                        \
    static_assert(sizeof(why) > 1, "DL_DISCARD_STATUS needs a reason");       \
    const auto _dl_discarded = (status_expr);                                 \
    (void)_dl_discarded;                                                      \
  } while (0)

/// Logs and deliberately discards a non-OK Status from a best-effort
/// operation — cleanup on an already-failing path, benchmark priming,
/// advisory maintenance. `what` names the operation so the log line (and the
/// reviewer reading the call site) knows what was given up on. This is the
/// only sanctioned way to drop a Status: `Status` is `[[nodiscard]]` and
/// dl-lint (tools/dl_lint) rejects bare `(void)` casts, which erase the
/// reason the error is ignorable.
#define DL_LOG_IF_ERROR(what, status_expr)                                    \
  do {                                                                        \
    const ::directload::Status _dl_s = (status_expr);                         \
    if (!_dl_s.ok()) {                                                        \
      std::fprintf(stderr, "%s:%d: %s failed (ignored): %s\n", __FILE__,      \
                   __LINE__, (what), _dl_s.ToString().c_str());               \
    }                                                                         \
  } while (0)

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_LOGGING_H_
