#ifndef DIRECTLOAD_COMMON_LOGGING_H_
#define DIRECTLOAD_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace directload {

/// Aborts with a message when an internal invariant is violated. Used for
/// conditions that indicate bugs (never for recoverable, data-dependent
/// failures, which return Status).
#define DL_CHECK(cond)                                                        \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "DL_CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define DL_CHECK_OK(status_expr)                                              \
  do {                                                                        \
    const ::directload::Status _dl_s = (status_expr);                         \
    if (!_dl_s.ok()) {                                                        \
      std::fprintf(stderr, "DL_CHECK_OK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, _dl_s.ToString().c_str());                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_LOGGING_H_
