#ifndef DIRECTLOAD_COMMON_STATUS_H_
#define DIRECTLOAD_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace directload {

/// Error taxonomy shared by every DirectLoad subsystem. The project does not
/// use exceptions; fallible operations return a `Status` (or a `Result<T>`,
/// see result.h) that callers must inspect.
enum class StatusCode {
  kOk = 0,
  kNotFound,        // Key/version/file absent.
  kCorruption,      // Checksum mismatch or malformed on-disk record.
  kInvalidArgument, // Caller violated an API precondition.
  kIOError,         // Simulated-device or filesystem failure.
  kNoSpace,         // Device or segment out of capacity.
  kBusy,            // Resource temporarily unavailable (e.g., GC deferred).
  kUnavailable,     // Node/replica down or unreachable.
  kTimedOut,        // Operation exceeded its (simulated) deadline.
  kAborted,         // Operation cancelled, e.g., by version rollback.
  kDeduplicated,    // Value field removed by Bifrost; traceback required.
  kInternal,        // Invariant violation; indicates a bug.
  kProtocol,        // Malformed/oversized RPC frame or wrong magic. Distinct
                    // from kCorruption (checksum mismatch): a protocol error
                    // means the peer speaks the wrong language, a corruption
                    // error means the bytes were damaged in flight.
};

/// Returns a stable human-readable name for `code` ("OK", "NotFound", ...).
std::string_view StatusCodeName(StatusCode code);

/// Cheap value-type status: a code plus an optional context message.
/// The OK status carries no allocation.
///
/// `[[nodiscard]]` on the class makes ignoring any Status-returning call a
/// compiler warning (and a dl-lint finding, see tools/dl_lint). Callers that
/// genuinely cannot act on a failure use `DL_CHECK_OK` (invariant: cannot
/// fail here) or `DL_LOG_IF_ERROR` (best-effort cleanup); a bare `(void)`
/// cast is banned because it erases the reviewer-visible reason.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg = {}) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg = {}) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg = {}) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg = {}) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status NoSpace(std::string_view msg = {}) {
    return Status(StatusCode::kNoSpace, msg);
  }
  static Status Busy(std::string_view msg = {}) {
    return Status(StatusCode::kBusy, msg);
  }
  static Status Unavailable(std::string_view msg = {}) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status TimedOut(std::string_view msg = {}) {
    return Status(StatusCode::kTimedOut, msg);
  }
  static Status Aborted(std::string_view msg = {}) {
    return Status(StatusCode::kAborted, msg);
  }
  static Status Deduplicated(std::string_view msg = {}) {
    return Status(StatusCode::kDeduplicated, msg);
  }
  static Status Internal(std::string_view msg = {}) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status Protocol(std::string_view msg = {}) {
    return Status(StatusCode::kProtocol, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNoSpace() const { return code_ == StatusCode::kNoSpace; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsDeduplicated() const { return code_ == StatusCode::kDeduplicated; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsProtocol() const { return code_ == StatusCode::kProtocol; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(StatusCode code, std::string_view msg) : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace directload

#endif  // DIRECTLOAD_COMMON_STATUS_H_
