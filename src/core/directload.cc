#include "core/directload.h"

#include <algorithm>

namespace directload::core {

DirectLoad::DirectLoad(const DirectLoadOptions& options)
    : options_(options),
      summary_dedup_(options.dedup_enabled),
      inverted_dedup_(options.dedup_enabled),
      forward_dedup_(options.dedup_enabled),
      rng_(options.seed) {
  corpus_ = std::make_unique<webindex::Corpus>(options_.corpus);
  delivery_ =
      std::make_unique<bifrost::DeliveryService>(&net_clock_, options_.delivery);
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    mint::MintOptions mint_options = options_.mint;
    mint_options.seed = options_.mint.seed + dc;
    clusters_.push_back(std::make_unique<mint::MintCluster>(mint_options));
  }
  active_version_.assign(bifrost::kNumDataCenters, 0);
  stored_versions_.assign(bifrost::kNumDataCenters, 0);
}

Status DirectLoad::Start() {
  for (auto& cluster : clusters_) {
    Status s = cluster->Start();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<UpdateReport> DirectLoad::RunUpdateCycle(double change_rate,
                                                bool vip_only) {
  UpdateReport report;

  // 1. Crawl round. The corpus starts at version 1; the first cycle ships
  //    that initial build, later cycles advance it.
  if (active_version_[0] != 0 || stored_versions_[0] != 0) {
    const double rate =
        change_rate < 0 ? options_.corpus.change_rate : change_rate;
    corpus_->AdvanceVersionTiered(rate, vip_only ? 0.0 : rate);
  }
  report.version = corpus_->version();
  report.docs_changed = corpus_->docs_changed_last_round();

  // 2. Index building (Figure 1's build engine).
  std::vector<bifrost::SlicePacket> summary_slices;
  std::vector<bifrost::SlicePacket> inverted_slices;
  uint64_t pairs_built = 0;
  if (options_.build_summary) {
    webindex::IndexDataset summary = webindex::BuildSummaryIndex(*corpus_);
    pairs_built += summary.pairs.size();
    std::vector<bifrost::ShippedPair> shipped =
        summary_dedup_.Process(summary, &report.dedup);
    summary_slices =
        bifrost::PackSlices(shipped, summary.type, summary.version,
                            options_.slice_bytes, next_slice_id_);
    next_slice_id_ += summary_slices.size();
  }
  if (options_.build_inverted) {
    webindex::IndexDataset forward = webindex::BuildForwardIndex(*corpus_);
    webindex::IndexDataset inverted =
        webindex::BuildInvertedIndex(*corpus_, forward);
    pairs_built += inverted.pairs.size();
    std::vector<bifrost::ShippedPair> shipped =
        inverted_dedup_.Process(inverted, &report.dedup);
    inverted_slices =
        bifrost::PackSlices(shipped, inverted.type, inverted.version,
                            options_.slice_bytes, next_slice_id_);
    next_slice_id_ += inverted_slices.size();
    if (options_.ship_forward) {
      // Forward indices travel with the inverted stream (Figure 1's blue
      // arrows) and land at all six data centers.
      pairs_built += forward.pairs.size();
      std::vector<bifrost::ShippedPair> fwd_shipped =
          forward_dedup_.Process(forward, &report.dedup);
      // Forward and summary indices both key on the URL; prefix the
      // forward entries so the two datasets coexist in one store.
      for (bifrost::ShippedPair& pair : fwd_shipped) {
        pair.key = "fwd:" + pair.key;
      }
      std::vector<bifrost::SlicePacket> fwd_slices = bifrost::PackSlices(
          fwd_shipped, forward.type, forward.version, options_.slice_bytes,
          next_slice_id_);
      next_slice_id_ += fwd_slices.size();
      inverted_slices.insert(inverted_slices.end(),
                             std::make_move_iterator(fwd_slices.begin()),
                             std::make_move_iterator(fwd_slices.end()));
    }
  }

  // 3. Cross-region delivery with on-arrival ingestion (transmission and
  //    storage are pipelined; each storage node has its own clock).
  std::vector<uint64_t> node_clock_before;
  for (auto& cluster : clusters_) {
    for (int n = 0; n < cluster->num_nodes(); ++n) {
      node_clock_before.push_back(cluster->node(n)->clock()->NowMicros());
    }
  }

  Status ingest_error;
  const uint64_t version = report.version;
  report.delivery = delivery_->DeliverVersion(
      summary_slices, inverted_slices,
      [&](int dc, const bifrost::SlicePacket& slice) {
        std::vector<bifrost::ShippedPair> pairs;
        Status s = bifrost::UnpackSlice(slice, &pairs);
        if (!s.ok()) {
          if (ingest_error.ok()) ingest_error = s;
          return;
        }
        for (const bifrost::ShippedPair& pair : pairs) {
          s = clusters_[dc]->Put(pair.key, version, pair.value, pair.dedup);
          if (!s.ok() && ingest_error.ok()) ingest_error = s;
        }
        report.pairs_ingested += pairs.size();
      });
  if (!ingest_error.ok()) return ingest_error;
  if (!report.delivery.completed) {
    return Status::TimedOut("delivery did not finish in time");
  }

  size_t idx = 0;
  for (auto& cluster : clusters_) {
    for (int n = 0; n < cluster->num_nodes(); ++n, ++idx) {
      const double node_seconds =
          static_cast<double>(cluster->node(n)->clock()->NowMicros() -
                              node_clock_before[idx]) *
          1e-6;
      report.ingest_seconds = std::max(report.ingest_seconds, node_seconds);
    }
  }
  report.update_time_seconds =
      std::max(report.delivery.update_time_seconds, report.ingest_seconds);
  if (report.update_time_seconds > 0) {
    report.throughput_kps =
        static_cast<double>(report.pairs_ingested) /
        report.update_time_seconds;
  }

  // 4. Gray release: probe one data center with realistic queries before
  //    activating the version everywhere (Section 3).
  Result<double> inconsistency = ProbeInconsistency(
      options_.gray_dc, version, options_.gray_probe_queries);
  if (!inconsistency.ok()) return inconsistency.status();
  report.gray_inconsistency = *inconsistency;
  report.gray_release_passed =
      *inconsistency <= options_.gray_max_inconsistency;
  if (report.gray_release_passed) {
    for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
      active_version_[dc] = version;
    }
  }

  // 5. Version pruning: at most max_versions persist per node.
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    ++stored_versions_[dc];
  }
  if (stored_versions_[0] > static_cast<uint64_t>(options_.max_versions)) {
    report.version_pruned = oldest_version_;
    for (auto& cluster : clusters_) {
      Status s = cluster->DropVersion(oldest_version_);
      if (!s.ok()) return s;
    }
    ++oldest_version_;
    for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
      --stored_versions_[dc];
    }
  }
  (void)pairs_built;
  return report;
}

Result<double> DirectLoad::ProbeInconsistency(int dc, uint64_t version,
                                              int probes) {
  if (probes <= 0) return 0.0;
  const auto& docs = corpus_->documents();
  int mismatches = 0;
  for (int i = 0; i < probes; ++i) {
    const webindex::Document& doc = docs[rng_.Uniform(docs.size())];
    // Inverted-index probe: one of the document's terms must list its URL.
    if (options_.build_inverted) {
      const std::vector<uint32_t> terms = corpus_->TermsOf(doc);
      const uint32_t term =
          terms[rng_.Uniform(terms.size())];
      Result<mint::MintCluster::ReadResult> got =
          clusters_[dc]->Get(webindex::TermKey(term), version);
      bool consistent = false;
      if (got.ok()) {
        std::vector<std::string> urls;
        if (webindex::DecodeUrlList(got->value, &urls).ok()) {
          consistent = std::find(urls.begin(), urls.end(), doc.url) != urls.end();
        }
      }
      if (!consistent) ++mismatches;
    }
    // Summary probe where this DC stores summaries.
    if (options_.build_summary && dc % bifrost::kDcsPerRegion == 0) {
      Result<mint::MintCluster::ReadResult> got =
          clusters_[dc]->Get(doc.url, version);
      if (!got.ok() || got->value != corpus_->AbstractOf(doc)) ++mismatches;
    }
  }
  const int checks =
      probes * ((options_.build_inverted ? 1 : 0) +
                ((options_.build_summary && dc % bifrost::kDcsPerRegion == 0)
                     ? 1
                     : 0));
  return checks == 0 ? 0.0
                     : static_cast<double>(mismatches) /
                           static_cast<double>(checks);
}

Result<DirectLoad::QueryResult> DirectLoad::Query(int dc, uint32_t term,
                                                  size_t top_k) {
  if (dc < 0 || dc >= bifrost::kNumDataCenters) {
    return Status::InvalidArgument("no such data center");
  }
  const uint64_t version = active_version_[dc];
  if (version == 0) return Status::Unavailable("no active version");

  QueryResult result;
  Result<mint::MintCluster::ReadResult> postings =
      clusters_[dc]->Get(webindex::TermKey(term), version);
  if (!postings.ok()) return postings.status();
  std::vector<std::string> urls;
  Status s = webindex::DecodeUrlList(postings->value, &urls);
  if (!s.ok()) return s;
  if (urls.size() > top_k) urls.resize(top_k);
  result.urls = urls;

  // Abstracts come from the summary-holding data center of this region.
  const int summary_dc = dc - dc % bifrost::kDcsPerRegion;
  for (const std::string& url : result.urls) {
    Result<mint::MintCluster::ReadResult> abstract =
        clusters_[summary_dc]->Get(url, active_version_[summary_dc]);
    result.abstracts.push_back(abstract.ok() ? abstract->value : "");
  }
  return result;
}

Status DirectLoad::Rollback() {
  for (int dc = 0; dc < bifrost::kNumDataCenters; ++dc) {
    if (active_version_[dc] <= oldest_version_) {
      return Status::InvalidArgument("no older version to roll back to");
    }
    --active_version_[dc];
  }
  return Status::OK();
}

}  // namespace directload::core
