#ifndef DIRECTLOAD_CORE_DIRECTLOAD_H_
#define DIRECTLOAD_CORE_DIRECTLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bifrost/dedup.h"
#include "bifrost/delivery.h"
#include "bifrost/slicer.h"
#include "common/random.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "index/builders.h"
#include "index/corpus.h"
#include "mint/cluster.h"

namespace directload::core {

struct DirectLoadOptions {
  webindex::CorpusOptions corpus;
  bifrost::DeliveryOptions delivery;
  mint::MintOptions mint;  // Per-data-center cluster configuration.

  uint64_t slice_bytes = 1 << 20;

  /// Turn Bifrost's deduplication off to get the paper's "without
  /// DirectLoad" baseline (Figure 10a).
  bool dedup_enabled = true;

  bool build_summary = true;
  bool build_inverted = true;
  /// Ship the forward index (<URL, terms>) alongside the inverted index —
  /// Figure 1's blue arrows carry both. Off by default in the scaled
  /// simulation; the forward index rides the inverted bandwidth class.
  bool ship_forward = false;

  /// Versions retained in storage before the oldest is pruned ("at most
  /// four versions of index data persist", Section 1.1.2).
  int max_versions = 4;

  /// Gray release: the new version activates first at one data center and
  /// must keep query inconsistency below this rate before activating
  /// everywhere (Section 3 reports < 0.1 %).
  int gray_dc = 0;
  int gray_probe_queries = 50;
  double gray_max_inconsistency = 0.001;

  uint64_t seed = 99;
};

/// Everything measured about one index-update cycle.
struct UpdateReport {
  uint64_t version = 0;
  uint64_t docs_changed = 0;

  bifrost::DedupStats dedup;
  bifrost::DeliveryReport delivery;

  /// Pairs and bytes actually stored (per data center, max across DCs).
  uint64_t pairs_ingested = 0;
  double ingest_seconds = 0;  // Max storage-node device time this cycle.

  /// End-to-end update time: transmission pipelined with storage ingest.
  double update_time_seconds = 0;

  /// Cluster-level ingest throughput in keys/sec (Figure 10a's kps).
  double throughput_kps = 0;

  bool gray_release_passed = false;
  double gray_inconsistency = 0;

  uint64_t version_pruned = 0;  // 0 when nothing was pruned.
};

/// The whole pipeline of Figure 1: crawl round -> index building -> Bifrost
/// dedup + slicing + cross-region transmission -> Mint ingestion at six
/// data centers -> gray release -> activation + old-version pruning.
class DirectLoad {
 public:
  explicit DirectLoad(const DirectLoadOptions& options);

  Status Start();

  /// Runs one full update cycle (one crawl round / index version). A
  /// negative change_rate uses the corpus default. `vip_only` runs the
  /// higher-frequency VIP-tier round (Section 3): only VIP documents
  /// mutate; everything else ships deduplicated.
  Result<UpdateReport> RunUpdateCycle(double change_rate = -1.0,
                                      bool vip_only = false);

  /// Serves a search query at a data center against its *active* version:
  /// term -> URLs (inverted index) -> abstracts (summary index, fetched
  /// from a summary-holding DC). Returns the matching URLs.
  struct QueryResult {
    std::vector<std::string> urls;
    std::vector<std::string> abstracts;
  };
  Result<QueryResult> Query(int dc, uint32_t term, size_t top_k = 5);

  /// Rolls the active version of every data center back to the previous
  /// one (the paper's "last resort").
  Status Rollback();

  const webindex::Corpus& corpus() const { return *corpus_; }
  mint::MintCluster* data_center(int dc) { return clusters_[dc].get(); }
  /// For fault injection (congestion, corruption) in tests and benches.
  bifrost::DeliveryService* delivery() { return delivery_.get(); }
  uint64_t active_version(int dc) const { return active_version_[dc]; }
  SimClock* network_clock() { return &net_clock_; }

 private:
  /// Fraction of `probes` sample queries at `dc` whose stored results
  /// disagree with the corpus ground truth for `version`.
  Result<double> ProbeInconsistency(int dc, uint64_t version, int probes);

  DirectLoadOptions options_;
  SimClock net_clock_;
  std::unique_ptr<webindex::Corpus> corpus_;
  bifrost::Deduplicator summary_dedup_;
  bifrost::Deduplicator inverted_dedup_;
  bifrost::Deduplicator forward_dedup_;
  std::unique_ptr<bifrost::DeliveryService> delivery_;
  std::vector<std::unique_ptr<mint::MintCluster>> clusters_;
  std::vector<uint64_t> active_version_;
  std::vector<uint64_t> stored_versions_;  // Count per DC (pruning).
  uint64_t oldest_version_ = 1;
  uint64_t next_slice_id_ = 0;
  Random rng_;
};

}  // namespace directload::core

#endif  // DIRECTLOAD_CORE_DIRECTLOAD_H_
