// Bulk ingest vs the write path, at two levels.
//
// Engine level: lands the same pair stream into a fresh QinDb three ways —
// per-record WriteBatch Puts through group commit, amortized WriteBatches,
// and the IngestBegin/IngestRun/IngestCommit fast path — and reports the
// CPU-bound ratios.
//
// Wire level (the gated comparison): hosts an in-process serving stack and
// lands the pairs into it twice — per-record kWriteBatch frames over a
// pipelined connection (what loading a delivery through the normal write
// path costs), then a BulkLoader session streaming multi-thousand-pair
// slices. `--min-speedup` (default 3.0) gates the exit code on
// bulk-over-per-record at the wire level, where the bulk protocol's round
// trips-per-pair advantage is the point.
//
//   build/bench/bulk_ingest_bench --pairs 20000 --json=BENCH_8.json

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/common/report.h"
#include "bifrost/wire/bulk_loader.h"
#include "common/sim_clock.h"
#include "qindb/qindb.h"
#include "qindb/write_batch.h"
#include "rpc/client.h"
#include "server/kv_server.h"
#include "ssd/env.h"

using namespace directload;

namespace {

struct BenchConfig {
  int pairs = 20000;
  int value_bytes = 256;
  int shards = 4;
  int run_pairs = 512;    // IngestOps per IngestRun call.
  int batch_pairs = 128;  // Puts per WriteBatch in the batched arm.
  int wire_pipeline = 8;  // Per-record frames in flight at the wire level.
  int wire_reps = 3;      // Wire-level repetitions; the gate uses medians.
  double min_speedup = 3.0;
  std::string json_path;
};

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string PairKey(int i) { return "bulk:k" + std::to_string(i); }

/// A fresh engine on its own simulated SSD, one per arm, so no arm inherits
/// another's segments or checkpoint state.
struct Engine {
  SimClock clock;
  std::unique_ptr<ssd::SsdEnv> env;
  std::unique_ptr<qindb::QinDb> db;

  explicit Engine(int shards) {
    env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock, ssd::Geometry(),
                         ssd::LatencyModel(), &clock);
    qindb::QinDbOptions options;
    options.num_shards = static_cast<uint32_t>(shards);
    options.aof.segment_bytes = 1 << 20;
    db = qindb::QinDb::Open(env.get(), options).value();
  }
};

// ---------------------------------------------------------------------------
// Wire-level arms: the same pairs into a live in-process server.
// ---------------------------------------------------------------------------

/// Per-record WriteBatch Puts over the wire: one kWriteBatch frame per
/// pair, `pipeline` frames in flight. Returns seconds, or < 0 on failure.
double WirePerRecordSeconds(const std::string& host, uint16_t port,
                            const std::vector<std::string>& keys,
                            const std::string& value, int pipeline,
                            uint64_t version) {
  rpc::RpcClient client(host, port);
  if (!client.Connect().ok()) return -1;
  const Clock::time_point start = Clock::now();
  size_t sent = 0, acked = 0, in_flight = 0;
  while (acked < keys.size()) {
    while (sent < keys.size() && in_flight < static_cast<size_t>(pipeline)) {
      std::vector<rpc::BatchOp> ops(1);
      ops[0].version = version;
      ops[0].key = keys[sent];
      ops[0].value = value;
      rpc::Frame request;
      request.op = rpc::Opcode::kWriteBatch;
      request.request_id = client.NextRequestId();
      rpc::EncodeBatchOps(ops, &request.value);
      if (!client.Send(request).ok()) return -1;
      ++sent;
      ++in_flight;
    }
    Result<rpc::Frame> response = client.Receive();
    if (!response.ok() || response->status != StatusCode::kOk) return -1;
    ++acked;
    --in_flight;
  }
  return SecondsSince(start);
}

/// BulkLoader streaming the same pairs as one committed version. Returns
/// seconds, or < 0 on failure.
double WireBulkSeconds(const std::string& host, uint16_t port,
                       const std::vector<std::string>& keys,
                       const std::string& value, uint64_t version,
                       bifrost::wire::BulkLoadReport* report) {
  rpc::RpcClient client(host, port);
  if (!client.Connect().ok()) return -1;
  std::vector<bifrost::ShippedPair> pairs(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    pairs[i].key = keys[i];
    pairs[i].value = value;
  }
  bifrost::wire::BulkLoader loader(&client, bifrost::wire::BulkLoadOptions());
  const Clock::time_point start = Clock::now();
  Status s = loader.Load(version, /*summary=*/{}, pairs, /*deletes=*/{},
                         report);
  if (!s.ok()) {
    std::fprintf(stderr, "wire bulk load failed: %s\n", s.ToString().c_str());
    return -1;
  }
  return SecondsSince(start);
}

/// Reads back a sample so no arm can "win" by not actually landing data.
bool VerifySample(qindb::QinDb* db, const BenchConfig& config,
                  const std::string& value) {
  const int step = std::max(1, config.pairs / 64);
  for (int i = 0; i < config.pairs; i += step) {
    Result<std::string> got = db->Get(PairKey(i), 1);
    if (!got.ok() || got.value() != value) {
      std::fprintf(stderr, "verify failed at key %d: %s\n", i,
                   got.ok() ? "wrong value" : got.status().ToString().c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig config;
  config.json_path = bench::ExtractJsonFlag(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int* out) {
      if (i + 1 >= argc) return false;
      *out = std::atoi(argv[++i]);
      return true;
    };
    bool ok = true;
    if (arg == "--pairs") {
      ok = next_int(&config.pairs);
    } else if (arg == "--value-bytes") {
      ok = next_int(&config.value_bytes);
    } else if (arg == "--shards") {
      ok = next_int(&config.shards);
    } else if (arg == "--run-pairs") {
      ok = next_int(&config.run_pairs);
    } else if (arg == "--batch-pairs") {
      ok = next_int(&config.batch_pairs);
    } else if (arg == "--wire-pipeline") {
      ok = next_int(&config.wire_pipeline);
    } else if (arg == "--wire-reps") {
      ok = next_int(&config.wire_reps);
    } else if (arg == "--min-speedup") {
      ok = i + 1 < argc;
      if (ok) config.min_speedup = std::atof(argv[++i]);
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: bulk_ingest_bench [--pairs N] [--value-bytes B]\n"
                   "         [--shards S] [--run-pairs R] [--batch-pairs W]\n"
                   "         [--wire-pipeline D] [--min-speedup X] "
                   "[--json=PATH]\n");
      return 1;
    }
  }
  if (config.pairs <= 0 || config.run_pairs <= 0 || config.batch_pairs <= 0 ||
      config.shards <= 0 || config.wire_pipeline <= 0 ||
      config.wire_reps <= 0) {
    std::fprintf(stderr, "all sizes must be positive\n");
    return 1;
  }

  const std::string value(config.value_bytes, 'v');
  std::vector<std::string> keys;
  keys.reserve(config.pairs);
  for (int i = 0; i < config.pairs; ++i) keys.push_back(PairKey(i));

  // Arm 1: per-record WriteBatch Puts — one-op batches, so every record
  // pays batch setup, planning, the group-commit queue, and memtable
  // indexing on its own. This is what landing a bulk delivery through the
  // normal write path record-by-record costs.
  double put_seconds;
  {
    Engine engine(config.shards);
    const Clock::time_point start = Clock::now();
    for (int i = 0; i < config.pairs; ++i) {
      qindb::WriteBatch batch;
      batch.Put(keys[i], 1, value);
      Status s = engine.db->Write(batch);
      if (!s.ok()) {
        std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    put_seconds = SecondsSince(start);
    if (!VerifySample(engine.db.get(), config, value)) return 1;
  }

  // Arm 2: WriteBatch Puts — the round trip and commit are amortized over
  // the batch, but each record still pays planning and memtable work.
  double batch_seconds;
  {
    Engine engine(config.shards);
    const Clock::time_point start = Clock::now();
    for (int base = 0; base < config.pairs; base += config.batch_pairs) {
      const int n = std::min(config.batch_pairs, config.pairs - base);
      qindb::WriteBatch batch;
      for (int i = 0; i < n; ++i) batch.Put(keys[base + i], 1, value);
      Status s = engine.db->Write(batch);
      if (!s.ok()) {
        std::fprintf(stderr, "write batch failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
    batch_seconds = SecondsSince(start);
    if (!VerifySample(engine.db.get(), config, value)) return 1;
  }

  // Arm 3: the bulk-ingest fast path — vectored appends land the pairs
  // durably (the streaming phase a delivery is gated on), indexing deferred
  // to one commit at the end.
  double run_seconds;
  double commit_seconds;
  {
    Engine engine(config.shards);
    const Clock::time_point start = Clock::now();
    Status s = engine.db->IngestBegin(1);
    for (int base = 0; s.ok() && base < config.pairs;
         base += config.run_pairs) {
      const int n = std::min(config.run_pairs, config.pairs - base);
      std::vector<qindb::IngestOp> ops(n);
      for (int i = 0; i < n; ++i) {
        ops[i].key = keys[base + i];
        ops[i].version = 1;
        ops[i].value = value;
      }
      s = engine.db->IngestRun(1, ops.data(), ops.size());
    }
    run_seconds = SecondsSince(start);
    const Clock::time_point commit_start = Clock::now();
    if (s.ok()) s = engine.db->IngestCommit(1);
    if (!s.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    commit_seconds = SecondsSince(commit_start);
    if (!VerifySample(engine.db.get(), config, value)) return 1;
  }
  const double ingest_seconds = run_seconds + commit_seconds;

  // Wire level: an in-process serving stack (one node so both arms hit one
  // engine, same as the per-record path above). Each arm repeats and the
  // gate uses medians — socket scheduling noise on a shared runner swings
  // single samples by tens of percent.
  std::vector<double> wire_put_samples;
  std::vector<double> wire_bulk_samples;
  bifrost::wire::BulkLoadReport wire_report;
  {
    mint::MintOptions mint_options;
    mint_options.num_groups = 1;
    mint_options.nodes_per_group = 1;
    mint_options.replicas = 1;
    mint_options.engine.num_shards = static_cast<uint32_t>(config.shards);
    mint_options.engine.aof.segment_bytes = 8 << 20;
    mint::MintCluster cluster(mint_options);
    server::KvServer kv_server(&cluster, server::KvServerOptions());
    if (!cluster.Start().ok() || !kv_server.Start().ok()) {
      std::fprintf(stderr, "in-process server failed to start\n");
      return 1;
    }
    for (int rep = 0; rep < config.wire_reps; ++rep) {
      // Fresh versions per repetition so every landing is a real write.
      const double put_s = WirePerRecordSeconds(
          "127.0.0.1", kv_server.port(), keys, value, config.wire_pipeline,
          /*version=*/10 + rep);
      const double bulk_s =
          WireBulkSeconds("127.0.0.1", kv_server.port(), keys, value,
                          /*version=*/100 + rep, &wire_report);
      if (put_s < 0 || bulk_s < 0) {
        std::fprintf(stderr, "wire-level arm failed\n");
        return 1;
      }
      wire_put_samples.push_back(put_s);
      wire_bulk_samples.push_back(bulk_s);
    }
    kv_server.Shutdown();
  }
  std::sort(wire_put_samples.begin(), wire_put_samples.end());
  std::sort(wire_bulk_samples.begin(), wire_bulk_samples.end());
  const double wire_put_seconds = wire_put_samples[wire_put_samples.size() / 2];
  const double wire_bulk_seconds =
      wire_bulk_samples[wire_bulk_samples.size() / 2];

  const double put_rate = config.pairs / put_seconds;
  const double batch_rate = config.pairs / batch_seconds;
  const double run_rate = config.pairs / run_seconds;
  const double ingest_rate = config.pairs / ingest_seconds;
  const double speedup_vs_put = run_rate / put_rate;
  const double e2e_speedup_vs_put = ingest_rate / put_rate;
  const double wire_put_rate = config.pairs / wire_put_seconds;
  const double wire_bulk_rate = config.pairs / wire_bulk_seconds;
  // The gated ratio: streaming the pairs through the bulk protocol into a
  // live server vs landing the same pairs as per-record WriteBatch frames.
  const double wire_speedup = wire_bulk_rate / wire_put_rate;

  std::printf("bulk_ingest_bench: %d pairs x %dB values, %d shards\n",
              config.pairs, config.value_bytes, config.shards);
  std::printf("engine level (in-process QinDb):\n");
  std::printf("  per-record WriteBatch Put: %9.0f pairs/s (%.3fs)\n",
              put_rate, put_seconds);
  std::printf("  WriteBatch(%3d)          : %9.0f pairs/s (%.3fs)\n",
              config.batch_pairs, batch_rate, batch_seconds);
  std::printf("  IngestRun landing        : %9.0f pairs/s (%.3fs)\n",
              run_rate, run_seconds);
  std::printf("  ingest incl. commit      : %9.0f pairs/s (%.3fs run + "
              "%.3fs commit)\n",
              ingest_rate, run_seconds, commit_seconds);
  std::printf("  speedup: IngestRun %.2fx vs per-record; end-to-end %.2fx\n",
              speedup_vs_put, e2e_speedup_vs_put);
  std::printf("wire level (live server over sockets):\n");
  std::printf("  per-record frames (x%d in flight): %9.0f pairs/s (%.3fs)\n",
              config.wire_pipeline, wire_put_rate, wire_put_seconds);
  std::printf("  bulk session (%llu slices)       : %9.0f pairs/s (%.3fs)\n",
              (unsigned long long)wire_report.slices_total, wire_bulk_rate,
              wire_bulk_seconds);
  std::printf("  speedup: %.2fx vs per-record (gate >= %.2fx)\n",
              wire_speedup, config.min_speedup);

  bench::JsonReport report;
  report.AddString("bench", "bulk_ingest_bench");
  report.Add("pairs", config.pairs);
  report.Add("value_bytes", config.value_bytes);
  report.Add("shards", config.shards);
  report.Add("run_pairs", config.run_pairs);
  report.Add("batch_pairs", config.batch_pairs);
  report.Add("per_record_writebatch_pairs_per_sec", put_rate);
  report.Add("writebatch_pairs_per_sec", batch_rate);
  report.Add("ingest_run_pairs_per_sec", run_rate);
  report.Add("ingest_commit_seconds", commit_seconds);
  report.Add("ingest_e2e_pairs_per_sec", ingest_rate);
  report.Add("speedup_ingest_run_over_per_record", speedup_vs_put);
  report.Add("speedup_ingest_e2e_over_per_record", e2e_speedup_vs_put);
  report.Add("wire_pipeline", config.wire_pipeline);
  report.Add("wire_per_record_pairs_per_sec", wire_put_rate);
  report.Add("wire_bulk_pairs_per_sec", wire_bulk_rate);
  report.Add("wire_bulk_slices", wire_report.slices_total);
  report.Add("wire_bulk_bytes_shipped", wire_report.bytes_shipped);
  report.Add("speedup_wire_bulk_over_per_record", wire_speedup);
  report.Add("min_speedup_gate", config.min_speedup);
  report.WriteTo(config.json_path);

  if (wire_speedup < config.min_speedup) {
    std::fprintf(stderr, "speedup gate FAILED: %.2fx < %.2fx\n",
                 wire_speedup, config.min_speedup);
    return 2;
  }
  return 0;
}
