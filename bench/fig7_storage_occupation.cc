// Reproduces Figure 7: storage occupation over time. QinDB's lazy GC lets
// disk usage run ahead (space is the price of its write throughput under
// the RUM framework) until segments hit the 25% occupancy threshold; the
// baseline's eager compaction keeps the footprint smaller throughout.

#include <cstdio>

#include "bench/common/engine_adapter.h"
#include "bench/common/report.h"
#include "bench/common/summary_workload.h"

namespace directload::bench {
namespace {

int Main(const std::string& json_path) {
  PrintBanner(
      "Figure 7 — storage occupation during data processing",
      "QinDB grows fast, flattens when GC starts (~185 min), ends ~80 GB; "
      "LevelDB ends ~40 GB (2x less) thanks to eager compaction");

  EngineConfig config;
  config.geometry.num_blocks = 4096;  // 1 GiB.
  SummaryWorkloadOptions workload;

  auto lsm = NewLsmAdapter(config);
  WorkloadResult lsm_result = RunSummaryWorkload(lsm.get(), workload);
  auto qindb = NewQinDbAdapter(config);
  WorkloadResult qindb_result = RunSummaryWorkload(qindb.get(), workload);

  std::printf("\nDisk footprint over normalized run progress:\n");
  std::printf("%12s %14s %14s\n", "progress(%)", "LSM (MB)", "QinDB (MB)");
  const size_t n = lsm_result.samples.size();
  for (size_t i = 0; i < n; i += 4) {
    const size_t j = i * qindb_result.samples.size() / n;
    std::printf("%12.0f %14.1f %14.1f\n", 100.0 * i / n,
                lsm_result.samples[i].disk_mb,
                qindb_result.samples[j].disk_mb);
  }

  std::printf("\n=== Figure 7 verdict ===\n");
  std::printf("%-28s %12s %12s\n", "", "LSM", "QinDB");
  std::printf("%-28s %10.1fMB %10.1fMB\n", "final footprint",
              lsm_result.final_disk_mb, qindb_result.final_disk_mb);
  std::printf("%-28s %10.1fMB %10.1fMB\n", "peak footprint",
              lsm_result.peak_disk_mb, qindb_result.peak_disk_mb);
  std::printf("%-28s %11.2fx\n", "QinDB/LSM final ratio",
              qindb_result.final_disk_mb / (lsm_result.final_disk_mb + 1e-9));
  std::printf("paper shape: QinDB trades meaningfully more space (paper: 2x "
              "at 6h scale) -> %s\n",
              qindb_result.final_disk_mb > 1.2 * lsm_result.final_disk_mb
                  ? "REPRODUCED"
                  : "NOT reproduced");

  // The growth-then-flatten knee: compare first-half vs second-half growth
  // rate of QinDB's footprint.
  const auto& qs = qindb_result.samples;
  const double first_half_growth =
      qs[qs.size() / 2].disk_mb - qs.front().disk_mb;
  const double second_half_growth =
      qs.back().disk_mb - qs[qs.size() / 2].disk_mb;
  std::printf(
      "QinDB growth first half %.1f MB vs second half %.1f MB "
      "(lazy GC kicks in) -> %s\n",
      first_half_growth, second_half_growth,
      second_half_growth < first_half_growth ? "REPRODUCED" : "NOT reproduced");

  JsonReport report;
  report.AddString("bench", "fig7_storage_occupation");
  report.Add("lsm_final_disk_mb", lsm_result.final_disk_mb);
  report.Add("qindb_final_disk_mb", qindb_result.final_disk_mb);
  report.Add("lsm_peak_disk_mb", lsm_result.peak_disk_mb);
  report.Add("qindb_peak_disk_mb", qindb_result.peak_disk_mb);
  report.WriteTo(json_path);
  return 0;
}

}  // namespace
}  // namespace directload::bench

int main(int argc, char** argv) {
  return directload::bench::Main(
      directload::bench::ExtractJsonFlag(&argc, argv));
}
