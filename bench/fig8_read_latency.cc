// Reproduces Figure 8: read latency (average / p99 / p99.9) with and
// without a concurrent update stream. Reads arrive open-loop (Poisson) and
// queue behind whatever the device is doing — in the LSM baseline that
// includes compaction bursts, which is where its tail latency comes from;
// QinDB resolves keys in memory and reads exactly the value's pages.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common/engine_adapter.h"
#include "bench/common/report.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"

namespace directload::bench {
namespace {

constexpr uint64_t kNumKeys = 400;
constexpr uint32_t kValueBytes = 20 << 10;
constexpr int kLoadedVersions = 4;
constexpr int kReads = 5000;
constexpr double kReadRatePerSec = 60.0;
// The paper runs a 5 MB/s stream against its production SSDs; scaled to the
// simulated device this is the equivalent moderate-utilization stream (just
// below the LSM baseline's sustainable ingest, as in Figure 6).
constexpr double kUpdateBytesPerSec = 0.8e6;

std::vector<std::string> MakeKeys() {
  std::vector<std::string> keys;
  for (uint64_t i = 0; i < kNumKeys; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "url:%016llu",
                  static_cast<unsigned long long>(i));
    keys.emplace_back(key, 20);
  }
  return keys;
}

void LoadInitialVersions(EngineAdapter* engine,
                         const std::vector<std::string>& keys, Random* rnd) {
  for (int version = 1; version <= kLoadedVersions; ++version) {
    for (const std::string& key : keys) {
      DL_CHECK(engine->Put(key, version, rnd->NextString(kValueBytes)).ok());
    }
  }
}

struct LatencyStats {
  double avg_us = 0;
  double p99_us = 0;
  double p999_us = 0;
};

LatencyStats MeasureReads(EngineAdapter* engine,
                          const std::vector<std::string>& keys,
                          bool with_updates, uint64_t seed) {
  Random rnd(seed);
  Histogram hist;
  SimClock* clock = engine->clock();

  // Update-stream state (only used when with_updates).
  uint64_t oldest_version = 1;
  uint64_t writing_version = kLoadedVersions + 1;
  size_t write_cursor = 0;
  const double update_interval_us = kValueBytes / kUpdateBytesPerSec * 1e6;
  double next_update_us = static_cast<double>(clock->NowMicros());

  double arrival_us = static_cast<double>(clock->NowMicros());
  for (int i = 0; i < kReads; ++i) {
    arrival_us += rnd.Exponential(1e6 / kReadRatePerSec);

    if (with_updates) {
      while (next_update_us <= arrival_us) {
        if (clock->NowMicros() < static_cast<uint64_t>(next_update_us)) {
          clock->AdvanceTo(static_cast<uint64_t>(next_update_us));
        }
        DL_CHECK(engine
                     ->Put(keys[write_cursor], writing_version,
                           rnd.NextString(kValueBytes))
                     .ok());
        next_update_us += update_interval_us;
        if (++write_cursor == keys.size()) {
          write_cursor = 0;
          ++writing_version;
          // The deletion stream drops the oldest version once a new one is
          // complete (at most four versions persist).
          DL_CHECK(engine->DropVersion(oldest_version, keys).ok());
          ++oldest_version;
        }
      }
    }

    // Open-loop read: it starts no earlier than its arrival, and no earlier
    // than whenever the device finishes prior work (queueing delay).
    if (clock->NowMicros() < static_cast<uint64_t>(arrival_us)) {
      clock->AdvanceTo(static_cast<uint64_t>(arrival_us));
    }
    const std::string& key = keys[rnd.Uniform(keys.size())];
    const uint64_t newest_complete = writing_version - 1;
    const uint64_t version =
        oldest_version + rnd.Uniform(newest_complete - oldest_version + 1);
    Result<std::string> got = engine->Get(key, version);
    DL_CHECK(got.ok());
    hist.Add(static_cast<double>(clock->NowMicros()) - arrival_us);
  }

  LatencyStats stats;
  stats.avg_us = hist.Mean();
  stats.p99_us = hist.Percentile(99);
  stats.p999_us = hist.Percentile(99.9);
  return stats;
}

void PrintScenario(const char* title, const LatencyStats& lsm,
                   const LatencyStats& qindb) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%-14s %14s %14s\n", "latency (us)", "LSM", "QinDB");
  std::printf("%-14s %14.0f %14.0f\n", "average", lsm.avg_us, qindb.avg_us);
  std::printf("%-14s %14.0f %14.0f\n", "p99", lsm.p99_us, qindb.p99_us);
  std::printf("%-14s %14.0f %14.0f\n", "p99.9", lsm.p999_us, qindb.p999_us);
}

int Main(const std::string& json_path) {
  PrintBanner(
      "Figure 8 — read latency with and without update streams",
      "no updates: QinDB 1803/3558/6574 us vs LevelDB 1846/3909/15081 us "
      "(avg/p99/p99.9); with updates: QinDB 2104/4397/13663 vs LevelDB "
      "2668/12789/26458");

  EngineConfig config;
  config.geometry.num_blocks = 8192;  // 2 GiB.

  Random load_rnd(77);
  const std::vector<std::string> keys = MakeKeys();

  auto lsm = NewLsmAdapter(config);
  LoadInitialVersions(lsm.get(), keys, &load_rnd);
  auto qindb = NewQinDbAdapter(config);
  LoadInitialVersions(qindb.get(), keys, &load_rnd);

  const LatencyStats lsm_idle = MeasureReads(lsm.get(), keys, false, 101);
  const LatencyStats qindb_idle = MeasureReads(qindb.get(), keys, false, 101);
  PrintScenario("Figure 8a: no updating data stream", lsm_idle, qindb_idle);

  const LatencyStats lsm_busy = MeasureReads(lsm.get(), keys, true, 202);
  const LatencyStats qindb_busy = MeasureReads(qindb.get(), keys, true, 202);
  PrintScenario(
      "Figure 8b: with updating data stream (paper: 5 MB/s, scaled here)",
      lsm_busy, qindb_busy);

  std::printf("\n=== Figure 8 verdict ===\n");
  std::printf("no-updates p99.9: QinDB below LSM -> %s\n",
              qindb_idle.p999_us < lsm_idle.p999_us ? "REPRODUCED"
                                                    : "NOT reproduced");
  std::printf("with-updates p99/p99.9: QinDB well below LSM -> %s\n",
              qindb_busy.p999_us < lsm_busy.p999_us &&
                      qindb_busy.p99_us < lsm_busy.p99_us
                  ? "REPRODUCED"
                  : "NOT reproduced");
  // The paper's 8b shows the update stream hurting LevelDB's latencies far
  // more than QinDB's (LevelDB avg +45%, p99 +227%; QinDB avg +17%).
  const double lsm_degradation = lsm_busy.avg_us / lsm_idle.avg_us;
  const double qindb_degradation = qindb_busy.avg_us / qindb_idle.avg_us;
  std::printf(
      "update stream degrades LSM avg %.1fx vs QinDB avg %.1fx -> %s\n"
      "(note: the simulator serializes whole compaction bursts ahead of\n"
      " queued reads, so LSM queueing delays are overstated vs production;\n"
      " see EXPERIMENTS.md)\n",
      lsm_degradation, qindb_degradation,
      lsm_degradation > qindb_degradation ? "REPRODUCED" : "NOT reproduced");

  JsonReport report;
  report.AddString("bench", "fig8_read_latency");
  report.Add("lsm_idle_p99_us", lsm_idle.p99_us);
  report.Add("qindb_idle_p99_us", qindb_idle.p99_us);
  report.Add("lsm_idle_p999_us", lsm_idle.p999_us);
  report.Add("qindb_idle_p999_us", qindb_idle.p999_us);
  report.Add("lsm_busy_p99_us", lsm_busy.p99_us);
  report.Add("qindb_busy_p99_us", qindb_busy.p99_us);
  report.Add("lsm_busy_p999_us", lsm_busy.p999_us);
  report.Add("qindb_busy_p999_us", qindb_busy.p999_us);
  report.WriteTo(json_path);
  return 0;
}

}  // namespace
}  // namespace directload::bench

int main(int argc, char** argv) {
  return directload::bench::Main(
      directload::bench::ExtractJsonFlag(&argc, argv));
}
