// Microbenchmarks (google-benchmark) of the primitive operations behind the
// paper's Section 4.1 numbers: engine PUT/GET paths, skip-list and bloom
// operations, checksums and hashing. These measure *wall-clock* CPU cost of
// the implementation (the figure benchmarks measure simulated device time).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "bench/common/engine_adapter.h"
#include "common/crc32c.h"
#include "common/hash.h"
#include "common/random.h"
#include "lsm/bloom.h"
#include "memtable/mem_index.h"

namespace directload::bench {
namespace {

constexpr uint64_t kKeySpace = 4096;

std::string KeyOf(uint64_t i) {
  char key[32];
  std::snprintf(key, sizeof(key), "url:%016llu",
                static_cast<unsigned long long>(i % kKeySpace));
  return std::string(key, 20);
}

EngineConfig MicroConfig() {
  EngineConfig config;
  config.geometry.num_blocks = 16384;  // 4 GiB so Puts never fill the device.
  return config;
}

void BM_QinDbPut(benchmark::State& state) {
  auto engine = NewQinDbAdapter(MicroConfig());
  Random rnd(1);
  const std::string value = rnd.NextString(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Put(KeyOf(i), i / kKeySpace + 1, value));
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_QinDbPut)->Arg(256)->Arg(4096)->Arg(20480)->Iterations(4000);

void BM_QinDbGet(benchmark::State& state) {
  auto engine = NewQinDbAdapter(MicroConfig());
  Random rnd(2);
  const std::string value = rnd.NextString(4096);
  for (uint64_t i = 0; i < kKeySpace; ++i) {
    (void)engine->Put(KeyOf(i), 1, value);
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Get(KeyOf(i++), 1));
  }
}
BENCHMARK(BM_QinDbGet)->Iterations(4000);

// GETs that resolve a 4-deep chain of deduplicated versions (Figure 2's
// traceback path), vs BM_QinDbGet's direct hit.
void BM_QinDbTracebackGet(benchmark::State& state) {
  SimClock clock;
  auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                            MicroConfig().geometry, ssd::LatencyModel(),
                            &clock);
  auto db = std::move(qindb::QinDb::Open(env.get(), {})).value();
  Random rnd(3);
  const std::string value = rnd.NextString(4096);
  for (uint64_t i = 0; i < kKeySpace; ++i) {
    (void)db->Put(KeyOf(i), 1, value);
    for (uint64_t v = 2; v <= 5; ++v) {
      (void)db->Put(KeyOf(i), v, Slice(), /*dedup=*/true);
    }
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get(KeyOf(i++), 5));
  }
}
BENCHMARK(BM_QinDbTracebackGet)->Iterations(4000);

void BM_LsmPut(benchmark::State& state) {
  auto engine = NewLsmAdapter(MicroConfig());
  Random rnd(4);
  const std::string value = rnd.NextString(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Put(KeyOf(i), i / kKeySpace + 1, value));
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LsmPut)->Arg(256)->Arg(4096)->Iterations(4000);

void BM_LsmGet(benchmark::State& state) {
  auto engine = NewLsmAdapter(MicroConfig());
  Random rnd(5);
  const std::string value = rnd.NextString(4096);
  for (uint64_t i = 0; i < kKeySpace; ++i) {
    (void)engine->Put(KeyOf(i), 1, value);
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Get(KeyOf(i++), 1));
  }
}
BENCHMARK(BM_LsmGet)->Iterations(4000);

void BM_MemIndexInsert(benchmark::State& state) {
  MemIndex index;
  uint64_t i = 0;
  for (auto _ : state) {
    index.Insert(KeyOf(i), i / kKeySpace + 1, i, 128, false);
    ++i;
  }
}
BENCHMARK(BM_MemIndexInsert)->Iterations(100000);

void BM_MemIndexLookup(benchmark::State& state) {
  MemIndex index;
  for (uint64_t i = 0; i < kKeySpace; ++i) {
    index.Insert(KeyOf(i), 1, i, 128, false);
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.FindExact(KeyOf(i++), 1));
  }
}
BENCHMARK(BM_MemIndexLookup);

// The paper leaves the memtable structure open ("a tree structure or a
// list", Section 2.1); compare the shipped skip list against a red-black
// tree (std::map) at the same job.
void BM_StdMapInsert(benchmark::State& state) {
  std::map<std::string, uint64_t> map;
  uint64_t i = 0;
  for (auto _ : state) {
    map[KeyOf(i) + std::to_string(i / kKeySpace)] = i;
    ++i;
  }
}
BENCHMARK(BM_StdMapInsert)->Iterations(100000);

void BM_StdMapLookup(benchmark::State& state) {
  std::map<std::string, uint64_t> map;
  for (uint64_t i = 0; i < kKeySpace; ++i) map[KeyOf(i)] = i;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(KeyOf(i++)));
  }
}
BENCHMARK(BM_StdMapLookup);

void BM_Crc32c(benchmark::State& state) {
  Random rnd(6);
  const std::string data = rnd.NextString(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Hash64Signature(benchmark::State& state) {
  Random rnd(7);
  const std::string data = rnd.NextString(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueSignature(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Hash64Signature)->Arg(64)->Arg(20480);

void BM_BloomMayMatch(benchmark::State& state) {
  lsm::BloomFilterBuilder builder(10);
  for (uint64_t i = 0; i < kKeySpace; ++i) builder.AddKey(KeyOf(i));
  const std::string filter = builder.Finish();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsm::BloomFilterMayMatch(filter, KeyOf(i++)));
  }
}
BENCHMARK(BM_BloomMayMatch);

}  // namespace
}  // namespace directload::bench

BENCHMARK_MAIN();
