// Microbenchmarks (google-benchmark) of the primitive operations behind the
// paper's Section 4.1 numbers: engine PUT/GET paths, skip-list and bloom
// operations, checksums and hashing. These measure *wall-clock* CPU cost of
// the implementation (the figure benchmarks measure simulated device time).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common/engine_adapter.h"
#include "bench/common/report.h"
#include "common/crc32c.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "lsm/bloom.h"
#include "memtable/mem_index.h"

namespace directload::bench {
namespace {

constexpr uint64_t kKeySpace = 4096;

std::string KeyOf(uint64_t i) {
  char key[32];
  std::snprintf(key, sizeof(key), "url:%016llu",
                static_cast<unsigned long long>(i % kKeySpace));
  return std::string(key, 20);
}

EngineConfig MicroConfig() {
  EngineConfig config;
  config.geometry.num_blocks = 16384;  // 4 GiB so Puts never fill the device.
  return config;
}

void BM_QinDbPut(benchmark::State& state) {
  auto engine = NewQinDbAdapter(MicroConfig());
  Random rnd(1);
  const std::string value = rnd.NextString(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Put(KeyOf(i), i / kKeySpace + 1, value));
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_QinDbPut)->Arg(256)->Arg(4096)->Arg(20480)->Iterations(4000);

void BM_QinDbGet(benchmark::State& state) {
  auto engine = NewQinDbAdapter(MicroConfig());
  Random rnd(2);
  const std::string value = rnd.NextString(4096);
  for (uint64_t i = 0; i < kKeySpace; ++i) {
    DL_CHECK_OK(engine->Put(KeyOf(i), 1, value));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Get(KeyOf(i++), 1));
  }
}
BENCHMARK(BM_QinDbGet)->Iterations(4000);

// GETs that resolve a 4-deep chain of deduplicated versions (Figure 2's
// traceback path), vs BM_QinDbGet's direct hit.
void BM_QinDbTracebackGet(benchmark::State& state) {
  SimClock clock;
  auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                            MicroConfig().geometry, ssd::LatencyModel(),
                            &clock);
  auto db = std::move(qindb::QinDb::Open(env.get(), {})).value();
  Random rnd(3);
  const std::string value = rnd.NextString(4096);
  for (uint64_t i = 0; i < kKeySpace; ++i) {
    DL_CHECK_OK(db->Put(KeyOf(i), 1, value));
    for (uint64_t v = 2; v <= 5; ++v) {
      DL_CHECK_OK(db->Put(KeyOf(i), v, Slice(), /*dedup=*/true));
    }
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get(KeyOf(i++), 5));
  }
}
BENCHMARK(BM_QinDbTracebackGet)->Iterations(4000);

// Zipfian GETs with the working set deliberately larger than the cache
// budget: 4096 keys x 4KB values is ~17 MiB of records against a 4 MiB
// cache, so only the Zipfian hot set can stay resident and TinyLFU has to
// hold it there. The cache=0 arm is the A/B baseline — the same draws
// through the same read path with the cache branch compiled to one null
// check.
void BM_QinDbCachedGet(benchmark::State& state) {
  SimClock clock;
  auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                            MicroConfig().geometry, ssd::LatencyModel(),
                            &clock);
  qindb::QinDbOptions options;
  options.num_shards = 1;
  options.cache_bytes = static_cast<uint64_t>(state.range(0)) << 20;
  auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
  Random rnd(6);
  const std::string value = rnd.NextString(4096);
  for (uint64_t i = 0; i < kKeySpace; ++i) {
    DL_CHECK_OK(db->Put(KeyOf(i), 1, value));
  }
  ZipfianGenerator zipf(kKeySpace, 0.99, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Get(KeyOf(zipf.Next()), 1));
  }
}
BENCHMARK(BM_QinDbCachedGet)
    ->ArgName("cache_mb")
    ->Arg(0)
    ->Arg(4)
    ->Iterations(20000);

// --- Concurrent engine benchmarks -----------------------------------------
// Real threads against one shared engine. Reads are lock-free against the
// pinned index, so aggregate GET throughput should scale with reader
// threads on a multi-core host (the CI gate compares 4 threads vs 1);
// writes serialize on the engine's write mutex. google-benchmark
// synchronizes all threads at the boundaries of the iteration loop, so
// thread 0 can own setup and teardown.

/// The --shards=N knob: forces the engine shard count for every concurrent
/// benchmark that does not pin it itself (BM_QinDbShardedPut A/Bs the count
/// explicitly and ignores this). 0 = the engine default.
uint32_t g_flag_shards = 0;

struct ConcurrentDb {
  SimClock clock;
  std::unique_ptr<ssd::SsdEnv> env;
  std::unique_ptr<qindb::QinDb> db;

  explicit ConcurrentDb(qindb::QinDbOptions options = {}) {
    if (options.num_shards == 0) options.num_shards = g_flag_shards;
    env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock,
                         MicroConfig().geometry, ssd::LatencyModel(), &clock);
    db = std::move(qindb::QinDb::Open(env.get(), options)).value();
  }
};

ConcurrentDb* g_concurrent_db = nullptr;

std::string WriterKeyOf(int thread, uint64_t i) {
  char key[32];
  std::snprintf(key, sizeof(key), "w%02d:%015llu", thread,
                static_cast<unsigned long long>(i % kKeySpace));
  return std::string(key, 20);
}

// N reader threads hammering Get on a pre-loaded engine.
void BM_QinDbConcurrentGet(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_concurrent_db = new ConcurrentDb();
    Random rnd(8);
    const std::string value = rnd.NextString(1024);
    for (uint64_t i = 0; i < kKeySpace; ++i) {
      DL_CHECK_OK(g_concurrent_db->db->Put(KeyOf(i), 1, value));
    }
  }
  // Offset each thread's key stream so threads do not walk in lockstep.
  uint64_t i = static_cast<uint64_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_concurrent_db->db->Get(KeyOf(i++), 1));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete g_concurrent_db;
    g_concurrent_db = nullptr;
  }
}
BENCHMARK(BM_QinDbConcurrentGet)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Iterations(4000)
    ->UseRealTime();

// Mixed load: the first `writers` threads stream PUTs (disjoint key ranges,
// so no duplicate key/version collisions) while the rest serve GETs — the
// paper's loading-while-serving scenario. Items processed counts both ops.
void BM_QinDbMixedReadWrite(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  if (state.thread_index() == 0) {
    g_concurrent_db = new ConcurrentDb();
    Random rnd(9);
    const std::string value = rnd.NextString(1024);
    for (uint64_t i = 0; i < kKeySpace; ++i) {
      DL_CHECK_OK(g_concurrent_db->db->Put(KeyOf(i), 1, value));
    }
  }
  if (state.thread_index() < writers) {
    Random rnd(10 + state.thread_index());
    const std::string value = rnd.NextString(1024);
    uint64_t i = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(g_concurrent_db->db->Put(
          WriterKeyOf(state.thread_index(), i), i / kKeySpace + 1, value));
      ++i;
    }
  } else {
    uint64_t i = static_cast<uint64_t>(state.thread_index()) * 7919;
    for (auto _ : state) {
      benchmark::DoNotOptimize(g_concurrent_db->db->Get(KeyOf(i++), 1));
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete g_concurrent_db;
    g_concurrent_db = nullptr;
  }
}
BENCHMARK(BM_QinDbMixedReadWrite)
    ->ArgName("writers")
    ->Arg(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->Iterations(4000)
    ->UseRealTime();

// --- Group-commit benchmarks ----------------------------------------------

// All threads stream single-op PUTs against one engine, A/B over the
// group_commit option: 0 is the pre-group-commit path (one AOF append per
// op under the write mutex), 1 lets the leader batch concurrent writers
// into one append. The acceptance gate compares the 8-thread rows.
void BM_QinDbConcurrentPut(benchmark::State& state) {
  if (state.thread_index() == 0) {
    qindb::QinDbOptions options;
    options.group_commit = state.range(0) != 0;
    g_concurrent_db = new ConcurrentDb(options);
  }
  Random rnd(20 + state.thread_index());
  const std::string value = rnd.NextString(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_concurrent_db->db->Put(
        WriterKeyOf(state.thread_index(), i), i / kKeySpace + 1, value));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete g_concurrent_db;
    g_concurrent_db = nullptr;
  }
}
BENCHMARK(BM_QinDbConcurrentPut)
    ->ArgName("group_commit")
    ->Arg(0)
    ->Arg(1)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->Iterations(4000)
    ->UseRealTime();

// Single-op 1KB PUTs from N threads, A/B over the shard count: shards=1 is
// one write mutex and one group-commit queue serializing every thread;
// shards=4 hash-routes each Put to one of four independent committers, so
// on a multi-core host the appends (encode, CRC, memtable insert) proceed
// in parallel. The acceptance gate compares the 8-thread rows — on a
// single-core host the arms timeshare one CPU and land at parity, so the
// gate requires sharded >= single-shard rather than a fixed speedup.
void BM_QinDbShardedPut(benchmark::State& state) {
  if (state.thread_index() == 0) {
    qindb::QinDbOptions options;
    options.num_shards = static_cast<uint32_t>(state.range(0));
    g_concurrent_db = new ConcurrentDb(options);
  }
  Random rnd(30 + state.thread_index());
  const std::string value = rnd.NextString(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_concurrent_db->db->Put(
        WriterKeyOf(state.thread_index(), i), i / kKeySpace + 1, value));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete g_concurrent_db;
    g_concurrent_db = nullptr;
  }
}
BENCHMARK(BM_QinDbShardedPut)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(4)
    ->Threads(1)
    ->Threads(8)
    ->Iterations(4000)
    ->UseRealTime();

// One writer submitting multi-op WriteBatches: the caller-side batching
// API, amortizing the per-commit cost (mutex, AOF append, maintenance)
// over `batch` ops. batch=1 is the plain Put cost through the same path.
void BM_QinDbWriteBatch(benchmark::State& state) {
  const int batch_size = static_cast<int>(state.range(0));
  // Every arm commits the same 256 ops per iteration (as 256/batch Write
  // calls), so arms insert identical key volumes and the per-op numbers
  // compare commit batching alone — not index growth or checkpoint cadence.
  constexpr int kOpsPerIteration = 256;
  ConcurrentDb db;
  Random rnd(22);
  const std::string value = rnd.NextString(1024);
  uint64_t i = 0;
  for (auto _ : state) {
    for (int done = 0; done < kOpsPerIteration; done += batch_size) {
      qindb::WriteBatch batch;
      for (int j = 0; j < batch_size; ++j, ++i) {
        batch.Put(WriterKeyOf(0, i), i / kKeySpace + 1, value);
      }
      benchmark::DoNotOptimize(db.db->Write(batch));
    }
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerIteration);
}
BENCHMARK(BM_QinDbWriteBatch)
    ->ArgName("batch")
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(100);

void BM_LsmPut(benchmark::State& state) {
  auto engine = NewLsmAdapter(MicroConfig());
  Random rnd(4);
  const std::string value = rnd.NextString(state.range(0));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Put(KeyOf(i), i / kKeySpace + 1, value));
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_LsmPut)->Arg(256)->Arg(4096)->Iterations(4000);

void BM_LsmGet(benchmark::State& state) {
  auto engine = NewLsmAdapter(MicroConfig());
  Random rnd(5);
  const std::string value = rnd.NextString(4096);
  for (uint64_t i = 0; i < kKeySpace; ++i) {
    DL_CHECK_OK(engine->Put(KeyOf(i), 1, value));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->Get(KeyOf(i++), 1));
  }
}
BENCHMARK(BM_LsmGet)->Iterations(4000);

void BM_MemIndexInsert(benchmark::State& state) {
  MemIndex index;
  uint64_t i = 0;
  for (auto _ : state) {
    index.Insert(KeyOf(i), i / kKeySpace + 1, i, 128, false);
    ++i;
  }
}
BENCHMARK(BM_MemIndexInsert)->Iterations(100000);

void BM_MemIndexLookup(benchmark::State& state) {
  MemIndex index;
  for (uint64_t i = 0; i < kKeySpace; ++i) {
    index.Insert(KeyOf(i), 1, i, 128, false);
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.FindExact(KeyOf(i++), 1));
  }
}
BENCHMARK(BM_MemIndexLookup);

// The paper leaves the memtable structure open ("a tree structure or a
// list", Section 2.1); compare the shipped skip list against a red-black
// tree (std::map) at the same job.
void BM_StdMapInsert(benchmark::State& state) {
  std::map<std::string, uint64_t> map;
  uint64_t i = 0;
  for (auto _ : state) {
    map[KeyOf(i) + std::to_string(i / kKeySpace)] = i;
    ++i;
  }
}
BENCHMARK(BM_StdMapInsert)->Iterations(100000);

void BM_StdMapLookup(benchmark::State& state) {
  std::map<std::string, uint64_t> map;
  for (uint64_t i = 0; i < kKeySpace; ++i) map[KeyOf(i)] = i;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(KeyOf(i++)));
  }
}
BENCHMARK(BM_StdMapLookup);

void BM_Crc32c(benchmark::State& state) {
  Random rnd(6);
  const std::string data = rnd.NextString(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Value(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_Hash64Signature(benchmark::State& state) {
  Random rnd(7);
  const std::string data = rnd.NextString(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueSignature(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Hash64Signature)->Arg(64)->Arg(20480);

void BM_BloomMayMatch(benchmark::State& state) {
  lsm::BloomFilterBuilder builder(10);
  for (uint64_t i = 0; i < kKeySpace; ++i) builder.AddKey(KeyOf(i));
  const std::string filter = builder.Finish();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsm::BloomFilterMayMatch(filter, KeyOf(i++)));
  }
}
BENCHMARK(BM_BloomMayMatch);

}  // namespace
}  // namespace directload::bench

// BENCHMARK_MAIN(), plus the repo-wide --json=PATH flag: google-benchmark
// already knows how to write a JSON report, so the flag just routes into
// --benchmark_out / --benchmark_out_format.
int main(int argc, char** argv) {
  const std::string json_path =
      directload::bench::ExtractJsonFlag(&argc, argv);
  // Strip the --shards=N knob before google-benchmark sees the arg list.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      directload::bench::g_flag_shards =
          static_cast<uint32_t>(std::atoi(argv[i] + 9));
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, format_flag;
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
