// Reproduces Figure 9: dedup ratio and update time over a one-month window.
// Each simulated day runs one full update cycle (crawl -> build -> dedup ->
// cross-region delivery -> ingest); the daily change rate of the corpus
// varies, and the update time should anti-correlate with the dedup ratio —
// ~130 minutes when dedup drops to ~23%, ~30 minutes when it reaches ~80%.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common/report.h"
#include "common/logging.h"
#include "core/directload.h"

namespace directload::bench {
namespace {

core::DirectLoadOptions MonthPipeline() {
  core::DirectLoadOptions o;
  o.corpus.num_docs = 600;
  o.corpus.vocab_size = 5000;
  o.corpus.terms_per_doc = 25;
  o.corpus.abstract_bytes = 4096;
  o.corpus.seed = 2019;
  // Backbone sized so a heavy-churn (low-dedup) day lands near the paper's
  // ~130 minutes; see EXPERIMENTS.md for the scaling argument.
  o.delivery.backbone_bytes_per_sec = 360.0;
  o.delivery.interregion_bytes_per_sec = 360.0;
  o.delivery.regional_bytes_per_sec = 1440.0;
  o.delivery.tick_seconds = 5.0;
  o.delivery.monitor_interval_seconds = 30.0;
  o.delivery.generation_window_seconds = 1800.0;
  o.delivery.miss_deadline_seconds = 3600.0;
  o.delivery.max_seconds = 48 * 3600.0;
  o.slice_bytes = 64 << 10;
  o.mint.num_groups = 1;
  o.mint.nodes_per_group = 3;
  o.mint.node_geometry.num_blocks = 4096;  // 1 GiB per node.
  o.mint.engine.aof.segment_bytes = 4 << 20;
  o.gray_probe_queries = 10;
  return o;
}

/// The month's daily change-rate profile: mostly the production-like ~0.3,
/// with a heavy-churn day early (dedup dives) and a quiet stretch mid-month
/// (dedup peaks) — the anchor points the paper calls out.
std::vector<double> MonthProfile() {
  std::vector<double> rates;
  for (int day = 1; day <= 30; ++day) {
    double rate = 0.30 + 0.08 * std::sin(day * 0.7);
    if (day == 4) rate = 0.80;                  // Breaking-news day: ~23% dedup.
    if (day >= 14 && day <= 16) rate = 0.06;    // Quiet days: ~80%+ dedup.
    rates.push_back(rate);
  }
  return rates;
}

int Main(const std::string& json_path) {
  PrintBanner(
      "Figure 9 — dedup ratio vs update time within one month",
      "update time anti-correlates with dedup ratio; ~130 min at 23% dedup, "
      "~30 min at ~80% dedup");

  core::DirectLoad dl(MonthPipeline());
  DL_CHECK(dl.Start().ok());

  // Version 1 ships everything (cold start), like the system's bootstrap.
  Result<core::UpdateReport> bootstrap = dl.RunUpdateCycle();
  DL_CHECK(bootstrap.ok());

  std::printf("\n%5s %14s %18s %12s\n", "day", "dedup ratio(%)",
              "update time (min)", "miss ratio");
  std::vector<double> ratios, times;
  for (double change_rate : MonthProfile()) {
    Result<core::UpdateReport> report = dl.RunUpdateCycle(change_rate);
    DL_CHECK(report.ok());
    const double ratio = report->dedup.dedup_ratio() * 100.0;
    const double minutes = report->update_time_seconds / 60.0;
    ratios.push_back(ratio);
    times.push_back(minutes);
    std::printf("%5zu %14.1f %18.1f %11.2f%%\n", ratios.size(), ratio, minutes,
                report->delivery.miss_ratio * 100.0);
  }

  // Pearson correlation between dedup ratio and update time.
  double mean_r = 0, mean_t = 0;
  for (size_t i = 0; i < ratios.size(); ++i) {
    mean_r += ratios[i];
    mean_t += times[i];
  }
  mean_r /= ratios.size();
  mean_t /= times.size();
  double cov = 0, var_r = 0, var_t = 0;
  for (size_t i = 0; i < ratios.size(); ++i) {
    cov += (ratios[i] - mean_r) * (times[i] - mean_t);
    var_r += (ratios[i] - mean_r) * (ratios[i] - mean_r);
    var_t += (times[i] - mean_t) * (times[i] - mean_t);
  }
  const double correlation = cov / std::sqrt(var_r * var_t + 1e-12);

  double min_time = times[0], max_time = times[0];
  double ratio_at_min = ratios[0], ratio_at_max = ratios[0];
  for (size_t i = 1; i < times.size(); ++i) {
    if (times[i] < min_time) {
      min_time = times[i];
      ratio_at_min = ratios[i];
    }
    if (times[i] > max_time) {
      max_time = times[i];
      ratio_at_max = ratios[i];
    }
  }

  std::printf("\n=== Figure 9 verdict ===\n");
  std::printf("correlation(dedup ratio, update time) = %.3f\n", correlation);
  std::printf("slowest day: %.1f min at %.1f%% dedup (paper: ~130 min at 23%%)\n",
              max_time, ratio_at_max);
  std::printf("fastest day: %.1f min at %.1f%% dedup (paper: ~30 min at ~80%%)\n",
              min_time, ratio_at_min);
  std::printf("paper shape: strong anti-correlation -> %s\n",
              correlation < -0.7 ? "REPRODUCED" : "NOT reproduced");
  std::printf("paper shape: slow days are low-dedup days -> %s\n",
              ratio_at_max < ratio_at_min ? "REPRODUCED" : "NOT reproduced");

  JsonReport json;
  json.AddString("bench", "fig9_dedup_update_time");
  json.Add("correlation", correlation);
  json.Add("slowest_day_minutes", max_time);
  json.Add("slowest_day_dedup_pct", ratio_at_max);
  json.Add("fastest_day_minutes", min_time);
  json.Add("fastest_day_dedup_pct", ratio_at_min);
  json.WriteTo(json_path);
  return 0;
}

}  // namespace
}  // namespace directload::bench

int main(int argc, char** argv) {
  return directload::bench::Main(
      directload::bench::ExtractJsonFlag(&argc, argv));
}
