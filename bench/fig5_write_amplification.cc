// Reproduces Figure 5: write amplification of the LevelDB-style baseline vs
// QinDB under the summary-index update workload. "User Write" is application
// ingest; "Sys Write"/"Sys Read" are device-level (flash) counters, the
// simulator's stand-in for the paper's SSD firmware counters.

#include <cstdio>

#include "bench/common/engine_adapter.h"
#include "bench/common/report.h"
#include "bench/common/summary_workload.h"

namespace directload::bench {
namespace {

EngineConfig DefaultConfig() {
  EngineConfig config;
  config.geometry.page_size = 4096;
  config.geometry.pages_per_block = 64;
  config.geometry.num_blocks = 4096;  // 1 GiB simulated device.
  return config;
}

void PrintSeries(const WorkloadResult& result) {
  std::printf("\n--- %s ---\n", result.engine.c_str());
  std::printf("%10s %12s %14s %13s\n", "t(min)", "User(MB/s)", "SysWrite(MB/s)",
              "SysRead(MB/s)");
  for (size_t i = 0; i < result.samples.size(); i += 4) {
    const WorkloadSample& s = result.samples[i];
    std::printf("%10.2f %12.2f %14.2f %13.2f\n", s.t_seconds / 60.0,
                s.user_mbps, s.sys_write_mbps, s.sys_read_mbps);
  }
  std::printf(
      "summary: user=%.2f MB/s  sys-write=%.2f MB/s  sys-read=%.2f MB/s  "
      "write-amplification=%.2fx\n",
      result.avg_user_mbps, result.avg_sys_write_mbps, result.avg_sys_read_mbps,
      result.write_amplification);
}

int Main(const std::string& json_path) {
  PrintBanner(
      "Figure 5 — write amplification: LevelDB-style LSM vs QinDB",
      "LevelDB: user ~1.5 MB/s vs sys-write 30-50 MB/s (20-25x WA); "
      "QinDB: user ~3.5 MB/s vs sys-write ~7.5 MB/s (<=2.5x WA)");

  SummaryWorkloadOptions workload;
  EngineConfig config = DefaultConfig();

  auto lsm = NewLsmAdapter(config);
  WorkloadResult lsm_result = RunSummaryWorkload(lsm.get(), workload);
  PrintSeries(lsm_result);

  auto qindb = NewQinDbAdapter(config);
  WorkloadResult qindb_result = RunSummaryWorkload(qindb.get(), workload);
  PrintSeries(qindb_result);

  std::printf("\n=== Figure 5 verdict ===\n");
  std::printf("%-24s %18s %18s\n", "", "LSM baseline", "QinDB");
  std::printf("%-24s %17.2fx %17.2fx\n", "write amplification",
              lsm_result.write_amplification,
              qindb_result.write_amplification);
  std::printf("%-24s %15.2f MB/s %15.2f MB/s\n", "user write throughput",
              lsm_result.avg_user_mbps, qindb_result.avg_user_mbps);
  std::printf("paper shape: QinDB WA far below LSM WA -> %s\n",
              qindb_result.write_amplification <
                      lsm_result.write_amplification / 2
                  ? "REPRODUCED"
                  : "NOT reproduced");
  std::printf("paper shape: QinDB user throughput above LSM -> %s\n",
              qindb_result.avg_user_mbps > lsm_result.avg_user_mbps
                  ? "REPRODUCED"
                  : "NOT reproduced");

  JsonReport report;
  report.AddString("bench", "fig5_write_amplification");
  report.Add("lsm_write_amplification", lsm_result.write_amplification);
  report.Add("qindb_write_amplification", qindb_result.write_amplification);
  report.Add("lsm_user_mbps", lsm_result.avg_user_mbps);
  report.Add("qindb_user_mbps", qindb_result.avg_user_mbps);
  report.WriteTo(json_path);
  return 0;
}

}  // namespace
}  // namespace directload::bench

int main(int argc, char** argv) {
  return directload::bench::Main(
      directload::bench::ExtractJsonFlag(&argc, argv));
}
