// Reproduces Figure 10: (a) the update throughput improvement of DirectLoad
// (dedup + QinDB) over the baseline pipeline, up to ~5x on high-redundancy
// days; (b) DirectLoad's miss ratio (slices later than the one-hour
// deadline) staying well under the 0.6% SLO.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common/report.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/directload.h"

namespace directload::bench {
namespace {

core::DirectLoadOptions Pipeline(bool dedup) {
  core::DirectLoadOptions o;
  o.corpus.num_docs = 500;
  o.corpus.vocab_size = 4000;
  o.corpus.terms_per_doc = 20;
  o.corpus.abstract_bytes = 4096;
  o.corpus.seed = 313;
  o.delivery.backbone_bytes_per_sec = 900.0;
  o.delivery.interregion_bytes_per_sec = 900.0;
  o.delivery.regional_bytes_per_sec = 3600.0;
  o.delivery.tick_seconds = 5.0;
  o.delivery.monitor_interval_seconds = 30.0;
  // Slices are generated across a half-hour build window and each must
  // arrive within an hour of its generation; congestion bursts push a thin
  // tail of slices past that — the regime the paper's 0.24% (vs 0.6% SLO)
  // lives in.
  o.delivery.generation_window_seconds = 900.0;
  o.delivery.miss_deadline_seconds = 3600.0;
  o.delivery.max_seconds = 48 * 3600.0;
  o.delivery.corruption_prob = 0.004;  // Rare relay corruption.
  o.slice_bytes = 64 << 10;
  o.dedup_enabled = dedup;
  o.mint.num_groups = 1;
  o.mint.nodes_per_group = 3;
  o.mint.node_geometry.num_blocks = 4096;
  o.mint.engine.aof.segment_bytes = 4 << 20;
  o.gray_probe_queries = 10;
  return o;
}

std::vector<double> MonthProfile() {
  std::vector<double> rates;
  for (int day = 1; day <= 30; ++day) {
    double rate = 0.30 + 0.06 * std::sin(day * 0.9);
    if (day == 9 || day == 22) rate = 0.08;  // High-redundancy days.
    rates.push_back(rate);
  }
  return rates;
}

int Main(const std::string& json_path) {
  PrintBanner(
      "Figure 10 — update throughput and data availability",
      "(a) update throughput improved up to 5x with DirectLoad; (b) miss "
      "ratio 0.24% vs the 0.6% SLO");

  core::DirectLoad with_dl(Pipeline(/*dedup=*/true));
  core::DirectLoad without_dl(Pipeline(/*dedup=*/false));
  DL_CHECK(with_dl.Start().ok());
  DL_CHECK(without_dl.Start().ok());
  DL_CHECK(with_dl.RunUpdateCycle().ok());     // Bootstrap version.
  DL_CHECK(without_dl.RunUpdateCycle().ok());

  // Occasional backbone congestion, identical for both pipelines.
  Random congestion(5);

  std::printf("\n%5s %16s %16s %8s %14s\n", "day", "with DL (kps)",
              "without (kps)", "ratio", "DL miss ratio");
  double max_ratio = 0, sum_ratio = 0;
  double worst_miss = 0, sum_miss = 0;
  const std::vector<double> profile = MonthProfile();
  for (size_t day = 0; day < profile.size(); ++day) {
    // Occasional backbone congestion bursts, applied identically to both
    // pipelines (the monitor-driven scheduler may detour around them).
    const double bg = congestion.Bernoulli(0.2)
                          ? 0.3 + congestion.NextDouble() * 0.3
                          : 0.0;
    const int region = static_cast<int>(congestion.Uniform(3));
    for (core::DirectLoad* dl : {&with_dl, &without_dl}) {
      for (int r = 0; r < 3; ++r) {
        dl->delivery()->SetBackboneBackground(r, r == region ? bg : 0.0);
      }
    }
    Result<core::UpdateReport> with_report =
        with_dl.RunUpdateCycle(profile[day]);
    Result<core::UpdateReport> without_report =
        without_dl.RunUpdateCycle(profile[day]);
    DL_CHECK(with_report.ok());
    DL_CHECK(without_report.ok());

    const double with_kps = with_report->throughput_kps / 1000.0;
    const double without_kps = without_report->throughput_kps / 1000.0;
    const double ratio = without_kps > 0 ? with_kps / without_kps : 0;
    max_ratio = std::max(max_ratio, ratio);
    sum_ratio += ratio;
    const double miss = with_report->delivery.miss_ratio * 100.0;
    worst_miss = std::max(worst_miss, miss);
    sum_miss += miss;
    std::printf("%5zu %16.2f %16.2f %7.2fx %13.3f%%\n", day + 1, with_kps,
                without_kps, ratio, miss);
  }

  std::printf("\n=== Figure 10 verdict ===\n");
  std::printf("mean throughput improvement: %.2fx; peak: %.2fx (paper: up to 5x)\n",
              sum_ratio / profile.size(), max_ratio);
  std::printf("mean DirectLoad miss ratio: %.3f%%; worst day: %.3f%% "
              "(paper: 0.24%%, SLO 0.6%%)\n",
              sum_miss / profile.size(), worst_miss);
  std::printf("paper shape: multi-x throughput gain -> %s\n",
              max_ratio >= 2.0 ? "REPRODUCED" : "NOT reproduced");
  std::printf("paper shape: miss ratio under the 0.6%% SLO -> %s\n",
              sum_miss / profile.size() < 0.6 ? "REPRODUCED" : "NOT reproduced");

  JsonReport json;
  json.AddString("bench", "fig10_throughput_missratio");
  json.Add("mean_throughput_ratio", sum_ratio / profile.size());
  json.Add("peak_throughput_ratio", max_ratio);
  json.Add("mean_miss_pct", sum_miss / profile.size());
  json.Add("worst_miss_pct", worst_miss);
  json.WriteTo(json_path);
  return 0;
}

}  // namespace
}  // namespace directload::bench

int main(int argc, char** argv) {
  return directload::bench::Main(
      directload::bench::ExtractJsonFlag(&argc, argv));
}
