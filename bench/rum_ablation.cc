// The Section 5 RUM analysis plus the ablations DESIGN.md calls out:
//   * QinDB on the native block interface vs a conventional page-mapped FTL
//     (isolates hardware-level write amplification);
//   * the lazy-GC occupancy threshold (space <-> write-amplification trade);
//   * recovery time with and without checkpoints, vs data volume (the RUM
//     "cost" QinDB pays for its R and U).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/common/engine_adapter.h"
#include "bench/common/report.h"
#include "bench/common/summary_workload.h"
#include "common/logging.h"
#include "common/histogram.h"
#include "common/random.h"
#include "mint/cluster.h"
#include "qindb/qindb.h"
#include "ssd/ftl.h"
#include "ssd/native.h"
#include "ssd/env.h"

namespace directload::bench {
namespace {

struct Row {
  std::string name;
  double user_mbps;
  double write_amp;
  double read_avg_us;
  double peak_disk_mb;
  uint64_t device_gc_pages;  // Pages migrated by the device's internal GC.
};

double MeasureReadAvg(EngineAdapter* engine, uint64_t num_keys, int versions) {
  Random rnd(999);
  SimClock* clock = engine->clock();
  const int kReads = 800;
  double total_us = 0;
  int hits = 0;
  // The workload retains the last `retained` versions; probe those.
  for (int i = 0; i < kReads; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "url:%016llu",
                  static_cast<unsigned long long>(rnd.Uniform(num_keys)));
    const uint64_t version = versions - 3 + rnd.Uniform(4);
    const uint64_t before = clock->NowMicros();
    Result<std::string> got = engine->Get(Slice(key, 20), version);
    if (got.ok()) {
      total_us += static_cast<double>(clock->NowMicros() - before);
      ++hits;
    }
  }
  return hits == 0 ? 0 : total_us / hits;
}

Row RunConfig(const std::string& name,
              const std::function<std::unique_ptr<EngineAdapter>()>& make) {
  SummaryWorkloadOptions workload;
  workload.num_keys = 300;
  workload.versions = 8;
  auto engine = make();
  const WorkloadResult result = RunSummaryWorkload(engine.get(), workload);
  Row row;
  row.name = name;
  row.user_mbps = result.avg_user_mbps;
  row.write_amp = result.write_amplification;
  row.read_avg_us =
      MeasureReadAvg(engine.get(), workload.num_keys, workload.versions);
  row.peak_disk_mb = result.peak_disk_mb;
  row.device_gc_pages = engine->env()->stats().gc_pages_migrated;
  return row;
}

/// The paper's Figure 3/4 physics in isolation: at matched space
/// utilization, page-granular overwrites force the FTL's internal GC to
/// migrate the surviving pages of victim blocks, while QinDB's
/// block-aligned allocate/append/erase pattern never does. This is the
/// hardware-level write amplification the native interface removes.
void HardwareWaDemo() {
  std::printf(
      "\n--- Hardware-level WA: page-granular vs block-aligned churn ---\n");
  std::printf("%14s %26s %26s\n", "utilization", "page-mapped FTL (WA)",
              "native block-aligned (WA)");
  ssd::Geometry geometry;
  geometry.num_blocks = 256;  // 64 MiB.
  for (double utilization : {0.70, 0.85, 0.95}) {
    // FTL: a working set of `utilization` x logical pages updated in place,
    // in random order, for 3 full turnover rounds.
    SimClock ftl_clock;
    ssd::FtlDevice ftl(geometry, ssd::LatencyModel(), &ftl_clock);
    Random rnd(31);
    const uint64_t working_set =
        static_cast<uint64_t>(utilization * static_cast<double>(
                                                ftl.logical_pages()));
    const std::string payload(geometry.page_size, 'x');
    for (uint64_t lpa = 0; lpa < working_set; ++lpa) {
      DL_CHECK(ftl.Write(lpa, payload).ok());
    }
    for (uint64_t i = 0; i < working_set * 3; ++i) {
      DL_CHECK(ftl.Write(rnd.Uniform(working_set), payload).ok());
    }
    const double ftl_wa = ftl.stats().write_amplification();

    // Native: the same byte volume churned block-at-a-time (QinDB's AOF
    // pattern: allocate, fill, erase whole blocks).
    SimClock native_clock;
    ssd::NativeSsd native(geometry, ssd::LatencyModel(), &native_clock);
    const uint64_t working_blocks = working_set / geometry.pages_per_block;
    std::vector<uint32_t> blocks;
    for (uint64_t b = 0; b < working_blocks; ++b) {
      Result<uint32_t> block = native.AllocateBlock();
      DL_CHECK(block.ok());
      for (uint32_t p = 0; p < geometry.pages_per_block; ++p) {
        DL_CHECK(native.AppendPage(*block, payload).ok());
      }
      blocks.push_back(*block);
    }
    Random native_rnd(32);
    for (uint64_t i = 0; i < working_blocks * 3; ++i) {
      const size_t victim = native_rnd.Uniform(blocks.size());
      DL_CHECK(native.ReleaseBlock(blocks[victim]).ok());
      Result<uint32_t> block = native.AllocateBlock();
      DL_CHECK(block.ok());
      for (uint32_t p = 0; p < geometry.pages_per_block; ++p) {
        DL_CHECK(native.AppendPage(*block, payload).ok());
      }
      blocks[victim] = *block;
    }
    const double native_wa = native.stats().write_amplification();
    std::printf("%13.0f%% %25.2fx %25.2fx\n", utilization * 100, ftl_wa,
                native_wa);
  }
  std::printf("(the FTL's GC migrations grow sharply with utilization; the\n"
              " block-aligned pattern stays at exactly 1.0x — Figure 4's\n"
              " read-and-rewrite cost vs Figure 3's clean-erase best case)\n");
}

/// Replica-count ablation: parallel reads take the fastest of r replicas,
/// so the read tail shrinks as r grows — and with r >= 2 a node failure is
/// invisible to readers (the paper's Section 2.3 availability argument).
void ReplicaAblation() {
  std::printf("\n--- Replica count vs read latency and availability ---\n");
  std::printf("%10s %14s %14s %22s\n", "replicas", "avg (us)", "p99 (us)",
              "avail. after 1 crash");
  for (int replicas = 1; replicas <= 3; ++replicas) {
    mint::MintOptions options;
    options.num_groups = 1;
    options.nodes_per_group = 3;
    options.replicas = replicas;
    options.node_geometry.pages_per_block = 8;
    options.node_geometry.num_blocks = 4096;
    options.engine.aof.segment_bytes = 1 << 20;
    mint::MintCluster cluster(options);
    DL_CHECK(cluster.Start().ok());
    Random rnd(21);
    for (int i = 0; i < 200; ++i) {
      DL_CHECK(cluster.Put("url:" + std::to_string(i), 1,
                           rnd.NextString(8192))
                   .ok());
    }
    Histogram hist;
    for (int i = 0; i < 1000; ++i) {
      Result<mint::MintCluster::ReadResult> got =
          cluster.Get("url:" + std::to_string(rnd.Uniform(200)), 1);
      DL_CHECK(got.ok());
      hist.Add(got->latency_micros);
    }
    // Crash one node; count how many keys are still readable.
    DL_CHECK(cluster.FailNode(0).ok());
    int readable = 0;
    for (int i = 0; i < 200; ++i) {
      if (cluster.Get("url:" + std::to_string(i), 1).ok()) ++readable;
    }
    std::printf("%10d %14.0f %14.0f %20d/200\n", replicas, hist.Mean(),
                hist.Percentile(99), readable);
  }
  std::printf("(with r >= 2 a single-node failure is invisible to readers —\n"
              " the paper's \"parallel requests to the replicas hide the\n"
              " node recovery\"; latency is flat here because idle simulated\n"
              " devices have no service-time variance to race against)\n");
}

void RecoveryAblation() {
  std::printf("\n--- Recovery time vs data volume (the RUM cost) ---\n");
  std::printf("%12s %22s %22s\n", "volume (MB)", "full AOF scan (s)",
              "with checkpoint (s)");
  for (uint64_t data_mb : {8, 32, 96}) {
    SimClock clock;
    ssd::Geometry geometry;
    geometry.num_blocks = 4096;  // 1 GiB.
    auto env = ssd::NewSsdEnv(ssd::InterfaceMode::kNativeBlock, geometry,
                              ssd::LatencyModel(), &clock);
    qindb::QinDbOptions options;
    options.aof.segment_bytes = 8 << 20;
    Random rnd(42);
    {
      auto db = std::move(qindb::QinDb::Open(env.get(), options)).value();
      const uint64_t pairs = data_mb * 1024 / 16;  // 16 KB values.
      for (uint64_t i = 0; i < pairs; ++i) {
        char key[32];
        std::snprintf(key, sizeof(key), "url:%016llu",
                      static_cast<unsigned long long>(i));
        DL_CHECK(db->Put(Slice(key, 20), 1, rnd.NextString(16 << 10)).ok());
      }
    }
    // Full-scan recovery.
    const uint64_t t0 = clock.NowMicros();
    auto recovered = std::move(qindb::QinDb::Open(env.get(), options)).value();
    const double scan_seconds =
        static_cast<double>(clock.NowMicros() - t0) * 1e-6;
    // Checkpoint, then recover again.
    DL_CHECK(recovered->Checkpoint().ok());
    recovered.reset();
    const uint64_t t1 = clock.NowMicros();
    auto fast = std::move(qindb::QinDb::Open(env.get(), options)).value();
    const double ckpt_seconds =
        static_cast<double>(clock.NowMicros() - t1) * 1e-6;
    std::printf("%12llu %22.3f %22.3f\n",
                static_cast<unsigned long long>(data_mb), scan_seconds,
                ckpt_seconds);
  }
}

int Main(const std::string& json_path) {
  PrintBanner(
      "RUM ablation (Section 5) — read/update/memory trade-offs",
      "QinDB optimizes R and U at the cost of space and recovery time; "
      "block-aligned native writes remove hardware WA");

  EngineConfig base;
  base.geometry.num_blocks = 4096;

  std::vector<Row> rows;
  rows.push_back(RunConfig("QinDB native, GC@25% (paper)", [&] {
    EngineConfig c = base;
    return NewQinDbAdapter(c);
  }));
  rows.push_back(RunConfig("QinDB native, GC@10% (lazier)", [&] {
    EngineConfig c = base;
    c.qindb_gc_threshold = 0.10;
    return NewQinDbAdapter(c);
  }));
  rows.push_back(RunConfig("QinDB native, GC@50% (eager)", [&] {
    EngineConfig c = base;
    c.qindb_gc_threshold = 0.50;
    return NewQinDbAdapter(c);
  }));
  rows.push_back(RunConfig("QinDB on page-mapped FTL", [&] {
    EngineConfig c = base;
    c.qindb_on_ftl = true;
    return NewQinDbAdapter(c);
  }));
  rows.push_back(RunConfig("LSM baseline", [&] {
    EngineConfig c = base;
    return NewLsmAdapter(c);
  }));

  std::printf("\n%-34s %10s %8s %12s %12s %12s\n", "configuration", "U (MB/s)",
              "WA", "R avg (us)", "M peak (MB)", "devGC pages");
  for (const Row& row : rows) {
    std::printf("%-34s %10.2f %7.2fx %12.0f %12.1f %12llu\n", row.name.c_str(),
                row.user_mbps, row.write_amp, row.read_avg_us,
                row.peak_disk_mb,
                static_cast<unsigned long long>(row.device_gc_pages));
  }

  const Row& gc25 = rows[0];
  const Row& gc10 = rows[1];
  const Row& gc50 = rows[2];
  const Row& lsm = rows[4];
  std::printf("\n=== Ablation verdicts ===\n");
  std::printf("eager GC (50%%) costs more WA than lazy (10%%) -> %s\n",
              gc50.write_amp > gc10.write_amp ? "CONFIRMED" : "not confirmed");
  std::printf("lazy GC (10%%) uses more space than eager (50%%) -> %s\n",
              gc10.peak_disk_mb > gc50.peak_disk_mb ? "CONFIRMED"
                                                    : "not confirmed");
  std::printf("native interface never migrates pages (zero device GC) -> %s\n",
              gc25.device_gc_pages == 0 ? "CONFIRMED" : "not confirmed");
  std::printf("QinDB (any config) beats LSM on U -> %s\n",
              gc25.user_mbps > lsm.user_mbps ? "CONFIRMED" : "not confirmed");

  HardwareWaDemo();
  ReplicaAblation();
  RecoveryAblation();

  JsonReport report;
  report.AddString("bench", "rum_ablation");
  for (const Row& row : rows) {
    report.AddString("config_" + std::to_string(&row - rows.data()),
                     row.name);
  }
  report.Add("gc25_user_mbps", gc25.user_mbps);
  report.Add("gc25_write_amp", gc25.write_amp);
  report.Add("gc10_write_amp", gc10.write_amp);
  report.Add("gc50_write_amp", gc50.write_amp);
  report.Add("lsm_user_mbps", lsm.user_mbps);
  report.Add("device_gc_pages", gc25.device_gc_pages);
  report.WriteTo(json_path);
  return 0;
}

}  // namespace
}  // namespace directload::bench

int main(int argc, char** argv) {
  return directload::bench::Main(
      directload::bench::ExtractJsonFlag(&argc, argv));
}
