// Reproduces the paper's headline numbers (abstract / Section 7):
//   * 63% of update bandwidth saved by deduplication,
//   * 3x write throughput to SSDs vs the LSM baseline,
//   * index updating cycle compressed from 15 days to 3 days.

#include <algorithm>
#include <cstdio>

#include "bench/common/engine_adapter.h"
#include "bench/common/report.h"
#include "bench/common/summary_workload.h"
#include "bifrost/dedup.h"
#include "common/logging.h"
#include "core/directload.h"
#include "index/builders.h"
#include "index/corpus.h"

namespace directload::bench {
namespace {

double MeasureBandwidthSaving() {
  webindex::CorpusOptions corpus_options;
  corpus_options.num_docs = 500;
  corpus_options.vocab_size = 4000;
  corpus_options.terms_per_doc = 20;
  corpus_options.abstract_bytes = 4096;
  corpus_options.change_rate = 0.3;  // ~70% redundant, the production figure.
  webindex::Corpus corpus(corpus_options);
  bifrost::Deduplicator summary_dedup, inverted_dedup;

  // Bootstrap version, then measure steady-state savings over 10 versions
  // (the paper's one-month log holds 10 versions).
  bifrost::DedupStats stats;
  {
    webindex::IndexDataset summary = webindex::BuildSummaryIndex(corpus);
    webindex::IndexDataset forward = webindex::BuildForwardIndex(corpus);
    webindex::IndexDataset inverted =
        webindex::BuildInvertedIndex(corpus, forward);
    summary_dedup.Process(summary, nullptr);
    inverted_dedup.Process(inverted, nullptr);
  }
  for (int v = 0; v < 10; ++v) {
    corpus.AdvanceVersion();
    webindex::IndexDataset summary = webindex::BuildSummaryIndex(corpus);
    webindex::IndexDataset forward = webindex::BuildForwardIndex(corpus);
    webindex::IndexDataset inverted =
        webindex::BuildInvertedIndex(corpus, forward);
    summary_dedup.Process(summary, &stats);
    inverted_dedup.Process(inverted, &stats);
  }
  return stats.dedup_ratio();
}

double MeasureWriteThroughputRatio() {
  EngineConfig config;
  config.geometry.num_blocks = 4096;
  SummaryWorkloadOptions workload;
  workload.num_keys = 400;
  workload.versions = 9;
  auto lsm = NewLsmAdapter(config);
  auto qindb = NewQinDbAdapter(config);
  const WorkloadResult lsm_result = RunSummaryWorkload(lsm.get(), workload);
  const WorkloadResult qindb_result = RunSummaryWorkload(qindb.get(), workload);
  return qindb_result.avg_user_mbps / lsm_result.avg_user_mbps;
}

/// Section 3 reports search-result inconsistency under 0.1% during gray
/// release; Section 4 credits DirectLoad with cutting the overall index
/// inconsistency rate from 5% to 1.2%. We measure the gray-probe
/// inconsistency of delivered versions directly.
double MeasureGrayInconsistency() {
  core::DirectLoadOptions options;
  options.corpus.num_docs = 200;
  options.corpus.vocab_size = 2000;
  options.corpus.terms_per_doc = 12;
  options.corpus.abstract_bytes = 2048;
  options.delivery.backbone_bytes_per_sec = 40e6;
  options.delivery.interregion_bytes_per_sec = 25e6;
  options.delivery.regional_bytes_per_sec = 80e6;
  options.delivery.tick_seconds = 0.1;
  options.slice_bytes = 32 << 10;
  options.mint.num_groups = 1;
  options.mint.nodes_per_group = 3;
  options.mint.node_geometry.num_blocks = 4096;
  options.mint.engine.aof.segment_bytes = 2 << 20;
  options.gray_probe_queries = 100;
  core::DirectLoad dl(options);
  DL_CHECK(dl.Start().ok());
  double worst = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    Result<core::UpdateReport> report = dl.RunUpdateCycle(0.3);
    DL_CHECK(report.ok());
    worst = std::max(worst, report->gray_inconsistency);
  }
  return worst;
}

double MeasureCycleCompression() {
  auto pipeline = [](bool dedup) {
    core::DirectLoadOptions o;
    o.corpus.num_docs = 300;
    o.corpus.vocab_size = 3000;
    o.corpus.terms_per_doc = 15;
    o.corpus.abstract_bytes = 4096;
    o.delivery.backbone_bytes_per_sec = 2000.0;
    o.delivery.interregion_bytes_per_sec = 2000.0;
    o.delivery.regional_bytes_per_sec = 8000.0;
    o.delivery.tick_seconds = 2.0;
    o.delivery.max_seconds = 48 * 3600.0;
    o.slice_bytes = 64 << 10;
    o.dedup_enabled = dedup;
    o.mint.num_groups = 1;
    o.mint.nodes_per_group = 3;
    o.mint.node_geometry.num_blocks = 4096;
    o.mint.engine.aof.segment_bytes = 4 << 20;
    o.gray_probe_queries = 5;
    return o;
  };
  double with_time = 0, without_time = 0;
  for (bool dedup : {true, false}) {
    core::DirectLoad dl(pipeline(dedup));
    DL_CHECK(dl.Start().ok());
    DL_CHECK(dl.RunUpdateCycle().ok());  // Bootstrap.
    double total = 0;
    for (int cycle = 0; cycle < 4; ++cycle) {
      Result<core::UpdateReport> report = dl.RunUpdateCycle(0.3);
      DL_CHECK(report.ok());
      total += report->update_time_seconds;
    }
    (dedup ? with_time : without_time) = total / 4.0;
  }
  return without_time / with_time;
}

int Main(const std::string& json_path) {
  PrintBanner("Headline results (abstract / Section 7)",
              "63% bandwidth saved; 3x write throughput; update cycle "
              "15 days -> 3 days (5x)");

  const double saving = MeasureBandwidthSaving();
  const double throughput_ratio = MeasureWriteThroughputRatio();
  const double cycle_ratio = MeasureCycleCompression();
  const double inconsistency = MeasureGrayInconsistency();

  std::printf("\n%-44s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-44s %9s%% %9.1f%%\n",
              "update bandwidth saved by deduplication", "63", saving * 100);
  std::printf("%-44s %9s x %9.2fx\n", "QinDB vs LSM user-write throughput",
              "3", throughput_ratio);
  std::printf("%-44s %9s x %9.2fx\n",
              "update cycle compression (15d -> 3d)", "5", cycle_ratio);
  std::printf("%-44s %9s%% %9.2f%%\n",
              "gray-release query inconsistency", "<0.1", inconsistency * 100);

  std::printf("\n=== Headline verdict ===\n");
  std::printf("bandwidth saving in the 50-75%% band -> %s\n",
              saving > 0.50 && saving < 0.75 ? "REPRODUCED" : "NOT reproduced");
  std::printf("write throughput gain >= 2x -> %s\n",
              throughput_ratio >= 2.0 ? "REPRODUCED" : "NOT reproduced");
  std::printf("cycle compression >= 2.5x -> %s\n",
              cycle_ratio >= 2.5 ? "REPRODUCED" : "NOT reproduced");
  std::printf("gray inconsistency at or under the paper's 0.1%% -> %s\n",
              inconsistency <= 0.001 ? "REPRODUCED" : "NOT reproduced");

  JsonReport report;
  report.AddString("bench", "headline_summary");
  report.Add("bandwidth_saving", saving);
  report.Add("write_throughput_ratio", throughput_ratio);
  report.Add("cycle_compression_ratio", cycle_ratio);
  report.Add("gray_inconsistency", inconsistency);
  report.WriteTo(json_path);
  return 0;
}

}  // namespace
}  // namespace directload::bench

int main(int argc, char** argv) {
  return directload::bench::Main(
      directload::bench::ExtractJsonFlag(&argc, argv));
}
