// Reproduces Figure 6: user-write throughput dynamics. LevelDB's foreground
// throughput oscillates violently because writes stall behind LSM
// compactions; QinDB's stays flat because sorting lives in memory and the
// lazy GC defers disk reorganization.

#include <cstdio>

#include "bench/common/engine_adapter.h"
#include "bench/common/report.h"
#include "bench/common/summary_workload.h"

namespace directload::bench {
namespace {

int Main(const std::string& json_path) {
  PrintBanner(
      "Figure 6 — user-write throughput dynamics",
      "stddev of per-minute user-write rate: LevelDB 0.6616 MB/s vs "
      "QinDB 0.0501 MB/s (13x smoother)");

  EngineConfig config;
  config.geometry.num_blocks = 4096;  // 1 GiB.
  SummaryWorkloadOptions workload;
  workload.sample_buckets = 60;
  // The production stream is arrival-limited: both engines receive pairs at
  // the same rate, set just below the LSM baseline's sustainable average so
  // its compaction stalls show up as throughput dips.
  workload.arrival_bytes_per_sec = 1.2e6;

  auto lsm = NewLsmAdapter(config);
  WorkloadResult lsm_result = RunSummaryWorkload(lsm.get(), workload);
  auto qindb = NewQinDbAdapter(config);
  WorkloadResult qindb_result = RunSummaryWorkload(qindb.get(), workload);

  std::printf("\nPer-bucket user-write rate (MB/s), normalized time axis:\n");
  std::printf("%8s %16s %16s\n", "bucket", "LSM", "QinDB");
  for (size_t i = 0; i < lsm_result.samples.size(); i += 4) {
    // The two runs take different total simulated time; compare bucket by
    // bucket on the normalized axis.
    std::printf("%8zu %16.2f %16.2f\n", i, lsm_result.samples[i].user_mbps,
                i < qindb_result.samples.size()
                    ? qindb_result.samples[i].user_mbps
                    : 0.0);
  }

  const double cv_lsm = lsm_result.user_mbps_stddev /
                        (lsm_result.avg_user_mbps + 1e-12);
  const double cv_qindb = qindb_result.user_mbps_stddev /
                          (qindb_result.avg_user_mbps + 1e-12);
  std::printf("\n=== Figure 6 verdict ===\n");
  std::printf("%-34s %12s %12s\n", "", "LSM", "QinDB");
  std::printf("%-34s %12.4f %12.4f\n", "user-write stddev (MB/s)",
              lsm_result.user_mbps_stddev, qindb_result.user_mbps_stddev);
  std::printf("%-34s %12.4f %12.4f\n", "coefficient of variation", cv_lsm,
              cv_qindb);
  std::printf("paper shape: QinDB much smoother than LSM -> %s\n",
              cv_qindb < cv_lsm / 2 ? "REPRODUCED" : "NOT reproduced");

  JsonReport report;
  report.AddString("bench", "fig6_throughput_dynamics");
  report.Add("lsm_user_mbps_stddev", lsm_result.user_mbps_stddev);
  report.Add("qindb_user_mbps_stddev", qindb_result.user_mbps_stddev);
  report.Add("lsm_cv", cv_lsm);
  report.Add("qindb_cv", cv_qindb);
  report.WriteTo(json_path);
  return 0;
}

}  // namespace
}  // namespace directload::bench

int main(int argc, char** argv) {
  return directload::bench::Main(
      directload::bench::ExtractJsonFlag(&argc, argv));
}
