#ifndef DIRECTLOAD_BENCH_COMMON_SUMMARY_WORKLOAD_H_
#define DIRECTLOAD_BENCH_COMMON_SUMMARY_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bench/common/engine_adapter.h"

namespace directload::bench {

/// The paper's Section 4.1 micro-benchmark workload: a replayed summary
/// index update — 20-byte keys, ~20 KB values, 11 versions inserted by
/// seven logical insertion streams while a deletion stream drops the oldest
/// version once four are on disk.
struct SummaryWorkloadOptions {
  uint64_t num_keys = 600;
  uint32_t value_bytes = 20 << 10;
  /// The paper's run inserts 11 versions; the default here is a bit longer
  /// so the lazy GC reaches steady state at this scale.
  int versions = 15;
  int retained_versions = 4;
  int insert_streams = 7;  // Logical streams (round-robin interleave).
  /// Fraction of keys whose value changes between versions; the rest arrive
  /// as deduplicated (value-less) pairs, as the production replay would
  /// (Section 2.2: ~70% of pairs unchanged).
  double change_rate = 0.3;
  uint64_t seed = 123;
  /// Number of equal simulated-time buckets the trace is resampled into.
  int sample_buckets = 80;

  /// When nonzero, pairs *arrive* open-loop at this application-byte rate
  /// (the production stream is arrival-limited); the engine falls behind
  /// whenever compaction/GC occupies the device, which is what Figure 6's
  /// throughput dynamics display. Zero means closed-loop (device-limited),
  /// which Figures 5 and 7 use.
  double arrival_bytes_per_sec = 0;
};

/// One resampled time-series point.
struct WorkloadSample {
  double t_seconds = 0;       // Bucket end, simulated device time.
  double user_mbps = 0;       // Application ingest rate.
  double sys_write_mbps = 0;  // Device (flash) program rate.
  double sys_read_mbps = 0;   // Device read rate.
  double disk_mb = 0;         // On-device footprint at bucket end.
};

struct WorkloadResult {
  std::string engine;
  std::vector<WorkloadSample> samples;
  double total_seconds = 0;
  uint64_t user_bytes = 0;
  uint64_t device_write_bytes = 0;
  uint64_t device_read_bytes = 0;
  double avg_user_mbps = 0;
  double avg_sys_write_mbps = 0;
  double avg_sys_read_mbps = 0;
  /// Standard deviation of the per-bucket user-write rate (Figure 6).
  double user_mbps_stddev = 0;
  /// device writes / user writes (Figure 5's amplification).
  double write_amplification = 0;
  double peak_disk_mb = 0;
  double final_disk_mb = 0;
};

/// Replays the workload against `engine`, tracing device counters after
/// every operation and resampling into fixed-width buckets.
WorkloadResult RunSummaryWorkload(EngineAdapter* engine,
                                  const SummaryWorkloadOptions& options);

}  // namespace directload::bench

#endif  // DIRECTLOAD_BENCH_COMMON_SUMMARY_WORKLOAD_H_
