#include "bench/common/summary_workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"

namespace directload::bench {

namespace {

struct TracePoint {
  uint64_t t_micros;
  uint64_t user_bytes;
  uint64_t device_write_pages;
  uint64_t device_read_pages;
  uint64_t disk_bytes;
};

}  // namespace

WorkloadResult RunSummaryWorkload(EngineAdapter* engine,
                                  const SummaryWorkloadOptions& options) {
  Random rnd(options.seed);
  std::vector<std::string> keys;
  keys.reserve(options.num_keys);
  for (uint64_t i = 0; i < options.num_keys; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "url:%016llu",
                  static_cast<unsigned long long>(i));
    keys.emplace_back(key, 20);  // 20-byte keys (paper Section 4.1).
  }

  std::vector<TracePoint> trace;
  auto record = [&]() {
    const ssd::SsdStats& stats = engine->env()->stats();
    trace.push_back(TracePoint{engine->clock()->NowMicros(),
                               engine->user_bytes(),
                               stats.device_pages_written(),
                               stats.device_pages_read(),
                               engine->disk_bytes()});
  };
  record();

  // Each version arrives in crawl order (a fresh shuffle per round, which
  // is also how the seven concurrent insertion streams interleave from the
  // engine's point of view). Unchanged documents arrive as deduplicated
  // value-less pairs.
  std::vector<uint64_t> order(options.num_keys);
  for (uint64_t i = 0; i < options.num_keys; ++i) order[i] = i;
  double next_arrival_us = static_cast<double>(engine->clock()->NowMicros());
  for (int version = 1; version <= options.versions; ++version) {
    for (uint64_t i = options.num_keys - 1; i > 0; --i) {
      std::swap(order[i], order[rnd.Uniform(i + 1)]);
    }
    for (uint64_t step = 0; step < options.num_keys; ++step) {
      const uint64_t key_index = order[step];
      const bool changed =
          version == 1 || rnd.Bernoulli(options.change_rate);
      std::string value;
      if (changed) {
        // Value sizes vary around the 20 KB mean, fresh content.
        const uint32_t size = options.value_bytes / 2 +
                              static_cast<uint32_t>(
                                  rnd.Uniform(options.value_bytes));
        value = rnd.NextString(size);
      }
      if (options.arrival_bytes_per_sec > 0) {
        // Open loop: the pair arrives on the stream's schedule; the device
        // may still be busy from earlier work, in which case this op (and
        // the stream) queues behind it.
        const double bytes =
            static_cast<double>(keys[key_index].size() + value.size());
        if (engine->clock()->NowMicros() <
            static_cast<uint64_t>(next_arrival_us)) {
          engine->clock()->AdvanceTo(static_cast<uint64_t>(next_arrival_us));
        }
        next_arrival_us += bytes / options.arrival_bytes_per_sec * 1e6;
      }
      Status s = changed ? engine->Put(keys[key_index], version, value)
                         : engine->Put(keys[key_index], version, Slice(),
                                       /*dedup=*/true);
      DL_CHECK(s.ok());
      record();
    }
    // Deletion stream: once `retained_versions` are on disk, the oldest one
    // goes.
    if (version > options.retained_versions) {
      Status s = engine->DropVersion(version - options.retained_versions, keys);
      DL_CHECK(s.ok());
      record();
    }
  }

  // Resample the trace into fixed-width time buckets.
  WorkloadResult result;
  result.engine = std::string(engine->name());
  const uint64_t t0 = trace.front().t_micros;
  const uint64_t t1 = trace.back().t_micros;
  result.total_seconds = static_cast<double>(t1 - t0) * 1e-6;
  result.user_bytes = trace.back().user_bytes - trace.front().user_bytes;
  const uint32_t page = engine->env()->geometry().page_size;
  result.device_write_bytes =
      (trace.back().device_write_pages - trace.front().device_write_pages) *
      page;
  result.device_read_bytes =
      (trace.back().device_read_pages - trace.front().device_read_pages) *
      page;
  result.write_amplification =
      result.user_bytes == 0
          ? 0
          : static_cast<double>(result.device_write_bytes) /
                static_cast<double>(result.user_bytes);
  result.avg_user_mbps =
      static_cast<double>(result.user_bytes) / result.total_seconds / 1e6;
  result.avg_sys_write_mbps =
      static_cast<double>(result.device_write_bytes) / result.total_seconds /
      1e6;
  result.avg_sys_read_mbps =
      static_cast<double>(result.device_read_bytes) / result.total_seconds /
      1e6;

  const int buckets = std::max(1, options.sample_buckets);
  const double bucket_micros =
      static_cast<double>(t1 - t0) / static_cast<double>(buckets);
  size_t cursor = 0;
  TracePoint prev = trace.front();
  RunningStat user_rate_stat;
  for (int b = 1; b <= buckets; ++b) {
    const auto bucket_end =
        t0 + static_cast<uint64_t>(bucket_micros * b);
    // Last trace point at or before the bucket end.
    while (cursor + 1 < trace.size() &&
           trace[cursor + 1].t_micros <= bucket_end) {
      ++cursor;
    }
    const TracePoint& cur = trace[cursor];
    const double dt = bucket_micros * 1e-6;
    WorkloadSample sample;
    sample.t_seconds = static_cast<double>(bucket_end - t0) * 1e-6;
    sample.user_mbps =
        static_cast<double>(cur.user_bytes - prev.user_bytes) / dt / 1e6;
    sample.sys_write_mbps =
        static_cast<double>(cur.device_write_pages - prev.device_write_pages) *
        page / dt / 1e6;
    sample.sys_read_mbps =
        static_cast<double>(cur.device_read_pages - prev.device_read_pages) *
        page / dt / 1e6;
    sample.disk_mb = static_cast<double>(cur.disk_bytes) / 1e6;
    result.peak_disk_mb = std::max(result.peak_disk_mb, sample.disk_mb);
    result.samples.push_back(sample);
    user_rate_stat.Add(sample.user_mbps);
    prev = cur;
  }
  result.user_mbps_stddev = user_rate_stat.StdDev();
  result.final_disk_mb = static_cast<double>(trace.back().disk_bytes) / 1e6;
  return result;
}

}  // namespace directload::bench
