#ifndef DIRECTLOAD_BENCH_COMMON_ENGINE_ADAPTER_H_
#define DIRECTLOAD_BENCH_COMMON_ENGINE_ADAPTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "common/slice.h"
#include "common/status.h"
#include "lsm/db.h"
#include "qindb/qindb.h"
#include "ssd/env.h"

namespace directload::bench {

/// Uniform facade over the two storage engines so the figure benchmarks
/// replay identical workloads against both. Each adapter owns its simulated
/// SSD: QinDB runs on the native block interface (the paper's deployment),
/// the LSM baseline on a conventional page-mapped FTL.
class EngineAdapter {
 public:
  virtual ~EngineAdapter() = default;

  virtual std::string_view name() const = 0;

  /// `dedup=true` ships a value-less pair (Bifrost removed the value): the
  /// engines store it and resolve reads through older versions — QinDB via
  /// its native traceback, the LSM baseline via application-level probing.
  virtual Status Put(const Slice& key, uint64_t version, const Slice& value,
                     bool dedup = false) = 0;
  virtual Result<std::string> Get(const Slice& key, uint64_t version) = 0;
  /// Removes one version of every key (the paper's deletion thread).
  virtual Status DropVersion(uint64_t version,
                             const std::vector<std::string>& keys) = 0;

  /// Application bytes ingested via Put (Figure 5's "User Write").
  virtual uint64_t user_bytes() const = 0;

  virtual ssd::SsdEnv* env() = 0;
  virtual SimClock* clock() = 0;

  uint64_t disk_bytes() { return env()->TotalFileBytes(); }
};

struct EngineConfig {
  EngineConfig() {
    // The whole benchmark is scaled ~1000x down from the paper's testbed
    // (1 GiB simulated device instead of 500 GB); scale the LSM level
    // budgets accordingly so the tree reaches the same depth it would in
    // production.
    lsm.write_buffer_bytes = 512 << 10;
    lsm.max_bytes_for_level_base = 2 << 20;
    lsm.target_file_bytes = 512 << 10;
    lsm.block_cache_bytes = 4 << 20;
  }

  ssd::Geometry geometry;
  ssd::LatencyModel latency;
  uint64_t qindb_segment_bytes = 8 << 20;
  double qindb_gc_threshold = 0.25;
  lsm::LsmOptions lsm;
  /// Interface override for ablations (QinDB-on-FTL).
  bool qindb_on_ftl = false;
};

std::unique_ptr<EngineAdapter> NewQinDbAdapter(const EngineConfig& config);
std::unique_ptr<EngineAdapter> NewLsmAdapter(const EngineConfig& config);

}  // namespace directload::bench

#endif  // DIRECTLOAD_BENCH_COMMON_ENGINE_ADAPTER_H_
