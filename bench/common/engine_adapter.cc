#include "bench/common/engine_adapter.h"

#include "common/coding.h"

namespace directload::bench {

namespace {

class QinDbAdapter final : public EngineAdapter {
 public:
  explicit QinDbAdapter(const EngineConfig& config) {
    env_ = ssd::NewSsdEnv(config.qindb_on_ftl
                              ? ssd::InterfaceMode::kPageMappedFtl
                              : ssd::InterfaceMode::kNativeBlock,
                          config.geometry, config.latency, &clock_);
    qindb::QinDbOptions options;
    options.aof.segment_bytes = config.qindb_segment_bytes;
    options.aof.gc_occupancy_threshold = config.qindb_gc_threshold;
    db_ = qindb::QinDb::Open(env_.get(), options).value();
  }

  std::string_view name() const override { return "QinDB"; }

  Status Put(const Slice& key, uint64_t version, const Slice& value,
             bool dedup) override {
    return db_->Put(key, version, value, dedup);
  }

  Result<std::string> Get(const Slice& key, uint64_t version) override {
    return db_->Get(key, version);
  }

  Status DropVersion(uint64_t version,
                     const std::vector<std::string>& keys) override {
    (void)keys;  // QinDB's memtable scan finds them without the key list.
    Result<uint64_t> n = db_->DropVersion(version);
    return n.ok() ? Status::OK() : n.status();
  }

  uint64_t user_bytes() const override {
    return db_->stats().user_bytes_ingested;
  }

  ssd::SsdEnv* env() override { return env_.get(); }
  SimClock* clock() override { return &clock_; }
  qindb::QinDb* db() { return db_.get(); }

 private:
  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
  std::unique_ptr<qindb::QinDb> db_;
};

/// The LSM baseline stores versioned pairs under composite user keys
/// (url + big-endian version) so versions of a key sort adjacently, and
/// version pruning issues one Delete (tombstone) per key — the idiomatic
/// LevelDB usage the paper benchmarked against.
class LsmAdapter final : public EngineAdapter {
 public:
  explicit LsmAdapter(const EngineConfig& config) {
    env_ = ssd::NewSsdEnv(ssd::InterfaceMode::kPageMappedFtl, config.geometry,
                          config.latency, &clock_);
    db_ = lsm::LsmDb::Open(env_.get(), config.lsm).value();
  }

  std::string_view name() const override { return "LevelDB-style LSM"; }

  static std::string CompositeKey(const Slice& key, uint64_t version) {
    std::string composite(key.data(), key.size());
    // Big-endian so versions sort ascending under bytewise comparison.
    for (int shift = 56; shift >= 0; shift -= 8) {
      composite.push_back(static_cast<char>((version >> shift) & 0xff));
    }
    return composite;
  }

  Status Put(const Slice& key, uint64_t version, const Slice& value,
             bool dedup) override {
    // A one-byte marker distinguishes complete pairs from deduplicated
    // (value-removed) ones; the application resolves the latter by probing
    // older versions, since a stock LSM store has no traceback support.
    std::string stored;
    stored.reserve(value.size() + 1);
    stored.push_back(dedup ? '\x00' : '\x01');
    stored.append(value.data(), value.size());
    return db_->Put(CompositeKey(key, version), stored);
  }

  Result<std::string> Get(const Slice& key, uint64_t version) override {
    for (uint64_t v = version;; --v) {
      Result<std::string> got = db_->Get(CompositeKey(key, v));
      if (!got.ok()) return got.status();
      if (!got->empty() && (*got)[0] == '\x01') {
        return got->substr(1);
      }
      if (v == 1) return Status::Corruption("dangling dedup chain");
    }
  }

  Status DropVersion(uint64_t version,
                     const std::vector<std::string>& keys) override {
    for (const std::string& key : keys) {
      Status s = db_->Delete(CompositeKey(key, version));
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  uint64_t user_bytes() const override {
    return db_->stats().user_bytes_ingested;
  }

  ssd::SsdEnv* env() override { return env_.get(); }
  SimClock* clock() override { return &clock_; }
  lsm::LsmDb* db() { return db_.get(); }

 private:
  SimClock clock_;
  std::unique_ptr<ssd::SsdEnv> env_;
  std::unique_ptr<lsm::LsmDb> db_;
};

}  // namespace

std::unique_ptr<EngineAdapter> NewQinDbAdapter(const EngineConfig& config) {
  return std::make_unique<QinDbAdapter>(config);
}

std::unique_ptr<EngineAdapter> NewLsmAdapter(const EngineConfig& config) {
  return std::make_unique<LsmAdapter>(config);
}

}  // namespace directload::bench
