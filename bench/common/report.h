#ifndef DIRECTLOAD_BENCH_COMMON_REPORT_H_
#define DIRECTLOAD_BENCH_COMMON_REPORT_H_

#include <cstdio>

namespace directload::bench {

/// Prints the standard header every figure benchmark starts with.
inline void PrintBanner(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("(Simulated SSD + simulated time; compare shapes and ratios,\n");
  std::printf(" not absolute magnitudes. See EXPERIMENTS.md.)\n");
  std::printf("================================================================\n");
}

}  // namespace directload::bench

#endif  // DIRECTLOAD_BENCH_COMMON_REPORT_H_
