#ifndef DIRECTLOAD_BENCH_COMMON_REPORT_H_
#define DIRECTLOAD_BENCH_COMMON_REPORT_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace directload::bench {

/// Prints the standard header every figure benchmark starts with.
inline void PrintBanner(const char* experiment, const char* paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("(Simulated SSD + simulated time; compare shapes and ratios,\n");
  std::printf(" not absolute magnitudes. See EXPERIMENTS.md.)\n");
  std::printf("================================================================\n");
}

/// Machine-readable benchmark summary: a flat JSON object of the run's
/// headline numbers, written to the path named by `--json=PATH`. Every
/// bench shares this writer so CI and the checked-in BENCH_*.json files
/// parse the same shape regardless of which binary produced them.
class JsonReport {
 public:
  void Add(const std::string& name, double value) {
    char buf[64];
    if (std::isfinite(value)) {
      std::snprintf(buf, sizeof(buf), "%.6g", value);
    } else {
      std::snprintf(buf, sizeof(buf), "null");
    }
    fields_.emplace_back(name, buf);
  }

  void Add(const std::string& name, uint64_t value) {
    fields_.emplace_back(name, std::to_string(value));
  }

  void Add(const std::string& name, int value) {
    fields_.emplace_back(name, std::to_string(value));
  }

  void AddString(const std::string& name, const std::string& value) {
    fields_.emplace_back(name, "\"" + Escaped(value) + "\"");
  }

  /// Writes `{"a": 1, ...}` to `path`; a no-op on an empty path (the bench
  /// was run without --json). Returns false on I/O failure.
  bool WriteTo(const std::string& path) const {
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write JSON report to %s\n", path.c_str());
      return false;
    }
    std::fputs("{\n", f);
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", Escaped(fields_[i].first).c_str(),
                   fields_[i].second.c_str(),
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    return true;
  }

 private:
  static std::string Escaped(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';  // Headline metrics never need control characters.
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;  // name -> JSON.
};

/// Pulls `--json=PATH` (or `--json PATH`) out of argv, compacting the
/// remaining arguments in place, and returns the path ("" when absent) —
/// so every bench, including ones that otherwise parse their own flags or
/// hand argv to google-benchmark, accepts the same flag.
inline std::string ExtractJsonFlag(int* argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

}  // namespace directload::bench

#endif  // DIRECTLOAD_BENCH_COMMON_REPORT_H_
